//! Quickstart: the MAGIC pipeline end to end in under a minute.
//!
//! 1. Extract an attributed CFG from an IDA-style listing.
//! 2. Train a small DGCNN on a tiny synthetic two-family corpus.
//! 3. Classify a fresh listing with the assembled pipeline.
//!
//! Run with: `cargo run --release --example quickstart`

use magic::pipeline::{extract_acfg, MagicPipeline};
use magic::trainer::{TrainConfig, Trainer};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_synth::codegen::CodeGenerator;
use magic_synth::profile::FamilyProfile;
use magic_tensor::Rng64;

fn main() {
    // --- 1. Extraction: listing -> basic blocks -> ACFG -------------------
    let listing = "\
.text:00401000                 push    ebp
.text:00401001                 mov     ebp, esp
.text:00401003                 cmp     [ebp+8], 0
.text:00401007                 jz      short loc_401010
.text:00401009                 xor     eax, eax
.text:0040100B                 add     eax, 1Fh
.text:0040100E                 jmp     short loc_401012
.text:00401010 loc_401010:
.text:00401010                 mov     eax, 1
.text:00401012 loc_401012:
.text:00401012                 pop     ebp
.text:00401013                 retn
";
    let acfg = extract_acfg(listing).expect("listing parses");
    println!(
        "extracted ACFG: {} basic blocks, {} edges, {} attribute channels",
        acfg.vertex_count(),
        acfg.edge_count(),
        acfg.attributes().cols()
    );

    // --- 2. Training: two synthetic families ------------------------------
    // A loop-heavy "worm" profile vs a long-straight-block "packer".
    let mut worm = FamilyProfile::base("Worm");
    worm.loop_weight = 3.0;
    worm.mean_blocks = 25.0;
    let mut packer = FamilyProfile::base("Packer");
    packer.decoder_weight = 3.0;
    packer.branch_weight = 0.2;
    packer.mean_blocks = 15.0;

    let mut rng = Rng64::new(1);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    let mut listings = Vec::new();
    for i in 0..40 {
        let profile = if i % 2 == 0 { &worm } else { &packer };
        let text = CodeGenerator::new(profile).generate(&mut rng);
        let acfg = extract_acfg(&text).expect("generated listings parse");
        inputs.push(GraphInput::from_acfg(&acfg));
        labels.push(i % 2);
        listings.push(text);
    }

    let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
    let mut model = Dgcnn::new(&config, 7);
    let trainer = Trainer::new(TrainConfig {
        epochs: 10,
        batch_size: 5,
        learning_rate: 0.01,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..32).collect();
    let val_idx: Vec<usize> = (32..40).collect();
    let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
    let last = outcome.history.last().expect("at least one epoch");
    println!(
        "trained {} weights for {} epochs: val loss {:.4}, val accuracy {:.0}%",
        model.num_weights(),
        outcome.history.len(),
        last.val_loss,
        last.val_accuracy * 100.0
    );

    // --- 3. Deployment: classify a fresh sample ---------------------------
    let pipeline = MagicPipeline::new(model, vec!["Worm".into(), "Packer".into()]);
    let fresh = CodeGenerator::new(&packer).generate(&mut rng);
    let (family, confidence) = pipeline.classify_listing(&fresh).expect("classifies");
    println!("fresh sample classified as {family} (p = {confidence:.3})");
}
