//! YANCFG flow: train on pre-extracted CFGs, checkpoint the model, reload
//! it and serve predictions — the paper's envisioned cloud deployment
//! (Section VII).
//!
//! Run with: `cargo run --release --example yancfg_pipeline`

use magic::checkpoint::{load_weights, save_weights};
use magic::pipeline::MagicPipeline;
use magic::trainer::{evaluate, TrainConfig, Trainer};
use magic::tuning::{HeadKind, HyperParams};
use magic_data::stratified_kfold;
use magic_model::{Dgcnn, GraphInput};
use magic_synth::{YancfgGenerator, YANCFG_FAMILIES};

fn main() {
    // YANCFG ships CFGs directly — no assembly step.
    println!("generating YANCFG-like corpus...");
    let mut generator = YancfgGenerator::new(23, 0.01);
    let samples = generator.generate();
    let inputs: Vec<GraphInput> =
        samples.iter().map(|s| GraphInput::from_acfg(&s.acfg)).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    println!("{} samples across {} families", samples.len(), YANCFG_FAMILIES.len());

    // Table II best YANCFG model: adaptive pooling, ratio 0.2, dropout 0.5.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    params.pooling_ratio = 0.2;
    params.dropout = 0.5;
    params.batch_size = 40;
    params.weight_decay = 5e-4;
    let sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();
    let config = params.to_model_config(YANCFG_FAMILIES.len(), &sizes);

    // Single train/validation split for speed (the table5_yancfg binary
    // does the full 5-fold CV).
    let folds = stratified_kfold(&labels, 5, 3);
    let split = &folds[0];
    let mut model = Dgcnn::new(&config, 17);
    let trainer = Trainer::new(TrainConfig {
        epochs: 12,
        batch_size: params.batch_size,
        weight_decay: params.weight_decay,
        seed: 3,
        ..TrainConfig::default()
    });
    println!("training on {} samples...", split.train.len());
    let outcome = trainer.train(&mut model, &inputs, &labels, &split.train, &split.validation);
    println!(
        "best val loss {:.4} at epoch {}",
        outcome.best_val_loss,
        outcome.best_epoch()
    );

    // Checkpoint, reload into a fresh model, verify identical behaviour.
    let checkpoint = save_weights(&model);
    println!("checkpoint size: {} bytes", checkpoint.len());
    let mut restored = Dgcnn::new(&config, 999);
    load_weights(&mut restored, &checkpoint).expect("checkpoint round-trips");
    let (loss_a, acc_a) = evaluate(&model, &inputs, &labels, &split.validation);
    let (loss_b, acc_b) = evaluate(&restored, &inputs, &labels, &split.validation);
    assert_eq!(loss_a, loss_b, "restored model must behave identically");
    println!("validation: loss {loss_a:.4}, accuracy {:.1}% (restored: {:.1}%)", acc_a * 100.0, acc_b * 100.0);

    // Serve one prediction.
    let pipeline = MagicPipeline::new(
        restored,
        YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
    );
    let probe = &samples[split.validation[0]];
    let (family, confidence) = pipeline.classify_acfg(&probe.acfg);
    println!(
        "probe sample (true family {}): predicted {family} with p = {confidence:.3}",
        YANCFG_FAMILIES[probe.label]
    );
}
