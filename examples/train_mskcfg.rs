//! Train MAGIC's best Table II model on the MSKCFG-like corpus and print
//! a Table III-style per-family report.
//!
//! Run with: `cargo run --release --example train_mskcfg [-- scale epochs]`
//! (defaults: scale 0.02, 12 epochs — a few minutes on a laptop).

use magic::cv::cross_validate;
use magic::pipeline::extract_acfgs_parallel;
use magic::tuning::{HeadKind, HyperParams};
use magic_model::GraphInput;
use magic_synth::{MskcfgGenerator, MSKCFG_FAMILIES};

fn main() {
    let argv: Vec<String> = std::env::args().collect();
    let scale: f64 = argv.get(1).and_then(|s| s.parse().ok()).unwrap_or(0.02);
    let epochs: usize = argv.get(2).and_then(|s| s.parse().ok()).unwrap_or(12);

    // Generate listings and push them through the real extraction
    // pipeline, in parallel (Section IV-C).
    println!("generating MSKCFG-like corpus at scale {scale}...");
    let mut generator = MskcfgGenerator::new(11, scale);
    let samples = generator.generate();
    let listings: Vec<String> = samples.iter().map(|s| s.listing.clone()).collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let start = std::time::Instant::now();
    let acfgs: Vec<_> = extract_acfgs_parallel(&listings, workers)
        .into_iter()
        .map(|r| r.expect("generated listings parse"))
        .collect();
    println!(
        "extracted {} ACFGs in {:.1}s on {workers} workers",
        acfgs.len(),
        start.elapsed().as_secs_f64()
    );

    let inputs: Vec<GraphInput> = acfgs.iter().map(GraphInput::from_acfg).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    let sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();

    // The Table II best model for MSKCFG.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    params.pooling_ratio = 0.64;
    params.conv_sizes = vec![128, 64, 32, 32];
    let model_config = params.to_model_config(MSKCFG_FAMILIES.len(), &sizes);
    let train_config = params.to_train_config(epochs, 5);

    println!("running 5-fold cross-validation ({epochs} epochs per fold)...");
    let outcome = cross_validate(&model_config, &train_config, &inputs, &labels, 5);
    let names: Vec<String> = MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect();
    println!("\n{}", outcome.report(&names));
}
