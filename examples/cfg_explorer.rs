//! CFG explorer: parse an IDA-style `.asm` listing and dump its control
//! flow graph — blocks, edges, Table I attributes and Graphviz DOT.
//!
//! Run with: `cargo run --release --example cfg_explorer [-- path/to/listing.asm]`
//! Without an argument, a built-in demo listing is explored.

use magic_asm::{parse_listing, CfgBuilder};
use magic_graph::{Acfg, Attribute, GraphStats};

const DEMO: &str = "\
.text:00401000                 push    ebp
.text:00401001                 mov     ebp, esp
.text:00401003                 mov     ecx, 10
.text:00401008 loc_401008:
.text:00401008                 xor     eax, 3Fh
.text:0040100B                 dec     ecx
.text:0040100C                 jnz     short loc_401008
.text:0040100E                 cmp     eax, 0
.text:00401011                 jz      short loc_401017
.text:00401013                 call    ds:MessageBoxA
.text:00401019                 retn
.text:00401017 loc_401017:
.text:00401017                 pop     ebp
.text:00401018                 retn
";

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(path)?,
        None => DEMO.to_string(),
    };

    let program = parse_listing(&text)?;
    println!("parsed {} instructions", program.len());
    let cfg = CfgBuilder::new(&program).build();
    let acfg = Acfg::from_cfg(&cfg);
    let stats = GraphStats::of(&acfg);
    println!(
        "{} blocks, {} edges, density {:.3}, entry coverage {:.0}%\n",
        stats.vertices,
        stats.edges,
        stats.density,
        stats.entry_coverage * 100.0
    );

    for (v, block) in cfg.blocks().iter().enumerate() {
        let successors: Vec<String> = cfg.successors(v).map(|s| format!("n{s}")).collect();
        println!(
            "block n{v} @ {:08X} ({} instructions) -> [{}]",
            block.start_addr,
            block.len(),
            successors.join(", ")
        );
        for inst in &block.instructions {
            println!("    {inst}");
        }
        let interesting: Vec<String> = Attribute::ALL
            .iter()
            .filter(|&&a| acfg.attribute(v, a) > 0.0)
            .map(|&a| format!("{}={}", a.name().trim_start_matches("# "), acfg.attribute(v, a)))
            .collect();
        println!("    attributes: {}\n", interesting.join(", "));
    }

    println!("--- Graphviz DOT (pipe into `dot -Tpng`) ---\n{}", cfg.to_dot());
    Ok(())
}
