//! Hyperparameter tuning demo: sweep the reduced Table II grid on a tiny
//! MSKCFG-like corpus and report the ranking.
//!
//! Run with: `cargo run --release --example hyperparameter_search`

use magic::pipeline::extract_acfgs_parallel;
use magic::tuning::{GridSearch, HyperParams};
use magic_model::GraphInput;
use magic_synth::{MskcfgGenerator, MSKCFG_FAMILIES};

fn main() {
    println!(
        "Table II full grid holds {} settings; sweeping the reduced {}-setting grid here.",
        HyperParams::full_grid().len(),
        HyperParams::reduced_grid().len()
    );

    let mut generator = MskcfgGenerator::new(31, 0.005);
    let samples = generator.generate();
    let listings: Vec<String> = samples.iter().map(|s| s.listing.clone()).collect();
    let acfgs: Vec<_> = extract_acfgs_parallel(&listings, 8)
        .into_iter()
        .map(|r| r.expect("generated listings parse"))
        .collect();
    let inputs: Vec<GraphInput> = acfgs.iter().map(GraphInput::from_acfg).collect();
    let labels: Vec<usize> = samples.iter().map(|s| s.label).collect();
    println!("corpus: {} samples\n", inputs.len());

    let search = GridSearch {
        grid: HyperParams::reduced_grid(),
        epochs: 8,
        folds: 3,
        seed: 2,
    };
    let ranked = search.run(&inputs, &labels, MSKCFG_FAMILIES.len(), |i, total, outcome| {
        println!(
            "[{}/{}] mean val loss {:.4}  accuracy {:.4}  <- {}",
            i + 1,
            total,
            outcome.cv.mean_val_loss,
            outcome.cv.confusion.accuracy(),
            outcome.params
        );
    });

    println!("\nranking (best first):");
    for (rank, outcome) in ranked.iter().enumerate() {
        println!(
            "{:>2}. val loss {:.4}  {}",
            rank + 1,
            outcome.cv.mean_val_loss,
            outcome.params
        );
    }
}
