//! Workspace-level integration tests for the MAGIC reproduction.
//!
//! The real content lives in `tests/tests/*.rs`; this library only hosts
//! shared helpers for those tests.

use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_tensor::{Rng64, Tensor};

/// Builds a random, connected, CFG-shaped ACFG for tests.
pub fn random_acfg(n: usize, seed: u64) -> Acfg {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 3 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 5.0, &mut rng);
    Acfg::new(g, attrs)
}

/// Applies a vertex permutation to an ACFG: vertex `perm[v]` of the input
/// becomes vertex `v` of the result.
pub fn permute_acfg(acfg: &Acfg, perm: &[usize]) -> Acfg {
    let n = acfg.vertex_count();
    assert_eq!(perm.len(), n, "permutation must cover all vertices");
    // inverse[old] = new position.
    let mut inverse = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old] = new;
    }
    let mut g = DiGraph::new(n);
    for (u, v) in acfg.graph().edges() {
        g.add_edge(inverse[u], inverse[v]);
    }
    let mut attrs = Tensor::zeros([n, NUM_ATTRIBUTES]);
    for (new, &old) in perm.iter().enumerate() {
        attrs.set_row(new, acfg.attributes().row(old));
    }
    Acfg::new(g, attrs)
}

/// Generates a parseable IDA-style listing whose CFG has roughly
/// `blocks + 1` basic blocks — variable-size inputs for the `magic
/// serve` integration tests.
pub fn synthetic_listing(blocks: usize) -> String {
    let mut out = String::new();
    let mut addr = 0x401000u64;
    for b in 0..blocks {
        let target = addr + 0x10;
        out.push_str(&format!(".text:{addr:08X} loc_{addr:X}:\n"));
        out.push_str(&format!(".text:{addr:08X}    cmp     eax, {b}\n"));
        out.push_str(&format!(".text:{:08X}    jz      short loc_{target:X}\n", addr + 3));
        out.push_str(&format!(".text:{:08X}    add     eax, 1\n", addr + 5));
        addr = target;
    }
    out.push_str(&format!(".text:{addr:08X} loc_{addr:X}:\n"));
    out.push_str(&format!(".text:{addr:08X}    retn\n"));
    out
}

/// A blocking one-request HTTP client for exercising `magic serve` from
/// tests and the load-generator bench (one connection per request, as
/// the server's `Connection: close` protocol expects).
pub mod serve_client {
    use std::io::{Read, Write};
    use std::net::{SocketAddr, TcpStream};

    /// A parsed response: status code, lowercased header pairs, body.
    pub struct HttpResponse {
        /// HTTP status code.
        pub status: u16,
        /// Header `(name, value)` pairs, names lowercased.
        pub headers: Vec<(String, String)>,
        /// Response body.
        pub body: String,
    }

    impl HttpResponse {
        /// Case-insensitive header lookup.
        pub fn header(&self, name: &str) -> Option<&str> {
            let name = name.to_ascii_lowercase();
            self.headers.iter().find(|(k, _)| *k == name).map(|(_, v)| v.as_str())
        }
    }

    /// Sends one request and reads the complete response.
    ///
    /// # Panics
    ///
    /// Panics on connect/IO failures or an unparseable response — in a
    /// test, any of those is a failed assertion anyway.
    pub fn request(addr: SocketAddr, method: &str, path: &str, body: &str) -> HttpResponse {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-length: {}\r\n\r\n{body}",
            body.len()
        )
        .expect("send request");
        let mut raw = String::new();
        stream.read_to_string(&mut raw).expect("read response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("response has a header block");
        let mut lines = head.lines();
        let status = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        HttpResponse { status, headers, body: body.to_string() }
    }

    /// POSTs a body to `/v1/predict`.
    pub fn predict(addr: SocketAddr, body: &str) -> HttpResponse {
        request(addr, "POST", "/v1/predict", body)
    }

    /// Sends one request with a raw byte body and an explicit
    /// `Content-Type` (e.g. the binary `application/x-magic-acfg`
    /// records the shard cache stores).
    ///
    /// # Panics
    ///
    /// Panics on connect/IO failures or an unparseable response, like
    /// [`request`].
    pub fn request_bytes(
        addr: SocketAddr,
        method: &str,
        path: &str,
        content_type: &str,
        body: &[u8],
    ) -> HttpResponse {
        let mut stream = TcpStream::connect(addr).expect("connect to test server");
        write!(
            stream,
            "{method} {path} HTTP/1.1\r\nhost: test\r\ncontent-type: {content_type}\r\n\
             content-length: {}\r\n\r\n",
            body.len()
        )
        .expect("send request head");
        stream.write_all(body).expect("send request body");
        let mut raw = Vec::new();
        stream.read_to_end(&mut raw).expect("read response");
        let raw = String::from_utf8(raw).expect("UTF-8 response");
        let (head, body) = raw.split_once("\r\n\r\n").expect("response has a header block");
        let mut lines = head.lines();
        let status = lines
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse().ok())
            .expect("status line");
        let headers = lines
            .filter_map(|l| l.split_once(':'))
            .map(|(k, v)| (k.trim().to_ascii_lowercase(), v.trim().to_string()))
            .collect();
        HttpResponse { status, headers, body: body.to_string() }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn synthetic_listing_extracts_to_requested_size() {
        let small = magic::extract_acfg(&synthetic_listing(2)).unwrap();
        let large = magic::extract_acfg(&synthetic_listing(12)).unwrap();
        assert!(large.vertex_count() > small.vertex_count());
        assert!(small.vertex_count() >= 3);
    }

    #[test]
    fn permute_identity_is_noop() {
        let acfg = random_acfg(6, 1);
        let perm: Vec<usize> = (0..6).collect();
        let p = permute_acfg(&acfg, &perm);
        assert_eq!(p.edge_count(), acfg.edge_count());
        assert!(p.attributes().approx_eq(acfg.attributes(), 0.0));
    }

    #[test]
    fn permutation_preserves_degree_multiset() {
        let acfg = random_acfg(8, 2);
        let perm = vec![3, 1, 4, 0, 6, 2, 7, 5];
        let p = permute_acfg(&acfg, &perm);
        let mut a: Vec<usize> = (0..8).map(|v| acfg.graph().out_degree(v)).collect();
        let mut b: Vec<usize> = (0..8).map(|v| p.graph().out_degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
