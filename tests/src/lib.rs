//! Workspace-level integration tests for the MAGIC reproduction.
//!
//! The real content lives in `tests/tests/*.rs`; this library only hosts
//! shared helpers for those tests.

use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_tensor::{Rng64, Tensor};

/// Builds a random, connected, CFG-shaped ACFG for tests.
pub fn random_acfg(n: usize, seed: u64) -> Acfg {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 3 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 5.0, &mut rng);
    Acfg::new(g, attrs)
}

/// Applies a vertex permutation to an ACFG: vertex `perm[v]` of the input
/// becomes vertex `v` of the result.
pub fn permute_acfg(acfg: &Acfg, perm: &[usize]) -> Acfg {
    let n = acfg.vertex_count();
    assert_eq!(perm.len(), n, "permutation must cover all vertices");
    // inverse[old] = new position.
    let mut inverse = vec![0usize; n];
    for (new, &old) in perm.iter().enumerate() {
        inverse[old] = new;
    }
    let mut g = DiGraph::new(n);
    for (u, v) in acfg.graph().edges() {
        g.add_edge(inverse[u], inverse[v]);
    }
    let mut attrs = Tensor::zeros([n, NUM_ATTRIBUTES]);
    for (new, &old) in perm.iter().enumerate() {
        attrs.set_row(new, acfg.attributes().row(old));
    }
    Acfg::new(g, attrs)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn permute_identity_is_noop() {
        let acfg = random_acfg(6, 1);
        let perm: Vec<usize> = (0..6).collect();
        let p = permute_acfg(&acfg, &perm);
        assert_eq!(p.edge_count(), acfg.edge_count());
        assert!(p.attributes().approx_eq(acfg.attributes(), 0.0));
    }

    #[test]
    fn permutation_preserves_degree_multiset() {
        let acfg = random_acfg(8, 2);
        let perm = vec![3, 1, 4, 0, 6, 2, 7, 5];
        let p = permute_acfg(&acfg, &perm);
        let mut a: Vec<usize> = (0..8).map(|v| acfg.graph().out_degree(v)).collect();
        let mut b: Vec<usize> = (0..8).map(|v| p.graph().out_degree(v)).collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }
}
