//! Steady-state allocation behavior of the tape workspace pool.
//!
//! The PR 5 performance contract: after one warm-up pass over a fixed
//! workload, every per-sample buffer (im2col columns, op outputs,
//! gradients, dropout masks, pooling indices) is served from the tape's
//! recycled pool — zero pool-miss heap allocations per steady-state
//! epoch. This test drives a *single* reused tape through a manual
//! training-shaped loop (the trainer's work-stealing executor makes
//! per-lane warm-up nondeterministic, which is why this is not asserted
//! through `Trainer::train`).

use magic_autograd::Tape;
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, GraphBatch, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};

/// Fixed-size inputs: same vertex count means identical tensor shapes
/// every epoch, which is what training on padded/pooled heads sees.
fn fixed_size_input(seed: u64) -> GraphInput {
    let n = 12;
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    g.add_edge(n - 1, rng.next_below(n));
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 3.0, &mut rng);
    GraphInput::from_acfg(&Acfg::new(g, attrs))
}

#[test]
fn steady_state_epochs_never_miss_the_pool() {
    // The adaptive head exercises the deepest buffer set: conv2d im2col
    // columns, AMP winner indices, dropout masks, dense grads.
    let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
    let model = Dgcnn::new(&config, 3);
    let inputs: Vec<GraphInput> = (0..4).map(|i| fixed_size_input(50 + i)).collect();

    let mut tape = Tape::new();
    let epoch = |tape: &mut Tape, epoch_idx: u64| {
        for (i, input) in inputs.iter().enumerate() {
            tape.reset();
            let binding = model.store().bind(tape);
            let mut rng = Rng64::for_sample(9, epoch_idx, i as u64);
            let lp = model.forward(tape, &binding, input, true, &mut rng);
            let loss = tape.nll_loss(lp, vec![i % 2]);
            tape.backward(loss);
        }
        tape.reset();
    };

    // Warm-up epoch: cold pool, so misses are expected.
    epoch(&mut tape, 0);
    let warm = tape.workspace_stats();
    assert!(warm.misses > 0, "cold pool must miss at least once");
    assert!(warm.hits > 0, "even the first epoch reuses across samples");

    // Steady state: the shapes repeat, so the pool must absorb every
    // checkout — no new misses across entire epochs.
    for e in 1..4 {
        epoch(&mut tape, e);
        let stats = tape.workspace_stats();
        assert_eq!(
            stats.misses, warm.misses,
            "epoch {e} allocated outside the pool ({} new misses)",
            stats.misses - warm.misses
        );
    }
    let steady = tape.workspace_stats();
    assert!(steady.hits > warm.hits, "steady-state epochs must be served by the pool");
}

/// Same contract on the SortPooling (conv1d + max-pool) head.
#[test]
fn steady_state_epochs_never_miss_the_pool_sortpool_head() {
    let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
    let model = Dgcnn::new(&config, 4);
    let inputs: Vec<GraphInput> = (0..4).map(|i| fixed_size_input(80 + i)).collect();

    let mut tape = Tape::new();
    let epoch = |tape: &mut Tape, epoch_idx: u64| {
        for (i, input) in inputs.iter().enumerate() {
            tape.reset();
            let binding = model.store().bind(tape);
            let mut rng = Rng64::for_sample(9, epoch_idx, i as u64);
            let lp = model.forward(tape, &binding, input, true, &mut rng);
            let loss = tape.nll_loss(lp, vec![i % 2]);
            tape.backward(loss);
        }
        tape.reset();
    };

    epoch(&mut tape, 0);
    let warm = tape.workspace_stats();
    for e in 1..3 {
        epoch(&mut tape, e);
        assert_eq!(
            tape.workspace_stats().misses,
            warm.misses,
            "epoch {e} allocated outside the pool"
        );
    }
}

/// The same contract for the batched execution mode: one tape carries a
/// whole mini-batch per pass (block-diagonal SpMM, fused GEMM head), and
/// its much larger buffers must recycle just as cleanly — zero new pool
/// misses per steady-state epoch once the batch shapes have been seen.
#[test]
fn steady_state_batched_epochs_never_miss_the_pool() {
    for head in [PoolingHead::adaptive_max_pool(3), PoolingHead::sort_pool_weighted(8)] {
        let config = DgcnnConfig::new(2, head);
        let model = Dgcnn::new(&config, 5);
        let inputs: Vec<GraphInput> = (0..4).map(|i| fixed_size_input(60 + i)).collect();
        let refs: Vec<&GraphInput> = inputs.iter().collect();
        let batch = GraphBatch::new(&refs);
        let labels: Vec<usize> = (0..4).map(|i| i % 2).collect();

        let mut tape = Tape::new();
        let epoch = |tape: &mut Tape, epoch_idx: u64| {
            tape.reset();
            let binding = model.store().bind(tape);
            let mut rngs: Vec<Rng64> =
                (0..4).map(|i| Rng64::for_sample(9, epoch_idx, i)).collect();
            let lp = model.forward_batched(tape, &binding, &batch, true, &mut rngs);
            let losses = tape.nll_loss_rows(lp, labels.clone());
            let total = tape.sum(losses);
            tape.backward(total);
            tape.reset();
        };

        epoch(&mut tape, 0);
        let warm = tape.workspace_stats();
        assert!(warm.misses > 0, "cold pool must miss at least once");
        for e in 1..4 {
            epoch(&mut tape, e);
            let stats = tape.workspace_stats();
            assert_eq!(
                stats.misses, warm.misses,
                "batched epoch {e} allocated outside the pool ({} new misses)",
                stats.misses - warm.misses
            );
        }
        assert!(
            tape.workspace_stats().hits > warm.hits,
            "steady-state batched epochs must be served by the pool"
        );
    }
}
