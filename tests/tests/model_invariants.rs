//! Cross-crate invariants of the DGCNN model.

use magic_integration::{permute_acfg, random_acfg};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::Rng64;

/// SortPooling-based heads order vertices canonically by their WL-style
/// feature descriptors, so predictions must be invariant under vertex
/// relabeling (up to float noise from reordered summation).
#[test]
fn sortpool_heads_are_permutation_invariant() {
    for head in [PoolingHead::sort_pool_weighted(8), PoolingHead::sort_pool_conv1d(12)] {
        let config = DgcnnConfig::new(4, head.clone());
        let model = Dgcnn::new(&config, 3);
        let mut rng = Rng64::new(50);
        for trial in 0..10 {
            let n = 6 + trial;
            let acfg = random_acfg(n, 100 + trial as u64);
            let mut perm: Vec<usize> = (0..n).collect();
            rng.shuffle(&mut perm);
            let permuted = permute_acfg(&acfg, &perm);

            let p1 = model.predict(&GraphInput::from_acfg(&acfg));
            let p2 = model.predict(&GraphInput::from_acfg(&permuted));
            for (a, b) in p1.iter().zip(&p2) {
                assert!(
                    (a - b).abs() < 1e-3,
                    "head {head:?}, trial {trial}: {p1:?} vs {p2:?}"
                );
            }
        }
    }
}

/// Predictions must always be a valid probability distribution, for any
/// head and any graph shape — including pathological ones.
#[test]
fn predictions_are_distributions_on_pathological_graphs() {
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_tensor::Tensor;

    let configs = [
        DgcnnConfig::new(5, PoolingHead::adaptive_max_pool(4)),
        DgcnnConfig::new(5, PoolingHead::sort_pool_weighted(16)),
        DgcnnConfig::new(5, PoolingHead::sort_pool_conv1d(14)),
    ];
    // Pathologies: single vertex; all-zero attributes; complete digraph;
    // self-loops only.
    let mut cases: Vec<Acfg> = Vec::new();
    cases.push(Acfg::new(DiGraph::new(1), Tensor::ones([1, NUM_ATTRIBUTES])));
    cases.push(Acfg::new(DiGraph::new(3), Tensor::zeros([3, NUM_ATTRIBUTES])));
    let mut complete = DiGraph::new(5);
    for u in 0..5 {
        for v in 0..5 {
            if u != v {
                complete.add_edge(u, v);
            }
        }
    }
    cases.push(Acfg::new(complete, Tensor::ones([5, NUM_ATTRIBUTES])));
    let mut loops = DiGraph::new(4);
    for v in 0..4 {
        loops.add_edge(v, v);
    }
    cases.push(Acfg::new(loops, Tensor::full([4, NUM_ATTRIBUTES], 2.0)));

    for config in &configs {
        let model = Dgcnn::new(config, 9);
        for (i, acfg) in cases.iter().enumerate() {
            let probs = model.predict(&GraphInput::from_acfg(acfg));
            assert_eq!(probs.len(), 5);
            let total: f32 = probs.iter().sum();
            assert!((total - 1.0).abs() < 1e-3, "case {i}: sum {total}");
            assert!(probs.iter().all(|p| p.is_finite() && *p >= 0.0), "case {i}");
        }
    }
}

/// Scaling every attribute by a constant must change predictions (the
/// model is attribute-sensitive), while graph structure alone must also
/// matter (structure-sensitivity).
#[test]
fn model_is_sensitive_to_both_attributes_and_structure() {
    use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
    use magic_tensor::Tensor;

    let config = DgcnnConfig::new(3, PoolingHead::adaptive_max_pool(3));
    let model = Dgcnn::new(&config, 21);

    let acfg = random_acfg(12, 7);
    let base = model.predict(&GraphInput::from_acfg(&acfg));

    // Attribute sensitivity.
    let scaled = Acfg::new(acfg.graph().clone(), acfg.attributes().scale(3.0));
    let scaled_pred = model.predict(&GraphInput::from_acfg(&scaled));
    assert_ne!(base, scaled_pred, "attribute scaling must matter");

    // Structure sensitivity: same attributes, different wiring.
    let mut rewired = DiGraph::new(12);
    for v in 0..11 {
        rewired.add_edge(11 - v, 11 - v - 1);
    }
    rewired.add_edge(0, 11);
    let restructured = Acfg::new(rewired, acfg.attributes().clone());
    let restructured_pred = model.predict(&GraphInput::from_acfg(&restructured));
    assert_ne!(base, restructured_pred, "structure must matter");

    let _ = Tensor::zeros([1, NUM_ATTRIBUTES]); // keep imports honest
}

/// Two models constructed from the same seed are byte-identical in
/// behaviour — required for the paper's reproducible grid search.
#[test]
fn same_seed_models_agree_everywhere() {
    let config = DgcnnConfig::new(6, PoolingHead::sort_pool_weighted(10));
    let a = Dgcnn::new(&config, 42);
    let b = Dgcnn::new(&config, 42);
    for trial in 0..5 {
        let input = GraphInput::from_acfg(&random_acfg(10 + trial, trial as u64));
        assert_eq!(a.predict(&input), b.predict(&input));
    }
}
