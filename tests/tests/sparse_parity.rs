//! Dense ↔ sparse propagation parity and determinism.
//!
//! The production Eq. (1) path runs over CSR (`spmm_norm`); the dense
//! path survives as a fallback for the Figs. 2–3 worked examples. These
//! tests pin the contract between the two: identical mathematics (up to
//! float reassociation), and a sparse path that is bitwise reproducible
//! run to run and invariant to the worker count.

use magic::trainer::{TrainConfig, Trainer};
use magic_autograd::{first_bitwise_mismatch, Tape};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead, Propagation};
use magic_nn::{GraphConv, ParamStore};
use magic_tensor::{CsrMatrix, Rng64, Tensor};
use std::sync::Arc;

/// A random digraph with `n` vertices and roughly `n * degree` edges
/// (duplicates allowed — they must collapse identically on both paths).
fn random_digraph(n: usize, degree: f64, rng: &mut Rng64) -> DiGraph {
    let mut g = DiGraph::new(n);
    let edges = (n as f64 * degree) as usize;
    for _ in 0..edges {
        g.add_edge(rng.next_below(n), rng.next_below(n));
    }
    g
}

fn random_input(n: usize, degree: f64, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let g = random_digraph(n, degree, &mut rng);
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng);
    GraphInput::from_acfg(&Acfg::new(g, attrs))
}

#[test]
fn graph_conv_forward_parity_on_random_digraphs() {
    // Sweep sizes and densities, including a vertex-heavy sparse graph
    // and a dense-ish one; both formulations must agree to 1e-5.
    for (n, degree, seed) in [(3, 0.5, 1), (16, 1.4, 2), (40, 2.0, 3), (24, 8.0, 4)] {
        let mut rng = Rng64::new(seed);
        let g = random_digraph(n, degree, &mut rng);
        let x = Tensor::rand_uniform([n, 6], -1.0, 1.0, &mut rng);

        let (csr, inv_degree) = CsrMatrix::augmented_from_edges(n, g.edges());
        let adj = Arc::new(csr);
        let adj_t = Arc::new(adj.transpose());
        let inv = Arc::new(inv_degree.clone());

        let mut store = ParamStore::new();
        let layer = GraphConv::new(&mut store, "gc", 6, 5, &mut rng);
        let mut tape = Tape::new();
        let binding = store.bind(&mut tape);

        let adj_dense = tape.leaf(adj.to_dense(), false);
        let z_dense = tape.leaf(x.clone(), false);
        let dense = layer.forward(&mut tape, &binding, adj_dense, &inv_degree, z_dense);

        let z_sparse = tape.leaf(x, false);
        let sparse = layer.forward_sparse(&mut tape, &binding, &adj, &adj_t, &inv, z_sparse);

        let (d, s) = (tape.value(dense), tape.value(sparse));
        for (i, (a, b)) in d.as_slice().iter().zip(s.as_slice()).enumerate() {
            assert!(
                (a - b).abs() < 1e-5,
                "n={n} degree={degree} element {i}: dense {a} vs sparse {b}"
            );
        }
    }
}

#[test]
fn dgcnn_predict_parity_dense_vs_sparse() {
    let config = DgcnnConfig::new(3, PoolingHead::sort_pool_weighted(8));
    let mut model = Dgcnn::new(&config, 42);
    assert_eq!(model.propagation(), Propagation::SparseCsr, "sparse is the default");

    for seed in 0..6 {
        let input = random_input(12 + seed as usize * 7, 1.4 + seed as f64 * 0.8, 100 + seed);
        let sparse = model.predict(&input);
        model.set_propagation(Propagation::Dense);
        let dense = model.predict(&input);
        model.set_propagation(Propagation::SparseCsr);
        for (a, b) in sparse.iter().zip(&dense) {
            assert!((a - b).abs() < 1e-4, "seed {seed}: sparse {a} vs dense {b}");
        }
    }
}

fn parity_corpus() -> (Vec<GraphInput>, Vec<usize>) {
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..16 {
        let label = i % 2;
        let degree = if label == 0 { 1.3 } else { 3.0 };
        inputs.push(random_input(10 + i % 4, degree, 9000 + i as u64));
        labels.push(label);
    }
    (inputs, labels)
}

fn train_with(propagation: Propagation, workers: usize) -> (Vec<f32>, Dgcnn) {
    let (inputs, labels) = parity_corpus();
    let train_idx: Vec<usize> = (0..12).collect();
    let val_idx: Vec<usize> = (12..16).collect();
    let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(6));
    let mut model = Dgcnn::new(&config, 5);
    model.set_propagation(propagation);
    let trainer = Trainer::new(TrainConfig {
        epochs: 4,
        batch_size: 4,
        learning_rate: 0.02,
        seed: 13,
        train_workers: workers,
        ..TrainConfig::default()
    });
    let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
    let losses = outcome.history.iter().map(|e| e.train_loss).collect();
    (losses, model)
}

#[test]
fn seeded_training_loss_curves_match_across_propagation_modes() {
    // Same seed, same data, same schedule: the two formulations follow
    // the same trajectory up to float reassociation noise.
    let (sparse_losses, _) = train_with(Propagation::SparseCsr, 1);
    let (dense_losses, _) = train_with(Propagation::Dense, 1);
    assert_eq!(sparse_losses.len(), dense_losses.len());
    for (epoch, (s, d)) in sparse_losses.iter().zip(&dense_losses).enumerate() {
        assert!(
            (s - d).abs() < 1e-3 * (1.0 + d.abs()),
            "epoch {epoch}: sparse loss {s} vs dense loss {d}"
        );
    }
}

#[test]
fn sparse_training_is_run_to_run_deterministic() {
    let (losses_a, model_a) = train_with(Propagation::SparseCsr, 1);
    let (losses_b, model_b) = train_with(Propagation::SparseCsr, 1);
    assert!(
        losses_a.iter().zip(&losses_b).all(|(a, b)| a.to_bits() == b.to_bits()),
        "loss curves diverged between identical runs"
    );
    for (name, value) in model_a.store().iter() {
        let id = model_b.store().find(name).expect("same parameter set");
        assert_eq!(
            first_bitwise_mismatch(value, model_b.store().value(id)),
            None,
            "weights for {name} diverged between identical runs"
        );
    }
}

#[test]
fn sparse_training_is_worker_count_invariant() {
    let (serial_losses, serial_model) = train_with(Propagation::SparseCsr, 1);
    for workers in [2, 4] {
        let (losses, model) = train_with(Propagation::SparseCsr, workers);
        assert!(
            serial_losses.iter().zip(&losses).all(|(a, b)| a.to_bits() == b.to_bits()),
            "loss curve diverged with {workers} workers"
        );
        for (name, value) in model.store().iter() {
            let id = serial_model.store().find(name).expect("same parameter set");
            assert_eq!(
                first_bitwise_mismatch(value, serial_model.store().value(id)),
                None,
                "weights for {name} diverged with {workers} workers"
            );
        }
    }
}
