//! The telemetry non-perturbation contract: recording a trace must not
//! change anything about a training run, and a recorded trace must be a
//! well-formed, aggregatable `magic-trace/2` stream whose op-level
//! profile explains where the epoch wall-clock went.
//!
//! These tests install process-global recorders, so they serialize on a
//! local mutex and live in their own integration binary.

use std::sync::{Arc, Mutex};

use magic::pipeline::extract_acfg;
use magic::trainer::{TrainConfig, TrainOutcome, Trainer};
use magic_autograd::first_bitwise_mismatch;
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_obs::report::TraceSummary;
use magic_obs::{stage, Event, JsonlRecorder, NullRecorder};
use magic_synth::codegen::CodeGenerator;
use magic_synth::profile::FamilyProfile;
use magic_tensor::Rng64;

/// The global recorder slot is shared by every test in this binary.
static GLOBAL_RECORDER: Mutex<()> = Mutex::new(());

fn corpus() -> (Vec<GraphInput>, Vec<usize>) {
    let mut loopy = FamilyProfile::base("Loopy");
    loopy.loop_weight = 3.0;
    let mut packer = FamilyProfile::base("Packer");
    packer.decoder_weight = 3.0;

    let mut rng = Rng64::new(41);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for i in 0..16 {
        let profile = if i % 2 == 0 { &loopy } else { &packer };
        let text = CodeGenerator::new(profile).generate(&mut rng);
        inputs.push(GraphInput::from_acfg(&extract_acfg(&text).unwrap()));
        labels.push(i % 2);
    }
    (inputs, labels)
}

fn train_once(inputs: &[GraphInput], labels: &[usize]) -> (TrainOutcome, Dgcnn) {
    let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
    let mut model = Dgcnn::new(&config, 13);
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 4,
        learning_rate: 0.02,
        seed: 5,
        train_workers: 2,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..12).collect();
    let val_idx: Vec<usize> = (12..16).collect();
    let outcome = trainer.train(&mut model, inputs, labels, &train_idx, &val_idx);
    (outcome, model)
}

fn assert_same_run(a: &(TrainOutcome, Dgcnn), b: &(TrainOutcome, Dgcnn), what: &str) {
    assert_eq!(a.0.history, b.0.history, "history diverged: {what}");
    assert_eq!(a.0.best_val_loss, b.0.best_val_loss, "best loss diverged: {what}");
    for (name, value) in a.1.store().iter() {
        let id = b.1.store().find(name).expect("same parameter set");
        assert_eq!(
            first_bitwise_mismatch(value, b.1.store().value(id)),
            None,
            "weights for {name} diverged: {what}"
        );
    }
}

/// The headline guarantee: an uninstrumented run, a NullRecorder run,
/// and a full JsonlRecorder run produce bitwise-identical outcomes —
/// telemetry observes training, it never perturbs it.
#[test]
fn tracing_does_not_perturb_training_bitwise() {
    let _guard = GLOBAL_RECORDER.lock().unwrap();
    let (inputs, labels) = corpus();

    magic_obs::uninstall();
    let baseline = train_once(&inputs, &labels);

    magic_obs::install(Arc::new(NullRecorder));
    let with_null = train_once(&inputs, &labels);
    magic_obs::uninstall();
    assert_same_run(&baseline, &with_null, "NullRecorder vs disabled");

    let dir = std::env::temp_dir().join("magic-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("train-trace.jsonl");
    magic_obs::install(Arc::new(JsonlRecorder::create(&path).unwrap()));
    let with_jsonl = train_once(&inputs, &labels);
    magic_obs::uninstall();
    assert_same_run(&baseline, &with_jsonl, "JsonlRecorder vs disabled");
}

/// A trace of a real training run parses line-by-line through
/// `magic-json`, covers the training stages, and closes every span.
#[test]
fn training_trace_roundtrips_and_covers_the_run() {
    let _guard = GLOBAL_RECORDER.lock().unwrap();
    let (inputs, labels) = corpus();

    let dir = std::env::temp_dir().join("magic-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("coverage-trace.jsonl");
    magic_obs::install(Arc::new(JsonlRecorder::create(&path).unwrap()));
    magic_obs::meta("magic-integration training_trace test");
    let _ = train_once(&inputs, &labels);
    magic_obs::uninstall();

    let text = std::fs::read_to_string(&path).unwrap();
    // Every line is one event that survives a parse → re-encode cycle.
    for line in text.lines() {
        let event = Event::from_jsonl_line(line).expect("well-formed event line");
        assert_eq!(Event::from_jsonl_line(&event.to_jsonl_line()).unwrap(), event);
    }

    let summary = TraceSummary::from_lines(text.lines()).unwrap();
    assert_eq!(summary.unclosed_spans, 0, "every span guard closed");
    let stages: Vec<&str> = summary.stages.iter().map(|s| s.stage.as_str()).collect();
    assert!(stages.contains(&stage::TRAIN));
    assert!(stages.contains(&stage::TRAIN_EPOCH));
    assert!(stages.contains(&stage::EVALUATE));
    let epochs = summary.stages.iter().find(|s| s.stage == stage::TRAIN_EPOCH).unwrap();
    assert_eq!(epochs.count, 3, "one span per epoch");
    // Per-worker attribution for the 2-worker run is present.
    assert!(summary
        .histograms
        .iter()
        .any(|h| h.name == stage::H_WORKER_BUSY_US && h.count >= 3));
    assert!(summary.histograms.iter().any(|h| h.name == stage::H_EPOCH_FANOUT_US));
    assert!(summary.histograms.iter().any(|h| h.name == stage::H_EPOCH_UPDATE_US));
    // train.run alone explains nearly all of the traced wall-clock.
    assert!(
        summary.coverage() > 0.95,
        "top-level spans cover {:.1}% of wall-clock",
        summary.coverage() * 100.0
    );
}

/// Schema v2 op profiling: a traced run emits per-op rows whose self
/// times, together with the host pseudo-ops, attribute the bulk of each
/// epoch's wall-clock; memory accounting reports a per-epoch peak; and
/// the trace renders to well-formed collapsed-stack lines.
#[test]
fn profiled_run_attributes_epoch_wall_clock() {
    let _guard = GLOBAL_RECORDER.lock().unwrap();
    let (inputs, labels) = corpus();

    let dir = std::env::temp_dir().join("magic-obs-integration");
    std::fs::create_dir_all(&dir).unwrap();
    let path = dir.join("profile-trace.jsonl");
    magic_tensor::mem::enable();
    magic_obs::install(Arc::new(JsonlRecorder::create(&path).unwrap()));
    let _ = train_once(&inputs, &labels);
    magic_obs::uninstall();

    let text = std::fs::read_to_string(&path).unwrap();
    let summary = TraceSummary::from_lines(text.lines()).unwrap();

    // Tape ops from both phases and host pseudo-ops are all present.
    assert!(summary.ops.iter().any(|o| o.kind == "matmul" && o.phase == "fwd"));
    assert!(summary.ops.iter().any(|o| o.kind == "matmul" && o.phase == "bwd"));
    assert!(summary.ops.iter().any(|o| o.kind == stage::OP_HOST_STEP && o.phase == "host"));
    assert!(summary.ops.iter().any(|o| o.kind == stage::OP_HOST_EVALUATE));
    let matmul_fwd: u64 = summary
        .ops
        .iter()
        .filter(|o| o.kind == "matmul" && o.phase == "fwd")
        .map(|o| o.flops)
        .sum();
    assert!(matmul_fwd > 0, "matmul FLOPs counted");

    // The profile explains the epochs. The corpus here is tiny (epochs
    // are a few ms), so per-epoch glue weighs more than in a real run —
    // `magic profile` on mskcfg attributes ~100%; require 90% here to
    // stay robust under CI noise.
    let epoch_us = summary
        .stages
        .iter()
        .find(|s| s.stage == stage::TRAIN_EPOCH)
        .map(|s| s.total_us)
        .unwrap();
    let attributed_us = summary.ops_total_self_ns() / 1_000;
    assert!(
        attributed_us as f64 >= 0.90 * epoch_us as f64,
        "op rows attribute {attributed_us}us of {epoch_us}us epoch wall-clock"
    );

    // Memory accounting surfaced a nonzero per-epoch peak.
    let peak = summary
        .histograms
        .iter()
        .find(|h| h.name == stage::H_MEM_PEAK_BYTES)
        .expect("peak-memory histogram present");
    assert_eq!(peak.count, 3, "one observation per epoch");
    assert!(peak.max > 0.0);

    // The same trace renders to collapsed stacks: sorted, with op
    // leaves attached under their epoch frames.
    let lines = magic_obs::flamegraph::collapsed_from_lines(text.lines()).unwrap();
    assert!(lines.iter().any(|l| l.contains("train.epoch#0;fwd.")), "{lines:?}");
    assert!(lines.iter().any(|l| l.contains("bwd.")));
    let mut sorted = lines.clone();
    sorted.sort();
    assert_eq!(lines, sorted, "collapsed output is lexicographically sorted");
}

/// `magic report`'s rendering of the committed magic-trace/1 training
/// trace is pinned by a golden file: readers must stay backward
/// compatible with v1 streams, and the table layout must not drift
/// unnoticed. Regenerate with
/// `magic report --trace results/logs/trace-train-mskcfg.jsonl` if a
/// change is intentional.
#[test]
fn committed_v1_trace_report_matches_golden() {
    let root = std::path::Path::new(env!("CARGO_MANIFEST_DIR"));
    let trace = root.join("../results/logs/trace-train-mskcfg.jsonl");
    let golden = root.join("golden/trace-train-mskcfg.report.txt");
    let text = std::fs::read_to_string(&trace).unwrap();
    let summary = TraceSummary::from_lines(text.lines()).unwrap();
    assert_eq!(summary.malformed_lines, 0, "committed trace is fully parseable");
    assert_eq!(summary.render(), std::fs::read_to_string(&golden).unwrap());
}
