//! Saturation and shutdown-drain behavior of `magic serve`, made
//! deterministic with the `MAGIC_SERVE_INJECT_EXECUTE_DELAY_MS` knob
//! (every batch execution sleeps that long before the forward pass).
//!
//! The knob is process-global, which is why these tests live in their
//! own integration binary: the fast-path tests in `serve.rs` must not
//! inherit the delay.

use magic::MagicPipeline;
use magic_integration::serve_client::{predict, request};
use magic_integration::synthetic_listing;
use magic_model::{Dgcnn, DgcnnConfig, PoolingHead};
use magic_serve::{start, ServeConfig};
use std::sync::{Arc, Barrier};
use std::time::Duration;

const EXECUTE_DELAY_MS: u64 = 300;

fn slow_pipeline() -> MagicPipeline {
    // Read by each server at `start`; both tests in this process want
    // the same value, so setting it repeatedly is harmless.
    std::env::set_var("MAGIC_SERVE_INJECT_EXECUTE_DELAY_MS", EXECUTE_DELAY_MS.to_string());
    let config = DgcnnConfig::new(2, PoolingHead::sort_pool_weighted(8));
    MagicPipeline::new(Dgcnn::new(&config, 7), vec!["Benign".into(), "Malicious".into()])
}

#[test]
fn saturated_queue_sheds_with_503_and_retry_after() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_batch: 1,      // one request per (slow) execution
        batch_window_us: 0,
        queue_depth: 2,    // third concurrent request must shed
        ..ServeConfig::default()
    };
    let handle = start(slow_pipeline(), config).unwrap();
    let addr = handle.addr();

    // 8 synchronized clients against a queue that fits 2 while the
    // worker sleeps 300ms per request: shedding is guaranteed.
    let clients = 8;
    let barrier = Arc::new(Barrier::new(clients));
    let responses: Vec<_> = (0..clients)
        .map(|_| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let listing = synthetic_listing(3);
                barrier.wait();
                predict(addr, &listing)
            })
        })
        .collect::<Vec<_>>()
        .into_iter()
        .map(|t| t.join().unwrap())
        .collect();

    let served = responses.iter().filter(|r| r.status == 200).count();
    let shed: Vec<_> = responses.iter().filter(|r| r.status == 503).collect();
    assert!(served >= 1, "someone must be served");
    assert!(!shed.is_empty(), "a 2-deep queue under 8 clients must shed");
    assert_eq!(served + shed.len(), clients, "only 200s and 503s expected");
    for r in &shed {
        assert_eq!(r.header("retry-after"), Some("1"), "503 must carry Retry-After");
        assert!(r.body.contains("error"), "{}", r.body);
    }

    let stats = magic_json::from_str(&request(addr, "GET", "/statsz", "").body).unwrap();
    assert_eq!(stats["shed"].as_u64().unwrap(), shed.len() as u64);
    assert_eq!(stats["predictions"].as_u64().unwrap(), served as u64);
    handle.shutdown();
}

#[test]
fn graceful_shutdown_drains_queued_work_then_refuses_new_work() {
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        max_batch: 1,
        batch_window_us: 0,
        queue_depth: 16, // roomy: nothing sheds before the drain starts
        ..ServeConfig::default()
    };
    let handle = start(slow_pipeline(), config).unwrap();
    let addr = handle.addr();

    // Fill the pipe: with a 300ms execution delay, client 1 is in
    // flight and the rest are queued when the shutdown lands.
    let clients: Vec<_> = (0..4)
        .map(|_| std::thread::spawn(move || predict(addr, &synthetic_listing(3))))
        .collect();
    std::thread::sleep(Duration::from_millis(100));

    let admin = request(addr, "POST", "/admin/shutdown", "");
    assert_eq!(admin.status, 200);
    assert!(admin.body.contains("draining"), "{}", admin.body);

    // New work is refused while the backlog drains: the listener closes
    // as the drain starts, so a late client sees a refused connect (or,
    // losing that race, a 503 from an IO thread that saw the closed
    // queue).
    match std::net::TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            use std::io::{Read, Write};
            let body = synthetic_listing(3);
            let _ = write!(
                stream,
                "POST /v1/predict HTTP/1.1\r\nhost: t\r\ncontent-length: {}\r\n\r\n{body}",
                body.len()
            );
            let mut raw = String::new();
            let n = stream.read_to_string(&mut raw).unwrap_or(0);
            assert!(
                n == 0 || raw.starts_with("HTTP/1.1 503"),
                "draining server must refuse new work, got: {raw}"
            );
        }
    }

    // ...but every request accepted before the drain gets a real answer.
    for client in clients {
        let response = client.join().unwrap();
        assert_eq!(response.status, 200, "queued request dropped: {}", response.body);
    }
    handle.wait();
}
