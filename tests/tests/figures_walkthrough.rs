//! The worked example of Section III (Figs. 2–6), recomputed end to end.
//!
//! The paper walks a 5-vertex graph `g` with two attribute channels
//! through: two graph convolution layers with given weights `W1`, `W2`
//! (Fig. 3), SortPooling with k = 3 (Fig. 4), the WeightedVertices layer
//! with W = [0.4, 0.1, 0.5] (Fig. 5), and a 3×3 adaptive max pooling over
//! 5×7 and 4×7 inputs with the stated kernel sizes (Fig. 6). The figures'
//! raw matrices are only available as images, so this test fixes a
//! 5-vertex graph with the paper's stated parameters and verifies every
//! stage against independent hand computation.

use magic_autograd::Tape;
use magic_nn::{augment_adjacency, GraphConv, ParamStore, SortPooling, WeightedVertices};
use magic_tensor::{Rng64, Tensor};

/// A 5-vertex directed graph in the spirit of Fig. 2, with two attribute
/// channels F1, F2.
fn figure2_graph() -> (Tensor, Tensor) {
    let mut a = Tensor::zeros([5, 5]);
    for (u, v) in [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)] {
        a.set2(u, v, 1.0);
    }
    let x = Tensor::from_rows(&[
        &[2.0, 1.0],
        &[2.0, 0.0],
        &[1.0, 3.0],
        &[3.0, 2.0],
        &[1.0, 5.0],
    ]);
    (a, x)
}

/// The paper's stated layer weights: W1 ∈ R^{2×3}, W2 ∈ R^{3×4}.
fn paper_weights() -> (Tensor, Tensor) {
    let w1 = Tensor::from_rows(&[&[1.0, 0.0, 1.0], &[0.0, 1.0, 0.0]]);
    let w2 = Tensor::from_rows(&[
        &[0.0, 1.0, -2.0, 2.0],
        &[1.0, 1.0, 7.0, -2.0],
        &[1.0, 0.0, -1.0, 4.0],
    ]);
    (w1, w2)
}

/// Plain-Rust reference of Eq. (1): relu(D̂⁻¹ Â Z W).
fn reference_graph_conv(a_hat: &Tensor, inv_deg: &[f32], z: &Tensor, w: &Tensor) -> Tensor {
    let zw = z.matmul(w);
    let az = a_hat.matmul(&zw);
    az.scale_rows(inv_deg).relu()
}

#[test]
fn figure3_two_layer_graph_convolution() {
    let (a, x) = figure2_graph();
    let (a_hat, inv_deg) = augment_adjacency(&a);
    let (w1, w2) = paper_weights();

    // Layer outputs via the production GraphConv on the tape.
    let mut store = ParamStore::new();
    let mut rng = Rng64::new(0);
    let gc1 = GraphConv::new(&mut store, "gc1", 2, 3, &mut rng);
    let gc2 = GraphConv::new(&mut store, "gc2", 3, 4, &mut rng);
    *store.value_mut_by_name("gc1.weight") = w1.clone();
    *store.value_mut_by_name("gc2.weight") = w2.clone();

    let mut tape = Tape::new();
    let binding = store.bind(&mut tape);
    let adj = tape.leaf(a_hat.clone(), false);
    let z0 = tape.leaf(x.clone(), false);
    let z1 = gc1.forward(&mut tape, &binding, adj, &inv_deg, z0);
    let z2 = gc2.forward(&mut tape, &binding, adj, &inv_deg, z1);

    // Independent reference computation.
    let r1 = reference_graph_conv(&a_hat, &inv_deg, &x, &w1);
    let r2 = reference_graph_conv(&a_hat, &inv_deg, &r1, &w2);
    assert!(tape.value(z1).approx_eq(&r1, 1e-5), "Z1 mismatch");
    assert!(tape.value(z2).approx_eq(&r2, 1e-5), "Z2 mismatch");

    // Z^{1:2} is the 5 x (3+4) concatenation of Fig. 3.
    let zcat = tape.concat_cols(&[z1, z2]);
    assert_eq!(tape.value(zcat).shape().dims(), &[5, 7]);

    // Spot-check one value by hand: vertex 4 has only its self loop, so
    // Z1[4] = relu(X[4] W1) = [1, 5, 1].
    assert_eq!(tape.value(z1).row(4), &[1.0, 5.0, 1.0]);
}

#[test]
fn figure4_sortpooling_keeps_top3_by_last_channel() {
    let (a, x) = figure2_graph();
    let (a_hat, inv_deg) = augment_adjacency(&a);
    let (w1, w2) = paper_weights();
    let z1 = reference_graph_conv(&a_hat, &inv_deg, &x, &w1);
    let z2 = reference_graph_conv(&a_hat, &inv_deg, &z1, &w2);
    let zcat = Tensor::concat_cols(&[&z1, &z2]);

    let mut tape = Tape::new();
    let zv = tape.leaf(zcat.clone(), false);
    let out = SortPooling::new(3).forward(&mut tape, zv);
    let sorted = tape.value(out);
    assert_eq!(sorted.shape().dims(), &[3, 7], "k x Σc_t as in Fig. 4");

    // The retained rows are the three largest by last channel, in
    // descending order — exactly the Fig. 4 rule.
    let mut keys: Vec<f32> = (0..5).map(|v| zcat.get2(v, 6)).collect();
    keys.sort_by(|p, q| q.partial_cmp(p).unwrap());
    for (i, expected) in keys.iter().take(3).enumerate() {
        assert!(
            (sorted.get2(i, 6) - expected).abs() < 1e-5,
            "row {i}: {} vs {}",
            sorted.get2(i, 6),
            expected
        );
    }
}

#[test]
fn figure5_weighted_vertices_embedding() {
    // Fig. 5: E = relu(W × Zsp) with W = [0.4, 0.1, 0.5].
    let z_sp = Tensor::from_rows(&[
        &[3.0, 0.0, 2.0, 1.0],
        &[0.0, 2.0, 0.0, 4.0],
        &[1.0, 1.0, 1.0, 1.0],
    ]);
    let mut store = ParamStore::new();
    let mut rng = Rng64::new(1);
    let wv = WeightedVertices::new(&mut store, "wv", 3, &mut rng);
    *store.value_mut_by_name("wv.weight") = Tensor::from_rows(&[&[0.4, 0.1, 0.5]]);

    let mut tape = Tape::new();
    let binding = store.bind(&mut tape);
    let z = tape.leaf(z_sp, false);
    let e = wv.forward(&mut tape, &binding, z);
    // Hand computation: 0.4*row0 + 0.1*row1 + 0.5*row2.
    let expected = [
        0.4 * 3.0 + 0.5,
        0.1 * 2.0 + 0.5,
        0.4 * 2.0 + 0.5,
        0.4 + 0.4 + 0.5,
    ];
    for (got, want) in tape.value(e).as_slice().iter().zip(&expected) {
        assert!((got - want).abs() < 1e-5, "{got} vs {want}");
    }
}

#[test]
fn figure6_adaptive_max_pooling_kernel_windows() {
    // Fig. 6: a 5x7 input pools to 3x3 with kernel 3x3; a 4x7 input pools
    // to 3x3 with kernel 2x3. The kernel size manifests as the maximal
    // window each output cell covers.
    for (h, expected_kernel_h) in [(5usize, 3usize), (4, 2)] {
        let x = Tensor::from_vec((0..(h * 7)).map(|v| v as f32).collect(), [1, h, 7]);
        let mut tape = Tape::new();
        let xv = tape.leaf(x, false);
        let out = tape.adaptive_max_pool2d(xv, 3, 3);
        let v = tape.value(out);
        assert_eq!(v.shape().dims(), &[1, 3, 3]);
        // With row-major increasing values, every output cell is the
        // bottom-right corner of its pooling window, so row i's value
        // reveals the window's end row. The *largest* window height is
        // the effective kernel height of Fig. 6 (3 for the 5x7 input,
        // 2 for the 4x7 input).
        let mut max_kernel_h = 0usize;
        let mut prev_end = 0usize;
        for i in 0..3 {
            let end_row = v.at(&[0, i, 0]) as usize / 7 + 1;
            let start_row = i * h / 3; // adaptive window start
            max_kernel_h = max_kernel_h.max(end_row - start_row);
            assert!(end_row >= prev_end, "windows advance monotonically");
            prev_end = end_row;
        }
        assert_eq!(max_kernel_h, expected_kernel_h, "kernel height for {h}x7 input");
        // The global maximum always lands in the last cell.
        assert_eq!(v.at(&[0, 2, 2]) as usize, h * 7 - 1);
    }
}
