//! Live-telemetry integration tests for `magic serve`: the `/metrics`
//! exposition contract (golden-pinned), windowed-quantile accuracy
//! against exact percentiles, the access-log JSONL schema, the
//! slow-request exemplar ring, and — the non-negotiable — that turning
//! all of it on changes no prediction bit and allocates nothing in
//! steady state.

use magic::MagicPipeline;
use magic_integration::serve_client::{predict, request};
use magic_integration::synthetic_listing;
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_obs::serve_report::ServeLogSummary;
use magic_obs::timeseries::{bucket_bounds, bucket_index, Clock, ManualClock};
use magic_obs::Event;
use magic_serve::metrics::{render_metrics, scrape_labeled, scrape_value};
use magic_serve::stats::{LifecycleStage, ServeStats, STATSZ_VERSION};
use magic_serve::{start, ServeConfig};
use std::sync::Arc;

const FAMILIES: [&str; 3] = ["Ramnit", "Vundo", "Gatak"];

fn test_model() -> Dgcnn {
    let config = DgcnnConfig::new(FAMILIES.len(), PoolingHead::sort_pool_weighted(10));
    Dgcnn::new(&config, 42)
}

fn test_pipeline() -> MagicPipeline {
    MagicPipeline::new(test_model(), FAMILIES.iter().map(|s| s.to_string()).collect())
}

fn manual_stats() -> (ServeStats, Arc<ManualClock>) {
    let clock = Arc::new(ManualClock::new());
    (ServeStats::with_window(60, Arc::clone(&clock) as Arc<dyn Clock>), clock)
}

/// Exact nearest-rank percentile of a sorted sample vector — the load
/// generator's ground truth.
fn exact_percentile(sorted: &[u64], q: f64) -> u64 {
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// The ISSUE acceptance bound, deterministically: the windowed p50/p90/
/// p99 scraped from `/metrics` must land inside the log-linear histogram
/// bucket that holds the exact percentile of the same observations.
#[test]
fn scraped_windowed_quantiles_agree_with_exact_percentiles_within_one_bucket() {
    let (stats, _clock) = manual_stats();
    // A deterministic, skewed latency population: mostly fast with a
    // heavy tail, like real serving.
    let mut state = 0x9e3779b97f4a7c15u64;
    let mut samples: Vec<u64> = (0..500)
        .map(|_| {
            state ^= state << 13;
            state ^= state >> 7;
            state ^= state << 17;
            let base = 200 + state % 2_000; // 0.2–2.2 ms bulk
            if state % 19 == 0 { base + 30_000 } else { base } // ~5% tail
        })
        .collect();
    for &s in &samples {
        stats.record_latency_us(s);
    }
    samples.sort_unstable();

    let body = render_metrics(&stats, 0, 0, false);
    for (q, label) in [(0.50, "0.5"), (0.90, "0.9"), (0.99, "0.99")] {
        let scraped = scrape_labeled(&body, "magic_serve_latency_us", &format!("quantile=\"{label}\""))
            .expect("quantile sample present");
        let exact = exact_percentile(&samples, q);
        let (lo, hi) = bucket_bounds(bucket_index(exact));
        assert!(
            scraped >= lo as f64 && scraped < hi as f64,
            "q={q}: scraped {scraped} outside bucket [{lo}, {hi}) of exact {exact}"
        );
    }
    assert_eq!(scrape_value(&body, "magic_serve_latency_us_count"), Some(500.0));
}

/// The `/metrics` exposition format is a pinned contract: help text,
/// type lines, metric names, label spelling, and sample ordering.
/// Regenerate intentionally with
/// `MAGIC_UPDATE_GOLDEN=1 cargo test -p magic-integration scraped_metrics_exposition`.
#[test]
fn scraped_metrics_exposition_matches_golden() {
    let (stats, clock) = manual_stats();
    for _ in 0..3 {
        stats.record_request();
    }
    stats.record_shed();
    stats.record_latency_us(1_000);
    stats.record_latency_us(1_000);
    stats.record_stage_us(LifecycleStage::Execute, 500);
    stats.record_batch(2);
    stats.predictions.store(2, std::sync::atomic::Ordering::Relaxed);
    stats.pool_hits.store(4, std::sync::atomic::Ordering::Relaxed);
    clock.advance_us(5_000_000);
    let body = render_metrics(&stats, 1, 3, false);

    let golden = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("golden/metrics.prom");
    if std::env::var("MAGIC_UPDATE_GOLDEN").is_ok() {
        std::fs::write(&golden, &body).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&golden).expect("golden/metrics.prom present");
    assert_eq!(
        body, expected,
        "exposition drifted from tests/golden/metrics.prom; if intentional, regenerate \
         with MAGIC_UPDATE_GOLDEN=1"
    );
}

/// Full telemetry on (access log streaming, `/metrics` + `/debug/slow`
/// scraped mid-run): predictions stay bitwise identical to the offline
/// model, the pool stays clean in steady state, and the emitted access
/// log validates against the magic-trace/3 schema.
#[test]
fn full_telemetry_changes_no_bit_and_emits_a_valid_access_log() {
    let log_path = std::env::temp_dir().join("magic-serve-telemetry-access.jsonl");
    std::fs::remove_file(&log_path).ok();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        batch_window_us: 0,
        access_log: Some(log_path.to_str().unwrap().to_string()),
        metrics_window_s: 30,
        ..ServeConfig::default()
    };
    let handle = start(test_pipeline(), config).unwrap();
    let addr = handle.addr();
    let listing = synthetic_listing(8);
    let offline = {
        let acfg = magic::extract_acfg(&listing).unwrap();
        test_model().predict(&GraphInput::from_acfg(&acfg))
    };

    let check_prediction = |body: &str| {
        let v = magic_json::from_str(body).unwrap();
        for (family, &o) in FAMILIES.iter().zip(&offline) {
            let served = v["scores"][*family].as_f64().unwrap() as f32;
            assert_eq!(served.to_bits(), o.to_bits(), "{family} diverged with telemetry on");
        }
        assert!(v["request_id"].as_u64().is_some(), "response echoes its request id");
    };

    // Warm-up, with a /metrics scrape interleaved mid-run.
    for _ in 0..4 {
        let r = predict(addr, &listing);
        assert_eq!(r.status, 200, "{}", r.body);
        check_prediction(&r.body);
    }
    let mid = request(addr, "GET", "/metrics", "");
    assert_eq!(mid.status, 200);
    assert_eq!(mid.header("content-type"), Some("text/plain; version=0.0.4"));
    assert_eq!(scrape_value(&mid.body, "magic_serve_predictions_total"), Some(4.0));
    let warm_misses = scrape_value(&mid.body, "magic_serve_pool_misses_total").unwrap();
    assert!(warm_misses > 0.0, "a cold pool must miss");

    // Steady state under scraping: same shape, zero new misses.
    for _ in 0..6 {
        let r = predict(addr, &listing);
        assert_eq!(r.status, 200, "{}", r.body);
        check_prediction(&r.body);
        assert_eq!(request(addr, "GET", "/metrics", "").status, 200);
    }
    let end = request(addr, "GET", "/metrics", "");
    assert_eq!(
        scrape_value(&end.body, "magic_serve_pool_misses_total"),
        Some(warm_misses),
        "steady-state serving with telemetry on allocated fresh buffers"
    );
    assert!(
        scrape_labeled(&end.body, "magic_serve_latency_us", "quantile=\"0.99\"").unwrap() > 0.0
    );
    assert!(
        scrape_labeled(&end.body, "magic_serve_stage_us_count", "stage=\"execute\"").unwrap()
            >= 10.0
    );

    // `/statsz` carries the v2 document: version, uptime, rates, stages.
    let statsz = magic_json::from_str(&request(addr, "GET", "/statsz", "").body).unwrap();
    assert_eq!(statsz["statsz_version"].as_u64(), Some(STATSZ_VERSION));
    assert_eq!(statsz["window_s"].as_u64(), Some(30));
    assert!(statsz["uptime_s"].as_u64().is_some());
    assert!(statsz["rates"]["req_per_s"].as_f64().unwrap() > 0.0);
    assert!(statsz["latency_us"]["p99"].as_f64().unwrap() > 0.0);
    assert_eq!(statsz["stages_us"]["execute"]["count"].as_u64(), Some(10));
    assert!(statsz["queue_high_water"].as_u64().unwrap() >= 1);

    // `/debug/slow` retains exemplars with full stage breakdowns.
    let slow = magic_json::from_str(&request(addr, "GET", "/debug/slow", "").body).unwrap();
    let rows = slow["slow"].as_array().unwrap();
    assert!(!rows.is_empty() && rows.len() <= 16);
    let first = &rows[0];
    assert!(first["id"].as_u64().is_some());
    assert!(first["total_us"].as_u64().unwrap() > 0);
    assert!(first["stages_us"]["execute"].as_u64().is_some());
    for pair in rows.windows(2) {
        assert!(
            pair[0]["total_us"].as_u64() >= pair[1]["total_us"].as_u64(),
            "slow exemplars must be sorted slowest-first"
        );
    }

    handle.shutdown();

    // The flushed access log validates line-by-line against the bumped
    // schema and aggregates cleanly.
    let text = std::fs::read_to_string(&log_path).unwrap();
    let mut access_events = 0u64;
    for line in text.lines() {
        let event = Event::from_jsonl_line_lenient(line)
            .expect("every emitted line decodes")
            .expect("no unknown event types in our own log");
        if let Event::ServeAccess { status, path, total_us, .. } = event {
            access_events += 1;
            assert!(status >= 200, "real HTTP status recorded");
            assert!(!path.is_empty());
            assert!(total_us > 0, "lifecycle stamps populated");
        }
    }
    // 10 predicts + 8 metrics scrapes + statsz + debug/slow (+ the
    // admin shutdown racing the drain).
    assert!(access_events >= 20, "expected every request logged, got {access_events}");
    let summary = ServeLogSummary::from_lines(text.lines()).unwrap();
    assert_eq!(summary.malformed_lines, 0);
    let ok = summary.statuses.iter().find(|(s, _)| *s == 200).map(|(_, n)| *n).unwrap();
    assert!(ok >= 20);
    let total_row = summary.stages.iter().find(|r| r.stage == "total").unwrap();
    assert_eq!(total_row.count, 10, "stage breakdown covers exactly the 200 predicts");
    assert!(total_row.p99_us >= total_row.p50_us);
    assert!(summary.slowest[0].total_us >= summary.slowest.last().unwrap().total_us);
    std::fs::remove_file(&log_path).ok();
}

/// While draining, `/healthz` flips to 503 `{"status":"draining"}` so a
/// load balancer health check takes the instance out of rotation. The
/// probe connection is opened *before* the drain begins (afterwards the
/// listener is closed), with the request bytes sent after — exactly the
/// in-flight-connection case an LB probe hits during shutdown grace.
#[test]
fn healthz_reports_draining_with_503_during_shutdown_grace() {
    use std::io::{Read, Write};
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 1,
        ..ServeConfig::default()
    };
    let handle = start(test_pipeline(), config).unwrap();
    let addr = handle.addr();
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);

    // Open the probe connection and let an IO thread park in
    // read_request before the drain starts.
    let mut probe = std::net::TcpStream::connect(addr).unwrap();
    std::thread::sleep(std::time::Duration::from_millis(100));
    assert_eq!(request(addr, "POST", "/admin/shutdown", "").status, 200);

    write!(probe, "GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n").unwrap();
    let mut raw = String::new();
    probe.read_to_string(&mut raw).unwrap();
    assert!(raw.starts_with("HTTP/1.1 503"), "draining healthz must be 503, got: {raw}");
    assert!(raw.contains("\"status\":\"draining\""), "{raw}");
    handle.wait();
}
