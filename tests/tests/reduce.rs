//! Integration tests for the graph-reduction stage: the invariants the
//! strategies promise (idempotence, connectivity preservation,
//! attribute-mass conservation) hold on real synthetic corpora, a cache
//! built with `--reduce` stores exactly the reduced graphs, and
//! training on a reduced corpus stays bitwise deterministic across
//! worker counts and batching modes.

use magic::corpus_cache::{self, CacheSpec, CorpusKind};
use magic::trainer::{TrainConfig, Trainer};
use magic_autograd::first_bitwise_mismatch;
use magic_data::{CacheError, StreamedCorpus};
use magic_graph::{Acfg, Attribute, ReduceStrategy, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, PoolingHead};
use magic_synth::{MskcfgGenerator, YancfgGenerator};
use std::path::{Path, PathBuf};

const STRATEGIES: [ReduceStrategy; 4] = [
    ReduceStrategy::Chain,
    ReduceStrategy::Prune,
    ReduceStrategy::Coarsen { rounds: 1 },
    ReduceStrategy::Coarsen { rounds: 2 },
];

/// A small but real mix of both corpora's graph shapes.
fn sample_acfgs() -> Vec<Acfg> {
    let mut acfgs: Vec<Acfg> = YancfgGenerator::new(3, 0.001)
        .generate()
        .into_iter()
        .map(|s| s.acfg)
        .collect();
    for sample in MskcfgGenerator::new(5, 0.002).generate() {
        acfgs.push(magic::pipeline::extract_acfg(&sample.listing).expect("listing parses"));
    }
    assert!(acfgs.len() > 50, "corpus sample too small to be meaningful");
    acfgs
}

#[test]
fn every_strategy_is_idempotent_on_real_corpora() {
    let acfgs = sample_acfgs();
    for strategy in STRATEGIES {
        for acfg in &acfgs {
            let once = strategy.apply(acfg);
            let twice = strategy.apply(&once);
            assert_eq!(
                once, twice,
                "{} is not idempotent on a {}-vertex graph",
                strategy.name(),
                acfg.vertex_count()
            );
        }
    }
}

#[test]
fn chain_collapse_preserves_entry_reachability() {
    let mut shrunk = 0usize;
    for acfg in sample_acfgs() {
        let reduced = ReduceStrategy::Chain.apply(&acfg);
        if reduced.vertex_count() < acfg.vertex_count() {
            shrunk += 1;
        }
        // A chain merge only ever fuses a vertex into its unique
        // predecessor, so entry-reachability of the survivors must not
        // change: exactly the graphs that were fully entry-reachable
        // stay fully entry-reachable.
        let fully_before = acfg.graph().reachable_from_entry() == acfg.vertex_count();
        let fully_after = reduced.graph().reachable_from_entry() == reduced.vertex_count();
        assert_eq!(
            fully_before,
            fully_after,
            "chain collapse changed entry reachability ({} -> {} vertices)",
            acfg.vertex_count(),
            reduced.vertex_count()
        );
    }
    assert!(shrunk > 0, "chain collapse reduced no graph at all");
}

#[test]
fn attribute_mass_is_conserved_on_every_channel_but_offspring() {
    let acfgs = sample_acfgs();
    for strategy in STRATEGIES {
        for acfg in &acfgs {
            let reduced = strategy.apply(acfg);
            for channel in 0..NUM_ATTRIBUTES {
                if channel == Attribute::Offspring as usize {
                    continue; // recomputed from the reduced structure
                }
                let sum = |a: &Acfg| -> f64 {
                    (0..a.vertex_count())
                        .map(|v| a.attributes().get2(v, channel) as f64)
                        .sum()
                };
                let (before, after) = (sum(acfg), sum(&reduced));
                assert!(
                    (before - after).abs() <= 1e-3 * before.abs().max(1.0),
                    "{}: channel {channel} mass {before} -> {after}",
                    strategy.name()
                );
            }
        }
    }
}

/// Builds a yancfg cache under a fresh temp dir with the given strategy.
fn built_cache(tag: &str, reduce: ReduceStrategy) -> (PathBuf, CacheSpec) {
    let dir = std::env::temp_dir()
        .join(format!("magic-reduce-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec =
        CacheSpec { corpus: CorpusKind::Yancfg, seed: 9, scale: 0.002, reduce, shards: 3 };
    corpus_cache::build(&dir, &spec, 2, false).expect("cache build");
    (dir, spec)
}

#[test]
fn cache_roundtrip_returns_exactly_the_inline_reduction() {
    let strategy = ReduceStrategy::Chain;
    let (dir, spec) = built_cache("roundtrip", strategy);
    let loaded = corpus_cache::load(&dir, Some(spec.fingerprint()), 2).expect("load");

    let fresh: Vec<Acfg> =
        YancfgGenerator::new(9, 0.002).generate().into_iter().map(|s| s.acfg).collect();
    assert_eq!(loaded.acfgs.len(), fresh.len());
    let mut shrunk = 0usize;
    for (cached, raw) in loaded.acfgs.iter().zip(&fresh) {
        assert_eq!(cached, &strategy.apply(raw), "cached graph diverges from inline reduction");
        if cached.vertex_count() < raw.vertex_count() {
            shrunk += 1;
        }
    }
    assert!(shrunk > 0, "reduction was a no-op on the whole corpus");

    // A cache built under one strategy must never open under another:
    // the fingerprint embeds the strategy name.
    let none_spec = CacheSpec { reduce: ReduceStrategy::None, ..spec };
    match StreamedCorpus::open(&dir, Some(none_spec.fingerprint())) {
        Err(CacheError::FingerprintMismatch { .. }) => {}
        other => panic!("mismatched strategy must be a typed error, got {other:?}"),
    }
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trains one model from the cache (RAM or streamed) and returns the
/// per-epoch loss bits plus the trained model.
fn train_once(
    dir: &Path,
    spec: &CacheSpec,
    streamed: bool,
    workers: usize,
    batched: bool,
) -> (Vec<u32>, Dgcnn) {
    let config = DgcnnConfig::new(13, PoolingHead::sort_pool_weighted(8));
    let mut model = Dgcnn::new(&config, 17);
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 23,
        train_workers: workers,
        batched,
        ..TrainConfig::default()
    });
    let outcome = if streamed {
        let corpus = StreamedCorpus::open(dir, Some(spec.fingerprint())).expect("open streamed");
        let labels = corpus.labels().to_vec();
        let n = corpus.len();
        let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
        let val_idx: Vec<usize> = (n * 3 / 4..n).collect();
        trainer.train_streamed(&mut model, &corpus, &labels, &train_idx, &val_idx)
    } else {
        let loaded =
            corpus_cache::load(dir, Some(spec.fingerprint()), workers).expect("load to RAM");
        let n = loaded.inputs.len();
        let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
        let val_idx: Vec<usize> = (n * 3 / 4..n).collect();
        trainer.train(&mut model, &loaded.inputs, &loaded.labels, &train_idx, &val_idx)
    };
    let losses = outcome.history.iter().map(|e| e.train_loss.to_bits()).collect();
    (losses, model)
}

#[test]
fn reduced_training_is_bitwise_deterministic_across_engines() {
    let (dir, spec) = built_cache("determinism", ReduceStrategy::Chain);
    let (ram_losses, ram_model) = train_once(&dir, &spec, false, 1, false);

    for (workers, batched) in [(1, false), (2, false), (4, false), (1, true)] {
        let (losses, model) = train_once(&dir, &spec, true, workers, batched);
        assert_eq!(
            ram_losses, losses,
            "reduced-corpus loss curve diverged (workers={workers}, batched={batched})"
        );
        for (name, value) in model.store().iter() {
            let id = ram_model.store().find(name).expect("same parameter set");
            assert_eq!(
                first_bitwise_mismatch(value, ram_model.store().value(id)),
                None,
                "weights for {name} diverged (workers={workers}, batched={batched})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
