//! im2col-GEMM convolution lowering: end-to-end determinism and
//! naive-path agreement.
//!
//! The GEMM lowering is the default for both conv heads. Its contract
//! has two halves: (1) training on it is *bitwise* reproducible — run
//! to run and for every `train_workers` count — because each lowering
//! fixes its accumulation order and the workspace pool only ever hands
//! out zero-filled buffers; (2) against the retained naive kernels
//! (`MAGIC_NAIVE_CONV=1` escape hatch) it agrees to float-reassociation
//! tolerance, not bitwise — the loop orders differ.

use magic::trainer::{TrainConfig, Trainer};
use magic_autograd::{first_bitwise_mismatch, ConvLowering, Tape};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};

fn random_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 2 {
        g.add_edge(rng.next_below(n), rng.next_below(n));
    }
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 3.0, &mut rng);
    GraphInput::from_acfg(&Acfg::new(g, attrs))
}

fn toy_corpus() -> (Vec<GraphInput>, Vec<usize>) {
    let inputs: Vec<GraphInput> =
        (0..12).map(|i| random_input(10 + (i % 3) * 4, 900 + i as u64)).collect();
    let labels: Vec<usize> = (0..12).map(|i| i % 2).collect();
    (inputs, labels)
}

/// Trains the adaptive (conv2d + AMP) head on the default GEMM lowering
/// and asserts the whole outcome — epoch history and final weights — is
/// bitwise identical across repeated runs and across worker counts.
#[test]
fn im2col_training_is_bitwise_identical_across_runs_and_workers() {
    let (inputs, labels) = toy_corpus();
    let train_idx: Vec<usize> = (0..9).collect();
    let val_idx: Vec<usize> = (9..12).collect();

    let run = |workers: usize| {
        let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
        let mut model = Dgcnn::new(&config, 7);
        let trainer = Trainer::new(TrainConfig {
            epochs: 3,
            batch_size: 3,
            learning_rate: 0.01,
            seed: 7,
            train_workers: workers,
            ..TrainConfig::default()
        });
        let outcome = trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
        (outcome, model)
    };

    let (reference_outcome, reference_model) = run(1);
    // Run-to-run on the same worker count, then 2 and 4 workers.
    for workers in [1, 2, 4] {
        let (outcome, model) = run(workers);
        assert_eq!(
            outcome.history, reference_outcome.history,
            "history diverged with {workers} workers"
        );
        for (name, value) in model.store().iter() {
            let reference = reference_model.store();
            let id = reference.find(name).expect("same parameter set");
            assert_eq!(
                first_bitwise_mismatch(value, reference.value(id)),
                None,
                "weights for {name} diverged with {workers} workers"
            );
        }
    }
}

/// Forward + backward through full DGCNN models (both head families)
/// must agree between the GEMM and naive lowerings to reassociation
/// tolerance: same losses, same parameter gradients.
#[test]
fn naive_and_gemm_lowerings_agree_end_to_end() {
    for head in [PoolingHead::sort_pool_weighted(8), PoolingHead::adaptive_max_pool(3)] {
        let config = DgcnnConfig::new(2, head);
        let model = Dgcnn::new(&config, 11);

        for seed in 0..4u64 {
            let input = random_input(12, 400 + seed);
            let losses_and_grads = |lowering: ConvLowering| {
                let mut tape = Tape::new();
                tape.set_conv_lowering(lowering);
                let binding = model.store().bind(&mut tape);
                let mut rng = Rng64::for_sample(3, 0, seed);
                let lp = model.forward(&mut tape, &binding, &input, true, &mut rng);
                let loss = tape.nll_loss(lp, vec![(seed % 2) as usize]);
                tape.backward(loss);
                let loss_value = tape.value(loss).item();
                let grads: Vec<(String, Tensor)> = model
                    .store()
                    .iter()
                    .map(|(name, _)| {
                        let id = model.store().find(name).expect("param");
                        let g = tape
                            .grad(binding.var(id))
                            .cloned()
                            .unwrap_or_else(|| Tensor::zeros([1]));
                        (name.to_string(), g)
                    })
                    .collect();
                (loss_value, grads)
            };

            let (gemm_loss, gemm_grads) = losses_and_grads(ConvLowering::Im2colGemm);
            let (naive_loss, naive_grads) = losses_and_grads(ConvLowering::Naive);
            assert!(
                (gemm_loss - naive_loss).abs() < 1e-4,
                "loss diverged: gemm {gemm_loss} vs naive {naive_loss}"
            );
            for ((name, g), (_, n)) in gemm_grads.iter().zip(&naive_grads) {
                assert_eq!(g.shape(), n.shape(), "{name} grad shape");
                for (a, b) in g.as_slice().iter().zip(n.as_slice()) {
                    assert!(
                        (a - b).abs() < 1e-3,
                        "{name} grad diverged: gemm {a} vs naive {b}"
                    );
                }
            }
        }
    }
}

/// The same tape, same sample, run twice under the GEMM lowering — once
/// cold, once against a warm workspace pool — must produce bitwise
/// identical probabilities: pooling is invisible to the numerics.
#[test]
fn warm_workspace_does_not_change_predictions_bitwise() {
    let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
    let model = Dgcnn::new(&config, 5);
    let input = random_input(14, 77);

    let mut tape = Tape::new();
    let cold = model.predict_with(&mut tape, &input);
    for _ in 0..3 {
        let warm = model.predict_with(&mut tape, &input);
        assert_eq!(
            cold.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            warm.iter().map(|p| p.to_bits()).collect::<Vec<_>>(),
            "warm-pool prediction diverged"
        );
    }
}
