//! End-to-end tests for the `magic serve` daemon: wire protocol, batch
//! assembly parity, and the steady-state zero-pool-miss contract.
//!
//! Deterministic *pressure* behavior (503 load shedding, graceful-drain
//! ordering) needs the `MAGIC_SERVE_INJECT_EXECUTE_DELAY_MS` knob,
//! which is process-global — those tests live in `serve_pressure.rs`
//! so this file's servers run at full speed.

use magic::MagicPipeline;
use magic_integration::serve_client::{predict, request, request_bytes};
use magic_integration::synthetic_listing;
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_serve::{start, ServeConfig};
use std::sync::{Arc, Barrier};

const FAMILIES: [&str; 3] = ["Ramnit", "Vundo", "Gatak"];

/// A deterministic test model: same config + seed on every call site
/// yields bitwise-identical weights, so an offline twin of the served
/// model can verify score parity.
fn test_model() -> Dgcnn {
    let config = DgcnnConfig::new(FAMILIES.len(), PoolingHead::sort_pool_weighted(10));
    Dgcnn::new(&config, 42)
}

fn test_pipeline() -> MagicPipeline {
    MagicPipeline::new(test_model(), FAMILIES.iter().map(|s| s.to_string()).collect())
}

/// Ephemeral-port config; tweak fields per test.
fn test_config() -> ServeConfig {
    ServeConfig { addr: "127.0.0.1:0".to_string(), ..ServeConfig::default() }
}

/// Offline reference probabilities for a listing, computed exactly the
/// way `magic predict` does.
fn offline_probs(listing: &str) -> Vec<f32> {
    let acfg = magic::extract_acfg(listing).unwrap();
    test_model().predict(&GraphInput::from_acfg(&acfg))
}

/// Parses the scores object of a 200 response back into family-order
/// `f32`s.
fn response_scores(body: &str) -> Vec<f32> {
    let v = magic_json::from_str(body).unwrap();
    FAMILIES
        .iter()
        .map(|f| v["scores"][*f].as_f64().expect("score present") as f32)
        .collect()
}

#[test]
fn concurrent_requests_fuse_into_batches_without_changing_any_bit() {
    let mut config = test_config();
    config.workers = 1; // one tape, maximal fusion
    config.max_batch = 8;
    config.batch_window_us = 200_000; // generous: all clients join one batch
    let handle = start(test_pipeline(), config).unwrap();
    let addr = handle.addr();

    // Six clients with six different graph sizes, released together.
    let sizes = [2usize, 5, 9, 3, 14, 7];
    let barrier = Arc::new(Barrier::new(sizes.len()));
    let clients: Vec<_> = sizes
        .iter()
        .map(|&blocks| {
            let barrier = Arc::clone(&barrier);
            std::thread::spawn(move || {
                let listing = synthetic_listing(blocks);
                barrier.wait();
                let response = predict(addr, &listing);
                (blocks, listing, response)
            })
        })
        .collect();

    let mut max_batch_size = 0u64;
    for client in clients {
        let (blocks, listing, response) = client.join().unwrap();
        assert_eq!(response.status, 200, "blocks={blocks}: {}", response.body);
        let served = response_scores(&response.body);
        let offline = offline_probs(&listing);
        for (family, (s, o)) in FAMILIES.iter().zip(served.iter().zip(&offline)) {
            assert_eq!(
                s.to_bits(),
                o.to_bits(),
                "blocks={blocks} family={family}: served {s} != offline {o}"
            );
        }
        let v = magic_json::from_str(&response.body).unwrap();
        max_batch_size = max_batch_size.max(v["batch_size"].as_u64().unwrap());
        assert!(v["queue_us"].as_u64().is_some());
    }
    assert!(
        max_batch_size >= 2,
        "six synchronized clients against a 200ms window must fuse, got max batch {max_batch_size}"
    );
    handle.shutdown();
}

#[test]
fn acfg_json_input_matches_the_asm_path_bitwise() {
    let handle = start(test_pipeline(), test_config()).unwrap();
    let addr = handle.addr();
    let listing = synthetic_listing(6);

    let from_asm = predict(addr, &listing);
    assert_eq!(from_asm.status, 200, "{}", from_asm.body);

    // Ship the pre-extracted ACFG (raw attribute counts) instead.
    let acfg = magic::extract_acfg(&listing).unwrap();
    let body = magic_json::to_string(&magic_json::json!({
        "acfg": magic_serve::protocol::acfg_to_json(&acfg),
    }));
    let from_acfg = predict(addr, &body);
    assert_eq!(from_acfg.status, 200, "{}", from_acfg.body);

    let asm_scores = response_scores(&from_asm.body);
    let acfg_scores = response_scores(&from_acfg.body);
    for (s, o) in asm_scores.iter().zip(&acfg_scores) {
        assert_eq!(s.to_bits(), o.to_bits(), "acfg path diverged from asm path");
    }

    // And the compact binary form: one magic-acfg/1 shard record posted
    // with its dedicated content type (label field is ignored).
    let record = magic_data::ShardRecord { label: 0, acfg };
    let from_binary = request_bytes(
        addr,
        "POST",
        "/v1/predict",
        magic_serve::protocol::ACFG_CONTENT_TYPE,
        &magic_data::encode_record(&record),
    );
    assert_eq!(from_binary.status, 200, "{}", from_binary.body);
    let binary_scores = response_scores(&from_binary.body);
    for (s, o) in asm_scores.iter().zip(&binary_scores) {
        assert_eq!(s.to_bits(), o.to_bits(), "binary acfg path diverged from asm path");
    }

    // A damaged binary body is a 400, and the server keeps serving.
    let bytes = magic_data::encode_record(&record);
    let truncated = request_bytes(
        addr,
        "POST",
        "/v1/predict",
        magic_serve::protocol::ACFG_CONTENT_TYPE,
        &bytes[..bytes.len() / 2],
    );
    assert_eq!(truncated.status, 400, "{}", truncated.body);
    assert!(truncated.body.contains("error"), "{}", truncated.body);
    let again = predict(addr, &listing);
    assert_eq!(again.status, 200, "{}", again.body);
    handle.shutdown();
}

#[test]
fn bad_requests_get_4xx_and_the_server_keeps_serving() {
    let handle = start(test_pipeline(), test_config()).unwrap();
    let addr = handle.addr();

    // Malformed JSON body → 400 with a JSON error, not a worker crash.
    let bad_json = predict(addr, "{not json");
    assert_eq!(bad_json.status, 400);
    assert!(bad_json.body.contains("error"), "{}", bad_json.body);

    // Unparseable listing → 400 (extraction error surfaced).
    let bad_listing = predict(addr, "this is not assembly at all");
    assert_eq!(bad_listing.status, 400, "{}", bad_listing.body);

    // Empty body → 400.
    assert_eq!(predict(addr, "").status, 400);

    // Unknown route → 404; known route, wrong method → 405.
    assert_eq!(request(addr, "GET", "/nope", "").status, 404);
    assert_eq!(request(addr, "GET", "/v1/predict", "").status, 405);
    assert_eq!(request(addr, "POST", "/healthz", "").status, 405);

    // The server survived all of it.
    let ok = predict(addr, &synthetic_listing(3));
    assert_eq!(ok.status, 200, "{}", ok.body);
    let health = request(addr, "GET", "/healthz", "");
    assert_eq!(health.status, 200);
    assert!(health.body.contains("ok"));
    handle.shutdown();
}

#[test]
fn steady_state_serving_never_misses_the_workspace_pool() {
    let mut config = test_config();
    config.workers = 1; // a single long-lived tape owns the pool
    config.batch_window_us = 0;
    let handle = start(test_pipeline(), config).unwrap();
    let addr = handle.addr();
    let listing = synthetic_listing(8);

    let statsz = |addr| {
        let response = request(addr, "GET", "/statsz", "");
        assert_eq!(response.status, 200);
        magic_json::from_str(&response.body).unwrap()
    };

    // Warm-up: the first identical requests populate the size classes.
    for _ in 0..4 {
        assert_eq!(predict(addr, &listing).status, 200);
    }
    let warm = statsz(addr);
    let warm_misses = warm["pool_misses"].as_u64().unwrap();
    let warm_hits = warm["pool_hits"].as_u64().unwrap();
    assert!(warm_misses > 0, "a cold pool must miss");
    assert!(warm_hits > 0, "repeated shapes must start hitting during warm-up");

    // Steady state: same request shape → zero new pool misses.
    for _ in 0..6 {
        assert_eq!(predict(addr, &listing).status, 200);
    }
    let steady = statsz(addr);
    assert_eq!(
        steady["pool_misses"].as_u64().unwrap(),
        warm_misses,
        "steady-state serving allocated fresh buffers"
    );
    assert!(steady["pool_hits"].as_u64().unwrap() > warm_hits);
    assert_eq!(steady["predictions"].as_u64().unwrap(), 10);
    assert_eq!(steady["internal_errors"].as_u64().unwrap(), 0);
    handle.shutdown();
}

#[test]
fn oversized_bodies_are_refused_with_413() {
    let mut config = test_config();
    config.max_body_bytes = 512;
    let handle = start(test_pipeline(), config).unwrap();
    let big = "x".repeat(4096);
    let response = predict(handle.addr(), &big);
    assert_eq!(response.status, 413, "{}", response.body);
    handle.shutdown();
}

#[test]
fn programmatic_shutdown_with_no_traffic_returns_promptly() {
    let handle = start(test_pipeline(), test_config()).unwrap();
    let addr = handle.addr();
    assert_eq!(request(addr, "GET", "/healthz", "").status, 200);
    let begun = std::time::Instant::now();
    handle.shutdown();
    assert!(
        begun.elapsed() < std::time::Duration::from_secs(10),
        "idle shutdown must not hang"
    );
    // The port no longer answers: connects are refused, or a racy
    // accepted socket yields no response bytes.
    match std::net::TcpStream::connect(addr) {
        Err(_) => {}
        Ok(mut stream) => {
            use std::io::{Read, Write};
            let _ = write!(stream, "GET /healthz HTTP/1.1\r\nhost: t\r\ncontent-length: 0\r\n\r\n");
            let mut leftover = String::new();
            let n = stream.read_to_string(&mut leftover).unwrap_or(0);
            assert_eq!(n, 0, "server still answered after shutdown: {leftover}");
        }
    }
}
