//! Property-based tests on the substrates' core invariants, driven by
//! seeded [`Rng64`] loops (the build is offline, so no proptest).

use magic_asm::{parse_listing, CfgBuilder};
use magic_graph::Acfg;
use magic_tensor::{Rng64, Tensor};

const CASES: u64 = 64;

/// The parser never panics on arbitrary input, only errors.
#[test]
fn parser_total_on_arbitrary_text() {
    const POOL: &[char] = &[
        'a', 'Q', '7', ' ', '\t', '\n', '\r', ':', '.', ',', ';', '_', '[', ']', '(', ')', '+',
        '*', '#', '"', '\'', '\\', '/', '|', '!', '?', '=', '<', '>', '\u{0}', '\u{7}', 'ß',
        'Ω', '語', '🦀',
    ];
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_below(401);
        let text: String = (0..len).map(|_| POOL[rng.next_below(POOL.len())]).collect();
        let _ = parse_listing(&text);
    }
}

/// The parser is total on address-prefixed garbage too.
#[test]
fn parser_total_on_addressed_garbage() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let addr = rng.next_u64() % 0xFFFF_FFFF;
        let len = rng.next_below(61);
        // Printable ASCII body, like proptest's `[ -~]` class.
        let body: String = (0..len)
            .map(|_| (b' ' + rng.next_below(95) as u8) as char)
            .collect();
        let line = format!(".text:{addr:08X} {body}\n");
        let _ = parse_listing(&line);
    }
}

/// CFG structural invariants hold for every random jump program: every
/// instruction lands in exactly one block, edges are in range, and block
/// start addresses are unique.
#[test]
fn cfg_invariants_on_random_jump_programs() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(3, 40);
        let mut listing = String::new();
        for i in 0..len {
            let addr = 0x1000 + i * 2;
            let line = match rng.next_below(5) {
                0 => {
                    let dst = 0x1000 + rng.next_below(len) * 2;
                    format!(".text:{addr:08X} jz loc_{dst:X}\n")
                }
                1 => {
                    let dst = 0x1000 + rng.next_below(len) * 2;
                    format!(".text:{addr:08X} jmp loc_{dst:X}\n")
                }
                2 => format!(".text:{addr:08X} retn\n"),
                3 => format!(".text:{addr:08X} add eax, {i}\n"),
                _ => format!(".text:{addr:08X} mov eax, ebx\n"),
            };
            listing.push_str(&line);
        }
        let program = parse_listing(&listing).unwrap();
        let cfg = CfgBuilder::new(&program).build();

        // Every instruction appears exactly once across blocks.
        let placed: usize = cfg.blocks().iter().map(|b| b.len()).sum();
        assert_eq!(placed, program.len());

        // Edge endpoints are valid vertices.
        for (u, v) in cfg.edges() {
            assert!(u < cfg.block_count() && v < cfg.block_count());
        }

        // Block start addresses are unique and each block is non-empty.
        let mut starts: Vec<u64> = cfg.blocks().iter().map(|b| b.start_addr).collect();
        starts.sort_unstable();
        starts.dedup();
        assert_eq!(starts.len(), cfg.block_count());
        // Instructions within a block are consecutive in address order.
        for block in cfg.blocks() {
            for pair in block.instructions.windows(2) {
                assert!(pair[0].addr < pair[1].addr);
            }
        }
    }
}

/// ACFG text serialization round-trips losslessly.
#[test]
fn acfg_text_roundtrip() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let n = rng.next_range(2, 20);
        let acfg = magic_integration::random_acfg(n, seed);
        let text = acfg.to_text();
        let back = Acfg::from_text(&text).unwrap();
        assert_eq!(back.vertex_count(), acfg.vertex_count());
        assert_eq!(back.edge_count(), acfg.edge_count());
        assert!(back.attributes().approx_eq(acfg.attributes(), 1e-4));
    }
}

/// Softmax of any finite tensor is a probability distribution.
#[test]
fn softmax_is_always_a_distribution() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(1, 20);
        let values: Vec<f32> = (0..len).map(|_| rng.next_f32() * 100.0 - 50.0).collect();
        let t = Tensor::from_slice(&values);
        let s = t.softmax();
        assert!(s.all_finite());
        assert!((s.sum() - 1.0).abs() < 1e-4);
        assert!(s.as_slice().iter().all(|&p| p >= 0.0));
    }
}

/// Matmul distributes over addition: A(B + C) = AB + AC.
#[test]
fn matmul_distributes() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut rng);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert!(left.approx_eq(&right, 1e-4));
    }
}

/// The stratified splitter always partitions, for any label multiset.
#[test]
fn kfold_partitions_any_labeling() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(10, 60);
        let labels: Vec<usize> = (0..len).map(|_| rng.next_below(4)).collect();
        let folds = magic_data::stratified_kfold(&labels, 5, seed);
        let mut seen = vec![0usize; labels.len()];
        for fold in &folds {
            for &i in &fold.validation {
                seen[i] += 1;
            }
            let mut all: Vec<usize> =
                fold.train.iter().chain(&fold.validation).copied().collect();
            all.sort_unstable();
            assert_eq!(all, (0..labels.len()).collect::<Vec<_>>());
        }
        assert!(seen.iter().all(|&c| c == 1));
    }
}

/// Gradient check on a random small MLP through the tape: analytic
/// gradients match finite differences.
#[test]
fn tape_gradients_match_finite_differences() {
    use magic_autograd::{finite_difference_gradient, max_grad_error, Tape};
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let x0 = Tensor::rand_uniform([2, 3], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2], -1.0, 1.0, &mut rng);

        let run = |input: &Tensor, want_grad: bool| {
            let mut tape = Tape::new();
            let xv = tape.leaf(input.clone(), want_grad);
            let wv = tape.leaf(w.clone(), false);
            let h = tape.matmul(xv, wv);
            let r = tape.tanh(h);
            let lp = tape.log_softmax_rows(r);
            let loss = tape.nll_loss(lp, vec![0, 1]);
            (tape, xv, loss)
        };
        let (mut tape, xv, loss) = run(&x0, true);
        tape.backward(loss);
        let analytic = tape.grad(xv).unwrap().clone();
        let numeric = finite_difference_gradient(&x0, 1e-2, |t| {
            let (tape, _, loss) = run(t, false);
            tape.value(loss).item()
        });
        assert!(max_grad_error(&analytic, &numeric) < 2e-2);
    }
}
