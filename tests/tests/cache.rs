//! Integration tests for the `magic-acfg/1` shard cache: damage
//! tolerance (every corruption is a typed [`CacheError`], never a
//! panic — the same contract `magic-trace` keeps via `malformed_lines`)
//! and the tentpole invariant that training streamed from shards is
//! bitwise identical to training from RAM, across worker counts and
//! both engines.

use magic::corpus_cache::{self, CacheSpec, CorpusKind};
use magic::trainer::{TrainConfig, Trainer};
use magic_autograd::first_bitwise_mismatch;
use magic_data::{CacheError, CacheManifest, ShardReader, StreamedCorpus};
use magic_model::{Dgcnn, DgcnnConfig, PoolingHead};
use std::path::{Path, PathBuf};

/// A fresh temp cache directory holding a small real yancfg corpus.
fn built_cache(tag: &str) -> (PathBuf, CacheSpec) {
    let dir = std::env::temp_dir()
        .join(format!("magic-cache-it-{tag}-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let spec = CacheSpec {
        corpus: CorpusKind::Yancfg,
        seed: 9,
        scale: 0.002,
        reduce: magic_graph::ReduceStrategy::None,
        shards: 3,
    };
    corpus_cache::build(&dir, &spec, 2, false).expect("cache build");
    (dir, spec)
}

fn first_shard(dir: &Path) -> PathBuf {
    let manifest = CacheManifest::load(dir).expect("manifest loads");
    dir.join(&manifest.shards[0].file)
}

/// Applies `mutate` to the first shard's bytes and rewrites it.
fn damage_first_shard(dir: &Path, mutate: impl FnOnce(&mut Vec<u8>)) {
    let path = first_shard(dir);
    let mut bytes = std::fs::read(&path).expect("read shard");
    mutate(&mut bytes);
    std::fs::write(&path, bytes).expect("rewrite shard");
}

/// Opening the streamed corpus revalidates every shard, so it surfaces
/// whatever damage was injected.
fn open_error(dir: &Path) -> CacheError {
    match StreamedCorpus::open(dir, None) {
        Err(e) => e,
        Ok(_) => panic!("damaged cache must not open"),
    }
}

#[test]
fn truncated_shard_is_a_typed_error() {
    let (dir, _) = built_cache("truncated");
    damage_first_shard(&dir, |bytes| bytes.truncate(bytes.len() / 2));
    assert!(matches!(open_error(&dir), CacheError::Truncated { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn flipped_payload_bit_is_a_checksum_mismatch() {
    let (dir, _) = built_cache("checksum");
    damage_first_shard(&dir, |bytes| {
        // Flip one bit in the middle of the payload (well past the
        // 48-byte header and the index).
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x40;
    });
    assert!(matches!(open_error(&dir), CacheError::ChecksumMismatch { .. }));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn future_version_and_bad_magic_are_rejected() {
    let (dir, _) = built_cache("version");
    damage_first_shard(&dir, |bytes| bytes[8] = 99); // version field
    assert!(matches!(
        open_error(&dir),
        CacheError::UnsupportedVersion { found: 99 }
    ));
    damage_first_shard(&dir, |bytes| bytes[0] = b'X'); // magic field
    assert!(matches!(open_error(&dir), CacheError::BadMagic));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn fingerprint_mismatch_is_detected_at_every_layer() {
    let (dir, spec) = built_cache("fingerprint");
    let wrong = spec.fingerprint() ^ 1;
    // The manifest gate.
    let manifest_err = match StreamedCorpus::open(&dir, Some(wrong)) {
        Err(e) => e,
        Ok(_) => panic!("wrong fingerprint must not open"),
    };
    assert!(matches!(manifest_err, CacheError::FingerprintMismatch { .. }));
    // The per-shard-header gate, bypassing the manifest entirely.
    let reader = ShardReader::open(&first_shard(&dir)).expect("intact shard opens");
    assert!(matches!(
        reader.expect_fingerprint(wrong).unwrap_err(),
        CacheError::FingerprintMismatch { .. }
    ));
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn zero_record_shard_is_an_empty_shard_error() {
    let (dir, _) = built_cache("empty");
    damage_first_shard(&dir, |bytes| bytes[32..36].fill(0)); // record_count field
    assert!(matches!(open_error(&dir), CacheError::EmptyShard));
    let _ = std::fs::remove_dir_all(&dir);
}

/// Trains one model either from RAM or streamed from shards and
/// returns the per-epoch loss bits plus the trained model.
fn train_once(
    dir: &Path,
    spec: &CacheSpec,
    streamed: bool,
    workers: usize,
    batched: bool,
) -> (Vec<u32>, Dgcnn) {
    let config = DgcnnConfig::new(13, PoolingHead::sort_pool_weighted(8));
    let mut model = Dgcnn::new(&config, 17);
    let trainer = Trainer::new(TrainConfig {
        epochs: 3,
        batch_size: 8,
        learning_rate: 0.01,
        seed: 23,
        train_workers: workers,
        batched,
        ..TrainConfig::default()
    });
    let outcome = if streamed {
        let corpus = StreamedCorpus::open(dir, Some(spec.fingerprint())).expect("open streamed");
        let labels = corpus.labels().to_vec();
        let n = corpus.len();
        let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
        let val_idx: Vec<usize> = (n * 3 / 4..n).collect();
        trainer.train_streamed(&mut model, &corpus, &labels, &train_idx, &val_idx)
    } else {
        let loaded =
            corpus_cache::load(dir, Some(spec.fingerprint()), workers).expect("load to RAM");
        let n = loaded.inputs.len();
        let train_idx: Vec<usize> = (0..n * 3 / 4).collect();
        let val_idx: Vec<usize> = (n * 3 / 4..n).collect();
        trainer.train(&mut model, &loaded.inputs, &loaded.labels, &train_idx, &val_idx)
    };
    let losses = outcome.history.iter().map(|e| e.train_loss.to_bits()).collect();
    (losses, model)
}

#[test]
fn streamed_training_is_bitwise_identical_to_in_memory() {
    let (dir, spec) = built_cache("parity");
    let (ram_losses, ram_model) = train_once(&dir, &spec, false, 1, false);

    for (workers, batched) in [(1, false), (2, false), (4, false), (1, true)] {
        let (losses, model) = train_once(&dir, &spec, true, workers, batched);
        assert_eq!(
            ram_losses, losses,
            "streamed loss curve diverged (workers={workers}, batched={batched})"
        );
        for (name, value) in model.store().iter() {
            let id = ram_model.store().find(name).expect("same parameter set");
            assert_eq!(
                first_bitwise_mismatch(value, ram_model.store().value(id)),
                None,
                "weights for {name} diverged (workers={workers}, batched={batched})"
            );
        }
    }
    let _ = std::fs::remove_dir_all(&dir);
}
