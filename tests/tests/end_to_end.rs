//! End-to-end integration: assembly text → parser → Algorithms 1-2 →
//! Table I attribution → DGCNN → family verdict, plus checkpointing.

use magic::checkpoint::{load_weights, save_weights};
use magic::pipeline::{extract_acfg, MagicPipeline};
use magic::trainer::{evaluate, TrainConfig, Trainer};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_synth::codegen::CodeGenerator;
use magic_synth::profile::FamilyProfile;
use magic_tensor::Rng64;

fn two_family_corpus(samples_per_family: usize) -> (Vec<GraphInput>, Vec<usize>, Vec<String>) {
    let mut loopy = FamilyProfile::base("Loopy");
    loopy.loop_weight = 3.0;
    loopy.mean_blocks = 20.0;
    let mut packer = FamilyProfile::base("Packer");
    packer.decoder_weight = 3.0;
    packer.branch_weight = 0.2;
    packer.mean_blocks = 12.0;

    let mut rng = Rng64::new(77);
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    let mut listings = Vec::new();
    for i in 0..2 * samples_per_family {
        let profile = if i % 2 == 0 { &loopy } else { &packer };
        let text = CodeGenerator::new(profile).generate(&mut rng);
        let acfg = extract_acfg(&text).expect("generated listings parse");
        inputs.push(GraphInput::from_acfg(&acfg));
        labels.push(i % 2);
        listings.push(text);
    }
    (inputs, labels, vec!["Loopy".into(), "Packer".into()])
}

#[test]
fn listing_to_verdict_through_every_layer() {
    let (inputs, labels, names) = two_family_corpus(12);
    let config = DgcnnConfig::new(2, PoolingHead::adaptive_max_pool(3));
    let mut model = Dgcnn::new(&config, 5);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 4,
        learning_rate: 0.01,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..20).collect();
    let val_idx: Vec<usize> = (20..24).collect();
    trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
    let (_, accuracy) = evaluate(&model, &inputs, &labels, &val_idx);
    assert!(accuracy >= 0.75, "end-to-end accuracy {accuracy}");

    // Checkpoint round-trip through the pipeline API.
    let checkpoint = save_weights(&model);
    let mut restored = Dgcnn::new(&config, 1234);
    load_weights(&mut restored, &checkpoint).expect("round trip");
    let pipeline = MagicPipeline::new(restored, names);
    let acfg = extract_acfg(
        ".text:00401000   mov ecx, 5\n\
         .text:00401005 loc_401005:\n\
         .text:00401005   dec ecx\n\
         .text:00401006   jnz short loc_401005\n\
         .text:00401008   retn\n",
    )
    .unwrap();
    let (family, p) = pipeline.classify_acfg(&acfg);
    assert!(["Loopy", "Packer"].contains(&family));
    assert!(p > 0.0 && p <= 1.0);
}

#[test]
fn all_three_heads_survive_the_full_pipeline() {
    let (inputs, labels, _) = two_family_corpus(4);
    for head in [
        PoolingHead::adaptive_max_pool(3),
        PoolingHead::sort_pool_conv1d(12),
        PoolingHead::sort_pool_weighted(10),
    ] {
        let config = DgcnnConfig::new(2, head.clone());
        let model = Dgcnn::new(&config, 2);
        for input in &inputs {
            let probs = model.predict(input);
            assert_eq!(probs.len(), 2, "head {head:?}");
            assert!((probs.iter().sum::<f32>() - 1.0).abs() < 1e-3);
        }
        let _ = &labels;
    }
}

#[test]
fn synthetic_mskcfg_families_are_learnable_above_chance() {
    // Three structurally distinct MSKCFG families at tiny scale.
    use magic_synth::MskcfgGenerator;
    let mut generator = MskcfgGenerator::new(3, 0.002);
    let chosen = [1usize, 3, 8]; // Lollipop, Vundo, Gatak
    let mut inputs = Vec::new();
    let mut labels = Vec::new();
    for (new_label, &family) in chosen.iter().enumerate() {
        for _ in 0..10 {
            let sample = generator.generate_one(family);
            let acfg = extract_acfg(&sample.listing).unwrap();
            inputs.push(GraphInput::from_acfg(&acfg));
            labels.push(new_label);
        }
    }
    let config = DgcnnConfig::new(3, PoolingHead::adaptive_max_pool(3));
    let mut model = Dgcnn::new(&config, 11);
    let trainer = Trainer::new(TrainConfig {
        epochs: 8,
        batch_size: 5,
        learning_rate: 0.01,
        ..TrainConfig::default()
    });
    // Train on 8 of each family, validate on the held-out 2.
    let train_idx: Vec<usize> = (0..30).filter(|i| i % 10 < 8).collect();
    let val_idx: Vec<usize> = (0..30).filter(|i| i % 10 >= 8).collect();
    trainer.train(&mut model, &inputs, &labels, &train_idx, &val_idx);
    let (_, accuracy) = evaluate(&model, &inputs, &labels, &val_idx);
    assert!(accuracy > 0.34, "above 3-class chance, got {accuracy}");
}
