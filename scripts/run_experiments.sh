#!/usr/bin/env bash
# Regenerates every table and figure of the paper (plus the extension
# experiments) at CPU-sized scales. Each binary writes JSON into results/
# and a log into results/logs/.
#
# Usage: scripts/run_experiments.sh [fast|full]
#   fast (default): ~1 hour on a single core
#   full: larger corpora, closer to paper shape; several hours

set -euo pipefail
cd "$(dirname "$0")/.."

MODE="${1:-fast}"
if [ "$MODE" = full ]; then
    SCALE_MSK=0.05; SCALE_YAN=0.03; EPOCHS=60; SMALL_EPOCHS=30; GRID_EPOCHS=20
else
    SCALE_MSK=0.015; SCALE_YAN=0.012; EPOCHS=30; SMALL_EPOCHS=15; GRID_EPOCHS=6
fi

mkdir -p results/logs
cargo build --release -p magic-bench

run() {
    local bin="$1"; shift
    echo "=== $bin $* ==="
    ./target/release/"$bin" "$@" 2>&1 | tee "results/logs/$bin.log"
}

run table1_attributes
run fig7_fig8_distributions
run table3_mskcfg --scale "$SCALE_MSK" --epochs "$EPOCHS"
run table4_comparison --scale "$SCALE_MSK" --epochs "$EPOCHS"
run table5_yancfg --scale "$SCALE_YAN" --epochs "$EPOCHS"
run fig11_esvc_improvement --scale "$SCALE_YAN" --epochs "$EPOCHS"
run fig9_fig10_scores
run table2_hyperparams --scale 0.008 --epochs "$GRID_EPOCHS"
run timing_overhead --scale 0.01
run ablation_attributes --scale 0.008 --epochs "$SMALL_EPOCHS"
run ext_wl_kernel --scale 0.012 --epochs "$SMALL_EPOCHS"
run ext_detection --scale 0.012 --epochs "$SMALL_EPOCHS"
run ext_drift --scale 0.012 --epochs "$SMALL_EPOCHS"
run ext_reduce_sweep --scale 0.01 --epochs "$SMALL_EPOCHS"

echo "all experiments complete; outputs in results/"
