#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, doctests, warning-free
# rustdoc, and a warning-free clippy pass. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

echo "==> CI OK"
