#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, doctests, warning-free
# rustdoc, and a warning-free clippy pass. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

# Perf-regression gate: re-measure the quick training benchmark and
# compare against the committed baseline. The gate only fires when the
# baseline was recorded on this same machine (cross-host timings don't
# compare); on a fresh host it prints a skip notice and stays green
# until `scripts/bench_snapshot.sh` commits a local baseline.
echo "==> perf gate: quick bench vs committed baseline"
BASELINE=results/BENCH_train_parallel_quick.json
if [ -f "$BASELINE" ]; then
    # Absolute path: cargo runs bench binaries from the package dir,
    # not the workspace root.
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench train_parallel
    ./target/release/magic bench diff \
        "$BASELINE" target/ci-bench/BENCH_train_parallel_quick.json \
        --threshold 0.20 --require-same-machine
else
    echo "no committed baseline at $BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick graph_conv bench vs committed baseline"
GC_BASELINE=results/BENCH_graph_conv_quick.json
if [ -f "$GC_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench graph_conv
    ./target/release/magic bench diff \
        "$GC_BASELINE" target/ci-bench/BENCH_graph_conv_quick.json \
        --threshold 0.20 --require-same-machine
else
    echo "no committed baseline at $GC_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick conv_head bench vs committed baseline"
# Wider threshold than the other gates: the conv_head quick cells are
# sub-millisecond and their medians swing ±30% run-to-run on a busy
# 1-core container (measured band; the train_parallel ms-scale gate
# stays within ±5%). 0.40 still fails hard on the ≥2x cost of losing
# the GEMM lowering.
CH_BASELINE=results/BENCH_conv_head_quick.json
if [ -f "$CH_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench conv_head
    ./target/release/magic bench diff \
        "$CH_BASELINE" target/ci-bench/BENCH_conv_head_quick.json \
        --threshold 0.40 --require-same-machine
else
    echo "no committed baseline at $CH_BASELINE; skipping perf gate"
fi

echo "==> CI OK"
