#!/usr/bin/env bash
# Tier-1 CI gate: release build, full test suite, doctests, warning-free
# rustdoc, and a warning-free clippy pass. Run from the repository root.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> cargo build --release"
cargo build --release

echo "==> cargo test -q"
cargo test -q

echo "==> cargo test --doc -q"
cargo test --doc -q

echo "==> RUSTDOCFLAGS='-D warnings' cargo doc --no-deps"
RUSTDOCFLAGS="-D warnings" cargo doc --no-deps --quiet

echo "==> cargo clippy --workspace -- -D warnings"
cargo clippy --workspace -- -D warnings

# Perf-regression gate: re-measure the quick training benchmark and
# compare against the committed baseline. The gate only fires when the
# baseline was recorded on this same machine (cross-host timings don't
# compare); on a fresh host it prints a skip notice and stays green
# until `scripts/bench_snapshot.sh` commits a local baseline.
echo "==> perf gate: quick bench vs committed baseline"
BASELINE=results/BENCH_train_parallel_quick.json
if [ -f "$BASELINE" ]; then
    # Absolute path: cargo runs bench binaries from the package dir,
    # not the workspace root.
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench train_parallel
    ./target/release/magic bench diff \
        "$BASELINE" target/ci-bench/BENCH_train_parallel_quick.json \
        --threshold 0.20 --require-same-machine
else
    echo "no committed baseline at $BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick graph_conv bench vs committed baseline"
GC_BASELINE=results/BENCH_graph_conv_quick.json
if [ -f "$GC_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench graph_conv
    ./target/release/magic bench diff \
        "$GC_BASELINE" target/ci-bench/BENCH_graph_conv_quick.json \
        --threshold 0.20 --require-same-machine
else
    echo "no committed baseline at $GC_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick conv_head bench vs committed baseline"
# Wider threshold than the other gates: the conv_head quick cells are
# sub-millisecond and their medians swing ±30% run-to-run on a busy
# 1-core container (measured band; the train_parallel ms-scale gate
# stays within ±5%). 0.40 still fails hard on the ≥2x cost of losing
# the GEMM lowering.
CH_BASELINE=results/BENCH_conv_head_quick.json
if [ -f "$CH_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench conv_head
    ./target/release/magic bench diff \
        "$CH_BASELINE" target/ci-bench/BENCH_conv_head_quick.json \
        --threshold 0.40 --require-same-machine
else
    echo "no committed baseline at $CH_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick batched_forward bench vs committed baseline"
# Same wide threshold as conv_head: the quick cells are single-digit
# milliseconds on a 1-core container and swing with host load. 0.40
# still catches the step change of losing the fused block-diagonal
# path or the batched GEMM lowering.
BF_BASELINE=results/BENCH_batched_forward_quick.json
if [ -f "$BF_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench batched_forward
    ./target/release/magic bench diff \
        "$BF_BASELINE" target/ci-bench/BENCH_batched_forward_quick.json \
        --threshold 0.40 --require-same-machine
else
    echo "no committed baseline at $BF_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick serve_load bench vs committed baseline"
# Wide threshold like the other sub-ms gates: loopback HTTP latency on
# a busy container swings run-to-run. The gated row is the p50 of the
# closed-loop load generator; 0.40 still fails hard on the step change
# of losing micro-batching or warm-tape reuse in the serving path.
SV_BASELINE=results/BENCH_serve_quick.json
if [ -f "$SV_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench serve_load
    ./target/release/magic bench diff \
        "$SV_BASELINE" target/ci-bench/BENCH_serve_quick.json \
        --threshold 0.40 --require-same-machine
else
    echo "no committed baseline at $SV_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick corpus_cache bench vs committed baseline"
# Wide threshold like the other quick gates: the warm-load cell is
# single-digit milliseconds and tracks disk/page-cache state. 0.40
# still fails hard on the step change of losing the parallel shard
# decode or falling back to generate+extract.
CC_BASELINE=results/BENCH_corpus_cache_quick.json
if [ -f "$CC_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench corpus_cache
    ./target/release/magic bench diff \
        "$CC_BASELINE" target/ci-bench/BENCH_corpus_cache_quick.json \
        --threshold 0.40 --require-same-machine
else
    echo "no committed baseline at $CC_BASELINE; skipping perf gate"
fi

echo "==> perf gate: quick graph_reduce bench vs committed baseline"
# Widest threshold of the gates: the gated rows are 11-37 ms training
# epochs whose *whole-run* medians swing up to ~1.7x with container
# load (measured band; per-sample medians don't dampen a systemically
# slow run). The step change this gate guards — reduction stopping to
# shrink graphs, snapping the coarsen:2 epoch back to the unreduced
# cost — is >=3x, so 1.00 still fails hard on it. The one-off
# reduce-pass rows are deliberately not gated (keyed `pass_median_ns`).
GR_BASELINE=results/BENCH_graph_reduce_quick.json
if [ -f "$GR_BASELINE" ]; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench graph_reduce
    ./target/release/magic bench diff \
        "$GR_BASELINE" target/ci-bench/BENCH_graph_reduce_quick.json \
        --threshold 1.00 --require-same-machine
else
    echo "no committed baseline at $GR_BASELINE; skipping perf gate"
fi

echo "==> reduce gate: mismatched-strategy cache opens fail with a typed error"
# A cache stores *reduced* graphs, so serving it under a different
# --reduce would silently feed the model wrong-shaped graphs. The
# fingerprint embeds the strategy; `cache info` with expectation flags
# recomputes it and must fail with the typed mismatch error when the
# expected strategy differs from what the cache was built with.
RD_DIR="$(mktemp -d /tmp/magic_reduce_gate.XXXXXX)"
./target/release/magic cache build --corpus yancfg --scale 0.002 --seed 7 \
    --reduce chain --cache-dir "$RD_DIR" >/dev/null
./target/release/magic cache info --cache-dir "$RD_DIR" \
    --corpus yancfg --scale 0.002 --seed 7 --reduce chain >/dev/null
if OUT="$(./target/release/magic cache info --cache-dir "$RD_DIR" \
    --corpus yancfg --scale 0.002 --seed 7 --reduce none 2>&1)"; then
    echo "ERROR: mismatched --reduce cache info succeeded" >&2
    exit 1
fi
if ! echo "$OUT" | grep -q "cache fingerprint mismatch"; then
    echo "ERROR: mismatch was not the typed fingerprint error: $OUT" >&2
    exit 1
fi
rm -rf "$RD_DIR"
echo "chain-built cache rejects a none-strategy open with the typed error"

echo "==> cache round-trip: streamed training is bitwise-identical to in-memory"
# Train the same tiny corpus three ways — no cache, cache-to-RAM, and
# streamed from shards with a different worker count — and require the
# checkpoint files to be byte-identical. This is the end-to-end proof
# of the magic-acfg/1 determinism contract (DESIGN.md): the cache and
# the prefetching shard stream change where bytes come from, never what
# the trainer computes.
RT_DIR="$(mktemp -d /tmp/magic_cache_rt.XXXXXX)"
RT_ARGS=(--corpus yancfg --scale 0.002 --epochs 2 --seed 7 --log-level error)
./target/release/magic train "${RT_ARGS[@]}" --out "$RT_DIR/nocache.magic"
./target/release/magic cache build --corpus yancfg --scale 0.002 --seed 7 \
    --cache-dir "$RT_DIR/cache" >/dev/null
./target/release/magic train "${RT_ARGS[@]}" --cache-dir "$RT_DIR/cache" \
    --out "$RT_DIR/ram.magic"
./target/release/magic train "${RT_ARGS[@]}" --cache-dir "$RT_DIR/cache" \
    --cache stream --train-workers 2 --out "$RT_DIR/stream.magic"
cmp "$RT_DIR/nocache.magic" "$RT_DIR/ram.magic"
cmp "$RT_DIR/nocache.magic" "$RT_DIR/stream.magic"
rm -rf "$RT_DIR"
echo "checkpoints identical across no-cache / cache-ram / cache-stream paths"

echo "==> access-log schema validation: magic report --serve on bench logs"
# The serve_load bench streams a schema-v3 access log per window into
# MAGIC_RESULTS_DIR (one ServeAccess line per request, plus a Meta
# header). Replaying each log through the offline reporter proves every
# line round-trips under the bumped schema: a hard decode error fails
# the command, and a silently-skipped line shows up as "malformed" in
# the summary header and fails the grep below. If the serve perf gate
# was skipped (no committed baseline), run the quick bench here just to
# produce the logs.
if ! ls target/ci-bench/serve_access_w*.jsonl >/dev/null 2>&1; then
    MAGIC_RESULTS_DIR="$PWD/target/ci-bench" MAGIC_BENCH_QUICK=1 \
        cargo bench -q -p magic-bench --bench serve_load
fi
for log in target/ci-bench/serve_access_w*.jsonl; do
    out="$(./target/release/magic report --serve "$log")"
    if echo "$out" | grep -q "malformed"; then
        echo "ERROR: $log has malformed access-log lines" >&2
        echo "$out" >&2
        exit 1
    fi
    if ! echo "$out" | grep -Eq "^access log: [1-9][0-9]* request"; then
        echo "ERROR: $log aggregated zero requests" >&2
        exit 1
    fi
    echo "$log: $(echo "$out" | head -n 1)"
done

echo "==> doc link check: no dangling relative links in README.md / docs/"
scripts/check_doc_links.sh

echo "==> vectorization check: SIMD microkernel emits packed FP math"
# Compile the microkernel module standalone at opt-level=3 and look for
# packed multiply / FMA instructions in the emitted assembly. Guards
# against a refactor silently de-vectorizing the 8-lane kernel (e.g. by
# introducing a loop-carried dependence the autovectorizer can't break).
# Skipped, not failed, if rustc can't emit asm for this target.
SIMD_ASM="$(mktemp /tmp/simd_probe.XXXXXX.s)"
trap 'rm -f "$SIMD_ASM"' EXIT
if rustc --edition 2021 --crate-type lib -C opt-level=3 --emit asm \
    -o "$SIMD_ASM" crates/tensor/src/simd.rs 2>/dev/null; then
    if grep -Eq '\b(mulps|vmulps|vfmadd[0-9]*ps|fmla)\b' "$SIMD_ASM"; then
        echo "packed FP instructions found in microkernel asm"
    else
        echo "ERROR: no packed FP instructions in microkernel asm" >&2
        exit 1
    fi
else
    echo "rustc --emit asm unavailable on this target; skipping vectorization check"
fi

echo "==> CI OK"
