#!/usr/bin/env bash
# Trimmed continuation used when the fast suite must fit a tight budget:
# runs everything after table3 with reduced epochs.
set -euo pipefail
cd "$(dirname "$0")/.."
mkdir -p results/logs

run() {
    local bin="$1"; shift
    echo "=== $bin $* ==="
    ./target/release/"$bin" "$@" 2>&1 | tee "results/logs/$bin.log"
}

run table4_comparison --scale 0.01 --epochs 15
run table5_yancfg --scale 0.012 --epochs 20
run fig11_esvc_improvement --scale 0.012 --epochs 20
run fig9_fig10_scores
run table2_hyperparams --scale 0.006 --epochs 5
run timing_overhead --scale 0.01
run ablation_attributes --scale 0.006 --epochs 12
run ext_wl_kernel --scale 0.01 --epochs 12
run ext_drift --scale 0.01 --epochs 12
run ext_detection --scale 0.008 --epochs 8

echo "remaining experiments complete"
