#!/usr/bin/env bash
# Regenerates the committed benchmark baselines under results/ on THIS
# machine, including the machine_info stanza that lets `magic bench diff
# --require-same-machine` (the scripts/ci.sh perf gate) know whether a
# comparison is apples-to-apples. Run from the repository root after a
# deliberate performance-relevant change, and commit the updated JSON.
set -euo pipefail
cd "$(dirname "$0")/.."

echo "==> full benchmark -> results/BENCH_train_parallel.json"
cargo bench -q -p magic-bench --bench train_parallel

echo "==> quick benchmark (CI gate baseline) -> results/BENCH_train_parallel_quick.json"
MAGIC_BENCH_QUICK=1 cargo bench -q -p magic-bench --bench train_parallel

echo "==> full benchmark -> results/BENCH_graph_conv.json"
cargo bench -q -p magic-bench --bench graph_conv

echo "==> quick benchmark (CI gate baseline) -> results/BENCH_graph_conv_quick.json"
MAGIC_BENCH_QUICK=1 cargo bench -q -p magic-bench --bench graph_conv

echo "==> full benchmark -> results/BENCH_conv_head.json"
cargo bench -q -p magic-bench --bench conv_head

echo "==> quick benchmark (CI gate baseline) -> results/BENCH_conv_head_quick.json"
MAGIC_BENCH_QUICK=1 cargo bench -q -p magic-bench --bench conv_head

echo "==> full benchmark -> results/BENCH_batched_forward.json"
cargo bench -q -p magic-bench --bench batched_forward

echo "==> quick benchmark (CI gate baseline) -> results/BENCH_batched_forward_quick.json"
MAGIC_BENCH_QUICK=1 cargo bench -q -p magic-bench --bench batched_forward

echo "==> full benchmark -> results/BENCH_graph_reduce.json"
cargo bench -q -p magic-bench --bench graph_reduce

echo "==> quick benchmark (CI gate baseline) -> results/BENCH_graph_reduce_quick.json"
MAGIC_BENCH_QUICK=1 cargo bench -q -p magic-bench --bench graph_reduce

echo "==> snapshot complete; review and commit the updated results/BENCH_*.json"
