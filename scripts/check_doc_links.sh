#!/usr/bin/env bash
# Doc-link checker: fails on dangling *relative* markdown links in
# README.md and docs/*.md. External (http/https/mailto) links and pure
# #anchors are skipped — this guards the repo's internal cross-reference
# graph (README ↔ docs/*.md ↔ scripts/ ↔ results/), which otherwise rots
# silently when files move.
set -euo pipefail
cd "$(dirname "$0")/.."

fail=0
checked=0
for doc in README.md docs/*.md; do
    dir="$(dirname "$doc")"
    # Markdown link targets: the (...) of [text](target) or [text](target "title").
    while IFS= read -r target; do
        [ -z "$target" ] && continue
        case "$target" in
            http://* | https://* | mailto:* | '#'*) continue ;;
        esac
        path="${target%%#*}"      # drop any #anchor
        path="${path%% *}"        # drop any "title"
        [ -z "$path" ] && continue
        checked=$((checked + 1))
        if [ ! -e "$dir/$path" ]; then
            echo "ERROR: $doc links to missing file: $target" >&2
            fail=1
        fi
    done < <(grep -oE '\]\([^)]+\)' "$doc" | sed -E 's/^\]\(//; s/\)$//')
done

if [ "$fail" -ne 0 ]; then
    exit 1
fi
echo "doc links OK ($checked relative links checked)"
