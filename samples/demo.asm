.text:00401000 sub_401000      proc near
.text:00401000                 push    ebp
.text:00401001                 mov     ebp, esp
.text:00401003                 mov     ecx, 10
.text:00401008 loc_401008:
.text:00401008                 xor     eax, 3Fh
.text:0040100B                 dec     ecx
.text:0040100C                 jnz     short loc_401008
.text:0040100E                 cmp     eax, 0
.text:00401011                 jz      short loc_401017
.text:00401013                 call    ds:MessageBoxA
.text:00401019                 retn
.text:00401017 loc_401017:
.text:00401017                 pop     ebp
.text:00401018                 retn
.text:00401019 sub_401000      endp
