//! Assembly code generation from family profiles.
//!
//! Produces structured control flow — straight blocks, if/else diamonds,
//! counted loops, switch dispatch, subroutine calls and packer-style
//! decoder stubs — as an [`AsmProgram`] that renders to an IDA-style
//! listing. The output deliberately goes through the *real* MAGIC
//! front-end (`magic-asm`) rather than skipping to CFGs, so parsing,
//! tagging and block building are exercised on every sample.

use crate::emitter::{AsmProgram, LabelId, Operand};
use crate::polymorph;
use crate::profile::FamilyProfile;
use magic_tensor::Rng64;

const REGISTERS: &[&str] = &["eax", "ebx", "ecx", "edx", "esi", "edi"];

const ARITH: &[&str] = &["add", "sub", "xor", "and", "or", "shl", "shr", "adc", "inc", "dec"];
const MOVS: &[&str] = &["mov", "movzx", "push", "pop", "lea", "xchg"];
const OTHERS: &[&str] = &["nop", "cld", "std", "cwde"];

/// The filler instruction kinds, matching
/// [`crate::profile::InstructionMix::weights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Filler {
    Arithmetic,
    Mov,
    Compare,
    ApiCall,
    Other,
}

const FILLER_KINDS: [Filler; 5] = [
    Filler::Arithmetic,
    Filler::Mov,
    Filler::Compare,
    Filler::ApiCall,
    Filler::Other,
];

/// The structured constructs, matching
/// [`FamilyProfile::construct_weights`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Construct {
    Straight,
    Branch,
    Loop,
    Switch,
    Call,
    Decoder,
}

const CONSTRUCT_KINDS: [Construct; 6] = [
    Construct::Straight,
    Construct::Branch,
    Construct::Loop,
    Construct::Switch,
    Construct::Call,
    Construct::Decoder,
];

/// Generates one program (an IDA-style listing body) for a family.
///
/// # Example
///
/// ```
/// use magic_synth::codegen::CodeGenerator;
/// use magic_synth::profile::FamilyProfile;
/// use magic_tensor::Rng64;
///
/// let profile = FamilyProfile::base("Demo");
/// let mut rng = Rng64::new(1);
/// let listing = CodeGenerator::new(&profile).generate(&mut rng);
/// assert!(listing.contains("retn"));
/// ```
#[derive(Debug)]
pub struct CodeGenerator<'a> {
    profile: &'a FamilyProfile,
}

impl<'a> CodeGenerator<'a> {
    /// Creates a generator for `profile`.
    pub fn new(profile: &'a FamilyProfile) -> Self {
        CodeGenerator { profile }
    }

    /// Generates a full listing (main body plus subroutines), rendered at
    /// the conventional PE image base.
    pub fn generate(&self, rng: &mut Rng64) -> String {
        let program = self.generate_program(rng);
        program.render(0x401000)
    }

    /// Generates the unrendered instruction stream.
    pub fn generate_program(&self, rng: &mut Rng64) -> AsmProgram {
        let mut asm = AsmProgram::new();
        let p = self.profile;

        // Pre-allocate subroutine labels so calls can reference them.
        let sub_labels: Vec<LabelId> = (0..p.subroutines).map(|_| asm.fresh_label()).collect();

        // Sample a block budget around the family mean.
        let jitter = 1.0 + p.block_jitter * (rng.next_f64() * 2.0 - 1.0);
        let mut budget = ((p.mean_blocks * jitter).round() as i64).max(3);

        // Function prologue.
        asm.push_text("push", &["ebp"], 1);
        asm.push_text("mov", &["ebp", "esp"], 2);
        self.gen_sequence(&mut asm, rng, &mut budget, &sub_labels, 0);
        asm.push_text("pop", &["ebp"], 1);
        asm.push_text("retn", &[], 1);

        // Subroutine bodies, each a smaller function.
        for &label in &sub_labels {
            asm.place_label(label);
            asm.push_text("push", &["ebp"], 1);
            let mut sub_budget = (budget.max(4) / 2).clamp(2, 12);
            self.gen_sequence(&mut asm, rng, &mut sub_budget, &[], 1);
            asm.push_text("pop", &["ebp"], 1);
            asm.push_text("retn", &[], 1);
        }
        asm
    }

    /// Generates a nested sub-sequence that consumes from the *shared*
    /// block budget, capped at `limit` constructs. Without this shared
    /// accounting, nested branches/switches multiply and graph sizes
    /// explode combinatorially.
    fn gen_nested(
        &self,
        asm: &mut AsmProgram,
        rng: &mut Rng64,
        budget: &mut i64,
        subs: &[LabelId],
        depth: usize,
        limit: i64,
    ) {
        if *budget <= 0 {
            // Budget exhausted: keep the construct structurally complete
            // with a single filler instruction, nothing recursive.
            self.gen_filler(asm, rng);
            *budget -= 1;
            return;
        }
        let mut child = (*budget).clamp(1, limit);
        let before = child;
        self.gen_sequence(asm, rng, &mut child, subs, depth);
        // `child` may have gone negative; charge the parent for everything
        // actually consumed (at least one block).
        *budget -= before - child;
    }

    /// Emits constructs until the block budget is exhausted.
    fn gen_sequence(
        &self,
        asm: &mut AsmProgram,
        rng: &mut Rng64,
        budget: &mut i64,
        subs: &[LabelId],
        depth: usize,
    ) {
        while *budget > 0 {
            let construct = CONSTRUCT_KINDS[rng.next_weighted(&self.profile.construct_weights())];
            match construct {
                Construct::Straight => self.gen_straight(asm, rng, budget),
                Construct::Branch if depth < 6 => self.gen_branch(asm, rng, budget, subs, depth),
                Construct::Loop if depth < 6 => self.gen_loop(asm, rng, budget, subs, depth),
                Construct::Switch if depth < 4 => self.gen_switch(asm, rng, budget, subs, depth),
                Construct::Call if !subs.is_empty() => self.gen_call(asm, rng, budget, subs),
                Construct::Decoder => self.gen_decoder(asm, rng, budget),
                _ => self.gen_straight(asm, rng, budget),
            }
        }
    }

    /// A straight block of filler instructions.
    fn gen_straight(&self, asm: &mut AsmProgram, rng: &mut Rng64, budget: &mut i64) {
        let len = self.sample_block_len(rng);
        for _ in 0..len {
            self.gen_filler(asm, rng);
        }
        *budget -= 1;
    }

    /// `cmp/jcc` diamond: condition, then-arm, else-arm, join.
    fn gen_branch(
        &self,
        asm: &mut AsmProgram,
        rng: &mut Rng64,
        budget: &mut i64,
        subs: &[LabelId],
        depth: usize,
    ) {
        let else_label = asm.fresh_label();
        let end_label = asm.fresh_label();
        self.gen_compare(asm, rng);
        let jcc = ["jz", "jnz", "jle", "jg", "jb", "jae"][rng.next_below(6)];
        asm.push(jcc, vec![Operand::Label(else_label)], 2);
        *budget -= 3;
        self.gen_nested(asm, rng, budget, subs, depth + 1, 4);
        asm.push("jmp", vec![Operand::Label(end_label)], 2);
        asm.place_label(else_label);
        self.gen_nested(asm, rng, budget, subs, depth + 1, 4);
        asm.place_label(end_label);
        self.gen_filler(asm, rng);
    }

    /// Counted loop: `mov ecx, N ; top: body ; dec ecx ; jnz top`.
    fn gen_loop(
        &self,
        asm: &mut AsmProgram,
        rng: &mut Rng64,
        budget: &mut i64,
        subs: &[LabelId],
        depth: usize,
    ) {
        let top = asm.fresh_label();
        let count = rng.next_range(2, 256);
        asm.push_text("mov", &["ecx", &format!("{count}")], 5);
        asm.place_label(top);
        *budget -= 2;
        self.gen_nested(asm, rng, budget, subs, depth + 1, 3);
        asm.push_text("dec", &["ecx"], 1);
        asm.push("jnz", vec![Operand::Label(top)], 2);
    }

    /// Switch dispatch: a chain of `cmp`/`je` to per-case blocks — the
    /// bot-command-loop shape.
    fn gen_switch(
        &self,
        asm: &mut AsmProgram,
        rng: &mut Rng64,
        budget: &mut i64,
        subs: &[LabelId],
        depth: usize,
    ) {
        let cases = rng.next_range(3, 7);
        let end_label = asm.fresh_label();
        let case_labels: Vec<LabelId> = (0..cases).map(|_| asm.fresh_label()).collect();
        for (i, &label) in case_labels.iter().enumerate() {
            asm.push_text("cmp", &["eax", &format!("{i}")], 3);
            asm.push("je", vec![Operand::Label(label)], 2);
        }
        asm.push("jmp", vec![Operand::Label(end_label)], 2);
        *budget -= (cases as i64) + 1;
        for &label in &case_labels {
            asm.place_label(label);
            self.gen_nested(asm, rng, budget, subs, depth + 1, 1);
            asm.push("jmp", vec![Operand::Label(end_label)], 2);
        }
        asm.place_label(end_label);
        self.gen_filler(asm, rng);
    }

    /// A call to one of the generated subroutines.
    fn gen_call(&self, asm: &mut AsmProgram, rng: &mut Rng64, budget: &mut i64, subs: &[LabelId]) {
        let target = subs[rng.next_below(subs.len())];
        // Argument setup then the call (creates a CFG edge to the callee).
        asm.push_text("push", &[REGISTERS[rng.next_below(REGISTERS.len())]], 1);
        asm.push("call", vec![Operand::Label(target)], 5);
        *budget -= 1;
    }

    /// A packer-style decoder: one long straight run of constant-heavy
    /// ALU/mov traffic (the Gatak/packed-dropper signature).
    fn gen_decoder(&self, asm: &mut AsmProgram, rng: &mut Rng64, budget: &mut i64) {
        let len = rng.next_range(30, 120);
        for i in 0..len {
            let reg = REGISTERS[i % REGISTERS.len()];
            match i % 4 {
                0 => asm.push_text("mov", &[reg, &format!("0x{:X}", rng.next_below(0xFFFF))], 5),
                1 => asm.push_text("xor", &[reg, &format!("0x{:X}", rng.next_below(0xFF))], 3),
                2 => asm.push_text("add", &[reg, "4"], 3),
                _ => asm.push_text("mov", &[&format!("[esi+{}]", i * 4) as &str, reg], 3),
            }
        }
        *budget -= 1;
    }

    /// One filler instruction according to the family mix (possibly
    /// preceded by junk or followed by a polymorphic block split).
    fn gen_filler(&self, asm: &mut AsmProgram, rng: &mut Rng64) {
        let p = self.profile;
        if rng.next_bool(p.junk_rate) {
            polymorph::insert_junk(asm, rng);
        }
        if rng.next_bool(p.data_decl_rate) {
            asm.push_text("db", &[&format!("{:#04X}", rng.next_below(256)) as &str], 1);
            return;
        }
        let kind = FILLER_KINDS[rng.next_weighted(&p.mix.weights())];
        let r1 = REGISTERS[rng.next_below(REGISTERS.len())];
        let r2 = REGISTERS[rng.next_below(REGISTERS.len())];
        match kind {
            Filler::Arithmetic => {
                let m = ARITH[rng.next_below(ARITH.len())];
                if m == "inc" || m == "dec" {
                    asm.push_text(m, &[r1], 1);
                } else if rng.next_bool(p.const_density) {
                    asm.push_text(m, &[r1, &format!("0x{:X}", rng.next_below(0x1000))], 3);
                } else {
                    asm.push_text(m, &[r1, r2], 2);
                }
            }
            Filler::Mov => {
                let m = MOVS[rng.next_below(MOVS.len())];
                match m {
                    "push" | "pop" => asm.push_text(m, &[r1], 1),
                    "lea" => asm.push_text(m, &[r1, &format!("[{r2}+{}]", rng.next_below(64))], 3),
                    _ if rng.next_bool(p.const_density) => {
                        asm.push_text(m, &[r1, &format!("0x{:X}", rng.next_below(0x10000))], 5)
                    }
                    _ => asm.push_text(m, &[r1, r2], 2),
                }
            }
            Filler::Compare => {
                let m = if rng.next_bool(0.5) { "cmp" } else { "test" };
                if rng.next_bool(p.const_density) {
                    asm.push_text(m, &[r1, &format!("{}", rng.next_below(100))], 3);
                } else {
                    asm.push_text(m, &[r1, r2], 2);
                }
            }
            Filler::ApiCall => {
                // Imported API: no static target, still a call instruction.
                let api = format!("ds:Api_{}", rng.next_below(40));
                asm.push_text("call", &[&api], 6);
            }
            Filler::Other => {
                asm.push_text(OTHERS[rng.next_below(OTHERS.len())], &[], 1);
            }
        }
        if rng.next_bool(p.split_rate) {
            polymorph::split_block(asm);
        }
    }

    fn gen_compare(&self, asm: &mut AsmProgram, rng: &mut Rng64) {
        let r = REGISTERS[rng.next_below(REGISTERS.len())];
        asm.push_text("cmp", &[r, &format!("{}", rng.next_below(64))], 3);
    }

    fn sample_block_len(&self, rng: &mut Rng64) -> usize {
        let mean = self.profile.block_len_mean;
        let v = mean * (0.5 + rng.next_f64());
        (v.round() as usize).max(1)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_asm::{parse_listing, CfgBuilder};
    use magic_graph::Acfg;

    #[test]
    fn generated_listing_parses_into_nontrivial_cfg() {
        let profile = FamilyProfile::base("Test");
        let mut rng = Rng64::new(7);
        let listing = CodeGenerator::new(&profile).generate(&mut rng);
        let program = parse_listing(&listing).unwrap();
        assert!(program.len() > 20, "{} instructions", program.len());
        let cfg = CfgBuilder::new(&program).build();
        assert!(cfg.block_count() >= 5, "{} blocks", cfg.block_count());
        assert!(cfg.edge_count() > 0);
        let acfg = Acfg::from_cfg(&cfg);
        assert_eq!(acfg.vertex_count(), cfg.block_count());
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let profile = FamilyProfile::base("Test");
        let a = CodeGenerator::new(&profile).generate(&mut Rng64::new(5));
        let b = CodeGenerator::new(&profile).generate(&mut Rng64::new(5));
        assert_eq!(a, b);
        let c = CodeGenerator::new(&profile).generate(&mut Rng64::new(6));
        assert_ne!(a, c);
    }

    #[test]
    fn block_budget_scales_graph_size() {
        let mut small = FamilyProfile::base("Small");
        small.mean_blocks = 10.0;
        small.block_jitter = 0.0;
        let mut large = FamilyProfile::base("Large");
        large.mean_blocks = 120.0;
        large.block_jitter = 0.0;

        let count = |p: &FamilyProfile, seed| {
            let listing = CodeGenerator::new(p).generate(&mut Rng64::new(seed));
            let program = parse_listing(&listing).unwrap();
            CfgBuilder::new(&program).build().block_count()
        };
        let s: usize = (0..5).map(|i| count(&small, i)).sum();
        let l: usize = (0..5).map(|i| count(&large, i)).sum();
        assert!(l > s * 2, "small {s}, large {l}");
    }

    #[test]
    fn decoder_heavy_profile_has_longer_blocks() {
        let mut packer = FamilyProfile::base("Packer");
        packer.decoder_weight = 5.0;
        packer.branch_weight = 0.1;
        packer.loop_weight = 0.1;
        let mut branchy = FamilyProfile::base("Branchy");
        branchy.decoder_weight = 0.0;
        branchy.branch_weight = 5.0;

        let avg_block_len = |p: &FamilyProfile| {
            let listing = CodeGenerator::new(p).generate(&mut Rng64::new(3));
            let program = parse_listing(&listing).unwrap();
            let cfg = CfgBuilder::new(&program).build();
            cfg.instruction_count() as f64 / cfg.block_count() as f64
        };
        assert!(avg_block_len(&packer) > avg_block_len(&branchy));
    }

    #[test]
    fn block_count_stays_proportional_to_budget_for_every_construct() {
        // Nested constructs share the block budget; without that
        // accounting a switch-heavy profile explodes combinatorially
        // (x14 was observed before the fix). Assert each pure-construct
        // profile stays within a small constant factor of its budget.
        let cases: [(&str, fn(&mut FamilyProfile)); 3] = [
            ("branch", |p| p.branch_weight = 1.0),
            ("loop", |p| p.loop_weight = 1.0),
            ("switch", |p| p.switch_weight = 1.0),
        ];
        for (name, set) in cases {
            let mut profile = FamilyProfile::base("T");
            profile.mean_blocks = 100.0;
            profile.block_jitter = 0.0;
            profile.subroutines = 0;
            profile.junk_rate = 0.0;
            profile.split_rate = 0.0;
            profile.straight_weight = 0.0;
            profile.branch_weight = 0.0;
            profile.loop_weight = 0.0;
            profile.switch_weight = 0.0;
            profile.call_weight = 0.0;
            profile.decoder_weight = 0.0;
            set(&mut profile);
            let listing = CodeGenerator::new(&profile).generate(&mut Rng64::new(1));
            let program = parse_listing(&listing).unwrap();
            let blocks = CfgBuilder::new(&program).build().block_count();
            assert!(
                blocks <= 300,
                "{name}: budget 100 produced {blocks} blocks"
            );
            assert!(blocks >= 30, "{name}: budget 100 produced only {blocks} blocks");
        }
    }

    #[test]
    fn switch_profile_produces_high_fanout() {
        let mut bot = FamilyProfile::base("Bot");
        bot.switch_weight = 4.0;
        bot.branch_weight = 0.2;
        bot.loop_weight = 0.2;
        let listing = CodeGenerator::new(&bot).generate(&mut Rng64::new(11));
        let program = parse_listing(&listing).unwrap();
        let cfg = CfgBuilder::new(&program).build();
        let max_out = (0..cfg.block_count()).map(|v| cfg.out_degree(v)).max().unwrap();
        assert!(max_out >= 2, "max out-degree {max_out}");
    }
}
