//! The YANCFG-like corpus: pre-extracted attributed CFGs in the thirteen
//! families of Fig. 8 (twelve malware families plus `Benign`).
//!
//! Unlike [`crate::mskcfg`], which emits assembly text, this generator
//! emits [`Acfg`]s directly — mirroring how the real YANCFG dataset ships
//! CFGs rather than listings (Section V-A explains the two corpora are
//! not interchangeable for exactly this reason). Graphs are assembled
//! from control-flow motifs (chains, diamonds, loops, switch fans, call
//! hubs); vertex attributes are sampled from family-conditioned
//! distributions, with the four IRC-bot families (Ldpinch, Lmir, Rbot,
//! Sdbot) given overlapping profiles so the classifier's difficulty
//! ranking matches Table V.

use crate::profile::{FamilyProfile, InstructionMix};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_tensor::{Rng64, Tensor};

/// The thirteen YANCFG family names, in the paper's order.
pub const YANCFG_FAMILIES: [&str; 13] = [
    "Bagle", "Benign", "Bifrose", "Hupigon", "Koobface", "Ldpinch", "Lmir", "Rbot", "Sdbot",
    "Swizzor", "Vundo", "Zbot", "Zlob",
];

/// Family sample counts (proportions of Fig. 8; totals 16,351 at scale
/// 1.0).
pub const YANCFG_COUNTS: [usize; 13] =
    [100, 1900, 1300, 3300, 500, 360, 210, 1500, 450, 2900, 1600, 1000, 1231];

/// One generated sample: the ACFG plus its family label.
#[derive(Debug, Clone)]
pub struct CfgSample {
    /// The attributed control flow graph.
    pub acfg: Acfg,
    /// Index into [`YANCFG_FAMILIES`].
    pub label: usize,
}

/// How strongly a family's samples scatter around its profile; higher
/// values blur the family into its neighbours.
fn family_noise(label: usize) -> f64 {
    match YANCFG_FAMILIES[label] {
        // The bot families overlap heavily (paper: recall ~0.5 for
        // Ldpinch/Sdbot, precision ~0.64-0.70 for Rbot).
        "Ldpinch" | "Sdbot" => 0.9,
        "Rbot" | "Lmir" => 0.7,
        // Koobface and Swizzor are nearly perfectly separable.
        "Koobface" | "Swizzor" => 0.08,
        _ => 0.3,
    }
}

/// The per-family generative profiles.
pub fn yancfg_profiles() -> Vec<FamilyProfile> {
    let mut profiles = Vec::with_capacity(13);

    let mut bagle = FamilyProfile::base("Bagle");
    bagle.mean_blocks = 30.0;
    bagle.loop_weight = 3.2;
    bagle.block_jitter = 0.2;
    bagle.mix = InstructionMix { arithmetic: 1.0, mov: 1.6, compare: 0.6, api_call: 0.9, other: 0.2 };
    profiles.push(bagle);

    let mut benign = FamilyProfile::base("Benign");
    benign.mean_blocks = 80.0;
    benign.block_jitter = 0.8; // benign software is the most diverse class
    benign.branch_weight = 1.4;
    benign.call_weight = 1.4;
    benign.mix = InstructionMix { arithmetic: 1.0, mov: 1.8, compare: 1.0, api_call: 1.2, other: 0.4 };
    profiles.push(benign);

    let mut bifrose = FamilyProfile::base("Bifrose");
    bifrose.mean_blocks = 65.0;
    bifrose.switch_weight = 1.2;
    bifrose.block_jitter = 0.25;
    bifrose.call_weight = 1.5;
    bifrose.mix = InstructionMix { arithmetic: 0.5, mov: 1.4, compare: 1.0, api_call: 2.2, other: 0.3 };
    profiles.push(bifrose);

    let mut hupigon = FamilyProfile::base("Hupigon");
    hupigon.mean_blocks = 120.0;
    hupigon.call_weight = 2.4;
    hupigon.block_jitter = 0.25;
    hupigon.branch_weight = 1.6;
    hupigon.mix = InstructionMix { arithmetic: 0.9, mov: 1.7, compare: 1.0, api_call: 1.6, other: 0.3 };
    profiles.push(hupigon);

    let mut koobface = FamilyProfile::base("Koobface");
    koobface.mean_blocks = 48.0;
    koobface.block_jitter = 0.1;
    koobface.loop_weight = 2.8;
    koobface.switch_weight = 1.8;
    koobface.block_len_mean = 8.0;
    koobface.const_density = 0.75;
    koobface.mix = InstructionMix { arithmetic: 2.2, mov: 0.8, compare: 1.6, api_call: 0.5, other: 0.1 };
    profiles.push(koobface);

    // The four overlapping IRC-bot families: identical base with small
    // deltas, separated mostly by size.
    let mut bot = FamilyProfile::base("Ldpinch");
    bot.mean_blocks = 40.0;
    bot.switch_weight = 1.5;
    bot.loop_weight = 0.9;
    bot.mix = InstructionMix { arithmetic: 1.0, mov: 1.2, compare: 1.3, api_call: 1.0, other: 0.4 };
    let mut ldpinch = bot.clone();
    ldpinch.name = "Ldpinch";
    ldpinch.mean_blocks = 36.0;
    profiles.push(ldpinch);
    let mut lmir = bot.clone();
    lmir.name = "Lmir";
    lmir.mean_blocks = 44.0;
    lmir.loop_weight = 1.1;
    profiles.push(lmir);
    let mut rbot = bot.clone();
    rbot.name = "Rbot";
    rbot.mean_blocks = 52.0;
    rbot.switch_weight = 1.8;
    profiles.push(rbot);
    let mut sdbot = bot.clone();
    sdbot.name = "Sdbot";
    sdbot.mean_blocks = 48.0;
    sdbot.switch_weight = 1.6;
    profiles.push(sdbot);

    let mut swizzor = FamilyProfile::base("Swizzor");
    swizzor.mean_blocks = 95.0;
    swizzor.block_jitter = 0.12;
    swizzor.decoder_weight = 1.5;
    swizzor.block_len_mean = 9.0;
    swizzor.data_decl_rate = 0.10;
    swizzor.mix = InstructionMix { arithmetic: 1.6, mov: 2.4, compare: 0.3, api_call: 0.2, other: 0.2 };
    profiles.push(swizzor);

    let mut vundo = FamilyProfile::base("Vundo");
    vundo.mean_blocks = 26.0;
    vundo.block_len_mean = 7.0;
    vundo.const_density = 0.9;
    vundo.block_jitter = 0.2;
    vundo.mix = InstructionMix { arithmetic: 3.4, mov: 0.8, compare: 0.4, api_call: 0.2, other: 0.1 };
    profiles.push(vundo);

    let mut zbot = FamilyProfile::base("Zbot");
    zbot.mean_blocks = 70.0;
    zbot.branch_weight = 1.8;
    zbot.loop_weight = 1.3;
    zbot.const_density = 0.6;
    zbot.block_jitter = 0.25;
    zbot.junk_rate = 0.18;
    zbot.mix = InstructionMix { arithmetic: 1.5, mov: 1.2, compare: 1.4, api_call: 0.8, other: 0.2 };
    profiles.push(zbot);

    let mut zlob = FamilyProfile::base("Zlob");
    zlob.mean_blocks = 55.0;
    zlob.call_weight = 1.0;
    zlob.data_decl_rate = 0.12;
    zlob.block_jitter = 0.25;
    zlob.decoder_weight = 1.4;
    zlob.mix = InstructionMix { arithmetic: 1.1, mov: 1.8, compare: 0.6, api_call: 0.6, other: 0.3 };
    profiles.push(zlob);

    profiles
}

/// Deterministic generator for the YANCFG-like corpus.
///
/// # Example
///
/// ```
/// use magic_synth::yancfg::YancfgGenerator;
///
/// let samples = YancfgGenerator::new(1, 0.003).generate();
/// assert!(samples.iter().all(|s| s.acfg.vertex_count() >= 2));
/// ```
#[derive(Debug)]
pub struct YancfgGenerator {
    rng: Rng64,
    scale: f64,
    profiles: Vec<FamilyProfile>,
}

impl YancfgGenerator {
    /// Creates a generator; `scale` works as in
    /// [`crate::mskcfg::MskcfgGenerator::new`].
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        YancfgGenerator { rng: Rng64::new(seed), scale, profiles: yancfg_profiles() }
    }

    /// Creates a generator whose family profiles have *drifted* by the
    /// given relative amount — bigger programs, heavier obfuscation,
    /// shifted instruction mixes. Models the paper's future-work concern
    /// that "malware development trends after the collection of these two
    /// datasets introduce new challenges" (Section V-E); the
    /// `ext_drift` experiment trains on the un-drifted corpus and
    /// evaluates on this one.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0` and `0 <= drift`.
    pub fn with_drift(seed: u64, scale: f64, drift: f64) -> Self {
        assert!(drift >= 0.0, "drift must be non-negative");
        let mut generator = Self::new(seed, scale);
        for profile in &mut generator.profiles {
            profile.mean_blocks *= 1.0 + 0.5 * drift;
            profile.junk_rate = (profile.junk_rate + 0.3 * drift).min(0.9);
            profile.split_rate = (profile.split_rate + 0.15 * drift).min(0.5);
            profile.const_density = (profile.const_density * (1.0 - 0.4 * drift)).max(0.05);
            profile.mix.api_call *= 1.0 + drift;
            profile.mix.arithmetic *= 1.0 + 0.5 * drift;
        }
        generator
    }

    /// Number of samples per family at this scale.
    pub fn family_counts(&self) -> Vec<usize> {
        YANCFG_COUNTS
            .iter()
            .map(|&c| ((c as f64 * self.scale).round() as usize).max(10))
            .collect()
    }

    /// Generates one ACFG of family `label`.
    pub fn generate_one(&mut self, label: usize) -> CfgSample {
        let mut rng = self.rng.fork();
        let profile = self.profiles[label].clone();
        let noise = family_noise(label);
        let graph = generate_structure(&profile, noise, &mut rng);
        let attributes = generate_attributes(&graph, &profile, noise, &mut rng);
        CfgSample { acfg: Acfg::new(graph, attributes), label }
    }

    /// Generates the whole corpus (shuffled).
    pub fn generate(&mut self) -> Vec<CfgSample> {
        self.plan()
            .into_iter()
            .map(|(label, mut rng)| Self::render(&self.profiles, label, &mut rng))
            .collect()
    }

    /// Plans the whole corpus without rendering any graph; the RNG
    /// schedule matches [`generate`](Self::generate) exactly (serial
    /// label-major forks, then a shuffle from one final fork), so
    /// rendering the plan entries in order — on any worker — reproduces
    /// `generate()` bitwise. See
    /// [`crate::mskcfg::MskcfgGenerator::plan`].
    pub fn plan(&mut self) -> Vec<(usize, Rng64)> {
        let counts = self.family_counts();
        let mut plan = Vec::with_capacity(counts.iter().sum());
        for (label, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                plan.push((label, self.rng.fork()));
            }
        }
        let mut rng = self.rng.fork();
        rng.shuffle(&mut plan);
        plan
    }

    /// Renders one planned sample. Pure in `(profiles, label, rng)`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn render(profiles: &[FamilyProfile], label: usize, rng: &mut Rng64) -> CfgSample {
        let profile = profiles[label].clone();
        let noise = family_noise(label);
        let graph = generate_structure(&profile, noise, rng);
        let attributes = generate_attributes(&graph, &profile, noise, rng);
        CfgSample { acfg: Acfg::new(graph, attributes), label }
    }

    /// The per-family profiles this generator renders with (drifted
    /// profiles when built via [`with_drift`](Self::with_drift)).
    pub fn profiles(&self) -> &[FamilyProfile] {
        &self.profiles
    }
}

/// Assembles a CFG-shaped directed graph from control-flow motifs.
fn generate_structure(profile: &FamilyProfile, noise: f64, rng: &mut Rng64) -> DiGraph {
    let jitter = 1.0 + (profile.block_jitter + 0.3 * noise) * (rng.next_f64() * 2.0 - 1.0);
    let target = ((profile.mean_blocks * jitter).round() as usize).max(4);

    let mut g = DiGraph::new(1); // entry vertex 0
    let mut exit = 0usize;
    let weights = profile.construct_weights();
    while g.vertex_count() < target {
        match rng.next_weighted(&weights) {
            // Straight chain.
            0 => {
                let len = rng.next_range(1, 4);
                for _ in 0..len {
                    let v = g.add_vertex();
                    g.add_edge(exit, v);
                    exit = v;
                }
            }
            // Diamond: exit -> a, b; a, b -> join.
            1 => {
                let a = g.add_vertex();
                let b = g.add_vertex();
                let join = g.add_vertex();
                g.add_edge(exit, a);
                g.add_edge(exit, b);
                g.add_edge(a, join);
                g.add_edge(b, join);
                exit = join;
            }
            // Loop: exit -> head; head -> body -> head; head -> out.
            2 => {
                let head = g.add_vertex();
                let body = g.add_vertex();
                let out = g.add_vertex();
                g.add_edge(exit, head);
                g.add_edge(head, body);
                g.add_edge(body, head);
                g.add_edge(head, out);
                exit = out;
            }
            // Switch fan: exit -> case_i -> join.
            3 => {
                let cases = rng.next_range(3, 7);
                let join = g.add_vertex();
                for _ in 0..cases {
                    let c = g.add_vertex();
                    g.add_edge(exit, c);
                    g.add_edge(c, join);
                }
                exit = join;
            }
            // Call hub: exit -> hub; hub -> callee chain -> hub; hub -> out.
            4 => {
                let hub = g.add_vertex();
                g.add_edge(exit, hub);
                let callees = rng.next_range(1, 4);
                for _ in 0..callees {
                    let c1 = g.add_vertex();
                    let c2 = g.add_vertex();
                    g.add_edge(hub, c1);
                    g.add_edge(c1, c2);
                    g.add_edge(c2, hub);
                }
                let out = g.add_vertex();
                g.add_edge(hub, out);
                exit = out;
            }
            // Decoder stub: one long chain (its vertices will receive
            // long-block attributes below because of their degree-1
            // shape).
            _ => {
                let len = rng.next_range(2, 5);
                for _ in 0..len {
                    let v = g.add_vertex();
                    g.add_edge(exit, v);
                    exit = v;
                }
            }
        }
    }
    // Structural noise: a few random cross edges, more for noisy families.
    let n = g.vertex_count();
    let extra = ((n as f64) * 0.05 * (1.0 + noise)) as usize;
    for _ in 0..extra {
        let u = rng.next_below(n);
        let v = rng.next_below(n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    g
}

/// Samples the Table I attribute matrix for a generated structure.
fn generate_attributes(
    graph: &DiGraph,
    profile: &FamilyProfile,
    noise: f64,
    rng: &mut Rng64,
) -> Tensor {
    let n = graph.vertex_count();
    let mut attrs = Tensor::zeros([n, NUM_ATTRIBUTES]);
    // Per-sample drift blurs the family statistics; noisy families drift
    // further from their profile means.
    let drift = 1.0 + noise * (rng.next_f64() * 2.0 - 1.0);
    let mix = profile.mix.weights();
    let mix_total: f64 = mix.iter().sum();
    for v in 0..n {
        let out_deg = graph.out_degree(v) as f32;
        let len_mean = profile.block_len_mean * drift * (0.5 + rng.next_f64());
        let total = (sample_poissonish(len_mean, rng) + 1) as f32;

        // Split `total` into the five filler categories by the mix.
        let mut row = [0.0f32; NUM_ATTRIBUTES];
        let mut assigned = 0.0f32;
        // [arith, mov, compare, api_call, other] -> attribute channels.
        let channels = [3usize, 5, 4, 2, usize::MAX];
        for (w, &ch) in mix.iter().zip(&channels) {
            let share = ((total as f64) * w / mix_total).round() as f32;
            if ch != usize::MAX {
                row[ch] += share;
            }
            assigned += share;
        }
        // Structure-implied instructions: a branchy vertex ends in a
        // compare + transfer, a sink ends in a termination.
        if out_deg >= 2.0 {
            row[4] += 1.0; // compare
            row[1] += out_deg - 1.0; // transfer
        }
        if out_deg == 0.0 {
            row[6] += 1.0; // termination
        }
        let data_decls = if rng.next_bool(profile.data_decl_rate * 5.0) {
            rng.next_below(3) as f32
        } else {
            0.0
        };
        row[7] = data_decls;
        let grand_total = (assigned + row[1] + row[4].min(1.0) + row[6] + data_decls).max(1.0);
        row[8] = grand_total;
        row[0] = (grand_total as f64 * profile.const_density * drift).round() as f32; // constants
        row[9] = out_deg;
        row[10] = grand_total;
        attrs.set_row(v, &row);
    }
    attrs
}

/// Cheap Poisson-ish sampler (sum of two geometrics clipped), adequate
/// for attribute counts.
fn sample_poissonish(mean: f64, rng: &mut Rng64) -> usize {
    if mean <= 0.0 {
        return 0;
    }
    let u = rng.next_f64().max(1e-9);
    let v = rng.next_f64().max(1e-9);
    let x = -mean / 2.0 * u.ln() - mean / 2.0 * v.ln();
    x.round().min(mean * 8.0) as usize
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_graph::{Attribute, GraphStats};

    #[test]
    fn thirteen_profiles_matching_names() {
        let profiles = yancfg_profiles();
        assert_eq!(profiles.len(), 13);
        for (p, name) in profiles.iter().zip(YANCFG_FAMILIES) {
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn counts_sum_to_fig8_total() {
        assert_eq!(YANCFG_COUNTS.iter().sum::<usize>(), 16_351);
    }

    #[test]
    fn generated_acfgs_are_wellformed() {
        let mut gen = YancfgGenerator::new(2, 0.002);
        let samples = gen.generate();
        assert!(samples.len() >= 130);
        for s in &samples {
            assert!(s.acfg.vertex_count() >= 4);
            assert!(s.acfg.attributes().all_finite());
            // Offspring channel must equal the real out-degree.
            for v in 0..s.acfg.vertex_count() {
                assert_eq!(
                    s.acfg.attribute(v, Attribute::Offspring),
                    s.acfg.graph().out_degree(v) as f32
                );
            }
        }
    }

    #[test]
    fn entry_reaches_most_of_the_graph() {
        let mut gen = YancfgGenerator::new(3, 0.002);
        let s = gen.generate_one(3); // Hupigon, large
        let stats = GraphStats::of(&s.acfg);
        assert!(stats.entry_coverage > 0.9, "coverage {}", stats.entry_coverage);
    }

    #[test]
    fn bot_families_overlap_more_than_distinct_ones() {
        // Feature distance between family mean vectors: Rbot vs Sdbot
        // should be far smaller than Koobface vs Swizzor.
        let mut gen = YancfgGenerator::new(5, 0.002);
        let mean_vec = |label: usize, gen: &mut YancfgGenerator| -> Vec<f64> {
            let mut acc = [0.0f64; NUM_ATTRIBUTES];
            let reps = 10;
            for _ in 0..reps {
                let s = gen.generate_one(label);
                let sums = s.acfg.attributes().sum_rows();
                let n = s.acfg.vertex_count() as f64;
                for (a, x) in acc.iter_mut().zip(&sums) {
                    *a += *x as f64 / n;
                }
            }
            acc.iter().map(|a| a / reps as f64).collect()
        };
        let dist = |a: &[f64], b: &[f64]| -> f64 {
            a.iter().zip(b).map(|(x, y)| (x - y).powi(2)).sum::<f64>().sqrt()
        };
        let rbot = mean_vec(7, &mut gen);
        let sdbot = mean_vec(8, &mut gen);
        let koob = mean_vec(4, &mut gen);
        let swizzor = mean_vec(9, &mut gen);
        assert!(
            dist(&rbot, &sdbot) < dist(&koob, &swizzor),
            "bots {:.2} vs distinct {:.2}",
            dist(&rbot, &sdbot),
            dist(&koob, &swizzor)
        );
    }

    #[test]
    fn plan_then_render_matches_generate_bitwise() {
        let samples = YancfgGenerator::new(8, 0.002).generate();
        let mut planner = YancfgGenerator::new(8, 0.002);
        let plan = planner.plan();
        assert_eq!(plan.len(), samples.len());
        let mut rendered: Vec<(usize, CfgSample)> = plan
            .into_iter()
            .enumerate()
            .rev() // out of order: rendering must be order-independent
            .map(|(i, (label, mut rng))| {
                (i, YancfgGenerator::render(planner.profiles(), label, &mut rng))
            })
            .collect();
        rendered.sort_by_key(|(i, _)| *i);
        for ((_, r), s) in rendered.iter().zip(&samples) {
            assert_eq!(r.label, s.label);
            assert_eq!(r.acfg.vertex_count(), s.acfg.vertex_count());
            assert!(r.acfg.attributes().approx_eq(s.acfg.attributes(), 0.0));
        }
    }

    #[test]
    fn determinism_per_seed() {
        let a = YancfgGenerator::new(4, 0.001).generate_one(0);
        let b = YancfgGenerator::new(4, 0.001).generate_one(0);
        assert_eq!(a.acfg.vertex_count(), b.acfg.vertex_count());
        assert!(a.acfg.attributes().approx_eq(b.acfg.attributes(), 0.0));
    }
}
