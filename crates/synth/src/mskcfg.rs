//! The MSKCFG-like corpus: IDA-style `.asm` listings in the nine families
//! of the 2015 Microsoft Malware Classification Challenge (Fig. 7).

use crate::codegen::CodeGenerator;
use crate::profile::{FamilyProfile, InstructionMix};
use magic_tensor::Rng64;

/// The nine MSKCFG family names, in the paper's order.
pub const MSKCFG_FAMILIES: [&str; 9] = [
    "Ramnit",
    "Lollipop",
    "Kelihos_ver3",
    "Vundo",
    "Simda",
    "Tracur",
    "Kelihos_ver1",
    "Obfuscator.ACY",
    "Gatak",
];

/// Family sample counts of the Kaggle training set (Fig. 7), which the
/// generator scales down proportionally.
pub const MSKCFG_COUNTS: [usize; 9] = [1541, 2478, 2942, 475, 42, 751, 398, 1228, 1013];

/// One generated sample: the rendered listing plus its family label.
#[derive(Debug, Clone)]
pub struct AsmSample {
    /// IDA-style `.asm` listing text.
    pub listing: String,
    /// Index into [`MSKCFG_FAMILIES`].
    pub label: usize,
}

/// The per-family generative profiles.
///
/// Each family gets a distinct structural fingerprint, mirroring what is
/// known about the real families: Ramnit (file infector) is loop-heavy;
/// Lollipop (adware) is API-call-heavy with large graphs; Kelihos v3/v1
/// (spam bots) carry wide switch dispatch, v3 bigger than v1; Vundo is a
/// small arithmetic-dense injector; Simda is tiny and junk-laden;
/// Tracur spreads through transfer-dense trampolines; Obfuscator.ACY is
/// polymorphism dialed to the maximum; Gatak hides behind long
/// packer-style decoder stubs.
pub fn mskcfg_profiles() -> Vec<FamilyProfile> {
    let mut profiles = Vec::with_capacity(9);

    let mut ramnit = FamilyProfile::base("Ramnit");
    ramnit.mean_blocks = 55.0;
    ramnit.loop_weight = 3.5;
    ramnit.block_jitter = 0.25;
    ramnit.branch_weight = 1.2;
    ramnit.call_weight = 0.8;
    ramnit.mix = InstructionMix { arithmetic: 1.2, mov: 1.5, compare: 0.7, api_call: 0.4, other: 0.2 };
    profiles.push(ramnit);

    let mut lollipop = FamilyProfile::base("Lollipop");
    lollipop.mean_blocks = 90.0;
    lollipop.call_weight = 2.2;
    lollipop.subroutines = 8;
    lollipop.branch_weight = 1.5;
    lollipop.block_jitter = 0.25;
    lollipop.mix = InstructionMix { arithmetic: 0.4, mov: 2.5, compare: 0.6, api_call: 3.0, other: 0.2 };
    profiles.push(lollipop);

    let mut kelihos3 = FamilyProfile::base("Kelihos_ver3");
    kelihos3.mean_blocks = 110.0;
    kelihos3.switch_weight = 3.5;
    kelihos3.block_jitter = 0.25;
    kelihos3.loop_weight = 1.0;
    kelihos3.subroutines = 6;
    kelihos3.block_len_mean = 3.0;
    kelihos3.mix = InstructionMix { arithmetic: 0.8, mov: 1.4, compare: 1.6, api_call: 1.0, other: 0.2 };
    profiles.push(kelihos3);

    let mut vundo = FamilyProfile::base("Vundo");
    vundo.mean_blocks = 22.0;
    vundo.block_len_mean = 7.0;
    vundo.const_density = 0.9;
    vundo.block_jitter = 0.25;
    vundo.mix = InstructionMix { arithmetic: 3.5, mov: 0.8, compare: 0.4, api_call: 0.2, other: 0.1 };
    profiles.push(vundo);

    let mut simda = FamilyProfile::base("Simda");
    simda.mean_blocks = 14.0;
    simda.junk_rate = 0.45;
    simda.split_rate = 0.08;
    simda.block_len_mean = 3.5;
    simda.mix = InstructionMix { arithmetic: 0.8, mov: 1.0, compare: 0.5, api_call: 0.5, other: 2.2 };
    profiles.push(simda);

    let mut tracur = FamilyProfile::base("Tracur");
    tracur.mean_blocks = 60.0;
    tracur.split_rate = 0.22;
    tracur.block_jitter = 0.25;
    tracur.branch_weight = 2.0;
    tracur.block_len_mean = 2.0;
    tracur.mix = InstructionMix { arithmetic: 0.8, mov: 1.3, compare: 1.0, api_call: 0.7, other: 0.4 };
    profiles.push(tracur);

    let mut kelihos1 = FamilyProfile::base("Kelihos_ver1");
    kelihos1.mean_blocks = 45.0;
    kelihos1.switch_weight = 1.2;
    kelihos1.loop_weight = 2.2;
    kelihos1.block_jitter = 0.25;
    kelihos1.block_len_mean = 4.5;
    kelihos1.mix = InstructionMix { arithmetic: 0.7, mov: 1.0, compare: 2.4, api_call: 0.5, other: 0.2 };
    profiles.push(kelihos1);

    let mut obf = FamilyProfile::base("Obfuscator.ACY");
    obf.mean_blocks = 70.0;
    obf.junk_rate = 0.5;
    obf.split_rate = 0.15;
    obf.const_density = 0.8;
    obf.data_decl_rate = 0.12;
    obf.mix = InstructionMix { arithmetic: 1.8, mov: 1.0, compare: 0.6, api_call: 0.3, other: 1.2 };
    profiles.push(obf);

    let mut gatak = FamilyProfile::base("Gatak");
    gatak.mean_blocks = 35.0;
    gatak.decoder_weight = 3.5;
    gatak.block_jitter = 0.25;
    gatak.branch_weight = 0.5;
    gatak.loop_weight = 0.8;
    gatak.data_decl_rate = 0.15;
    gatak.mix = InstructionMix { arithmetic: 1.4, mov: 1.6, compare: 0.3, api_call: 0.2, other: 0.2 };
    profiles.push(gatak);

    profiles
}

/// Deterministic generator for the MSKCFG-like corpus.
///
/// # Example
///
/// ```
/// use magic_synth::mskcfg::{MskcfgGenerator, MSKCFG_FAMILIES};
///
/// let samples = MskcfgGenerator::new(7, 0.005).generate();
/// assert!(samples.iter().all(|s| s.label < MSKCFG_FAMILIES.len()));
/// ```
#[derive(Debug)]
pub struct MskcfgGenerator {
    rng: Rng64,
    scale: f64,
    profiles: Vec<FamilyProfile>,
}

impl MskcfgGenerator {
    /// Creates a generator. `scale` multiplies the Fig. 7 family counts
    /// (1.0 reproduces the full 10,868-sample corpus size; 0.1 gives a
    /// laptop-sized corpus with the same proportions). Every family keeps
    /// at least 10 samples so 5-fold stratified CV stays well-defined.
    ///
    /// # Panics
    ///
    /// Panics unless `scale > 0`.
    pub fn new(seed: u64, scale: f64) -> Self {
        assert!(scale > 0.0, "scale must be positive");
        MskcfgGenerator { rng: Rng64::new(seed), scale, profiles: mskcfg_profiles() }
    }

    /// Number of samples per family at this scale.
    pub fn family_counts(&self) -> Vec<usize> {
        MSKCFG_COUNTS
            .iter()
            .map(|&c| ((c as f64 * self.scale).round() as usize).max(10))
            .collect()
    }

    /// Generates one sample of family `label`.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn generate_one(&mut self, label: usize) -> AsmSample {
        let profile = &self.profiles[label];
        let mut sample_rng = self.rng.fork();
        let listing = CodeGenerator::new(profile).generate(&mut sample_rng);
        AsmSample { listing, label }
    }

    /// Generates the whole corpus (shuffled).
    pub fn generate(&mut self) -> Vec<AsmSample> {
        self.plan()
            .into_iter()
            .map(|(label, mut rng)| Self::render(&self.profiles, label, &mut rng))
            .collect()
    }

    /// Plans the whole corpus without rendering any listing: per-sample
    /// RNG streams are forked serially in label-major order, then the
    /// `(label, rng)` pairs are shuffled with a final fork — exactly the
    /// RNG schedule [`generate`](Self::generate) uses, so rendering the
    /// plan in order (serially or across workers) reproduces `generate()`
    /// bitwise. [`Rng64::shuffle`] consumes the same draws for any
    /// element type, which is what makes planning separable from
    /// rendering.
    pub fn plan(&mut self) -> Vec<(usize, Rng64)> {
        let counts = self.family_counts();
        let mut plan = Vec::with_capacity(counts.iter().sum());
        for (label, &count) in counts.iter().enumerate() {
            for _ in 0..count {
                plan.push((label, self.rng.fork()));
            }
        }
        let mut rng = self.rng.fork();
        rng.shuffle(&mut plan);
        plan
    }

    /// Renders one planned sample. Pure in `(profiles, label, rng)`, so
    /// plan entries can be rendered in any order or on any worker.
    ///
    /// # Panics
    ///
    /// Panics if `label` is out of range.
    pub fn render(profiles: &[FamilyProfile], label: usize, rng: &mut Rng64) -> AsmSample {
        let listing = CodeGenerator::new(&profiles[label]).generate(rng);
        AsmSample { listing, label }
    }

    /// The per-family profiles this generator renders with.
    pub fn profiles(&self) -> &[FamilyProfile] {
        &self.profiles
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_asm::{parse_listing, CfgBuilder};
    use magic_graph::{Acfg, Attribute};

    #[test]
    fn nine_profiles_with_distinct_names() {
        let profiles = mskcfg_profiles();
        assert_eq!(profiles.len(), 9);
        for (p, name) in profiles.iter().zip(MSKCFG_FAMILIES) {
            assert_eq!(p.name, name);
        }
    }

    #[test]
    fn counts_follow_fig7_proportions() {
        let gen = MskcfgGenerator::new(1, 0.1);
        let counts = gen.family_counts();
        // Kelihos_ver3 is the largest family, Simda the smallest.
        let max = counts.iter().max().unwrap();
        let min = counts.iter().min().unwrap();
        assert_eq!(counts[2], *max);
        assert_eq!(counts[4], *min);
        assert!(counts[4] >= 10, "stratified CV needs >= 10 per family");
    }

    #[test]
    fn every_sample_parses_into_an_acfg() {
        let mut gen = MskcfgGenerator::new(3, 0.002);
        let samples = gen.generate();
        assert!(samples.len() >= 90);
        for s in &samples {
            let p = parse_listing(&s.listing).unwrap();
            let cfg = CfgBuilder::new(&p).build();
            let acfg = Acfg::from_cfg(&cfg);
            assert!(acfg.vertex_count() >= 2, "family {}", MSKCFG_FAMILIES[s.label]);
        }
    }

    #[test]
    fn families_are_structurally_distinguishable_on_average() {
        // Gatak (packer) must have longer average blocks than Tracur
        // (trampoline-dense); Kelihos_ver3 must be bigger than Vundo.
        let mut gen = MskcfgGenerator::new(9, 0.002);
        let stats = |label: usize, gen: &mut MskcfgGenerator| {
            let mut total_len = 0.0;
            let mut total_blocks = 0.0;
            for _ in 0..8 {
                let s = gen.generate_one(label);
                let p = parse_listing(&s.listing).unwrap();
                let cfg = CfgBuilder::new(&p).build();
                total_len += cfg.instruction_count() as f64 / cfg.block_count() as f64;
                total_blocks += cfg.block_count() as f64;
            }
            (total_len / 8.0, total_blocks / 8.0)
        };
        let (gatak_len, _) = stats(8, &mut gen);
        let (tracur_len, _) = stats(5, &mut gen);
        assert!(gatak_len > tracur_len, "gatak {gatak_len:.1} vs tracur {tracur_len:.1}");
        let (_, k3_blocks) = stats(2, &mut gen);
        let (_, vundo_blocks) = stats(3, &mut gen);
        assert!(k3_blocks > vundo_blocks * 2.0);
    }

    #[test]
    fn plan_then_render_matches_generate_bitwise() {
        let samples = MskcfgGenerator::new(11, 0.002).generate();
        let mut planner = MskcfgGenerator::new(11, 0.002);
        let plan = planner.plan();
        assert_eq!(plan.len(), samples.len());
        // Render out of order to prove rendering is order-independent.
        let mut rendered: Vec<(usize, AsmSample)> = plan
            .into_iter()
            .enumerate()
            .rev()
            .map(|(i, (label, mut rng))| {
                (i, MskcfgGenerator::render(planner.profiles(), label, &mut rng))
            })
            .collect();
        rendered.sort_by_key(|(i, _)| *i);
        for ((_, r), s) in rendered.iter().zip(&samples) {
            assert_eq!(r.label, s.label);
            assert_eq!(r.listing, s.listing);
        }
    }

    #[test]
    fn samples_within_family_differ_but_share_statistics() {
        let mut gen = MskcfgGenerator::new(5, 0.002);
        let a = gen.generate_one(0);
        let b = gen.generate_one(0);
        assert_ne!(a.listing, b.listing, "polymorphism must vary samples");
    }

    #[test]
    fn arithmetic_density_separates_vundo_from_lollipop() {
        let mut gen = MskcfgGenerator::new(13, 0.002);
        let density = |label: usize, gen: &mut MskcfgGenerator| {
            let mut arith = 0.0;
            let mut total = 0.0;
            for _ in 0..6 {
                let s = gen.generate_one(label);
                let p = parse_listing(&s.listing).unwrap();
                let acfg = Acfg::from_cfg(&CfgBuilder::new(&p).build());
                for v in 0..acfg.vertex_count() {
                    arith += acfg.attribute(v, Attribute::ArithmeticInstructions);
                    total += acfg.attribute(v, Attribute::TotalInstructions);
                }
            }
            arith / total
        };
        let vundo = density(3, &mut gen);
        let lollipop = density(1, &mut gen);
        assert!(vundo > lollipop, "vundo {vundo:.3} vs lollipop {lollipop:.3}");
    }
}
