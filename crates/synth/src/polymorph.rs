//! Polymorphism operators.
//!
//! Real malware families evade signatures by mutating their code between
//! samples: inserting junk instructions, splitting basic blocks with
//! unconditional jumps, and shuffling register assignments. These
//! operators give each generated sample an individual shape while leaving
//! the family-level statistics intact — exactly the intra-family variance
//! a CFG classifier has to be robust to.

use crate::emitter::{AsmProgram, Operand};
use magic_tensor::Rng64;

/// Junk sequences that do not change program semantics.
const JUNK: &[&[(&str, &[&str], u64)]] = &[
    &[("nop", &[], 1)],
    &[("xchg", &["eax", "eax"], 1)],
    &[("push", &["eax"], 1), ("pop", &["eax"], 1)],
    &[("lea", &["esi", "[esi+0]"], 3)],
    &[("mov", &["edi", "edi"], 2)],
    &[("pushfd", &[], 1), ("popfd", &[], 1)],
];

/// Inserts one randomly chosen junk sequence.
pub fn insert_junk(asm: &mut AsmProgram, rng: &mut Rng64) {
    let seq = JUNK[rng.next_below(JUNK.len())];
    for (m, ops, size) in seq {
        asm.push_text(m, ops, *size);
    }
}

/// Splits the current block by jumping to the immediately following
/// instruction: `jmp L ; L:`. Semantically a no-op, structurally it cuts
/// one basic block into two connected blocks.
pub fn split_block(asm: &mut AsmProgram) {
    let next = asm.fresh_label();
    asm.push("jmp", vec![Operand::Label(next)], 2);
    asm.place_label(next);
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_asm::{parse_listing, CfgBuilder};

    #[test]
    fn junk_sequences_parse_cleanly() {
        let mut rng = Rng64::new(0);
        let mut asm = AsmProgram::new();
        for _ in 0..50 {
            insert_junk(&mut asm, &mut rng);
        }
        asm.push_text("retn", &[], 1);
        let p = parse_listing(&asm.render(0x1000)).unwrap();
        assert!(p.len() > 50);
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 1, "junk must not add control flow");
    }

    #[test]
    fn split_block_adds_a_block_and_edge() {
        let mut asm = AsmProgram::new();
        asm.push_text("inc", &["eax"], 1);
        split_block(&mut asm);
        asm.push_text("dec", &["eax"], 1);
        asm.push_text("retn", &[], 1);
        let p = parse_listing(&asm.render(0x1000)).unwrap();
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 2);
        assert!(cfg.has_edge(0, 1));
    }
}
