//! A tiny two-pass assembler: build instruction streams with symbolic
//! labels, then lay them out at concrete addresses and render an
//! IDA-Pro-style listing.

use std::collections::HashMap;
use std::fmt::Write as _;

/// Symbolic label inside an [`AsmProgram`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct LabelId(usize);

/// One operand: literal text or a reference to a label resolved at layout
/// time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Operand {
    /// Verbatim operand text (registers, constants, memory expressions).
    Text(String),
    /// Jump/call target resolved to `loc_XXXX` at render time.
    Label(LabelId),
}

impl Operand {
    /// Convenience constructor for literal text.
    pub fn text(t: impl Into<String>) -> Self {
        Operand::Text(t.into())
    }
}

#[derive(Debug, Clone)]
struct Line {
    labels: Vec<LabelId>,
    mnemonic: String,
    operands: Vec<Operand>,
    size: u64,
}

/// An instruction stream under construction.
///
/// # Example
///
/// ```
/// use magic_synth::emitter::{AsmProgram, Operand};
///
/// let mut p = AsmProgram::new();
/// let end = p.fresh_label();
/// p.push("jmp", vec![Operand::Label(end)], 2);
/// p.place_label(end);
/// p.push("retn", vec![], 1);
/// let listing = p.render(0x401000);
/// assert!(listing.contains("jmp"));
/// assert!(listing.contains("loc_"));
/// ```
#[derive(Debug, Clone, Default)]
pub struct AsmProgram {
    lines: Vec<Line>,
    pending_labels: Vec<LabelId>,
    next_label: usize,
}

impl AsmProgram {
    /// Creates an empty program.
    pub fn new() -> Self {
        AsmProgram::default()
    }

    /// Allocates a label not yet placed.
    pub fn fresh_label(&mut self) -> LabelId {
        self.next_label += 1;
        LabelId(self.next_label - 1)
    }

    /// Attaches `label` to the *next* pushed instruction.
    pub fn place_label(&mut self, label: LabelId) {
        self.pending_labels.push(label);
    }

    /// Appends an instruction of `size` bytes.
    pub fn push(&mut self, mnemonic: impl Into<String>, operands: Vec<Operand>, size: u64) {
        self.lines.push(Line {
            labels: std::mem::take(&mut self.pending_labels),
            mnemonic: mnemonic.into(),
            operands,
            size: size.max(1),
        });
    }

    /// Appends an instruction with plain-text operands.
    pub fn push_text(&mut self, mnemonic: &str, operands: &[&str], size: u64) {
        self.push(
            mnemonic,
            operands.iter().map(|o| Operand::text(*o)).collect(),
            size,
        );
    }

    /// Number of instructions so far.
    pub fn len(&self) -> usize {
        self.lines.len()
    }

    /// Whether no instructions have been pushed.
    pub fn is_empty(&self) -> bool {
        self.lines.is_empty()
    }

    /// Appends all instructions (and labels) of `other`.
    ///
    /// Labels of `other` are remapped so the two label spaces cannot
    /// collide.
    pub fn append(&mut self, other: AsmProgram) -> HashMap<LabelId, LabelId> {
        let mut mapping = HashMap::new();
        let remap = |old: LabelId, next_label: &mut usize, mapping: &mut HashMap<LabelId, LabelId>| {
            *mapping.entry(old).or_insert_with(|| {
                *next_label += 1;
                LabelId(*next_label - 1)
            })
        };
        for line in other.lines {
            let labels = line
                .labels
                .into_iter()
                .map(|l| remap(l, &mut self.next_label, &mut mapping))
                .collect();
            let operands = line
                .operands
                .into_iter()
                .map(|op| match op {
                    Operand::Label(l) => Operand::Label(remap(l, &mut self.next_label, &mut mapping)),
                    t => t,
                })
                .collect();
            self.lines.push(Line {
                labels,
                mnemonic: line.mnemonic,
                operands,
                size: line.size,
            });
        }
        mapping
    }

    /// Lays the program out starting at `base` and renders the IDA-style
    /// listing.
    ///
    /// # Panics
    ///
    /// Panics if a referenced label was never placed.
    pub fn render(&self, base: u64) -> String {
        // Pass 1: assign addresses.
        let mut addr = base;
        let mut label_addr: HashMap<LabelId, u64> = HashMap::new();
        let mut addrs = Vec::with_capacity(self.lines.len());
        for line in &self.lines {
            for l in &line.labels {
                label_addr.insert(*l, addr);
            }
            addrs.push(addr);
            addr += line.size;
        }
        // Pass 2: render.
        let mut out = String::new();
        for (line, &addr) in self.lines.iter().zip(&addrs) {
            if !line.labels.is_empty() {
                let _ = writeln!(out, ".text:{addr:08X} loc_{addr:X}:");
            }
            let ops: Vec<String> = line
                .operands
                .iter()
                .map(|op| match op {
                    Operand::Text(t) => t.clone(),
                    Operand::Label(l) => {
                        let dst = label_addr
                            .get(l)
                            .unwrap_or_else(|| panic!("label {l:?} referenced but never placed"));
                        format!("loc_{dst:X}")
                    }
                })
                .collect();
            let _ = writeln!(
                out,
                ".text:{addr:08X}                 {:<7} {}",
                line.mnemonic,
                ops.join(", ")
            );
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_asm::{parse_listing, CfgBuilder};

    #[test]
    fn forward_and_backward_labels_resolve() {
        let mut p = AsmProgram::new();
        let top = p.fresh_label();
        let end = p.fresh_label();
        p.place_label(top);
        p.push_text("dec", &["eax"], 1);
        p.push("jz", vec![Operand::Label(end)], 2);
        p.push("jmp", vec![Operand::Label(top)], 2);
        p.place_label(end);
        p.push_text("retn", &[], 1);
        let listing = p.render(0x1000);
        // top = 0x1000, end = 0x1005.
        assert!(listing.contains("jz      loc_1005"), "{listing}");
        assert!(listing.contains("jmp     loc_1000"), "{listing}");
    }

    #[test]
    fn rendered_listing_parses_back() {
        let mut p = AsmProgram::new();
        let skip = p.fresh_label();
        p.push_text("cmp", &["eax", "0"], 2);
        p.push("jz", vec![Operand::Label(skip)], 2);
        p.push_text("add", &["eax", "1"], 3);
        p.place_label(skip);
        p.push_text("retn", &[], 1);
        let listing = p.render(0x401000);

        let program = parse_listing(&listing).unwrap();
        assert_eq!(program.len(), 4);
        let cfg = CfgBuilder::new(&program).build();
        assert_eq!(cfg.block_count(), 3);
    }

    #[test]
    fn sizes_accumulate_into_addresses() {
        let mut p = AsmProgram::new();
        p.push_text("push", &["ebp"], 1);
        p.push_text("mov", &["ebp", "esp"], 2);
        p.push_text("retn", &[], 1);
        let listing = p.render(0x100);
        assert!(listing.contains(".text:00000100"));
        assert!(listing.contains(".text:00000101"));
        assert!(listing.contains(".text:00000103"));
    }

    #[test]
    #[should_panic(expected = "never placed")]
    fn unplaced_label_panics_at_render() {
        let mut p = AsmProgram::new();
        let ghost = p.fresh_label();
        p.push("jmp", vec![Operand::Label(ghost)], 2);
        p.render(0);
    }

    #[test]
    fn append_remaps_labels() {
        let mut callee = AsmProgram::new();
        let top = callee.fresh_label();
        callee.place_label(top);
        callee.push("jmp", vec![Operand::Label(top)], 2);

        let mut main = AsmProgram::new();
        let own = main.fresh_label();
        main.place_label(own);
        main.push_text("retn", &[], 1);
        let mapping = main.append(callee);
        assert_eq!(mapping.len(), 1);
        // Renders without label collisions or panics.
        let listing = main.render(0x10);
        assert!(listing.contains("jmp"));
    }
}
