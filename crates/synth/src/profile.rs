//! Per-family generative profiles.
//!
//! Real malware families differ in how their control flow is organized —
//! worms carry replication loops, bots carry command dispatch switches,
//! packed droppers carry long linear decoder stubs — and in their
//! instruction mix. A [`FamilyProfile`] captures those axes; the code
//! generator ([`crate::codegen`]) and the direct CFG generator
//! ([`crate::yancfg`]) both consume it. Classifier difficulty is
//! controlled by how far apart profiles sit: the bot families of YANCFG
//! are given nearly identical profiles on purpose, reproducing the
//! paper's low Rbot/Sdbot/Ldpinch scores (Table V).

/// Relative weights for filler instruction categories within a block.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct InstructionMix {
    /// Arithmetic/bitwise instructions.
    pub arithmetic: f64,
    /// Data movement (mov/push/pop/lea).
    pub mov: f64,
    /// Compares and tests.
    pub compare: f64,
    /// Calls to imported APIs (no static CFG edge).
    pub api_call: f64,
    /// Everything else (nop, cld, ...).
    pub other: f64,
}

impl InstructionMix {
    /// A balanced mix.
    pub fn balanced() -> Self {
        InstructionMix { arithmetic: 1.0, mov: 1.0, compare: 0.5, api_call: 0.3, other: 0.3 }
    }

    /// The weights as a sampling array (ordering matches
    /// `codegen::FILLER_KINDS`).
    pub fn weights(&self) -> [f64; 5] {
        [self.arithmetic, self.mov, self.compare, self.api_call, self.other]
    }
}

/// The generative knobs of one malware family.
#[derive(Debug, Clone, PartialEq)]
pub struct FamilyProfile {
    /// Family name as printed in the paper's figures.
    pub name: &'static str,
    /// Target number of basic blocks (lognormal-ish mean).
    pub mean_blocks: f64,
    /// Relative spread of the block count.
    pub block_jitter: f64,
    /// Construct weights: straight-line block.
    pub straight_weight: f64,
    /// Construct weights: if/else diamond.
    pub branch_weight: f64,
    /// Construct weights: counted loop.
    pub loop_weight: f64,
    /// Construct weights: multi-way switch dispatch.
    pub switch_weight: f64,
    /// Construct weights: call to a generated subroutine.
    pub call_weight: f64,
    /// Construct weights: long linear packer-style decoder block.
    pub decoder_weight: f64,
    /// Mean instructions per straight block.
    pub block_len_mean: f64,
    /// Number of generated subroutines (call targets).
    pub subroutines: usize,
    /// Probability of inserting a junk instruction before any line.
    pub junk_rate: f64,
    /// Probability of splitting a block mid-way with a `jmp next`.
    pub split_rate: f64,
    /// Probability that an ALU operand is an immediate constant.
    pub const_density: f64,
    /// Probability of a data declaration line inside a block.
    pub data_decl_rate: f64,
    /// Filler instruction category mix.
    pub mix: InstructionMix,
}

impl FamilyProfile {
    /// A neutral default profile, suitable as a starting point.
    pub fn base(name: &'static str) -> Self {
        FamilyProfile {
            name,
            mean_blocks: 40.0,
            block_jitter: 0.4,
            straight_weight: 1.0,
            branch_weight: 1.0,
            loop_weight: 0.6,
            switch_weight: 0.2,
            call_weight: 0.5,
            decoder_weight: 0.05,
            block_len_mean: 5.0,
            subroutines: 3,
            junk_rate: 0.05,
            split_rate: 0.02,
            const_density: 0.4,
            data_decl_rate: 0.01,
            mix: InstructionMix::balanced(),
        }
    }

    /// Construct weights as a sampling array (ordering matches
    /// `codegen::CONSTRUCT_KINDS`).
    pub fn construct_weights(&self) -> [f64; 6] {
        [
            self.straight_weight,
            self.branch_weight,
            self.loop_weight,
            self.switch_weight,
            self.call_weight,
            self.decoder_weight,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn base_profile_is_well_formed() {
        let p = FamilyProfile::base("Test");
        assert!(p.construct_weights().iter().all(|&w| w >= 0.0));
        assert!(p.construct_weights().iter().sum::<f64>() > 0.0);
        assert!(p.mean_blocks > 0.0);
        assert!((0.0..1.0).contains(&p.junk_rate));
    }

    #[test]
    fn mix_weights_match_fields() {
        let m = InstructionMix::balanced();
        assert_eq!(m.weights()[0], m.arithmetic);
        assert_eq!(m.weights()[4], m.other);
    }
}
