#![warn(missing_docs)]

//! Synthetic malware corpora for the MAGIC reproduction.
//!
//! The paper evaluates on two proprietary corpora that cannot be
//! redistributed: the Microsoft Malware Classification Challenge
//! (MSKCFG — 10,868 IDA `.asm` listings in 9 families, Fig. 7) and
//! YANCFG (16,351 pre-extracted CFGs in 13 families, Fig. 8). This crate
//! builds faithful *synthetic* stand-ins:
//!
//! * [`mskcfg`] emits IDA-style `.asm` listings from per-family generative
//!   grammars (loop nests, call trees, switch dispatch, packer-style
//!   decoder blocks, junk-code polymorphism). Samples flow through the
//!   real parser and the paper's Algorithms 1–2, so the entire MAGIC
//!   front-end is exercised.
//! * [`yancfg`] emits [`magic_graph::Acfg`]s directly (YANCFG ships CFGs,
//!   not assembly), with deliberately overlapping bot families so the
//!   per-family difficulty profile of Table V is reproduced.
//!
//! Family proportions follow Figs. 7–8; a `scale` parameter shrinks the
//! corpora for CPU-sized experiments while keeping the proportions.
//!
//! # Example
//!
//! ```
//! use magic_synth::mskcfg::MskcfgGenerator;
//!
//! let mut gen = MskcfgGenerator::new(42, 0.01);
//! let samples = gen.generate();
//! assert!(!samples.is_empty());
//! assert!(samples[0].listing.contains(".text:"));
//! ```

pub mod codegen;
pub mod emitter;
pub mod mskcfg;
pub mod polymorph;
pub mod profile;
pub mod yancfg;

pub use mskcfg::{AsmSample, MskcfgGenerator, MSKCFG_FAMILIES};
pub use profile::FamilyProfile;
pub use yancfg::{CfgSample, YancfgGenerator, YANCFG_FAMILIES};
