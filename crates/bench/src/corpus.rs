//! Corpus preparation: synthetic listings/CFGs through the real MAGIC
//! extraction pipeline, ready for training.

use magic::corpus_cache::{self, CacheSpec, CorpusKind, DEFAULT_SHARDS};
use magic::executor::{executor_for, run_indexed};
use magic::pipeline::extract_acfgs_parallel;
use magic_graph::Acfg;
use magic_model::GraphInput;
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};
use std::path::Path;

/// Builds the `GraphInput`s for a slice of ACFGs across all cores,
/// preserving order (the CSR/feature build dominates post-extraction
/// prepare time).
fn inputs_parallel(acfgs: &[Acfg]) -> Vec<GraphInput> {
    let executor = executor_for(0);
    run_indexed(executor.as_ref(), acfgs.len(), |_worker, i| GraphInput::from_acfg(&acfgs[i]))
}

/// A fully prepared corpus: raw ACFGs (for the feature baselines),
/// model-ready graph inputs, labels and family names.
#[derive(Debug)]
pub struct PreparedCorpus {
    /// Attributed CFGs, one per sample.
    pub acfgs: Vec<Acfg>,
    /// DGCNN-ready inputs, parallel to `acfgs`.
    pub inputs: Vec<GraphInput>,
    /// Family labels, parallel to `acfgs`.
    pub labels: Vec<usize>,
    /// Family names indexed by label.
    pub class_names: Vec<String>,
}

impl PreparedCorpus {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.acfgs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.acfgs.is_empty()
    }

    /// Graph sizes, used to resolve pooling ratios.
    pub fn graph_sizes(&self) -> Vec<usize> {
        self.inputs.iter().map(GraphInput::vertex_count).collect()
    }
}

/// Generates the MSKCFG-like corpus and runs every listing through the
/// parser + Algorithm 1/2 + Table I attribution (in parallel, as in
/// Section IV-C).
pub fn prepare_mskcfg(seed: u64, scale: f64) -> PreparedCorpus {
    let mut generator = MskcfgGenerator::new(seed, scale);
    let samples = generator.generate();
    let listings: Vec<String> = samples.iter().map(|s| s.listing.clone()).collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let extracted = extract_acfgs_parallel(&listings, workers);

    let mut acfgs = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for (sample, result) in samples.iter().zip(extracted) {
        let acfg = result.expect("generated listings always parse");
        acfgs.push(acfg);
        labels.push(sample.label);
    }
    let inputs = inputs_parallel(&acfgs);
    PreparedCorpus {
        acfgs,
        inputs,
        labels,
        class_names: MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Generates the YANCFG-like corpus (pre-extracted CFGs, as the real
/// dataset ships).
pub fn prepare_yancfg(seed: u64, scale: f64) -> PreparedCorpus {
    let mut generator = YancfgGenerator::new(seed, scale);
    let samples = generator.generate();
    let mut acfgs = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for sample in samples {
        acfgs.push(sample.acfg);
        labels.push(sample.label);
    }
    let inputs = inputs_parallel(&acfgs);
    PreparedCorpus {
        acfgs,
        inputs,
        labels,
        class_names: YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Prepares a corpus through the `magic-acfg/1` shard cache: builds the
/// cache under `dir` on first use (a matching fingerprint is a no-op),
/// then loads it back with the streaming shard reader. The result is
/// bitwise identical to [`prepare_mskcfg`]/[`prepare_yancfg`].
///
/// # Panics
///
/// Panics if the cache cannot be built or read — in a bench, either is
/// a failed run.
pub fn prepare_cached(corpus: CorpusKind, seed: u64, scale: f64, dir: &Path) -> PreparedCorpus {
    let spec = CacheSpec {
        corpus,
        seed,
        scale,
        reduce: magic_graph::ReduceStrategy::None,
        shards: DEFAULT_SHARDS,
    };
    corpus_cache::build(dir, &spec, 0, false).expect("cache build failed");
    let loaded =
        corpus_cache::load(dir, Some(spec.fingerprint()), 0).expect("cache load failed");
    PreparedCorpus {
        acfgs: loaded.acfgs,
        inputs: loaded.inputs,
        labels: loaded.labels,
        class_names: loaded.class_names,
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mskcfg_prepares_consistent_corpus() {
        let corpus = prepare_mskcfg(3, 0.002);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.acfgs.len(), corpus.inputs.len());
        assert_eq!(corpus.acfgs.len(), corpus.labels.len());
        assert_eq!(corpus.class_names.len(), 9);
        assert!(corpus.graph_sizes().iter().all(|&n| n >= 2));
    }

    #[test]
    fn cached_prepare_matches_direct_prepare_bitwise() {
        let dir = std::env::temp_dir()
            .join(format!("magic-bench-prepare-cache-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let direct = prepare_yancfg(5, 0.002);
        let cached = prepare_cached(CorpusKind::Yancfg, 5, 0.002, &dir);
        assert_eq!(direct.labels, cached.labels);
        assert_eq!(direct.len(), cached.len());
        for (a, b) in direct.inputs.iter().zip(&cached.inputs) {
            assert_eq!(a.vertex_count(), b.vertex_count());
            assert_eq!(a.attributes().as_slice(), b.attributes().as_slice());
        }
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn yancfg_prepares_consistent_corpus() {
        let corpus = prepare_yancfg(3, 0.001);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.class_names.len(), 13);
        // All 13 families represented (min-10 rule).
        let mut seen = [false; 13];
        for &l in &corpus.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
