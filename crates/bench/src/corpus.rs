//! Corpus preparation: synthetic listings/CFGs through the real MAGIC
//! extraction pipeline, ready for training.

use magic::pipeline::extract_acfgs_parallel;
use magic_graph::Acfg;
use magic_model::GraphInput;
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};

/// A fully prepared corpus: raw ACFGs (for the feature baselines),
/// model-ready graph inputs, labels and family names.
#[derive(Debug)]
pub struct PreparedCorpus {
    /// Attributed CFGs, one per sample.
    pub acfgs: Vec<Acfg>,
    /// DGCNN-ready inputs, parallel to `acfgs`.
    pub inputs: Vec<GraphInput>,
    /// Family labels, parallel to `acfgs`.
    pub labels: Vec<usize>,
    /// Family names indexed by label.
    pub class_names: Vec<String>,
}

impl PreparedCorpus {
    /// Number of samples.
    pub fn len(&self) -> usize {
        self.acfgs.len()
    }

    /// Whether the corpus is empty.
    pub fn is_empty(&self) -> bool {
        self.acfgs.is_empty()
    }

    /// Graph sizes, used to resolve pooling ratios.
    pub fn graph_sizes(&self) -> Vec<usize> {
        self.inputs.iter().map(GraphInput::vertex_count).collect()
    }
}

/// Generates the MSKCFG-like corpus and runs every listing through the
/// parser + Algorithm 1/2 + Table I attribution (in parallel, as in
/// Section IV-C).
pub fn prepare_mskcfg(seed: u64, scale: f64) -> PreparedCorpus {
    let mut generator = MskcfgGenerator::new(seed, scale);
    let samples = generator.generate();
    let listings: Vec<String> = samples.iter().map(|s| s.listing.clone()).collect();
    let workers = std::thread::available_parallelism().map_or(4, |n| n.get());
    let extracted = extract_acfgs_parallel(&listings, workers);

    let mut acfgs = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for (sample, result) in samples.iter().zip(extracted) {
        let acfg = result.expect("generated listings always parse");
        acfgs.push(acfg);
        labels.push(sample.label);
    }
    let inputs = acfgs.iter().map(GraphInput::from_acfg).collect();
    PreparedCorpus {
        acfgs,
        inputs,
        labels,
        class_names: MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
    }
}

/// Generates the YANCFG-like corpus (pre-extracted CFGs, as the real
/// dataset ships).
pub fn prepare_yancfg(seed: u64, scale: f64) -> PreparedCorpus {
    let mut generator = YancfgGenerator::new(seed, scale);
    let samples = generator.generate();
    let mut acfgs = Vec::with_capacity(samples.len());
    let mut labels = Vec::with_capacity(samples.len());
    for sample in samples {
        acfgs.push(sample.acfg);
        labels.push(sample.label);
    }
    let inputs = acfgs.iter().map(GraphInput::from_acfg).collect();
    PreparedCorpus {
        acfgs,
        inputs,
        labels,
        class_names: YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mskcfg_prepares_consistent_corpus() {
        let corpus = prepare_mskcfg(3, 0.002);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.acfgs.len(), corpus.inputs.len());
        assert_eq!(corpus.acfgs.len(), corpus.labels.len());
        assert_eq!(corpus.class_names.len(), 9);
        assert!(corpus.graph_sizes().iter().all(|&n| n >= 2));
    }

    #[test]
    fn yancfg_prepares_consistent_corpus() {
        let corpus = prepare_yancfg(3, 0.001);
        assert!(!corpus.is_empty());
        assert_eq!(corpus.class_names.len(), 13);
        // All 13 families represented (min-10 rule).
        let mut seen = [false; 13];
        for &l in &corpus.labels {
            seen[l] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }
}
