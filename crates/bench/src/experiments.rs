//! Shared experiment runners behind the per-table binaries.

use crate::corpus::PreparedCorpus;
use magic::cv::{cross_validate, CvOutcome};
use magic::tuning::{HeadKind, HyperParams};
use magic_baselines::{
    Classifier, FeatureVector, GradientBoosting, LinearSvmEnsemble, RandomForest,
    SequenceClassifier,
};
use magic_data::stratified_kfold;
use magic_metrics::{mean_log_loss, ConfusionMatrix, ScoreReport};

/// Which of the paper's two datasets an experiment targets.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Corpus {
    /// The Microsoft challenge corpus (Fig. 7).
    Mskcfg,
    /// The YANCFG corpus (Fig. 8).
    Yancfg,
}

/// The best-model hyperparameters that Table II reports per dataset.
pub fn best_params(corpus: Corpus) -> HyperParams {
    let mut params = HyperParams::paper_default();
    match corpus {
        // Table II "Best Model for MSKCFG": adaptive pooling, ratio 0.64,
        // (128,64,32,32), 16 Conv2D channels, dropout 0.1, batch 10,
        // L2 1e-4.
        Corpus::Mskcfg => {
            params.head = HeadKind::Adaptive;
            params.pooling_ratio = 0.64;
            params.conv_sizes = vec![128, 64, 32, 32];
            params.conv2d_channels = 16;
            params.dropout = 0.1;
            params.batch_size = 10;
            params.weight_decay = 1e-4;
        }
        // Table II "Best Model for YANCFG": adaptive pooling, ratio 0.2,
        // (32,32,32,32), 16 channels, dropout 0.5, batch 40, L2 5e-4.
        Corpus::Yancfg => {
            params.head = HeadKind::Adaptive;
            params.pooling_ratio = 0.2;
            params.conv_sizes = vec![32, 32, 32, 32];
            params.conv2d_channels = 16;
            params.dropout = 0.5;
            params.batch_size = 40;
            params.weight_decay = 5e-4;
        }
    }
    params
}

/// Cross-validates a hyperparameter setting on a prepared corpus.
pub fn run_cv(
    corpus: &PreparedCorpus,
    params: &HyperParams,
    epochs: usize,
    folds: usize,
    seed: u64,
) -> CvOutcome {
    let model_config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
    let train_config = params.to_train_config(epochs, seed);
    cross_validate(&model_config, &train_config, &corpus.inputs, &corpus.labels, folds)
}

/// One baseline's cross-validated result.
#[derive(Debug, Clone)]
pub struct BaselineResult {
    /// Human-readable method name (matching Table IV's row labels).
    pub name: String,
    /// Cross-validated accuracy.
    pub accuracy: f64,
    /// Mean logarithmic loss.
    pub log_loss: f64,
    /// Full per-family report.
    pub report: ScoreReport,
}

/// The feature-vector baselines compared in Table IV, cross-validated on
/// the same stratified folds the DGCNN uses.
pub fn run_feature_baselines(corpus: &PreparedCorpus, folds: usize, seed: u64) -> Vec<BaselineResult> {
    let num_classes = corpus.class_names.len();
    let rich: Vec<Vec<f64>> = corpus.acfgs.iter().map(|a| FeatureVector::Rich.extract(a)).collect();
    let basic: Vec<Vec<f64>> = corpus.acfgs.iter().map(|a| FeatureVector::Basic.extract(a)).collect();
    let splits = stratified_kfold(&corpus.labels, folds, seed);

    let mut out = Vec::new();
    let mut run = |name: &str, features: &[Vec<f64>], make: &mut dyn FnMut() -> Box<dyn Classifier>| {
        let mut confusion = ConfusionMatrix::new(num_classes);
        let mut probs = Vec::new();
        let mut targets = Vec::new();
        for split in &splits {
            let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| features[i].clone()).collect();
            let train_y: Vec<usize> = split.train.iter().map(|&i| corpus.labels[i]).collect();
            let mut model = make();
            model.fit(&train_x, &train_y, num_classes);
            for &i in &split.validation {
                let p = model.predict_proba(&features[i]);
                let predicted = argmax(&p);
                confusion.record(corpus.labels[i], predicted);
                probs.push(p);
                targets.push(corpus.labels[i]);
            }
        }
        let log_loss = mean_log_loss(&probs, &targets);
        let report =
            ScoreReport::from_confusion(&confusion, &corpus.class_names).with_log_loss(log_loss);
        out.push(BaselineResult {
            name: name.to_string(),
            accuracy: confusion.accuracy(),
            log_loss,
            report,
        });
    };

    run(
        "Gradient boosting, rich features (XGBoost-like [13])",
        &rich,
        &mut || Box::new(GradientBoosting::new(25, 4, 0.3, seed)),
    );
    run(
        "Random forest, basic features ([11],[14]-like)",
        &basic,
        &mut || Box::new(RandomForest::new(40, 10, seed)),
    );
    run(
        "Linear SVM ensemble (ESVC-like [8])",
        &basic,
        &mut || Box::new(LinearSvmEnsemble::new(15, 1e-3, seed)),
    );
    out
}

/// The Strand-like sequence classifier, which consumes ACFGs directly.
pub fn run_sequence_baseline(corpus: &PreparedCorpus, folds: usize, seed: u64) -> BaselineResult {
    let num_classes = corpus.class_names.len();
    let splits = stratified_kfold(&corpus.labels, folds, seed);
    let mut confusion = ConfusionMatrix::new(num_classes);
    let mut probs = Vec::new();
    let mut targets = Vec::new();
    for split in &splits {
        let train_graphs: Vec<&magic_graph::Acfg> =
            split.train.iter().map(|&i| &corpus.acfgs[i]).collect();
        let train_y: Vec<usize> = split.train.iter().map(|&i| corpus.labels[i]).collect();
        let mut clf = SequenceClassifier::new(3);
        clf.fit(&train_graphs, &train_y, num_classes);
        for &i in &split.validation {
            let p = clf.predict_proba(&corpus.acfgs[i]);
            confusion.record(corpus.labels[i], argmax(&p));
            probs.push(p);
            targets.push(corpus.labels[i]);
        }
    }
    let log_loss = mean_log_loss(&probs, &targets);
    let report =
        ScoreReport::from_confusion(&confusion, &corpus.class_names).with_log_loss(log_loss);
    BaselineResult {
        name: "Sequence nearest-centroid (Strand-like [15])".to_string(),
        accuracy: confusion.accuracy(),
        log_loss,
        report,
    }
}

fn argmax(p: &[f64]) -> usize {
    p.iter()
        .enumerate()
        .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
        .map(|(i, _)| i)
        .unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::prepare_yancfg;

    #[test]
    fn best_params_differ_per_dataset_as_in_table2() {
        let m = best_params(Corpus::Mskcfg);
        let y = best_params(Corpus::Yancfg);
        assert_eq!(m.head, HeadKind::Adaptive);
        assert_eq!(y.head, HeadKind::Adaptive);
        assert_eq!(m.pooling_ratio, 0.64);
        assert_eq!(y.pooling_ratio, 0.2);
        assert_eq!(m.conv_sizes, vec![128, 64, 32, 32]);
        assert_eq!(y.conv_sizes, vec![32, 32, 32, 32]);
        assert_eq!(y.dropout, 0.5);
        assert_eq!(y.batch_size, 40);
    }

    #[test]
    fn baselines_run_end_to_end_on_tiny_corpus() {
        let mut corpus = prepare_yancfg(5, 0.001);
        // Keep debug-mode runtime down: truncate to 4 samples per family.
        let mut keep = Vec::new();
        let mut counts = vec![0usize; corpus.class_names.len()];
        for (i, &l) in corpus.labels.iter().enumerate() {
            if counts[l] < 4 {
                counts[l] += 1;
                keep.push(i);
            }
        }
        corpus.acfgs = keep.iter().map(|&i| corpus.acfgs[i].clone()).collect();
        corpus.inputs = keep.iter().map(|&i| corpus.inputs[i].clone()).collect();
        corpus.labels = keep.iter().map(|&i| corpus.labels[i]).collect();

        let results = run_feature_baselines(&corpus, 2, 1);
        assert_eq!(results.len(), 3);
        for r in &results {
            assert!(r.accuracy > 0.0 && r.accuracy <= 1.0, "{}: {}", r.name, r.accuracy);
            assert!(r.log_loss.is_finite());
        }
        let seq = run_sequence_baseline(&corpus, 2, 1);
        assert!(seq.accuracy > 0.0);
    }
}
