//! Benchmark regression comparator: the engine behind
//! `magic bench diff <old.json> <new.json>`.
//!
//! Both inputs are `results/BENCH_*.json` files as written by the bench
//! binaries. The comparator walks each JSON tree collecting every
//! object that carries a numeric `median_ns` field, keys it by its
//! path through the tree (array elements are labelled by their
//! `workers` field when present, else by index), and compares medians
//! pairwise. Rows nested under an object marked `"oversubscribed":
//! true` are excluded — a run with more workers than cores measures
//! scheduler behaviour, not the code under test.
//!
//! A row *regresses* when `new/old > 1 + threshold`. Median-over-samples
//! is already noise-damped by `magic-microbench`, so a single threshold
//! (default 20%) separates jitter from a real slowdown on the same
//! machine; cross-machine comparisons are meaningless and can be
//! rejected via [`machine_fingerprint`].

use magic_json::Value;

/// One `median_ns` measurement found in a results file.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRow {
    /// Dotted path through the JSON tree, e.g. `parallel.workers=2.stats`.
    pub path: String,
    /// Median wall-clock for the measured operation, nanoseconds.
    pub median_ns: f64,
}

/// A matched old/new pair for one benchmark row.
#[derive(Debug, Clone)]
pub struct RowDiff {
    /// Shared row path (see [`BenchRow::path`]).
    pub path: String,
    /// Baseline median, nanoseconds.
    pub old_ns: f64,
    /// Candidate median, nanoseconds.
    pub new_ns: f64,
    /// `new_ns / old_ns`; > 1 means the candidate is slower.
    pub ratio: f64,
}

/// Outcome of comparing two results files.
#[derive(Debug, Clone)]
pub struct DiffReport {
    /// Rows present in both files, in old-file order.
    pub rows: Vec<RowDiff>,
    /// Row paths only present in the baseline (removed benchmarks).
    pub only_old: Vec<String>,
    /// Row paths only present in the candidate (new benchmarks).
    pub only_new: Vec<String>,
    /// Regression threshold the report was built with (0.2 = +20%).
    pub threshold: f64,
}

impl DiffReport {
    /// Rows whose slowdown exceeds the threshold.
    pub fn regressions(&self) -> Vec<&RowDiff> {
        self.rows.iter().filter(|r| r.ratio > 1.0 + self.threshold).collect()
    }

    /// Renders the comparison as an aligned terminal table plus a
    /// one-line verdict.
    pub fn render(&self) -> String {
        let mut out = String::new();
        let width = self.rows.iter().map(|r| r.path.len()).max().unwrap_or(4).max(4);
        out.push_str(&format!(
            "{:<width$}  {:>12}  {:>12}  {:>7}\n",
            "ROW", "OLD", "NEW", "RATIO"
        ));
        for row in &self.rows {
            let flag = if row.ratio > 1.0 + self.threshold { "  REGRESSED" } else { "" };
            out.push_str(&format!(
                "{:<width$}  {:>12}  {:>12}  {:>6.2}x{flag}\n",
                row.path,
                fmt_ns(row.old_ns),
                fmt_ns(row.new_ns),
                row.ratio,
            ));
        }
        for path in &self.only_old {
            out.push_str(&format!("{path}: only in baseline (removed?)\n"));
        }
        for path in &self.only_new {
            out.push_str(&format!("{path}: only in candidate (new row, not gated)\n"));
        }
        let bad = self.regressions().len();
        if bad == 0 {
            out.push_str(&format!(
                "OK: {} row(s) within +{:.0}% of baseline\n",
                self.rows.len(),
                self.threshold * 100.0
            ));
        } else {
            out.push_str(&format!(
                "FAIL: {bad} of {} row(s) regressed beyond +{:.0}%\n",
                self.rows.len(),
                self.threshold * 100.0
            ));
        }
        out
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.2} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} µs", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Collects every non-oversubscribed `median_ns` row in a results file.
pub fn collect_rows(value: &Value) -> Vec<BenchRow> {
    let mut rows = Vec::new();
    walk(value, String::new(), false, &mut rows);
    rows
}

fn walk(value: &Value, path: String, oversubscribed: bool, rows: &mut Vec<BenchRow>) {
    match value {
        Value::Object(obj) => {
            let oversubscribed = oversubscribed
                || obj.get("oversubscribed").and_then(Value::as_bool).unwrap_or(false);
            if let Some(median_ns) = obj.get("median_ns").and_then(Value::as_f64) {
                if !oversubscribed {
                    rows.push(BenchRow { path: path.clone(), median_ns });
                }
            }
            for (key, child) in obj.iter() {
                let child_path =
                    if path.is_empty() { key.to_string() } else { format!("{path}.{key}") };
                walk(child, child_path, oversubscribed, rows);
            }
        }
        Value::Array(items) => {
            for (i, child) in items.iter().enumerate() {
                // Label array elements by their `workers` field when
                // present so rows stay matched if the sweep reorders.
                let label = child
                    .get("workers")
                    .and_then(Value::as_u64)
                    .map(|w| format!("workers={w}"))
                    .unwrap_or_else(|| i.to_string());
                let child_path =
                    if path.is_empty() { label } else { format!("{path}.{label}") };
                walk(child, child_path, oversubscribed, rows);
            }
        }
        _ => {}
    }
}

/// Compares two results files row by row.
pub fn diff(old: &Value, new: &Value, threshold: f64) -> DiffReport {
    let old_rows = collect_rows(old);
    let new_rows = collect_rows(new);
    let mut rows = Vec::new();
    let mut only_old = Vec::new();
    for o in &old_rows {
        match new_rows.iter().find(|n| n.path == o.path) {
            Some(n) => rows.push(RowDiff {
                path: o.path.clone(),
                old_ns: o.median_ns,
                new_ns: n.median_ns,
                ratio: if o.median_ns > 0.0 { n.median_ns / o.median_ns } else { f64::INFINITY },
            }),
            None => only_old.push(o.path.clone()),
        }
    }
    let only_new = new_rows
        .iter()
        .filter(|n| old_rows.iter().all(|o| o.path != n.path))
        .map(|n| n.path.clone())
        .collect();
    DiffReport { rows, only_old, only_new, threshold }
}

/// Compact identity string for the `machine_info` stanza of a results
/// file, or `None` if the file predates machine stamping.
///
/// Two files compare apples-to-apples only when their fingerprints are
/// equal; `magic bench diff --require-same-machine` skips (rather than
/// fails) on a mismatch so CI baselines recorded elsewhere don't gate
/// foreign machines.
pub fn machine_fingerprint(value: &Value) -> Option<String> {
    let info = value.get("machine_info")?.as_object()?;
    let field = |k: &str| {
        info.get(k)
            .map(|v| v.as_str().map(str::to_string).unwrap_or_else(|| magic_json::to_string(v)))
            .unwrap_or_else(|| "?".into())
    };
    Some(format!(
        "{}/{} cpus={} model={}",
        field("os"),
        field("arch"),
        field("available_parallelism"),
        field("cpu_model"),
    ))
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_json::json;

    fn sample(serial_ns: f64, w2_ns: f64, w8_ns: f64) -> Value {
        json!({
            "bench": "train_parallel",
            "serial": { "median_ns": serial_ns, "samples": 10 },
            "parallel": [
                { "workers": 2, "stats": { "median_ns": w2_ns } },
                { "workers": 8, "oversubscribed": true, "stats": { "median_ns": w8_ns } },
            ],
        })
    }

    #[test]
    fn collect_finds_rows_and_skips_oversubscribed() {
        let rows = collect_rows(&sample(100.0, 60.0, 55.0));
        let paths: Vec<&str> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(paths, vec!["serial", "parallel.workers=2.stats"]);
        assert_eq!(rows[0].median_ns, 100.0);
    }

    #[test]
    fn within_threshold_passes() {
        let report = diff(&sample(100.0, 60.0, 55.0), &sample(110.0, 66.0, 300.0), 0.20);
        assert_eq!(report.rows.len(), 2);
        assert!(report.regressions().is_empty());
        assert!(report.render().contains("OK: 2 row(s)"));
    }

    #[test]
    fn slowdown_beyond_threshold_regresses() {
        let report = diff(&sample(100.0, 60.0, 55.0), &sample(130.0, 60.0, 55.0), 0.20);
        let bad = report.regressions();
        assert_eq!(bad.len(), 1);
        assert_eq!(bad[0].path, "serial");
        assert!((bad[0].ratio - 1.3).abs() < 1e-9);
        assert!(report.render().contains("REGRESSED"));
        assert!(report.render().contains("FAIL: 1 of 2"));
    }

    #[test]
    fn added_and_removed_rows_are_reported_not_gated() {
        let old = json!({ "a": { "median_ns": 10.0 }, "b": { "median_ns": 20.0 } });
        let new = json!({ "a": { "median_ns": 10.0 }, "c": { "median_ns": 5.0 } });
        let report = diff(&old, &new, 0.20);
        assert_eq!(report.only_old, vec!["b"]);
        assert_eq!(report.only_new, vec!["c"]);
        assert!(report.regressions().is_empty());
    }

    #[test]
    fn machine_fingerprints_compare() {
        let stamped = json!({
            "machine_info": {
                "os": "linux", "arch": "x86_64",
                "available_parallelism": 8, "cpu_model": "TestCPU",
            },
        });
        let fp = machine_fingerprint(&stamped).unwrap();
        assert_eq!(fp, "linux/x86_64 cpus=8 model=TestCPU");
        assert_eq!(machine_fingerprint(&json!({"bench": "x"})), None);
    }
}
