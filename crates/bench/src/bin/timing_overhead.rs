//! Section V-E: execution overhead breakdown — ACFG build time, classifier
//! training time per instance, and prediction time per instance.
//!
//! Paper numbers (their hardware — i7-6850K for extraction, GTX 1080 Ti
//! for the model): extraction ≈ 5.8 s/sample, training ≈ 29.69 ± 4.90
//! ms/instance, prediction ≈ 11.33 ± 1.35 ms/instance. Absolute values
//! here will differ (CPU-only, synthetic corpus); the claim under test is
//! that prediction stays in the online-usable millisecond range.

use magic::pipeline::extract_acfg;
use magic::trainer::{TrainConfig, Trainer};
use magic_bench::experiments::{best_params, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_mskcfg, RunArgs};
use magic_model::Dgcnn;
use magic_synth::MskcfgGenerator;
use magic_json::json;
use std::time::Instant;

fn mean_std(samples: &[f64]) -> (f64, f64) {
    let n = samples.len().max(1) as f64;
    let mean = samples.iter().sum::<f64>() / n;
    let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n;
    (mean, var.sqrt())
}

fn main() {
    // Per-epoch progress logging is stderr I/O inside the timed regions.
    magic_obs::set_log_level(magic_obs::Level::Error);
    let args = RunArgs::parse(RunArgs::quick());
    println!("=== Section V-E: execution overhead of MAGIC ===\n");

    // 1. ACFG extraction time.
    let mut generator = MskcfgGenerator::new(args.seed, 1.0);
    let extraction: Vec<f64> = (0..9)
        .flat_map(|family| (0..5).map(move |_| family))
        .map(|family| {
            let sample = generator.generate_one(family);
            let start = Instant::now();
            let acfg = extract_acfg(&sample.listing).expect("generated listings parse");
            let elapsed = start.elapsed().as_secs_f64() * 1000.0;
            assert!(acfg.vertex_count() > 0);
            elapsed
        })
        .collect();
    let (ext_mean, ext_std) = mean_std(&extraction);
    println!(
        "ACFG extraction: {ext_mean:.3} ± {ext_std:.3} ms/sample over {} samples",
        extraction.len()
    );
    println!("  (paper: ~5800 ms/sample on their corpus of far larger real binaries)");

    // 2. Training time per instance (forward + backward + update share).
    let corpus = prepare_mskcfg(args.seed, args.scale.min(0.01));
    let params = best_params(Corpus::Mskcfg);
    let model_config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
    let train_config = TrainConfig {
        epochs: 1,
        batch_size: params.batch_size,
        weight_decay: params.weight_decay,
        seed: args.seed,
        ..TrainConfig::default()
    };
    let trainer = Trainer::new(train_config);
    let idx: Vec<usize> = (0..corpus.len()).collect();
    let mut train_times = Vec::new();
    for run in 0..5 {
        let mut model = Dgcnn::new(&model_config, args.seed + run);
        let start = Instant::now();
        trainer.train(&mut model, &corpus.inputs, &corpus.labels, &idx, &idx[..1]);
        train_times.push(start.elapsed().as_secs_f64() * 1000.0 / corpus.len() as f64);
    }
    let (train_mean, train_std) = mean_std(&train_times);
    println!(
        "training: {train_mean:.2} ± {train_std:.2} ms/instance (paper: 29.69 ± 4.90 ms on GPU)"
    );

    // 3. Prediction time per instance.
    let model = Dgcnn::new(&model_config, args.seed);
    let mut predict_times = Vec::new();
    for _ in 0..5 {
        let start = Instant::now();
        for input in &corpus.inputs {
            std::hint::black_box(model.predict(input));
        }
        predict_times.push(start.elapsed().as_secs_f64() * 1000.0 / corpus.len() as f64);
    }
    let (pred_mean, pred_std) = mean_std(&predict_times);
    println!(
        "prediction: {pred_mean:.2} ± {pred_std:.2} ms/instance (paper: 11.33 ± 1.35 ms on GPU)"
    );
    println!(
        "\nactionable-for-online-classification check: prediction {} 100 ms/instance",
        if pred_mean < 100.0 { "<" } else { ">=" }
    );

    write_result(
        "timing_overhead",
        &json!({
            "extraction_ms_per_sample": { "mean": ext_mean, "std": ext_std },
            "training_ms_per_instance": { "mean": train_mean, "std": train_std },
            "prediction_ms_per_instance": { "mean": pred_mean, "std": pred_std },
            "paper": {
                "extraction_ms_per_sample": 5800.0,
                "training_ms_per_instance": { "mean": 29.69, "std": 4.90 },
                "prediction_ms_per_instance": { "mean": 11.33, "std": 1.35 },
            },
        }),
    );
}
