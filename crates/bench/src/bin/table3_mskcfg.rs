//! Table III + Fig. 9: per-family precision/recall/F1 of MAGIC's best
//! model on the MSKCFG-like corpus, under stratified 5-fold CV.
//!
//! Paper numbers to compare shape against: every family's P/R/F1 ≥ 0.96,
//! overall accuracy 99.25%, mean log loss 0.0543.

use magic_bench::experiments::{best_params, run_cv, Corpus};
use magic_bench::results::{bar, report_to_json, write_result};
use magic_bench::{prepare_mskcfg, RunArgs};
use magic_json::json;

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Table III / Fig. 9: MAGIC on MSKCFG (scale {}, {} epochs, {}-fold CV) ===",
        args.scale, args.epochs, args.folds
    );
    let corpus = prepare_mskcfg(args.seed, args.scale);
    println!("corpus: {} samples, 9 families", corpus.len());

    let params = best_params(Corpus::Mskcfg);
    println!("best model (Table II): {params}");
    let outcome = run_cv(&corpus, &params, args.epochs, args.folds, args.seed);
    let report = outcome.report(&corpus.class_names);

    println!("\n{report}\n");
    println!("Fig. 9 (cross-validation F1 per family):");
    for class in &report.classes {
        println!("{:<16} {} {:.4}", class.name, bar(class.f1, 1.0, 40), class.f1);
    }
    println!(
        "\npaper: accuracy 0.9925, log-loss 0.0543 | measured: accuracy {:.4}, log-loss {:.4}",
        report.accuracy, outcome.log_loss
    );

    write_result(
        "table3_mskcfg",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "paper": { "accuracy": 0.9925, "log_loss": 0.0543 },
            "measured": report_to_json(&report),
        }),
    );
}
