//! Extension experiment: MAGIC as a *detector* (benign vs malware).
//!
//! The paper's Section V-C notes that detection-oriented works (\[39\],
//! \[12\]) report two-class metrics on a benign+malware mix and are
//! therefore not comparable with the family-classification tables — but
//! also that "benign software can be treated as a special family". The
//! YANCFG corpus contains a Benign class, so this binary evaluates
//! exactly that reading: train the multi-family model, score each sample
//! with `1 - P(Benign)` as its malware score, and report ROC-AUC plus the
//! detection confusion at the 0.5 threshold.

use magic::cv::cross_validate;
use magic_bench::experiments::{best_params, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_yancfg, RunArgs};
use magic_data::stratified_kfold;
use magic_metrics::{roc_auc, ConfusionMatrix};
use magic_model::Dgcnn;
use magic::trainer::Trainer;
use magic_json::json;

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Extension: detection mode, benign vs malware (YANCFG, scale {}) ===",
        args.scale
    );
    let corpus = prepare_yancfg(args.seed, args.scale);
    let benign = corpus
        .class_names
        .iter()
        .position(|n| n == "Benign")
        .expect("YANCFG has a Benign class");
    println!(
        "corpus: {} samples, {} benign\n",
        corpus.len(),
        corpus.labels.iter().filter(|&&l| l == benign).count()
    );

    // Train per fold on the full 13-family task, score 1 - P(Benign).
    let params = best_params(Corpus::Yancfg);
    let model_config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
    let train_config = params.to_train_config(args.epochs, args.seed);
    let trainer = Trainer::new(train_config.clone());
    let splits = stratified_kfold(&corpus.labels, args.folds, args.seed);

    let mut scores = Vec::with_capacity(corpus.len());
    let mut truth = Vec::with_capacity(corpus.len());
    let mut detection = ConfusionMatrix::new(2);
    for (fold, split) in splits.iter().enumerate() {
        let mut model = Dgcnn::new(&model_config, train_config.seed ^ (fold as u64).wrapping_mul(0x9E37));
        trainer.train(&mut model, &corpus.inputs, &corpus.labels, &split.train, &split.validation);
        for &i in &split.validation {
            let probs = model.predict(&corpus.inputs[i]);
            let malware_score = 1.0 - probs[benign] as f64;
            let is_malware = corpus.labels[i] != benign;
            scores.push(malware_score);
            truth.push(is_malware);
            detection.record(usize::from(is_malware), usize::from(malware_score >= 0.5));
        }
    }

    let auc = roc_auc(&scores, &truth);
    println!("detection ROC-AUC: {auc:.4}");
    println!(
        "at threshold 0.5: detection rate {:.4}, false-positive rate {:.4}, accuracy {:.4}",
        detection.recall(1),
        1.0 - detection.recall(0),
        detection.accuracy()
    );
    println!("(for scale: [12]/[39]-class detectors report two-class AUC ≈ 0.99 on their corpora)");

    // Reference point: the full 13-way task on the same data.
    let multi = cross_validate(&model_config, &train_config, &corpus.inputs, &corpus.labels, args.folds);
    println!("13-family accuracy on the same corpus: {:.4}", multi.confusion.accuracy());

    write_result(
        "ext_detection",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "roc_auc": auc,
            "detection_rate": detection.recall(1),
            "false_positive_rate": 1.0 - detection.recall(0),
            "accuracy": detection.accuracy(),
            "multiclass_accuracy": multi.confusion.accuracy(),
        }),
    );
}
