//! Table II: hyperparameter search.
//!
//! Sweeps the Table II grid with K-fold cross-validation per setting and
//! reports the winner per dataset, mirroring the paper's model-selection
//! procedure (Section V-B). By default the CPU-sized reduced grid (6
//! settings) is swept; `--full` runs all 208 settings of the paper.

use magic::tuning::{GridSearch, HyperParams};
use magic_bench::results::write_result;
use magic_bench::{prepare_mskcfg, prepare_yancfg, PreparedCorpus, RunArgs};
use magic_json::json;

fn sweep(name: &str, corpus: &PreparedCorpus, args: &RunArgs) -> Vec<magic_json::Value> {
    let grid = if args.full {
        HyperParams::full_grid()
    } else {
        HyperParams::reduced_grid()
    };
    println!(
        "\n--- {name}: sweeping {} settings x {}-fold CV x {} epochs ---",
        grid.len(),
        args.folds,
        args.epochs
    );
    let search = GridSearch { grid, epochs: args.epochs, folds: args.folds, seed: args.seed };
    let outcomes = search.run(
        &corpus.inputs,
        &corpus.labels,
        corpus.class_names.len(),
        |i, total, outcome| {
            println!(
                "[{}/{}] val-loss {:.4}  acc {:.4}  {}",
                i + 1,
                total,
                outcome.cv.mean_val_loss,
                outcome.cv.confusion.accuracy(),
                outcome.params
            );
        },
    );
    println!("\nbest model for {name}: {}", outcomes[0].params);
    println!(
        "  mean val loss {:.4}, CV accuracy {:.4}",
        outcomes[0].cv.mean_val_loss,
        outcomes[0].cv.confusion.accuracy()
    );
    outcomes
        .iter()
        .map(|o| {
            json!({
                "params": o.params.to_string(),
                "mean_val_loss": o.cv.mean_val_loss,
                "accuracy": o.cv.confusion.accuracy(),
                "log_loss": o.cv.log_loss,
            })
        })
        .collect()
}

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!("=== Table II: hyperparameter tuning (scale {}) ===", args.scale);
    println!(
        "full grid size: {} (64 adaptive + 96 sort/conv1d + 48 sort/weighted); sweeping {}",
        HyperParams::full_grid().len(),
        if args.full { "FULL grid" } else { "reduced grid (pass --full for all 208)" }
    );

    let msk = prepare_mskcfg(args.seed, args.scale);
    let msk_results = sweep("MSKCFG", &msk, &args);

    let yan = prepare_yancfg(args.seed, args.scale);
    let yan_results = sweep("YANCFG", &yan, &args);

    println!(
        "\npaper best models: MSKCFG = adaptive, ratio 0.64, (128,64,32,32), 16ch, drop 0.1, batch 10, l2 1e-4"
    );
    println!(
        "                   YANCFG = adaptive, ratio 0.2, (32,32,32,32), 16ch, drop 0.5, batch 40, l2 5e-4"
    );

    write_result(
        "table2_hyperparams",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "grid": if args.full { "full-208" } else { "reduced-6" },
            "mskcfg_ranked": msk_results,
            "yancfg_ranked": yan_results,
        }),
    );
}
