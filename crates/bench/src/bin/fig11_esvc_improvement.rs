//! Fig. 11: per-family F1 improvement of MAGIC over the ESVC SVM
//! ensemble \[8\] on the YANCFG corpus.
//!
//! Shape targets: MAGIC wins on most families with the largest absolute
//! gains (≥ 0.2 in the paper) on Bagle/Koobface/Ldpinch/Lmir; Rbot is the
//! one family where ESVC is visibly ahead; Benign is excluded from the
//! comparison (unreported in \[8\]).

use magic_bench::experiments::{best_params, run_cv, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_yancfg, RunArgs};
use magic_baselines::{Classifier, FeatureVector, LinearSvmEnsemble};
use magic_data::stratified_kfold;
use magic_metrics::{ConfusionMatrix, ScoreReport};
use magic_json::json;

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Fig. 11: MAGIC vs ESVC on YANCFG (scale {}, {} epochs, {}-fold CV) ===",
        args.scale, args.epochs, args.folds
    );
    let corpus = prepare_yancfg(args.seed, args.scale);
    println!("corpus: {} samples, 13 families\n", corpus.len());

    // MAGIC.
    let outcome = run_cv(&corpus, &best_params(Corpus::Yancfg), args.epochs, args.folds, args.seed);
    let magic_report = outcome.report(&corpus.class_names);

    // ESVC-like SVM ensemble on handcrafted features, same folds.
    let features: Vec<Vec<f64>> =
        corpus.acfgs.iter().map(|a| FeatureVector::Basic.extract(a)).collect();
    let splits = stratified_kfold(&corpus.labels, args.folds, args.seed);
    let mut confusion = ConfusionMatrix::new(corpus.class_names.len());
    for split in &splits {
        let train_x: Vec<Vec<f64>> = split.train.iter().map(|&i| features[i].clone()).collect();
        let train_y: Vec<usize> = split.train.iter().map(|&i| corpus.labels[i]).collect();
        let mut svm = LinearSvmEnsemble::new(15, 1e-3, args.seed);
        svm.fit(&train_x, &train_y, corpus.class_names.len());
        for &i in &split.validation {
            confusion.record(corpus.labels[i], svm.predict(&features[i]));
        }
    }
    let esvc_report = ScoreReport::from_confusion(&confusion, &corpus.class_names);

    println!(
        "{:<12} {:>10} {:>10} {:>10} {:>10}",
        "Family", "MAGIC F1", "ESVC F1", "abs diff", "rel diff"
    );
    let mut records = Vec::new();
    for (m, e) in magic_report.classes.iter().zip(&esvc_report.classes) {
        // Fig. 11 omits Benign (unreported by [8]).
        if m.name == "Benign" {
            continue;
        }
        let abs = m.f1 - e.f1;
        let rel = if e.f1 > 0.0 { abs / e.f1 } else { f64::INFINITY };
        println!(
            "{:<12} {:>10.4} {:>10.4} {:>+10.4} {:>+9.1}%",
            m.name,
            m.f1,
            e.f1,
            abs,
            rel * 100.0
        );
        records.push(json!({
            "family": m.name,
            "magic_f1": m.f1,
            "esvc_f1": e.f1,
            "absolute_improvement": abs,
            "relative_improvement": rel,
        }));
    }
    let wins = records
        .iter()
        .filter(|r| r["absolute_improvement"].as_f64().unwrap_or(0.0) > 0.0)
        .count();
    println!("\nMAGIC ahead on {wins}/{} families (paper: 10/12)", records.len());

    write_result(
        "fig11_esvc_improvement",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "families": records,
            "magic_wins": wins,
        }),
    );
}
