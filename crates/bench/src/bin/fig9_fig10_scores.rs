//! Figs. 9 and 10: the cross-validation precision/recall/F1 bar charts.
//!
//! These figures plot the same data as Tables III and V; this binary
//! re-renders the most recent `table3_mskcfg.json` / `table5_yancfg.json`
//! results as grouped terminal bars, or instructs the user to generate
//! them first.

use magic_bench::results::{bar, results_dir};
use magic_json::Value;

fn render(name: &str, title: &str) -> bool {
    let path = results_dir().join(format!("{name}.json"));
    let Ok(text) = std::fs::read_to_string(&path) else {
        println!(
            "{title}: no result at {} — run `cargo run --release -p magic-bench --bin {name}` first",
            path.display()
        );
        return false;
    };
    let v: Value = match magic_json::from_str(&text) {
        Ok(v) => v,
        Err(e) => {
            println!("{title}: unreadable result file: {e}");
            return false;
        }
    };
    println!("\n=== {title} ===");
    println!(
        "{:<16} {:<22} {:>7} {:>7} {:>7}",
        "Family", "F1 bar", "Prec", "Recall", "F1"
    );
    if let Some(classes) = v["measured"]["classes"].as_array() {
        for c in classes {
            println!(
                "{:<16} {:<22} {:>7.4} {:>7.4} {:>7.4}",
                c["name"].as_str().unwrap_or("?"),
                bar(c["f1"].as_f64().unwrap_or(0.0), 1.0, 20),
                c["precision"].as_f64().unwrap_or(0.0),
                c["recall"].as_f64().unwrap_or(0.0),
                c["f1"].as_f64().unwrap_or(0.0),
            );
        }
    }
    println!(
        "accuracy {:.4}  macro-F1 {:.4}",
        v["measured"]["accuracy"].as_f64().unwrap_or(0.0),
        v["measured"]["macro_f1"].as_f64().unwrap_or(0.0),
    );
    true
}

fn main() {
    let a = render("table3_mskcfg", "Fig. 9: cross-validation scores on MSKCFG");
    let b = render("table5_yancfg", "Fig. 10: cross-validation scores on YANCFG");
    if !(a || b) {
        std::process::exit(1);
    }
}
