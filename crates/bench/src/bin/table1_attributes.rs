//! Table I: the block-level attributes used in MAGIC.
//!
//! Demonstrates the attribute extractor on a representative basic block
//! and prints the full attribute catalogue, then summarizes the attribute
//! distributions over a generated MSKCFG-like corpus slice.

use magic::pipeline::extract_acfg;
use magic_bench::{prepare_mskcfg, RunArgs};
use magic_graph::Attribute;
use magic_json::json;

const DEMO_LISTING: &str = "\
.text:00401000                 push    ebp
.text:00401001                 mov     ebp, esp
.text:00401003                 mov     eax, [ebp+8]
.text:00401006                 cmp     eax, 0x40
.text:00401009                 jz      short loc_401012
.text:0040100B                 add     eax, 1Fh
.text:0040100E                 xor     eax, 0xFF
.text:00401011                 retn
.text:00401012 loc_401012:
.text:00401012                 call    ds:ExitProcess
.text:00401018                 retn
";

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!("=== Table I: Block-Level Attributes Used in MAGIC ===\n");
    println!("{:<4} {:<36} Source", "Ch", "Attribute");
    for attr in Attribute::ALL {
        let source = match attr {
            Attribute::Offspring | Attribute::InstructionsInVertex => "Vertex Structure",
            _ => "Code Sequence",
        };
        println!("{:<4} {:<36} {}", attr as usize, attr.name(), source);
    }

    println!("\n--- extraction demo on a hand-written function ---\n{DEMO_LISTING}");
    let acfg = extract_acfg(DEMO_LISTING).expect("demo listing parses");
    println!(
        "{} basic blocks, {} edges\n",
        acfg.vertex_count(),
        acfg.edge_count()
    );
    println!("{:<4} attribute vector (Table I channel order)", "Blk");
    for v in 0..acfg.vertex_count() {
        let row: Vec<String> = acfg
            .attributes()
            .row(v)
            .iter()
            .map(|x| format!("{x:>3}"))
            .collect();
        println!("{v:<4} [{}]", row.join(" "));
    }

    println!("\n--- attribute means over a generated MSKCFG-like slice ---");
    let corpus = prepare_mskcfg(args.seed, args.scale.min(0.01));
    let mut sums = vec![0.0f64; Attribute::ALL.len()];
    let mut vertices = 0usize;
    for acfg in &corpus.acfgs {
        let row_sums = acfg.attributes().sum_rows();
        for (s, r) in sums.iter_mut().zip(&row_sums) {
            *s += *r as f64;
        }
        vertices += acfg.vertex_count();
    }
    println!("({} samples, {} vertices)", corpus.len(), vertices);
    let mut json_means = magic_json::Map::new();
    for (attr, &total) in Attribute::ALL.iter().zip(&sums) {
        let mean = total / vertices.max(1) as f64;
        println!("{:<36} mean/vertex = {mean:.3}", attr.name());
        json_means.insert(attr.name().to_string(), json!(mean));
    }
    magic_bench::results::write_result(
        "table1_attributes",
        &json!({
            "samples": corpus.len(),
            "vertices": vertices,
            "mean_per_vertex": json_means,
        }),
    );
}
