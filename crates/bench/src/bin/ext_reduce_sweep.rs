//! Extension experiment: accuracy-vs-speed sweep over the `--reduce`
//! graph-reduction strategies.
//!
//! For every strategy (`none`, `chain`, `prune`, `coarsen:2`) on both
//! corpora, this reduces every graph, cross-validates the Table II best
//! model on the reduced corpus, and times a training epoch per-sample
//! on fold 0 — quantifying how much structure each strategy removes,
//! what that buys in epoch wall-clock, and what it costs in test
//! accuracy/macro-F1. Results land in `results/ext_reduce_sweep.json`
//! and as the markdown table in EXPERIMENTS.md ("Graph reduction").

use magic::trainer::Trainer;
use magic_bench::corpus::PreparedCorpus;
use magic_bench::experiments::{best_params, run_cv, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_mskcfg, prepare_yancfg, RunArgs};
use magic_data::stratified_kfold;
use magic_graph::{Acfg, ReduceStrategy};
use magic_model::{Dgcnn, GraphInput};
use magic_json::json;
use std::time::Instant;

/// Reduces every graph of a prepared corpus, rebuilding the inputs.
fn reduce_corpus(corpus: &PreparedCorpus, strategy: ReduceStrategy) -> PreparedCorpus {
    let acfgs: Vec<Acfg> = corpus.acfgs.iter().map(|a| strategy.apply(a)).collect();
    let inputs: Vec<GraphInput> = acfgs.iter().map(GraphInput::from_acfg).collect();
    PreparedCorpus {
        acfgs,
        inputs,
        labels: corpus.labels.clone(),
        class_names: corpus.class_names.clone(),
    }
}

fn totals(acfgs: &[Acfg]) -> (usize, usize) {
    acfgs.iter().fold((0, 0), |(n, e), a| (n + a.vertex_count(), e + a.edge_count()))
}

/// Seconds per training epoch of the Table II best model on fold 0,
/// per-sample mode with one worker (the configuration EXPERIMENTS.md's
/// 0.92 s/epoch mskcfg baseline was measured in).
fn epoch_seconds(corpus: &PreparedCorpus, which: Corpus, seed: u64) -> f64 {
    let params = best_params(which);
    let epochs = 2;
    let config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
    let mut train_config = params.to_train_config(epochs, seed);
    train_config.train_workers = 1;
    let split = &stratified_kfold(&corpus.labels, 5, seed)[0];
    let mut model = Dgcnn::new(&config, seed);
    let start = Instant::now();
    let outcome = Trainer::new(train_config).train(
        &mut model,
        &corpus.inputs,
        &corpus.labels,
        &split.train,
        &split.validation,
    );
    let elapsed = start.elapsed().as_secs_f64();
    std::hint::black_box(outcome.history.len());
    elapsed / epochs as f64
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Extension: --reduce accuracy-vs-speed sweep (scale {}, {} epochs, {} folds) ===",
        args.scale, args.epochs, args.folds
    );

    let strategies = [
        ReduceStrategy::None,
        ReduceStrategy::Chain,
        ReduceStrategy::Prune,
        ReduceStrategy::Coarsen { rounds: 2 },
    ];
    let mut out_rows = Vec::new();
    for (which, name, base) in [
        (Corpus::Mskcfg, "mskcfg", prepare_mskcfg(args.seed, args.scale)),
        (Corpus::Yancfg, "yancfg", prepare_yancfg(args.seed, args.scale)),
    ] {
        let (nodes0, edges0) = totals(&base.acfgs);
        println!(
            "\n{name}: {} samples, {nodes0} nodes, {edges0} edges",
            base.len()
        );
        println!(
            "| corpus | reduce | nodes removed | edges removed | epoch s | speedup | accuracy | macro-F1 |"
        );
        println!("|---|---|---|---|---|---|---|---|");
        let mut base_epoch_s = 0.0f64;
        for strategy in strategies {
            let reduced = reduce_corpus(&base, strategy);
            let (nodes, edges) = totals(&reduced.acfgs);
            let epoch_s = epoch_seconds(&reduced, which, args.seed);
            if strategy.is_none() {
                base_epoch_s = epoch_s;
            }
            let cv = run_cv(&reduced, &best_params(which), args.epochs, args.folds, args.seed);
            let accuracy = cv.confusion.accuracy();
            let macro_f1 = cv.confusion.macro_f1();
            let speedup = base_epoch_s / epoch_s;
            println!(
                "| {name} | {} | {} ({:.1}%) | {} ({:.1}%) | {epoch_s:.3} | {speedup:.2}x | {accuracy:.4} | {macro_f1:.4} |",
                strategy.name(),
                nodes0 - nodes,
                100.0 * (nodes0 - nodes) as f64 / nodes0.max(1) as f64,
                edges0 - edges,
                100.0 * (edges0 - edges) as f64 / edges0.max(1) as f64,
            );
            out_rows.push(json!({
                "corpus": name,
                "reduce": strategy.name(),
                "nodes_before": nodes0 as u64,
                "nodes_after": nodes as u64,
                "edges_before": edges0 as u64,
                "edges_after": edges as u64,
                "epoch_seconds": epoch_s,
                "epoch_speedup_vs_none": speedup,
                "accuracy": accuracy,
                "macro_f1": macro_f1,
                "mean_val_loss": cv.mean_val_loss,
            }));
        }
    }

    write_result(
        "ext_reduce_sweep",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "seed": args.seed,
            "rows": out_rows,
        }),
    );
}
