//! Extension experiment: DGCNN vs the classical WL-subtree-kernel k-NN.
//!
//! Section I motivates MAGIC against graph-similarity classification whose
//! "time needed to compute pairwise graph similarity for a malware dataset
//! scales quadratically with its size". This binary quantifies both halves
//! of that claim on the YANCFG-like corpus:
//!
//! 1. classification quality of a WL-kernel k-NN vs the DGCNN, and
//! 2. per-prediction latency of each as the training set grows — flat for
//!    the DGCNN (model size is constant), linear-in-training-size for the
//!    kernel k-NN.

use magic_baselines::WlKernelKnn;
use magic_bench::experiments::{best_params, run_cv, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_yancfg, RunArgs};
use magic_data::stratified_kfold;
use magic_metrics::ConfusionMatrix;
use magic_model::Dgcnn;
use magic_json::json;
use std::time::Instant;

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Extension: DGCNN vs WL-kernel k-NN (YANCFG, scale {}) ===",
        args.scale
    );
    let corpus = prepare_yancfg(args.seed, args.scale);
    println!("corpus: {} samples\n", corpus.len());

    // --- classification quality, same folds ------------------------------
    let dgcnn = run_cv(&corpus, &best_params(Corpus::Yancfg), args.epochs, args.folds, args.seed);
    let splits = stratified_kfold(&corpus.labels, args.folds, args.seed);
    let mut wl_confusion = ConfusionMatrix::new(corpus.class_names.len());
    for split in &splits {
        let graphs: Vec<&magic_graph::Acfg> = split.train.iter().map(|&i| &corpus.acfgs[i]).collect();
        let labels: Vec<usize> = split.train.iter().map(|&i| corpus.labels[i]).collect();
        let mut knn = WlKernelKnn::new(3, 5);
        knn.fit(&graphs, &labels, corpus.class_names.len());
        for &i in &split.validation {
            wl_confusion.record(corpus.labels[i], knn.predict(&corpus.acfgs[i]));
        }
    }
    println!(
        "accuracy: DGCNN {:.4} vs WL-kernel kNN {:.4}",
        dgcnn.confusion.accuracy(),
        wl_confusion.accuracy()
    );

    // --- prediction latency vs training-set size -------------------------
    println!("\nper-prediction latency as the training set grows:");
    println!("{:>10} {:>16} {:>16}", "train size", "WL-kNN ms/query", "DGCNN ms/query");
    let params = best_params(Corpus::Yancfg);
    let config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
    let model = Dgcnn::new(&config, 1);
    let probes: Vec<usize> = (0..20.min(corpus.len())).collect();
    let mut latency_rows = Vec::new();
    for frac in [0.25, 0.5, 1.0] {
        let train_size = ((corpus.len() as f64) * frac) as usize;
        let graphs: Vec<&magic_graph::Acfg> =
            corpus.acfgs.iter().take(train_size).collect();
        let labels: Vec<usize> = corpus.labels.iter().take(train_size).copied().collect();
        let mut knn = WlKernelKnn::new(3, 5);
        knn.fit(&graphs, &labels, corpus.class_names.len());

        let start = Instant::now();
        for &i in &probes {
            std::hint::black_box(knn.predict(&corpus.acfgs[i]));
        }
        let knn_ms = start.elapsed().as_secs_f64() * 1000.0 / probes.len() as f64;

        let start = Instant::now();
        for &i in &probes {
            std::hint::black_box(model.predict(&corpus.inputs[i]));
        }
        let dgcnn_ms = start.elapsed().as_secs_f64() * 1000.0 / probes.len() as f64;
        println!("{train_size:>10} {knn_ms:>16.3} {dgcnn_ms:>16.3}");
        latency_rows.push(json!({
            "train_size": train_size,
            "wl_knn_ms_per_query": knn_ms,
            "dgcnn_ms_per_query": dgcnn_ms,
        }));
    }
    println!("\nshape check: WL-kNN latency grows with training size; DGCNN stays flat.");

    write_result(
        "ext_wl_kernel",
        &json!({
            "scale": args.scale,
            "dgcnn_accuracy": dgcnn.confusion.accuracy(),
            "wl_knn_accuracy": wl_confusion.accuracy(),
            "latency": latency_rows,
        }),
    );
}
