//! Table V + Fig. 10: per-family precision/recall/F1 of MAGIC's best
//! model on the YANCFG-like corpus, under stratified 5-fold CV.
//!
//! Shape targets from the paper: ≥9 of 13 families with F1 > 0.9
//! (Koobface and Swizzor near-perfect); the overlapping bot families
//! degraded — Ldpinch/Sdbot recall ≈ 0.5, Rbot precision ≈ 0.64.

use magic_bench::experiments::{best_params, run_cv, Corpus};
use magic_bench::results::{bar, report_to_json, write_result};
use magic_bench::{prepare_yancfg, RunArgs};
use magic_json::json;

/// Table V of the paper, for side-by-side printing.
const PAPER_F1: [(&str, f64); 13] = [
    ("Bagle", 0.904762),
    ("Benign", 0.958525),
    ("Bifrose", 0.915888),
    ("Hupigon", 0.940454),
    ("Koobface", 1.0),
    ("Ldpinch", 0.590164),
    ("Lmir", 0.779220),
    ("Rbot", 0.697095),
    ("Sdbot", 0.575342),
    ("Swizzor", 0.995708),
    ("Vundo", 0.986351),
    ("Zbot", 0.939314),
    ("Zlob", 0.979592),
];

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Table V / Fig. 10: MAGIC on YANCFG (scale {}, {} epochs, {}-fold CV) ===",
        args.scale, args.epochs, args.folds
    );
    let corpus = prepare_yancfg(args.seed, args.scale);
    println!("corpus: {} samples, 13 families", corpus.len());

    let params = best_params(Corpus::Yancfg);
    println!("best model (Table II): {params}");
    let outcome = run_cv(&corpus, &params, args.epochs, args.folds, args.seed);
    let report = outcome.report(&corpus.class_names);

    println!("\n{report}\n");
    println!("Fig. 10 (cross-validation F1 per family, measured vs paper):");
    println!("{:<12} {:<44} {:>8} {:>8}", "Family", "", "meas.", "paper");
    for (class, (pname, pf1)) in report.classes.iter().zip(PAPER_F1) {
        assert_eq!(class.name, pname, "family order must match Table V");
        println!(
            "{:<12} {} {:>8.4} {:>8.4}",
            class.name,
            bar(class.f1, 1.0, 40),
            class.f1,
            pf1
        );
    }

    write_result(
        "table5_yancfg",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "paper_f1": PAPER_F1.iter().map(|(n, f)| json!({"name": n, "f1": f})).collect::<Vec<_>>(),
            "measured": report_to_json(&report),
        }),
    );
}
