//! Extension experiment: concept drift.
//!
//! Section V-E closes with the concern that "malware development trends
//! after the collection of these two datasets introduce new challenges"
//! and defers testing "with the latest malware samples" to future work.
//! With a generative corpus we can run that experiment: train on today's
//! families, evaluate on progressively drifted versions of the same
//! families (bigger programs, heavier junk/splitting obfuscation, shifted
//! instruction mixes), and watch accuracy decay.

use magic::trainer::{evaluate, Trainer};
use magic_bench::experiments::{best_params, Corpus};
use magic_bench::results::{bar, write_result};
use magic_bench::RunArgs;
use magic_model::{Dgcnn, GraphInput};
use magic_synth::YancfgGenerator;
use magic_json::json;

fn corpus_inputs(generator: &mut YancfgGenerator) -> (Vec<GraphInput>, Vec<usize>) {
    let samples = generator.generate();
    let inputs = samples.iter().map(|s| GraphInput::from_acfg(&s.acfg)).collect();
    let labels = samples.iter().map(|s| s.label).collect();
    (inputs, labels)
}

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Extension: concept drift (YANCFG, scale {}, {} epochs) ===",
        args.scale, args.epochs
    );

    // Train once on the un-drifted corpus.
    let (train_inputs, train_labels) = corpus_inputs(&mut YancfgGenerator::new(args.seed, args.scale));
    println!("training corpus: {} samples", train_inputs.len());
    let params = best_params(Corpus::Yancfg);
    let sizes: Vec<usize> = train_inputs.iter().map(GraphInput::vertex_count).collect();
    let model_config = params.to_model_config(13, &sizes);
    let train_config = params.to_train_config(args.epochs, args.seed);
    let trainer = Trainer::new(train_config);
    let mut model = Dgcnn::new(&model_config, args.seed);
    let idx: Vec<usize> = (0..train_inputs.len()).collect();
    // Hold out the last 20% as the in-distribution reference.
    let cut = train_inputs.len() * 4 / 5;
    trainer.train(&mut model, &train_inputs, &train_labels, &idx[..cut], &idx[cut..]);
    let (_, in_dist) = evaluate(&model, &train_inputs, &train_labels, &idx[cut..]);
    println!("in-distribution held-out accuracy: {in_dist:.4}\n");

    println!("{:<8} {:<44} {:>9}", "drift", "", "accuracy");
    let mut rows = Vec::new();
    for drift in [0.0, 0.25, 0.5, 1.0, 2.0] {
        // Fresh samples (different seed) at this drift level.
        let (inputs, labels) =
            corpus_inputs(&mut YancfgGenerator::with_drift(args.seed + 104_729, args.scale, drift));
        let all: Vec<usize> = (0..inputs.len()).collect();
        let (_, accuracy) = evaluate(&model, &inputs, &labels, &all);
        println!("{drift:<8} {} {accuracy:>9.4}", bar(accuracy, 1.0, 42));
        rows.push(json!({ "drift": drift, "accuracy": accuracy }));
    }
    println!("\nshape check: accuracy decays monotonically (allowing noise) as drift grows.");

    write_result(
        "ext_drift",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "in_distribution_accuracy": in_dist,
            "drift_curve": rows,
        }),
    );
}
