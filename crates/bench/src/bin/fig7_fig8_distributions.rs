//! Figs. 7 and 8: malware family distributions of the two corpora.
//!
//! Prints the family histograms at full scale (the paper's counts) and at
//! the requested generation scale, confirming the generators preserve the
//! class imbalance that motivates stratified CV.

use magic_bench::results::{bar, write_result};
use magic_bench::RunArgs;
use magic_synth::mskcfg::{MskcfgGenerator, MSKCFG_COUNTS, MSKCFG_FAMILIES};
use magic_synth::yancfg::{YancfgGenerator, YANCFG_COUNTS, YANCFG_FAMILIES};
use magic_json::json;

fn print_distribution(title: &str, names: &[&str], full: &[usize], scaled: &[usize]) {
    println!("\n=== {title} ===");
    let max = *full.iter().max().unwrap_or(&1) as f64;
    println!(
        "{:<16} {:<42} {:>8} {:>8}",
        "Family", "", "full", "scaled"
    );
    for ((name, &count), &s) in names.iter().zip(full).zip(scaled) {
        println!("{:<16} {} {:>8} {:>8}", name, bar(count as f64, max, 40), count, s);
    }
    println!(
        "{:<16} {:<42} {:>8} {:>8}",
        "total",
        "",
        full.iter().sum::<usize>(),
        scaled.iter().sum::<usize>()
    );
}

fn main() {
    let args = RunArgs::parse(RunArgs::quick());

    let msk = MskcfgGenerator::new(args.seed, args.scale);
    print_distribution(
        "Fig. 7: MSKCFG family distribution",
        &MSKCFG_FAMILIES,
        &MSKCFG_COUNTS,
        &msk.family_counts(),
    );

    let yan = YancfgGenerator::new(args.seed, args.scale);
    print_distribution(
        "Fig. 8: YANCFG family distribution",
        &YANCFG_FAMILIES,
        &YANCFG_COUNTS,
        &yan.family_counts(),
    );

    write_result(
        "fig7_fig8_distributions",
        &json!({
            "scale": args.scale,
            "mskcfg": MSKCFG_FAMILIES.iter().zip(MSKCFG_COUNTS).zip(msk.family_counts())
                .map(|((n, full), scaled)| json!({"family": n, "full": full, "scaled": scaled}))
                .collect::<Vec<_>>(),
            "yancfg": YANCFG_FAMILIES.iter().zip(YANCFG_COUNTS).zip(yan.family_counts())
                .map(|((n, full), scaled)| json!({"family": n, "full": full, "scaled": scaled}))
                .collect::<Vec<_>>(),
        }),
    );
}
