//! Ablation (extension beyond the paper): which half of Table I matters?
//!
//! MAGIC's pitch is that *both* the per-block code statistics and the
//! structural context contribute. This binary trains the best YANCFG
//! model three times — with all 11 attribute channels, with only the
//! code-sequence channels (structure channels zeroed), and with only the
//! vertex-structure channels (code channels zeroed) — and compares
//! cross-validated accuracy. Expected shape: full > code-only >
//! structure-only, with structure-only still clearly above chance because
//! the graph convolution propagates topology.

use magic::cv::cross_validate;
use magic_bench::experiments::{best_params, Corpus};
use magic_bench::results::write_result;
use magic_bench::{prepare_yancfg, RunArgs};
use magic_graph::{Acfg, Attribute};
use magic_model::GraphInput;
use magic_json::json;

/// Zeroes the given attribute channels of every vertex.
fn mask_channels(acfg: &Acfg, channels: &[usize]) -> Acfg {
    let mut attrs = acfg.attributes().clone();
    for v in 0..acfg.vertex_count() {
        for &c in channels {
            attrs.set2(v, c, 0.0);
        }
    }
    Acfg::new(acfg.graph().clone(), attrs)
}

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Ablation: Table I attribute groups (YANCFG, scale {}, {} epochs) ===",
        args.scale, args.epochs
    );
    let corpus = prepare_yancfg(args.seed, args.scale);
    println!("corpus: {} samples\n", corpus.len());

    let structure_channels = [Attribute::Offspring as usize, Attribute::InstructionsInVertex as usize];
    let code_channels: Vec<usize> = (0..=8).collect();

    let variants: [(&str, Vec<usize>); 3] = [
        ("all 11 channels", vec![]),
        ("code-sequence only (structure zeroed)", structure_channels.to_vec()),
        ("structure only (code channels zeroed)", code_channels),
    ];

    let params = best_params(Corpus::Yancfg);
    let mut rows = Vec::new();
    for (name, masked) in &variants {
        let inputs: Vec<GraphInput> = corpus
            .acfgs
            .iter()
            .map(|a| GraphInput::from_acfg(&mask_channels(a, masked)))
            .collect();
        let sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();
        let model_config = params.to_model_config(corpus.class_names.len(), &sizes);
        let train_config = params.to_train_config(args.epochs, args.seed);
        let outcome = cross_validate(&model_config, &train_config, &inputs, &corpus.labels, args.folds);
        println!(
            "{:<42} accuracy {:.4}  macro-F1 {:.4}  log-loss {:.4}",
            name,
            outcome.confusion.accuracy(),
            outcome.report(&corpus.class_names).macro_f1,
            outcome.log_loss
        );
        rows.push(json!({
            "variant": name,
            "accuracy": outcome.confusion.accuracy(),
            "log_loss": outcome.log_loss,
        }));
    }

    write_result(
        "ablation_attributes",
        &json!({ "scale": args.scale, "epochs": args.epochs, "variants": rows }),
    );
}
