//! Table IV: cross-validation comparison on the Microsoft corpus —
//! MAGIC's DGCNN versus the handcrafted-feature baselines.
//!
//! Paper rows (mean log loss / accuracy): MAGIC 0.0543 / 99.25;
//! XGBoost + heavy feature engineering 0.0197 / 99.42; deep
//! autoencoder + XGBoost 0.0748 / 98.20; Strand 0.2228 / 97.41;
//! ensemble random forests — / 99.30; RF + feature engineering — / 99.21.
//! Shape target: GBDT on rich features ≈ DGCNN (GBDT slightly ahead on
//! log loss), both well ahead of the sequence classifier.

use magic_bench::experiments::{
    best_params, run_cv, run_feature_baselines, run_sequence_baseline, Corpus,
};
use magic_bench::results::write_result;
use magic_bench::{prepare_mskcfg, RunArgs};
use magic_json::json;

fn main() {
    let args = RunArgs::parse(RunArgs::quick());
    println!(
        "=== Table IV: method comparison on MSKCFG (scale {}, {} epochs, {}-fold CV) ===",
        args.scale, args.epochs, args.folds
    );
    let corpus = prepare_mskcfg(args.seed, args.scale);
    println!("corpus: {} samples, 9 families\n", corpus.len());

    let mut rows: Vec<(String, f64, f64)> = Vec::new();

    // MAGIC itself.
    let outcome = run_cv(&corpus, &best_params(Corpus::Mskcfg), args.epochs, args.folds, args.seed);
    rows.push((
        "MAGIC (DGCNN, this work)".to_string(),
        outcome.log_loss,
        outcome.confusion.accuracy(),
    ));

    // Feature-engineering baselines.
    for result in run_feature_baselines(&corpus, args.folds, args.seed) {
        rows.push((result.name, result.log_loss, result.accuracy));
    }
    // Sequence baseline (Strand-like).
    let seq = run_sequence_baseline(&corpus, args.folds, args.seed);
    rows.push((seq.name, seq.log_loss, seq.accuracy));

    println!("{:<55} {:>10} {:>10}", "Approach", "LogLoss", "Accuracy");
    for (name, loss, acc) in &rows {
        println!("{:<55} {:>10.4} {:>9.2}%", name, loss, acc * 100.0);
    }
    println!("\npaper (for shape): MAGIC 0.0543/99.25, XGBoost 0.0197/99.42, Strand 0.2228/97.41");

    write_result(
        "table4_comparison",
        &json!({
            "scale": args.scale,
            "epochs": args.epochs,
            "folds": args.folds,
            "paper": [
                { "name": "MAGIC", "log_loss": 0.0543, "accuracy": 0.9925 },
                { "name": "XGBoost with Heavy Feature Engineering [13]", "log_loss": 0.0197, "accuracy": 0.9942 },
                { "name": "Deep Autoencoder based XGBoost [9]", "log_loss": 0.0748, "accuracy": 0.9820 },
                { "name": "Strand Gene Sequence Classifier [15]", "log_loss": 0.2228, "accuracy": 0.9741 },
                { "name": "Ensemble Multiple Random Forest Classifiers [11]", "accuracy": 0.9930 },
                { "name": "Random Forest with Feature Engineering [14]", "accuracy": 0.9921 },
            ],
            "measured": rows.iter().map(|(n, l, a)| json!({
                "name": n, "log_loss": l, "accuracy": a,
            })).collect::<Vec<_>>(),
        }),
    );
}
