//! Experiment harness for the MAGIC reproduction.
//!
//! Every table and figure of the paper's evaluation (Section V) has a
//! binary in `src/bin/` that regenerates it; this library holds the
//! shared plumbing: corpus preparation (synthetic MSKCFG/YANCFG through
//! the real extraction pipeline), the experiment runners, and result
//! persistence under `results/`.
//!
//! Default corpus scales are sized for a CPU laptop; pass `--scale` /
//! `--epochs` / `--folds` to any binary to change them.

pub mod args;
pub mod corpus;
pub mod diff;
pub mod experiments;
pub mod results;

pub use args::RunArgs;
pub use corpus::{prepare_mskcfg, prepare_yancfg, PreparedCorpus};
