//! Minimal command-line argument handling shared by the experiment
//! binaries (no external dependency needed for four flags).

/// Common experiment knobs.
#[derive(Debug, Clone, PartialEq)]
pub struct RunArgs {
    /// Corpus scale relative to the paper's dataset sizes.
    pub scale: f64,
    /// Training epochs per run.
    pub epochs: usize,
    /// Cross-validation folds.
    pub folds: usize,
    /// Base RNG seed.
    pub seed: u64,
    /// Run the full 208-setting grid (tuning binary only).
    pub full: bool,
}

impl RunArgs {
    /// Parses `--scale X --epochs N --folds K --seed S --full` from
    /// `std::env::args`, starting from the given defaults.
    ///
    /// # Panics
    ///
    /// Panics with a usage message on malformed flags.
    pub fn parse(defaults: RunArgs) -> RunArgs {
        let mut out = defaults;
        let args: Vec<String> = std::env::args().skip(1).collect();
        let mut iter = args.iter();
        while let Some(flag) = iter.next() {
            let mut take = |name: &str| -> &str {
                iter.next()
                    .unwrap_or_else(|| panic!("missing value for {name}"))
            };
            match flag.as_str() {
                "--scale" => out.scale = take("--scale").parse().expect("bad --scale"),
                "--epochs" => out.epochs = take("--epochs").parse().expect("bad --epochs"),
                "--folds" => out.folds = take("--folds").parse().expect("bad --folds"),
                "--seed" => out.seed = take("--seed").parse().expect("bad --seed"),
                "--full" => out.full = true,
                other => panic!(
                    "unknown flag {other}; supported: --scale --epochs --folds --seed --full"
                ),
            }
        }
        out
    }

    /// Defaults for quick CPU runs.
    pub fn quick() -> RunArgs {
        RunArgs { scale: 0.02, epochs: 15, folds: 5, seed: 7, full: false }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_defaults_are_sane() {
        let a = RunArgs::quick();
        assert!(a.scale > 0.0);
        assert!(a.epochs > 0);
        assert_eq!(a.folds, 5);
        assert!(!a.full);
    }
}
