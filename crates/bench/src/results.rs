//! Result persistence: every experiment binary writes a JSON record under
//! `results/` so EXPERIMENTS.md can cite machine-generated numbers.

use magic_metrics::ScoreReport;
use magic_json::{json, Value};
use std::path::PathBuf;

/// Directory where experiment outputs are stored (relative to the
/// workspace root).
///
/// `MAGIC_RESULTS_DIR` overrides the location so CI can write candidate
/// benchmark numbers somewhere disposable instead of clobbering the
/// committed baselines under `results/`.
pub fn results_dir() -> PathBuf {
    if let Ok(dir) = std::env::var("MAGIC_RESULTS_DIR") {
        return PathBuf::from(dir);
    }
    // Under cargo, CARGO_MANIFEST_DIR = crates/bench and results/ lives
    // two levels up at the repo root. When the binary is invoked
    // directly, fall back to ./results relative to the working directory.
    match std::env::var("CARGO_MANIFEST_DIR") {
        Ok(manifest) => PathBuf::from(manifest).join("../../results"),
        Err(_) => PathBuf::from("results"),
    }
}

/// Describes the machine a benchmark ran on, for the `machine_info`
/// stanza of `results/BENCH_*.json` files. `magic bench diff
/// --require-same-machine` refuses to compare files whose stanzas
/// differ (timings only transfer between identical hosts).
pub fn machine_info() -> Value {
    let cpu_model = std::fs::read_to_string("/proc/cpuinfo")
        .ok()
        .and_then(|text| {
            text.lines()
                .find(|l| l.starts_with("model name"))
                .and_then(|l| l.split(':').nth(1))
                .map(|m| m.trim().to_string())
        })
        .unwrap_or_else(|| "unknown".into());
    json!({
        "os": std::env::consts::OS,
        "arch": std::env::consts::ARCH,
        "available_parallelism": std::thread::available_parallelism()
            .map(|n| n.get())
            .unwrap_or(1),
        "cpu_model": cpu_model,
    })
}

/// Serializes a [`ScoreReport`] to JSON.
pub fn report_to_json(report: &ScoreReport) -> Value {
    json!({
        "accuracy": report.accuracy,
        "macro_f1": report.macro_f1,
        "log_loss": report.log_loss,
        "classes": report.classes.iter().map(|c| json!({
            "name": c.name,
            "precision": c.precision,
            "recall": c.recall,
            "f1": c.f1,
            "support": c.support,
        })).collect::<Vec<_>>(),
    })
}

/// Writes `value` to `results/<name>.json`, creating the directory if
/// needed. Prints the destination so the run is self-documenting.
pub fn write_result(name: &str, value: &Value) {
    let dir = results_dir();
    if let Err(e) = std::fs::create_dir_all(&dir) {
        eprintln!("warning: cannot create {}: {e}", dir.display());
        return;
    }
    let path = dir.join(format!("{name}.json"));
    match std::fs::write(&path, magic_json::to_string_pretty(value)) {
        Ok(()) => println!("\nresult written to {}", path.display()),
        Err(e) => eprintln!("warning: cannot write {}: {e}", path.display()),
    }
}

/// Renders a crude horizontal bar (for the figure binaries' terminal
/// output).
pub fn bar(value: f64, max: f64, width: usize) -> String {
    let filled = ((value / max).clamp(0.0, 1.0) * width as f64).round() as usize;
    let mut s = String::with_capacity(width);
    for i in 0..width {
        s.push(if i < filled { '#' } else { '.' });
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_metrics::ConfusionMatrix;

    #[test]
    fn report_json_has_expected_fields() {
        let mut cm = ConfusionMatrix::new(2);
        cm.record(0, 0);
        cm.record(1, 0);
        let report = ScoreReport::from_confusion(&cm, &["A".into(), "B".into()]);
        let v = report_to_json(&report);
        assert!(v["accuracy"].as_f64().is_some());
        assert_eq!(v["classes"].as_array().unwrap().len(), 2);
        assert_eq!(v["classes"][0]["name"], "A");
    }

    #[test]
    fn bar_renders_proportionally() {
        assert_eq!(bar(0.5, 1.0, 10), "#####.....");
        assert_eq!(bar(2.0, 1.0, 4), "####");
        assert_eq!(bar(0.0, 1.0, 3), "...");
    }
}
