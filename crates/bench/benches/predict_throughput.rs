//! Criterion bench: end-to-end prediction throughput on generated
//! corpora — the "malware prediction time" of Section V-E (paper:
//! 11.33 ± 1.35 ms/instance on GPU).

use magic_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use magic_bench::experiments::{best_params, Corpus};
use magic_bench::{prepare_mskcfg, prepare_yancfg};
use magic_model::Dgcnn;
use std::hint::black_box;

fn bench_predict(c: &mut Criterion) {
    let mut group = c.benchmark_group("predict_throughput");
    group.sample_size(10);

    for (name, corpus, params) in [
        ("mskcfg", prepare_mskcfg(3, 0.005), best_params(Corpus::Mskcfg)),
        ("yancfg", prepare_yancfg(3, 0.003), best_params(Corpus::Yancfg)),
    ] {
        let config = params.to_model_config(corpus.class_names.len(), &corpus.graph_sizes());
        let model = Dgcnn::new(&config, 1);
        group.throughput(Throughput::Elements(corpus.len() as u64));
        group.bench_with_input(BenchmarkId::new("batch_predict", name), &corpus, |b, corpus| {
            b.iter(|| {
                let mut correct = 0usize;
                for (input, &label) in corpus.inputs.iter().zip(&corpus.labels) {
                    if model.predict_class(input) == label {
                        correct += 1;
                    }
                }
                black_box(correct)
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_predict);
criterion_main!(benches);
