//! Criterion bench: the graph convolution of Eq. (1) — forward pass and
//! full forward+backward — across graph sizes.

use magic_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magic_autograd::Tape;
use magic_graph::NUM_ATTRIBUTES;
use magic_nn::{augment_adjacency, GraphConv, ParamStore};
use magic_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn random_graph(n: usize, rng: &mut Rng64) -> (Tensor, Vec<f32>, Tensor) {
    let mut adj = Tensor::zeros([n, n]);
    for u in 0..n {
        // CFG-like sparsity: 1-2 successors.
        adj.set2(u, (u + 1) % n, 1.0);
        if rng.next_bool(0.4) {
            adj.set2(u, rng.next_below(n), 1.0);
        }
    }
    let (a_hat, inv_deg) = augment_adjacency(&adj);
    let x = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 2.0, rng);
    (a_hat, inv_deg, x)
}

fn bench_graph_conv(c: &mut Criterion) {
    let mut group = c.benchmark_group("graph_conv");
    group.sample_size(30);
    for &n in &[25usize, 50, 100, 200] {
        let mut rng = Rng64::new(n as u64);
        let (a_hat, inv_deg, x) = random_graph(n, &mut rng);
        let mut store = ParamStore::new();
        let conv = GraphConv::new(&mut store, "gc", NUM_ATTRIBUTES, 32, &mut rng);

        group.bench_with_input(BenchmarkId::new("forward", n), &n, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let binding = store.bind(&mut tape);
                let adj = tape.leaf(a_hat.clone(), false);
                let z = tape.leaf(x.clone(), false);
                let out = conv.forward(&mut tape, &binding, adj, &inv_deg, z);
                black_box(tape.value(out).sum())
            });
        });
        group.bench_with_input(BenchmarkId::new("forward_backward", n), &n, |b, _| {
            b.iter(|| {
                let mut tape = Tape::new();
                let binding = store.bind(&mut tape);
                let adj = tape.leaf(a_hat.clone(), false);
                let z = tape.leaf(x.clone(), false);
                let out = conv.forward(&mut tape, &binding, adj, &inv_deg, z);
                let loss = tape.sum(out);
                tape.backward(loss);
                black_box(tape.grad(binding.var(store.find("gc.weight").unwrap())).is_some())
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_graph_conv);
criterion_main!(benches);
