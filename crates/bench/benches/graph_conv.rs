//! Dense vs CSR graph convolution: sweeps the Eq. (1) hot path across
//! vertex counts and edge densities and records the speedup of the
//! fused `spmm_norm` CSR path over the dense `n×n` fallback in
//! `results/BENCH_graph_conv.json`.
//!
//! Each cell times one full forward+backward of a `GraphConv` layer
//! (`Z W` matmul + propagation + ReLU, then the reverse sweep). The
//! dense formulation costs `O(n² c)` regardless of the edge count; the
//! CSR formulation costs `O((n + e) c)`, so the ratio grows linearly in
//! `n` at fixed average out-degree. Real CFGs sit near 1.4 out-edges
//! per block, which is where the headline `speedup_sparse_vs_dense`
//! numbers come from.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — small sizes and fewer samples, written to
//!   `BENCH_graph_conv_quick.json`; sized for a CI gate, not for
//!   quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the timed
//!   region, for testing that the regression gate actually fails.

use magic_autograd::Tape;
use magic_bench::results::{machine_info, write_result};
use magic_graph::{DiGraph, NUM_ATTRIBUTES};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_nn::{GraphConv, ParamStore};
use magic_tensor::{CsrMatrix, Rng64, Tensor};
use std::sync::Arc;
use std::time::Duration;

const OUT_CHANNELS: usize = 32;

/// A CFG-shaped random digraph: a spine of fallthrough edges plus
/// random branches until the average out-degree reaches `degree`.
fn random_graph(n: usize, degree: f64, rng: &mut Rng64) -> DiGraph {
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    let extra = ((n as f64 * degree) as usize).saturating_sub(n - 1);
    for _ in 0..extra {
        g.add_edge(rng.next_below(n), rng.next_below(n));
    }
    g
}

struct Cell {
    vertices: usize,
    degree: f64,
    adj: Arc<CsrMatrix>,
    adj_t: Arc<CsrMatrix>,
    inv_degree: Arc<Vec<f32>>,
    attributes: Tensor,
    store: ParamStore,
    conv: GraphConv,
}

impl Cell {
    fn new(vertices: usize, degree: f64) -> Self {
        let mut rng = Rng64::new(vertices as u64 * 31 + (degree * 10.0) as u64);
        let g = random_graph(vertices, degree, &mut rng);
        let (csr, inv_degree) = CsrMatrix::augmented_from_edges(vertices, g.edges());
        let adj = Arc::new(csr);
        let adj_t = Arc::new(adj.transpose());
        let attributes = Tensor::rand_uniform([vertices, NUM_ATTRIBUTES], 0.0, 2.0, &mut rng);
        let mut store = ParamStore::new();
        let conv = GraphConv::new(&mut store, "gc", NUM_ATTRIBUTES, OUT_CHANNELS, &mut rng);
        Cell {
            vertices,
            degree,
            adj,
            adj_t,
            inv_degree: Arc::new(inv_degree),
            attributes,
            store,
            conv,
        }
    }

    fn time_sparse(&self, budget: &Budget, inject_us: u64) -> Stats {
        time_fn(
            || {
                inject(inject_us);
                let mut tape = Tape::new();
                let binding = self.store.bind(&mut tape);
                let z = tape.leaf(self.attributes.clone(), false);
                let out = self.conv.forward_sparse(
                    &mut tape,
                    &binding,
                    &self.adj,
                    &self.adj_t,
                    &self.inv_degree,
                    z,
                );
                let loss = tape.sum(out);
                tape.backward(loss);
                std::hint::black_box(tape.grad(binding.var(self.weight_id())).is_some());
            },
            budget.samples,
            budget.target,
            budget.cap,
        )
    }

    fn time_dense(&self, budget: &Budget, inject_us: u64) -> Stats {
        // Materialize the dense Â once, outside the timed region — the
        // bench compares propagation kernels, not construction.
        let a_hat = self.adj.to_dense();
        time_fn(
            || {
                inject(inject_us);
                let mut tape = Tape::new();
                let binding = self.store.bind(&mut tape);
                let adj = tape.leaf(a_hat.clone(), false);
                let z = tape.leaf(self.attributes.clone(), false);
                let out =
                    self.conv.forward(&mut tape, &binding, adj, &self.inv_degree, z);
                let loss = tape.sum(out);
                tape.backward(loss);
                std::hint::black_box(tape.grad(binding.var(self.weight_id())).is_some());
            },
            budget.samples,
            budget.target,
            budget.cap,
        )
    }

    fn weight_id(&self) -> magic_nn::ParamId {
        self.store.find("gc.weight").expect("layer weight")
    }
}

fn inject(us: u64) {
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    // 1.4 is the median CFG out-degree (fallthrough + occasional
    // branch); 8.0 is an adversarially dense graph where the CSR
    // advantage narrows.
    let (sizes, degrees, budget) = if quick {
        (
            vec![32usize, 64],
            vec![1.4f64],
            Budget { samples: 5, target: Duration::from_millis(40), cap: Duration::from_millis(250) },
        )
    } else {
        (
            vec![64usize, 256, 1024],
            vec![1.4f64, 8.0],
            Budget { samples: 10, target: Duration::from_millis(150), cap: Duration::from_millis(900) },
        )
    };

    let mut rows = Vec::new();
    for &n in &sizes {
        for &degree in &degrees {
            let cell = Cell::new(n, degree);
            let sparse = cell.time_sparse(&budget, inject_us);
            let dense = cell.time_dense(&budget, inject_us);
            let ratio = dense.median_ns / sparse.median_ns;
            println!(
                "n={n:>5} degree={degree:>3.1} nnz={:>6}  dense {:>12.0} ns  csr {:>12.0} ns  ({ratio:.2}x)",
                cell.adj.nnz(),
                dense.median_ns,
                sparse.median_ns,
            );
            rows.push(json!({
                "vertices": cell.vertices,
                "avg_out_degree": cell.degree,
                "nnz": cell.adj.nnz(),
                "dense": stats_json(&dense),
                "sparse": stats_json(&sparse),
                "speedup_sparse_vs_dense": ratio,
            }));
        }
    }

    let name = if quick { "BENCH_graph_conv_quick" } else { "BENCH_graph_conv" };
    write_result(
        name,
        &json!({
            "bench": "graph_conv",
            "quick": quick,
            "machine_info": machine_info(),
            "out_channels": OUT_CHANNELS,
            "in_channels": NUM_ATTRIBUTES,
            "sweep": rows,
        }),
    );
}
