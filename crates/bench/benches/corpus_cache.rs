//! Cold generate+extract vs warm shard-cache load: measures how much of
//! corpus preparation the `magic-acfg/1` cache removes, in samples/s
//! and MB/s, and records the speedup in
//! `results/BENCH_corpus_cache.json`.
//!
//! The cached corpus is bitwise identical to the freshly generated one
//! (asserted per run), so the bench is purely about wall-clock: the
//! cold path pays listing synthesis + parse → CFG → ACFG extraction,
//! the warm path pays shard decode + `GraphInput` construction only.
//! The acceptance bar for this PR is warm ≥ 5× cold at the mskcfg
//! default scale.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — smaller corpus and fewer samples, written
//!   to `BENCH_corpus_cache_quick.json`; sized for a CI gate, not for
//!   quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the warm
//!   timed region, for testing that the regression gate actually fails.

use magic::corpus_cache::{self, CacheSpec, CorpusKind, DEFAULT_SHARDS};
use magic_bench::corpus::prepare_mskcfg;
use magic_bench::results::{machine_info, write_result};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use std::time::Duration;

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    // mskcfg at its default scale is the acceptance configuration; the
    // quick variant shrinks the corpus to CI-gate size.
    let seed = 7u64;
    let (scale, budget) = if quick {
        (0.002, Budget { samples: 5, target: Duration::from_millis(60), cap: Duration::from_millis(400) })
    } else {
        (0.01, Budget { samples: 10, target: Duration::from_millis(300), cap: Duration::from_secs(3) })
    };
    let spec = CacheSpec {
        corpus: CorpusKind::Mskcfg,
        seed,
        scale,
        reduce: magic_graph::ReduceStrategy::None,
        shards: DEFAULT_SHARDS,
    };
    let dir = std::env::temp_dir().join(format!(
        "magic-bench-corpus-cache-{}-{}",
        if quick { "quick" } else { "full" },
        std::process::id()
    ));
    let _ = std::fs::remove_dir_all(&dir);

    // Cold: generator + parallel extraction + GraphInput build, exactly
    // what `magic train` does without --cache-dir.
    let cold = time_fn(
        || {
            let corpus = prepare_mskcfg(seed, scale);
            std::hint::black_box(corpus.len());
        },
        budget.samples,
        budget.target,
        budget.cap,
    );

    // Build the cache once (untimed), then measure the warm load path.
    let built = corpus_cache::build(&dir, &spec, 0, false).expect("cache build failed");
    let samples = built.manifest.samples;
    let bytes = built.bytes;
    let warm = time_fn(
        || {
            if inject_us > 0 {
                std::thread::sleep(Duration::from_micros(inject_us));
            }
            let loaded =
                corpus_cache::load(&dir, Some(spec.fingerprint()), 0).expect("cache load failed");
            std::hint::black_box(loaded.inputs.len());
        },
        budget.samples,
        budget.target,
        budget.cap,
    );

    // The cache must reproduce the cold corpus bitwise — a fast loader
    // that loads something else is not a cache.
    let fresh = prepare_mskcfg(seed, scale);
    let loaded = corpus_cache::load(&dir, Some(spec.fingerprint()), 0).expect("cache load failed");
    assert_eq!(fresh.labels, loaded.labels, "cached labels diverge from generated corpus");
    for (a, b) in fresh.inputs.iter().zip(&loaded.inputs) {
        assert_eq!(a.vertex_count(), b.vertex_count());
        assert_eq!(
            a.attributes().as_slice(),
            b.attributes().as_slice(),
            "cached attributes diverge from generated corpus"
        );
    }
    let _ = std::fs::remove_dir_all(&dir);

    let per_s = |ns: f64| samples as f64 / (ns / 1e9);
    let mb_per_s = bytes as f64 / (1024.0 * 1024.0) / (warm.median_ns / 1e9);
    let speedup = cold.median_ns / warm.median_ns;
    println!(
        "cold generate+extract: {:>12.0} ns ({:.0} samples/s)",
        cold.median_ns,
        per_s(cold.median_ns)
    );
    println!(
        "warm cache load:       {:>12.0} ns ({:.0} samples/s, {:.1} MB/s)",
        warm.median_ns,
        per_s(warm.median_ns),
        mb_per_s
    );
    println!("speedup warm vs cold:  {speedup:.2}x ({samples} samples, {bytes} shard bytes)");

    let name = if quick { "BENCH_corpus_cache_quick" } else { "BENCH_corpus_cache" };
    write_result(
        name,
        &json!({
            "bench": "corpus_cache",
            "quick": quick,
            "machine_info": machine_info(),
            "corpus": {
                "name": "mskcfg",
                "seed": seed,
                "scale": scale,
                "samples": samples as u64,
                "shards": built.manifest.shards.len() as u64,
                "shard_bytes": bytes,
            },
            "cold_generate_extract": stats_json(&cold),
            "warm_cache_load": stats_json(&warm),
            "warm_samples_per_s": per_s(warm.median_ns),
            "warm_mb_per_s": mb_per_s,
            "cold_samples_per_s": per_s(cold.median_ns),
            "speedup_warm_vs_cold": speedup,
        }),
    );
}
