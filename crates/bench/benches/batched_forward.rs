//! Per-sample vs batched training epochs: measures one epoch of the
//! mini-batch engine in both execution modes and records the speedup of
//! the fused block-diagonal path in `results/BENCH_batched_forward.json`.
//!
//! The two modes are bitwise identical (see
//! `batched_mode_matches_per_sample_training_bitwise` in `magic`), so
//! this bench is purely about wall-clock: the batched path replaces
//! per-sample op dispatch with one SpMM per graph-conv layer and one
//! GEMM per head stage over the whole batch.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — smaller corpus and fewer samples, written
//!   to `BENCH_batched_forward_quick.json`; sized for a CI gate, not
//!   for quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the timed
//!   region, for testing that the regression gate actually fails.

use magic::trainer::{TrainConfig, Trainer};
use magic_bench::results::{machine_info, write_result};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};
use std::time::Duration;

fn sample_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 4 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    GraphInput::from_acfg(&Acfg::new(
        g,
        Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng),
    ))
}

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn epoch_stats(
    batched: bool,
    head: PoolingHead,
    inputs: &[GraphInput],
    labels: &[usize],
    budget: &Budget,
    inject_us: u64,
) -> Stats {
    let config = DgcnnConfig::new(4, head);
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 10,
        learning_rate: 1e-3,
        seed: 11,
        train_workers: 1,
        batched,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..inputs.len()).collect();
    time_fn(
        || {
            if inject_us > 0 {
                std::thread::sleep(Duration::from_micros(inject_us));
            }
            let mut model = Dgcnn::new(&config, 2);
            let outcome = trainer.train(&mut model, inputs, labels, &train_idx, &[]);
            std::hint::black_box(outcome.history.len());
        },
        budget.samples,
        budget.target,
        budget.cap,
    )
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

fn main() {
    // The trainer logs per-epoch progress at info level; that's stderr
    // I/O inside the timed region, so keep the bench quiet.
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let (graphs, vertices, budget) = if quick {
        (16, 20, Budget { samples: 5, target: Duration::from_millis(60), cap: Duration::from_millis(350) })
    } else {
        (40, 30, Budget { samples: 10, target: Duration::from_millis(200), cap: Duration::from_millis(1200) })
    };
    let inputs: Vec<GraphInput> = (0..graphs).map(|i| sample_input(vertices, i as u64)).collect();
    let labels: Vec<usize> = (0..inputs.len()).map(|i| i % 4).collect();

    // One head per pooling family: the adaptive head is the Table II
    // best architecture for MSKCFG (`magic train`'s default), the
    // weighted head is the cheapest SortPooling variant.
    let heads = [
        ("adaptive", PoolingHead::adaptive_max_pool(3)),
        ("sort_pool_weighted", PoolingHead::sort_pool_weighted(10)),
    ];
    let mut rows = Vec::new();
    for (name, head) in heads {
        let per_sample =
            epoch_stats(false, head.clone(), &inputs, &labels, &budget, inject_us);
        let batched = epoch_stats(true, head.clone(), &inputs, &labels, &budget, inject_us);
        let speedup = per_sample.median_ns / batched.median_ns;
        println!(
            "{name:>20} per-sample: {:>12.0} ns/epoch, batched: {:>12.0} ns/epoch ({speedup:.2}x)",
            per_sample.median_ns, batched.median_ns
        );
        rows.push(json!({
            "head": name,
            "per_sample": stats_json(&per_sample),
            "batched": stats_json(&batched),
            "speedup_vs_per_sample": speedup,
        }));
    }

    let name = if quick { "BENCH_batched_forward_quick" } else { "BENCH_batched_forward" };
    write_result(
        name,
        &json!({
            "bench": "batched_forward",
            "quick": quick,
            "machine_info": machine_info(),
            "corpus": { "graphs": graphs, "vertices_per_graph": vertices, "batch_size": 10 },
            "heads": rows,
        }),
    );
}
