//! Criterion bench: the three readout heads of Section III compared on
//! identical graphs — the ablation behind Table II's "Pooling Type" axis.

use magic_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn sample_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 3 {
        let u = rng.next_below(n);
        let v = rng.next_below(n);
        if u != v {
            g.add_edge(u, v);
        }
    }
    let attrs = Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng);
    GraphInput::from_acfg(&Acfg::new(g, attrs))
}

fn bench_heads(c: &mut Criterion) {
    let mut group = c.benchmark_group("pooling_heads");
    group.sample_size(20);
    let heads: [(&str, PoolingHead); 3] = [
        ("adaptive_max_pool", PoolingHead::adaptive_max_pool(3)),
        ("sortpool_conv1d", PoolingHead::sort_pool_conv1d(16)),
        ("sortpool_weighted", PoolingHead::sort_pool_weighted(16)),
    ];
    for (name, head) in heads {
        let config = DgcnnConfig::new(9, head);
        let model = Dgcnn::new(&config, 3);
        for &n in &[30usize, 100] {
            let input = sample_input(n, n as u64);
            group.bench_with_input(BenchmarkId::new(name, n), &input, |b, input| {
                b.iter(|| black_box(model.predict(black_box(input))));
            });
        }
    }
    group.finish();
}

criterion_group!(benches, bench_heads);
criterion_main!(benches);
