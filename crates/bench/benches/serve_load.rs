//! Closed-loop load generator for the `magic serve` daemon: measures
//! end-to-end request latency (p50/p99, exact, from raw samples) and
//! saturation throughput across batch-window settings, written to
//! `results/BENCH_serve.json`.
//!
//! Each window setting gets a fresh in-process server; a fixed pool of
//! closed-loop clients (send → wait → send) hammers `/v1/predict` with
//! raw `.asm` listings over loopback HTTP, so the measured path is the
//! real one: parse → CFG → ACFG on the IO threads, micro-batched DGCNN
//! forward on the model workers. `window_us = 0` is the
//! latency-optimal setting (batches only form from genuine backlog);
//! larger windows trade queueing latency for bigger fused batches.
//!
//! Environment knobs (used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — fewer windows/requests, written to
//!   `BENCH_serve_quick.json`; sized for a CI gate, not for quotable
//!   numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside each timed
//!   request, for testing that the regression gate actually fails.

use magic::MagicPipeline;
use magic_bench::results::{machine_info, results_dir, write_result};
use magic_json::json;
use magic_model::{Dgcnn, DgcnnConfig, PoolingHead};
use magic_obs::serve_report::ServeLogSummary;
use magic_serve::metrics::scrape_labeled;
use magic_serve::{start, ServeConfig};
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// One blocking request; returns the HTTP status code.
fn predict_once(addr: SocketAddr, body: &str) -> u16 {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    write!(
        stream,
        "POST /v1/predict HTTP/1.1\r\nhost: bench\r\ncontent-length: {}\r\n\r\n{body}",
        body.len()
    )
    .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_whitespace().nth(1).and_then(|s| s.parse().ok()).expect("status line")
}

/// One blocking GET; returns the response body (used to scrape
/// `/metrics` while the load is running).
fn get_body(addr: SocketAddr, path: &str) -> String {
    let mut stream = TcpStream::connect(addr).expect("connect to bench server");
    write!(stream, "GET {path} HTTP/1.1\r\nhost: bench\r\ncontent-length: 0\r\n\r\n")
        .expect("send request");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read response");
    raw.split_once("\r\n\r\n").map(|(_, b)| b.to_string()).unwrap_or_default()
}

/// Deterministic listings of varying size, so batches mix graph shapes
/// the way real traffic would.
fn listings() -> Vec<String> {
    [4usize, 8, 12, 16, 6, 10]
        .iter()
        .map(|&blocks| {
            let mut out = String::new();
            let mut addr = 0x401000u64;
            for b in 0..blocks {
                let target = addr + 0x10;
                out.push_str(&format!(".text:{addr:08X} loc_{addr:X}:\n"));
                out.push_str(&format!(".text:{addr:08X}    cmp     eax, {b}\n"));
                out.push_str(&format!(".text:{:08X}    jz      short loc_{target:X}\n", addr + 3));
                out.push_str(&format!(".text:{:08X}    add     eax, 1\n", addr + 5));
                addr = target;
            }
            out.push_str(&format!(".text:{addr:08X} loc_{addr:X}:\n"));
            out.push_str(&format!(".text:{addr:08X}    retn\n"));
            out
        })
        .collect()
}

fn pipeline() -> MagicPipeline {
    let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(10));
    MagicPipeline::new(
        Dgcnn::new(&config, 42),
        (0..4).map(|i| format!("Family{i}")).collect(),
    )
}

struct RunResult {
    latencies_ns: Vec<f64>,
    elapsed: Duration,
    total_requests: usize,
    /// `/metrics` scrapes completed while the load was in flight.
    metrics_scrapes: u64,
    /// Windowed interpolated p50/p99 (µs) from the final mid-load
    /// `/metrics` scrape.
    windowed_p50_us: f64,
    windowed_p99_us: f64,
    /// Exact server-side p50/p99 (µs) over the same requests, from the
    /// access log — the ground truth the windowed estimates chase.
    access_log_p50_us: u64,
    access_log_p99_us: u64,
}

/// Runs `clients` closed-loop clients for `requests_per_client`
/// requests each against a fresh server with the given batch window,
/// with the full telemetry surface on: `--access-log` streaming to
/// `<results>/serve_access_w<window>.jsonl` and a scraper thread
/// hitting `GET /metrics` throughout the run.
fn run_window(
    window_us: u64,
    clients: usize,
    requests_per_client: usize,
    inject_us: u64,
) -> RunResult {
    let access_log = results_dir().join(format!("serve_access_w{window_us}.jsonl"));
    std::fs::create_dir_all(results_dir()).expect("create results dir");
    std::fs::remove_file(&access_log).ok();
    let config = ServeConfig {
        addr: "127.0.0.1:0".to_string(),
        workers: 2,
        io_threads: clients.max(2) + 1, // +1 keeps the scraper off the client path
        max_batch: 16,
        batch_window_us: window_us,
        queue_depth: 64,
        access_log: Some(access_log.to_str().expect("utf-8 results path").to_string()),
        ..ServeConfig::default()
    };
    let handle = start(pipeline(), config).expect("bind bench server");
    let addr = handle.addr();
    let bodies = Arc::new(listings());

    // Warm-up outside the measurement: populate the workspace pools.
    for body in bodies.iter() {
        assert_eq!(predict_once(addr, body), 200, "warm-up request failed");
    }

    // Scraper: polls `/metrics` while the clients run, so the measured
    // latency includes realistic observability traffic.
    let stop = Arc::new(AtomicBool::new(false));
    let scraper = {
        let stop = Arc::clone(&stop);
        std::thread::spawn(move || {
            let mut scrapes = 0u64;
            let mut last = String::new();
            while !stop.load(Ordering::Relaxed) {
                last = get_body(addr, "/metrics");
                scrapes += 1;
                std::thread::sleep(Duration::from_millis(25));
            }
            (scrapes, last)
        })
    };

    let begun = Instant::now();
    let threads: Vec<_> = (0..clients)
        .map(|c| {
            let bodies = Arc::clone(&bodies);
            std::thread::spawn(move || {
                let mut latencies = Vec::with_capacity(requests_per_client);
                for r in 0..requests_per_client {
                    let body = &bodies[(c + r) % bodies.len()];
                    let sent = Instant::now();
                    if inject_us > 0 {
                        std::thread::sleep(Duration::from_micros(inject_us));
                    }
                    let status = predict_once(addr, body);
                    assert_eq!(status, 200, "bench request shed or failed");
                    latencies.push(sent.elapsed().as_nanos() as f64);
                }
                latencies
            })
        })
        .collect();
    let mut latencies_ns: Vec<f64> = Vec::with_capacity(clients * requests_per_client);
    for t in threads {
        latencies_ns.extend(t.join().unwrap());
    }
    let elapsed = begun.elapsed();
    stop.store(true, Ordering::Relaxed);
    let (metrics_scrapes, last_scrape) = scraper.join().unwrap();
    let windowed_p50_us =
        scrape_labeled(&last_scrape, "magic_serve_latency_us", "quantile=\"0.5\"").unwrap_or(0.0);
    let windowed_p99_us =
        scrape_labeled(&last_scrape, "magic_serve_latency_us", "quantile=\"0.99\"").unwrap_or(0.0);
    handle.shutdown();

    // Ground truth from the flushed access log: exact nearest-rank
    // percentiles over every 200 predict's server-side total_us.
    let text = std::fs::read_to_string(&access_log).expect("read access log");
    let summary = ServeLogSummary::from_lines(text.lines()).expect("valid access log");
    let total = summary
        .stages
        .iter()
        .find(|r| r.stage == "total")
        .expect("total stage row");

    latencies_ns.sort_by(|a, b| a.partial_cmp(b).unwrap());
    RunResult {
        total_requests: latencies_ns.len(),
        latencies_ns,
        elapsed,
        metrics_scrapes,
        windowed_p50_us,
        windowed_p99_us,
        access_log_p50_us: total.p50_us,
        access_log_p99_us: total.p99_us,
    }
}

/// Exact quantile from the sorted sample vector (nearest-rank).
fn quantile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let (windows, clients, requests_per_client): (&[u64], usize, usize) = if quick {
        (&[0, 2_000], 6, 30)
    } else {
        (&[0, 1_000, 4_000], 8, 150)
    };

    let mut rows = Vec::new();
    for &window_us in windows {
        let run = run_window(window_us, clients, requests_per_client, inject_us);
        let p50 = quantile(&run.latencies_ns, 0.50);
        let p99 = quantile(&run.latencies_ns, 0.99);
        let throughput_rps = run.total_requests as f64 / run.elapsed.as_secs_f64();
        println!(
            "window {window_us:>5}us: p50 {:>9.0} ns, p99 {:>9.0} ns, {throughput_rps:>7.0} req/s \
             ({} requests, {clients} clients)",
            p50, p99, run.total_requests
        );
        println!(
            "               telemetry: {} /metrics scrapes mid-run; windowed p50/p99 \
             {:.0}/{:.0} us vs access-log exact {}/{} us",
            run.metrics_scrapes,
            run.windowed_p50_us,
            run.windowed_p99_us,
            run.access_log_p50_us,
            run.access_log_p99_us
        );
        rows.push(json!({
            "window_us": window_us,
            "clients": clients as u64,
            "requests": run.total_requests as u64,
            // The gated row: `magic bench diff` discovers objects with a
            // median_ns key, and the p50 is the stable statistic here.
            "latency_p50": { "median_ns": p50 },
            // Reported but not gated: tail latency and throughput swing
            // too much on a busy shared host to gate at any threshold.
            "latency_p99_ns": p99,
            "throughput_rps": throughput_rps,
            // Recorded, not gated: the windowed /metrics estimate next
            // to the access log's exact server-side percentile. The
            // deterministic ±1-bucket agreement is asserted in
            // tests/tests/serve_telemetry.rs; these numbers let a human
            // eyeball the same property under real load.
            "telemetry": {
                "metrics_scrapes": run.metrics_scrapes,
                "windowed_p50_us": run.windowed_p50_us,
                "windowed_p99_us": run.windowed_p99_us,
                "access_log_p50_us": run.access_log_p50_us,
                "access_log_p99_us": run.access_log_p99_us,
            },
        }));
    }

    let name = if quick { "BENCH_serve_quick" } else { "BENCH_serve" };
    write_result(
        name,
        &json!({
            "bench": "serve_load",
            "quick": quick,
            "machine_info": machine_info(),
            "server": {
                "workers": 2,
                "max_batch": 16,
                "queue_depth": 64,
                "listing_sizes": [4, 8, 12, 16, 6, 10],
            },
            "windows": rows,
        }),
    );
}
