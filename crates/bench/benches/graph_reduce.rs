//! Graph reduction cost vs downstream training speedup: applies every
//! `--reduce` strategy to the mskcfg corpus, measures (a) the one-off
//! cost of reducing every graph and (b) the wall-clock of one training
//! epoch over the reduced corpus, and records node/edge reduction
//! ratios plus epoch speedup vs `none` in
//! `results/BENCH_graph_reduce.json`.
//!
//! Reduction is a preprocessing stage — it runs once per corpus (and is
//! amortized to zero by the shard cache, which stores reduced graphs) —
//! while the epoch saving repeats every epoch. The acceptance bar for
//! this PR is `chain` (or `coarsen` at its documented level) cutting
//! the mskcfg epoch ≥ 1.3x vs `none` with macro-F1 within one point
//! (accuracy measured by `ext_reduce_sweep`, not here).
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — smaller corpus and fewer samples, written
//!   to `BENCH_graph_reduce_quick.json`; sized for a CI gate, not for
//!   quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the timed
//!   epoch region, for testing that the regression gate actually fails.

use magic::trainer::{TrainConfig, Trainer};
use magic_bench::corpus::prepare_mskcfg;
use magic_bench::results::{machine_info, write_result};
use magic_graph::{Acfg, ReduceStrategy};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use std::time::Duration;

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

/// Like [`stats_json`] but keyed so `magic bench diff` does NOT gate
/// the row (the comparator collects objects carrying `median_ns`). The
/// one-off reduce pass is millisecond-scale allocation-heavy work whose
/// medians swing ±2x run-to-run on a busy 1-core container; the CI
/// signal this bench guards is the *epoch* cost snapping back to the
/// unreduced cost, which the `train_epoch` rows cover.
fn stats_json_ungated(stats: &Stats) -> magic_json::Value {
    json!({
        "pass_median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

/// One serial training epoch over the given inputs (same engine knobs
/// as the `train_parallel` bench, so numbers are comparable).
fn epoch_stats(
    inputs: &[GraphInput],
    labels: &[usize],
    classes: usize,
    budget: &Budget,
    inject_us: u64,
) -> Stats {
    let config = DgcnnConfig::new(classes, PoolingHead::sort_pool_weighted(10));
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 10,
        learning_rate: 1e-3,
        seed: 11,
        train_workers: 1,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..inputs.len()).collect();
    time_fn(
        || {
            if inject_us > 0 {
                std::thread::sleep(Duration::from_micros(inject_us));
            }
            let mut model = Dgcnn::new(&config, 2);
            let outcome = trainer.train(&mut model, inputs, labels, &train_idx, &[]);
            std::hint::black_box(outcome.history.len());
        },
        budget.samples,
        budget.target,
        budget.cap,
    )
}

fn totals(acfgs: &[Acfg]) -> (usize, usize) {
    acfgs.iter().fold((0, 0), |(n, e), a| (n + a.vertex_count(), e + a.edge_count()))
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    let seed = 7u64;
    // Quick epochs are ~15-55 ms, so the quick budget still needs
    // enough measurement time for several iterations per sample —
    // starving it to sub-second caps produced ±2x medians that made
    // the CI gate flap.
    let (scale, budget) = if quick {
        (0.002, Budget { samples: 7, target: Duration::from_millis(150), cap: Duration::from_millis(1500) })
    } else {
        (0.01, Budget { samples: 10, target: Duration::from_millis(300), cap: Duration::from_secs(3) })
    };
    let corpus = prepare_mskcfg(seed, scale);
    let classes = corpus.class_names.len();
    let (nodes_before, edges_before) = totals(&corpus.acfgs);
    println!(
        "mskcfg seed {seed} scale {scale}: {} graphs, {nodes_before} nodes, {edges_before} edges",
        corpus.len()
    );

    let strategies = [
        ReduceStrategy::None,
        ReduceStrategy::Chain,
        ReduceStrategy::Prune,
        ReduceStrategy::Coarsen { rounds: 2 },
    ];
    let mut baseline_epoch_ns = 0.0f64;
    let mut rows = magic_json::Map::new();
    for strategy in strategies {
        let name = strategy.name();

        // (a) One-off reduction cost over the whole corpus. `none`
        // still pays the loop so the row exists; its body is a clone.
        let reduce_cost = time_fn(
            || {
                let total: usize =
                    corpus.acfgs.iter().map(|a| strategy.apply(a).vertex_count()).sum();
                std::hint::black_box(total);
            },
            budget.samples,
            budget.target,
            budget.cap,
        );

        let reduced: Vec<Acfg> = corpus.acfgs.iter().map(|a| strategy.apply(a)).collect();
        let inputs: Vec<GraphInput> = reduced.iter().map(GraphInput::from_acfg).collect();
        let (nodes_after, edges_after) = totals(&reduced);

        // (b) The recurring saving: one training epoch on the reduced
        // corpus.
        let epoch = epoch_stats(&inputs, &corpus.labels, classes, &budget, inject_us);
        if strategy.is_none() {
            baseline_epoch_ns = epoch.median_ns;
        }
        let speedup = baseline_epoch_ns / epoch.median_ns;
        println!(
            "{name:>10}: nodes {nodes_before} -> {nodes_after} ({:.1}% kept), \
             edges {edges_before} -> {edges_after}, epoch {:>12.0} ns ({speedup:.2}x vs none), \
             reduce pass {:>12.0} ns",
            100.0 * nodes_after as f64 / nodes_before.max(1) as f64,
            epoch.median_ns,
            reduce_cost.median_ns,
        );

        rows.insert(
            &name,
            json!({
                "nodes_after": nodes_after as u64,
                "edges_after": edges_after as u64,
                "nodes_removed": (nodes_before - nodes_after) as u64,
                "edges_removed": (edges_before - edges_after) as u64,
                "node_keep_ratio": nodes_after as f64 / nodes_before.max(1) as f64,
                "reduce_pass": stats_json_ungated(&reduce_cost),
                "train_epoch": stats_json(&epoch),
                "epoch_speedup_vs_none": speedup,
            }),
        );
    }

    let name = if quick { "BENCH_graph_reduce_quick" } else { "BENCH_graph_reduce" };
    write_result(
        name,
        &json!({
            "bench": "graph_reduce",
            "quick": quick,
            "machine_info": machine_info(),
            "corpus": {
                "name": "mskcfg",
                "seed": seed,
                "scale": scale,
                "graphs": corpus.len() as u64,
                "nodes": nodes_before as u64,
                "edges": edges_before as u64,
            },
            "strategies": magic_json::Value::Object(rows),
        }),
    );
}
