//! Serial vs data-parallel training epochs: measures one epoch of the
//! mini-batch engine at several `train_workers` settings and records the
//! speedup ratio in `results/BENCH_train_parallel.json`.
//!
//! Training is bitwise identical for every worker count, so this bench
//! is purely about wall-clock scaling. Worker counts beyond the
//! machine's `available_parallelism` measure scheduler thrash, not the
//! engine, so those rows are stamped `"oversubscribed": true`, get no
//! `speedup_vs_serial` claim, and are ignored by `magic bench diff`.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — smaller corpus and fewer samples, written
//!   to `BENCH_train_parallel_quick.json`; sized for a CI gate, not for
//!   quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the timed
//!   region, for testing that the regression gate actually fails.

use magic::trainer::{TrainConfig, Trainer};
use magic_bench::results::{machine_info, write_result};
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};
use std::time::Duration;

fn sample_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 4 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    GraphInput::from_acfg(&Acfg::new(
        g,
        Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng),
    ))
}

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn epoch_stats(
    workers: usize,
    inputs: &[GraphInput],
    labels: &[usize],
    budget: &Budget,
    inject_us: u64,
) -> Stats {
    let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(10));
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 10,
        learning_rate: 1e-3,
        seed: 11,
        train_workers: workers,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..inputs.len()).collect();
    time_fn(
        || {
            if inject_us > 0 {
                std::thread::sleep(Duration::from_micros(inject_us));
            }
            let mut model = Dgcnn::new(&config, 2);
            let outcome = trainer.train(&mut model, inputs, labels, &train_idx, &[]);
            std::hint::black_box(outcome.history.len());
        },
        budget.samples,
        budget.target,
        budget.cap,
    )
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

fn main() {
    // The trainer logs per-epoch progress at info level; that's stderr
    // I/O inside the timed region, so keep the bench quiet.
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);
    let available =
        std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);

    let (graphs, vertices, budget) = if quick {
        (16, 20, Budget { samples: 5, target: Duration::from_millis(60), cap: Duration::from_millis(350) })
    } else {
        (40, 30, Budget { samples: 10, target: Duration::from_millis(200), cap: Duration::from_millis(1200) })
    };
    let inputs: Vec<GraphInput> = (0..graphs).map(|i| sample_input(vertices, i as u64)).collect();
    let labels: Vec<usize> = (0..inputs.len()).map(|i| i % 4).collect();

    let serial = epoch_stats(1, &inputs, &labels, &budget, inject_us);
    println!("train epoch, 1 worker:  {:>12.0} ns/epoch", serial.median_ns);

    let mut runs = Vec::new();
    for workers in [2usize, 4] {
        let stats = epoch_stats(workers, &inputs, &labels, &budget, inject_us);
        let oversubscribed = workers > available;
        let mut run = magic_json::Map::new();
        run.insert("workers", json!(workers));
        run.insert("stats", stats_json(&stats));
        if oversubscribed {
            // More workers than cores: the ratio reflects scheduler
            // contention, not the engine. Record the timing for
            // completeness but make no speedup claim and keep the row
            // out of the CI gate.
            run.insert("oversubscribed", json!(true));
            println!(
                "train epoch, {workers} workers: {:>12.0} ns/epoch (oversubscribed on {available} core(s); no speedup claim)",
                stats.median_ns
            );
        } else {
            let ratio = serial.median_ns / stats.median_ns;
            run.insert("speedup_vs_serial", json!(ratio));
            println!(
                "train epoch, {workers} workers: {:>12.0} ns/epoch ({ratio:.2}x vs serial)",
                stats.median_ns
            );
        }
        runs.push(magic_json::Value::Object(run));
    }

    let name = if quick { "BENCH_train_parallel_quick" } else { "BENCH_train_parallel" };
    write_result(
        name,
        &json!({
            "bench": "train_parallel",
            "quick": quick,
            "machine_info": machine_info(),
            "available_parallelism": available,
            "corpus": { "graphs": graphs, "vertices_per_graph": vertices, "batch_size": 10 },
            "serial": stats_json(&serial),
            "parallel": runs,
        }),
    );
}
