//! Serial vs data-parallel training epochs: measures one epoch of the
//! mini-batch engine at several `train_workers` settings and records the
//! speedup ratio in `results/BENCH_train_parallel.json`.
//!
//! Training is bitwise identical for every worker count, so this bench
//! is purely about wall-clock scaling (which in turn depends on the
//! machine's core count — the ratio is recorded alongside the detected
//! parallelism so results from different hosts stay interpretable).

use magic::trainer::{TrainConfig, Trainer};
use magic::resolve_workers;
use magic_bench::results::write_result;
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_tensor::{Rng64, Tensor};
use std::time::Duration;

fn sample_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 4 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    GraphInput::from_acfg(&Acfg::new(
        g,
        Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng),
    ))
}

fn epoch_stats(workers: usize, inputs: &[GraphInput], labels: &[usize]) -> Stats {
    let config = DgcnnConfig::new(4, PoolingHead::sort_pool_weighted(10));
    let trainer = Trainer::new(TrainConfig {
        epochs: 1,
        batch_size: 10,
        learning_rate: 1e-3,
        seed: 11,
        train_workers: workers,
        ..TrainConfig::default()
    });
    let train_idx: Vec<usize> = (0..inputs.len()).collect();
    time_fn(
        || {
            let mut model = Dgcnn::new(&config, 2);
            let outcome = trainer.train(&mut model, inputs, labels, &train_idx, &[]);
            std::hint::black_box(outcome.history.len());
        },
        10,
        Duration::from_millis(200),
        Duration::from_millis(1200),
    )
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

fn main() {
    let inputs: Vec<GraphInput> = (0..40).map(|i| sample_input(30, i)).collect();
    let labels: Vec<usize> = (0..inputs.len()).map(|i| i % 4).collect();

    let serial = epoch_stats(1, &inputs, &labels);
    println!("train epoch, 1 worker:  {:>12.0} ns/epoch", serial.median_ns);

    let mut runs = Vec::new();
    for workers in [2usize, 4] {
        let stats = epoch_stats(workers, &inputs, &labels);
        let ratio = serial.median_ns / stats.median_ns;
        println!(
            "train epoch, {workers} workers: {:>12.0} ns/epoch ({ratio:.2}x vs serial)",
            stats.median_ns
        );
        runs.push(json!({
            "workers": workers,
            "stats": stats_json(&stats),
            "speedup_vs_serial": ratio,
        }));
    }

    write_result(
        "BENCH_train_parallel",
        &json!({
            "bench": "train_parallel",
            "available_parallelism": resolve_workers(0),
            "corpus": { "graphs": inputs.len(), "vertices_per_graph": 30, "batch_size": 10 },
            "serial": stats_json(&serial),
            "parallel": runs,
        }),
    );
}
