//! Criterion bench: the CFG-extraction front end (Section V-E's
//! "feature extraction time" component) — parsing, Algorithm 1/2 block
//! building and Table I attribution.

use magic_microbench::{criterion_group, criterion_main, BenchmarkId, Criterion};
use magic_asm::{parse_listing, CfgBuilder};
use magic_graph::Acfg;
use magic_synth::codegen::CodeGenerator;
use magic_synth::mskcfg::{mskcfg_profiles, MskcfgGenerator};
use magic_tensor::Rng64;
use std::hint::black_box;

fn bench_extraction(c: &mut Criterion) {
    let mut group = c.benchmark_group("acfg_extraction");
    group.sample_size(20);

    // One listing per family archetype of interest.
    let profiles = mskcfg_profiles();
    for label in [0usize, 2, 8] {
        let mut rng = Rng64::new(42 + label as u64);
        let listing = CodeGenerator::new(&profiles[label]).generate(&mut rng);
        let instructions = parse_listing(&listing).unwrap().len();
        group.bench_with_input(
            BenchmarkId::new(
                "full_pipeline",
                format!("{}[{}insts]", profiles[label].name, instructions),
            ),
            &listing,
            |b, listing| {
                b.iter(|| {
                    let program = parse_listing(black_box(listing)).unwrap();
                    let cfg = CfgBuilder::new(&program).build();
                    black_box(Acfg::from_cfg(&cfg))
                });
            },
        );
    }

    // Stage split: parse vs CFG build vs attribution.
    let mut generator = MskcfgGenerator::new(1, 1.0);
    let listing = generator.generate_one(1).listing;
    let program = parse_listing(&listing).unwrap();
    let cfg = CfgBuilder::new(&program).build();
    group.bench_function("parse_only", |b| {
        b.iter(|| black_box(parse_listing(black_box(&listing)).unwrap()))
    });
    group.bench_function("build_cfg_only", |b| {
        b.iter(|| black_box(CfgBuilder::new(black_box(&program)).build()))
    });
    group.bench_function("attribute_only", |b| {
        b.iter(|| black_box(Acfg::from_cfg(black_box(&cfg))))
    });
    group.finish();
}

criterion_group!(benches, bench_extraction);
criterion_main!(benches);
