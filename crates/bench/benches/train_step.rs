//! Criterion bench: one training step (forward + backward + gradient
//! accumulation + Adam update) of the Table II best MSKCFG model —
//! the "classifier training time" component of Section V-E.

use magic_microbench::{criterion_group, criterion_main, Criterion};
use magic_autograd::Tape;
use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
use magic_model::{Dgcnn, DgcnnConfig, GraphInput, PoolingHead};
use magic_nn::{Adam, Optimizer};
use magic_tensor::{Rng64, Tensor};
use std::hint::black_box;

fn sample_input(n: usize, seed: u64) -> GraphInput {
    let mut rng = Rng64::new(seed);
    let mut g = DiGraph::new(n);
    for v in 0..n - 1 {
        g.add_edge(v, v + 1);
    }
    for _ in 0..n / 4 {
        let (u, v) = (rng.next_below(n), rng.next_below(n));
        if u != v {
            g.add_edge(u, v);
        }
    }
    GraphInput::from_acfg(&Acfg::new(
        g,
        Tensor::rand_uniform([n, NUM_ATTRIBUTES], 0.0, 4.0, &mut rng),
    ))
}

fn bench_train_step(c: &mut Criterion) {
    let mut group = c.benchmark_group("train_step");
    group.sample_size(15);

    // The Table II best MSKCFG model: adaptive pooling, (128,64,32,32).
    let mut config = DgcnnConfig::new(9, PoolingHead::adaptive_max_pool(6));
    config.conv_sizes = vec![128, 64, 32, 32];
    let mut model = Dgcnn::new(&config, 1);
    let mut opt = Adam::new(1e-3, 1e-4);
    let input = sample_input(60, 5);
    let mut rng = Rng64::new(9);

    group.bench_function("forward_backward_update_1sample", |b| {
        b.iter(|| {
            model.store_mut().zero_grads();
            let mut tape = Tape::new();
            let binding = model.store().bind(&mut tape);
            let lp = model.forward(&mut tape, &binding, &input, true, &mut rng);
            let loss = tape.nll_loss(lp, vec![3]);
            tape.backward(loss);
            model.store_mut().accumulate_grads(&tape, &binding);
            opt.step(model.store_mut(), 1);
            black_box(tape.value(loss).item())
        });
    });

    group.bench_function("forward_only_1sample", |b| {
        b.iter(|| black_box(model.predict(&input)));
    });
    group.finish();
}

criterion_group!(benches, bench_train_step);
criterion_main!(benches);
