//! Criterion bench: the Table IV baseline classifiers — fit and predict
//! costs on handcrafted ACFG features.

use magic_microbench::{criterion_group, criterion_main, Criterion};
use magic_baselines::{
    Classifier, FeatureVector, GradientBoosting, LinearSvmEnsemble, RandomForest,
};
use magic_bench::prepare_yancfg;
use std::hint::black_box;

fn bench_baselines(c: &mut Criterion) {
    let corpus = prepare_yancfg(11, 0.002);
    let x: Vec<Vec<f64>> = corpus.acfgs.iter().map(|a| FeatureVector::Rich.extract(a)).collect();
    let basic: Vec<Vec<f64>> =
        corpus.acfgs.iter().map(|a| FeatureVector::Basic.extract(a)).collect();
    let y = corpus.labels.clone();
    let k = corpus.class_names.len();

    let mut group = c.benchmark_group("baselines");
    group.sample_size(10);

    group.bench_function("feature_extraction_rich", |b| {
        b.iter(|| {
            for a in &corpus.acfgs {
                black_box(FeatureVector::Rich.extract(a));
            }
        });
    });
    group.bench_function("random_forest_fit", |b| {
        b.iter(|| {
            let mut rf = RandomForest::new(10, 8, 3);
            rf.fit(black_box(&basic), &y, k);
            black_box(rf.predict(&basic[0]))
        });
    });
    group.bench_function("gbdt_fit", |b| {
        b.iter(|| {
            let mut gb = GradientBoosting::new(5, 3, 0.3, 3);
            gb.fit(black_box(&x), &y, k);
            black_box(gb.predict(&x[0]))
        });
    });
    group.bench_function("svm_ensemble_fit", |b| {
        b.iter(|| {
            let mut svm = LinearSvmEnsemble::new(5, 1e-3, 3);
            svm.fit(black_box(&basic), &y, k);
            black_box(svm.predict(&basic[0]))
        });
    });
    group.finish();
}

criterion_group!(benches, bench_baselines);
criterion_main!(benches);
