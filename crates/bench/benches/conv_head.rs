//! Naive vs im2col-GEMM convolution head kernels: sweeps channel count,
//! sequence/image size, and kernel width for both `conv1d` and `conv2d`
//! and records the speedup of the GEMM lowering in
//! `results/BENCH_conv_head.json`.
//!
//! Each cell times one full forward+backward of a single convolution
//! (plus ReLU and the scalar reduction that backward needs) on a
//! *reused* tape, so the GEMM numbers include the steady-state benefit
//! of the workspace pool — exactly what a training epoch sees after its
//! warm-up sample. The naive kernels walk `(c_out, out, c_in, k)` loops
//! with strided input reads; the im2col lowering gathers patches once
//! and hands one `(c_out, c_in·k) @ (c_in·k, out)` product to the
//! register-blocked GEMM, which is where the speedup comes from.
//!
//! Environment knobs (both used by `scripts/ci.sh`):
//!
//! * `MAGIC_BENCH_QUICK=1` — small sizes and fewer samples, written to
//!   `BENCH_conv_head_quick.json`; sized for a CI gate, not for
//!   quotable numbers.
//! * `MAGIC_BENCH_INJECT_SLOWDOWN_US=<µs>` — sleeps inside the timed
//!   region, for testing that the regression gate actually fails.

use magic_autograd::{ConvLowering, Tape};
use magic_bench::results::{machine_info, write_result};
use magic_json::json;
use magic_microbench::{time_fn, Stats};
use magic_tensor::{Rng64, Tensor};
use std::time::Duration;

fn inject(us: u64) {
    if us > 0 {
        std::thread::sleep(Duration::from_micros(us));
    }
}

/// Measurement budget: (samples, target per sample, hard cap per sample).
struct Budget {
    samples: usize,
    target: Duration,
    cap: Duration,
}

fn stats_json(stats: &Stats) -> magic_json::Value {
    json!({
        "median_ns": stats.median_ns,
        "mean_ns": stats.mean_ns,
        "min_ns": stats.min_ns,
        "max_ns": stats.max_ns,
        "samples": stats.samples,
        "iters_per_sample": stats.iters_per_sample,
    })
}

/// One 1-D head cell: `(c_in, len)` input through a `(c_out, c_in, k)`
/// kernel at stride 1.
struct Cell1d {
    c_in: usize,
    c_out: usize,
    len: usize,
    k: usize,
    x: Tensor,
    w: Tensor,
    b: Tensor,
}

impl Cell1d {
    fn new(c_in: usize, c_out: usize, len: usize, k: usize) -> Self {
        let mut rng = Rng64::new((c_in * 31 + len * 7 + k) as u64);
        Cell1d {
            c_in,
            c_out,
            len,
            k,
            x: Tensor::rand_uniform([c_in, len], -1.0, 1.0, &mut rng),
            w: Tensor::rand_uniform([c_out, c_in, k], -1.0, 1.0, &mut rng),
            b: Tensor::rand_uniform([c_out], -0.5, 0.5, &mut rng),
        }
    }

    fn time(&self, lowering: ConvLowering, budget: &Budget, inject_us: u64) -> Stats {
        let mut tape = Tape::new();
        tape.set_conv_lowering(lowering);
        time_fn(
            || {
                inject(inject_us);
                tape.reset();
                let x = tape.leaf(self.x.clone(), true);
                let w = tape.leaf(self.w.clone(), true);
                let b = tape.leaf(self.b.clone(), true);
                let y = tape.conv1d(x, w, b, 1);
                let r = tape.relu(y);
                let loss = tape.sum(r);
                tape.backward(loss);
                std::hint::black_box(tape.grad(w).is_some());
            },
            budget.samples,
            budget.target,
            budget.cap,
        )
    }
}

/// One 2-D head cell: `(c_in, h, w)` input through a
/// `(c_out, c_in, k, k)` kernel at stride 1, padding `k / 2`.
struct Cell2d {
    c_in: usize,
    c_out: usize,
    h: usize,
    w: usize,
    k: usize,
    x: Tensor,
    wt: Tensor,
    b: Tensor,
}

impl Cell2d {
    fn new(c_in: usize, c_out: usize, h: usize, w: usize, k: usize) -> Self {
        let mut rng = Rng64::new((c_in * 131 + h * 17 + w * 5 + k) as u64);
        Cell2d {
            c_in,
            c_out,
            h,
            w,
            k,
            x: Tensor::rand_uniform([c_in, h, w], -1.0, 1.0, &mut rng),
            wt: Tensor::rand_uniform([c_out, c_in, k, k], -1.0, 1.0, &mut rng),
            b: Tensor::rand_uniform([c_out], -0.5, 0.5, &mut rng),
        }
    }

    fn time(&self, lowering: ConvLowering, budget: &Budget, inject_us: u64) -> Stats {
        let mut tape = Tape::new();
        tape.set_conv_lowering(lowering);
        let pad = self.k / 2;
        time_fn(
            || {
                inject(inject_us);
                tape.reset();
                let x = tape.leaf(self.x.clone(), true);
                let w = tape.leaf(self.wt.clone(), true);
                let b = tape.leaf(self.b.clone(), true);
                let y = tape.conv2d(x, w, b, 1, pad);
                let r = tape.relu(y);
                let loss = tape.sum(r);
                tape.backward(loss);
                std::hint::black_box(tape.grad(w).is_some());
            },
            budget.samples,
            budget.target,
            budget.cap,
        )
    }
}

fn main() {
    magic_obs::set_log_level(magic_obs::Level::Error);
    let quick = std::env::var("MAGIC_BENCH_QUICK").map(|v| v == "1").unwrap_or(false);
    let inject_us: u64 = std::env::var("MAGIC_BENCH_INJECT_SLOWDOWN_US")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0);

    // The 1-D grid brackets the paper's SortPooling head (conv over the
    // k-sorted rows); the 2-D grid brackets the mskcfg adaptive head
    // ([128, 64, 32, 32] channels over pooled feature maps).
    let (cells_1d, cells_2d, budget) = if quick {
        (
            vec![Cell1d::new(32, 32, 64, 3)],
            vec![Cell2d::new(4, 16, 16, 16, 3)],
            // Wider than the other quick gates: these sub-ms cells swing
            // ±30% run-to-run on a 1-core container, so buy steadier
            // medians with a longer sampling window.
            Budget { samples: 8, target: Duration::from_millis(120), cap: Duration::from_millis(600) },
        )
    } else {
        (
            vec![
                Cell1d::new(32, 32, 64, 3),
                Cell1d::new(64, 64, 256, 5),
                Cell1d::new(128, 128, 512, 7),
            ],
            vec![
                Cell2d::new(4, 32, 16, 16, 3),
                Cell2d::new(8, 64, 32, 32, 3),
                Cell2d::new(16, 64, 32, 32, 5),
            ],
            Budget { samples: 10, target: Duration::from_millis(150), cap: Duration::from_millis(900) },
        )
    };

    let mut rows = Vec::new();
    for cell in &cells_1d {
        let naive = cell.time(ConvLowering::Naive, &budget, inject_us);
        let gemm = cell.time(ConvLowering::Im2colGemm, &budget, inject_us);
        let ratio = naive.median_ns / gemm.median_ns;
        println!(
            "conv1d c={:>3} len={:>4} k={}  naive {:>12.0} ns  gemm {:>12.0} ns  ({ratio:.2}x)",
            cell.c_in, cell.len, cell.k, naive.median_ns, gemm.median_ns,
        );
        rows.push(json!({
            "family": "conv1d",
            "c_in": cell.c_in,
            "c_out": cell.c_out,
            "len": cell.len,
            "k": cell.k,
            "naive": stats_json(&naive),
            "gemm": stats_json(&gemm),
            "speedup_gemm_vs_naive": ratio,
        }));
    }
    for cell in &cells_2d {
        let naive = cell.time(ConvLowering::Naive, &budget, inject_us);
        let gemm = cell.time(ConvLowering::Im2colGemm, &budget, inject_us);
        let ratio = naive.median_ns / gemm.median_ns;
        println!(
            "conv2d c={:>3} hw={:>3}x{:<3} k={}  naive {:>12.0} ns  gemm {:>12.0} ns  ({ratio:.2}x)",
            cell.c_in, cell.h, cell.w, cell.k, naive.median_ns, gemm.median_ns,
        );
        rows.push(json!({
            "family": "conv2d",
            "c_in": cell.c_in,
            "c_out": cell.c_out,
            "h": cell.h,
            "w": cell.w,
            "k": cell.k,
            "naive": stats_json(&naive),
            "gemm": stats_json(&gemm),
            "speedup_gemm_vs_naive": ratio,
        }));
    }

    let name = if quick { "BENCH_conv_head_quick" } else { "BENCH_conv_head" };
    write_result(
        name,
        &json!({
            "bench": "conv_head",
            "quick": quick,
            "machine_info": machine_info(),
            "sweep": rows,
        }),
    );
}
