//! Whole-graph statistics, used by the handcrafted-feature baselines and
//! the dataset summaries.

use crate::acfg::Acfg;

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Edge density `m / (n * (n - 1))` (0 for graphs with < 2 vertices).
    pub density: f64,
    /// Fraction of vertices reachable from vertex 0.
    pub entry_coverage: f64,
}

impl GraphStats {
    /// Computes statistics for an ACFG.
    pub fn of(acfg: &Acfg) -> Self {
        let g = acfg.graph();
        let n = g.vertex_count();
        let m = g.edge_count();
        let max_out = (0..n).map(|v| g.out_degree(v)).max().unwrap_or(0);
        GraphStats {
            vertices: n,
            edges: m,
            avg_out_degree: if n > 0 { m as f64 / n as f64 } else { 0.0 },
            max_out_degree: max_out,
            density: if n > 1 {
                m as f64 / (n as f64 * (n as f64 - 1.0))
            } else {
                0.0
            },
            entry_coverage: if n > 0 {
                g.reachable_from_entry() as f64 / n as f64
            } else {
                0.0
            },
        }
    }
}

/// Per-corpus graph-size deciles (node and edge counts), used by the
/// `magic extract` summary so reduction levels can be chosen from data
/// rather than guessed.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct SizeHistogram {
    /// Number of graphs summarized.
    pub graphs: usize,
    /// Vertex-count deciles: 11 values at p0 (min), p10, …, p100 (max).
    pub node_deciles: Vec<usize>,
    /// Edge-count deciles, same layout.
    pub edge_deciles: Vec<usize>,
}

impl SizeHistogram {
    /// Computes node/edge-count deciles over a corpus of ACFGs. Returns
    /// the default (empty) histogram for an empty corpus.
    pub fn of(acfgs: &[Acfg]) -> Self {
        if acfgs.is_empty() {
            return SizeHistogram::default();
        }
        let mut nodes: Vec<usize> = acfgs.iter().map(Acfg::vertex_count).collect();
        let mut edges: Vec<usize> = acfgs.iter().map(Acfg::edge_count).collect();
        nodes.sort_unstable();
        edges.sort_unstable();
        let decile = |sorted: &[usize]| -> Vec<usize> {
            (0..=10)
                .map(|d| {
                    // Nearest-rank percentile over the sorted counts.
                    let idx = (d * (sorted.len() - 1) + 5) / 10;
                    sorted[idx]
                })
                .collect()
        };
        SizeHistogram {
            graphs: acfgs.len(),
            node_deciles: decile(&nodes),
            edge_deciles: decile(&edges),
        }
    }

    /// Renders the histogram as the two-row table `magic extract`
    /// prints: a header of decile labels, then node and edge rows.
    pub fn render(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "{:>6}", "");
        for d in 0..=10 {
            let label = match d {
                0 => "min".to_string(),
                10 => "max".to_string(),
                _ => format!("p{}", d * 10),
            };
            let _ = write!(out, " {label:>6}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:>6}", "nodes");
        for &v in &self.node_deciles {
            let _ = write!(out, " {v:>6}");
        }
        let _ = writeln!(out);
        let _ = write!(out, "{:>6}", "edges");
        for &v in &self.edge_deciles {
            let _ = write!(out, " {v:>6}");
        }
        let _ = writeln!(out);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use magic_tensor::Tensor;

    fn acfg_with(n: usize, edges: &[(usize, usize)]) -> Acfg {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        Acfg::new(g, Tensor::zeros([n, crate::NUM_ATTRIBUTES]))
    }

    #[test]
    fn stats_of_simple_chain() {
        let acfg = acfg_with(3, &[(0, 1), (1, 2)]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert!((s.avg_out_degree - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.density - 2.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.entry_coverage, 1.0);
    }

    #[test]
    fn stats_of_disconnected_graph() {
        let acfg = acfg_with(4, &[(0, 1)]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.entry_coverage, 0.5);
    }

    #[test]
    fn stats_of_empty_graph() {
        let acfg = acfg_with(0, &[]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.entry_coverage, 0.0);
    }

    #[test]
    fn size_histogram_deciles_are_monotone_and_bounded() {
        let corpus: Vec<Acfg> = (1..=20)
            .map(|n| {
                let edges: Vec<(usize, usize)> = (0..n - 1).map(|i| (i, i + 1)).collect();
                acfg_with(n, &edges)
            })
            .collect();
        let h = SizeHistogram::of(&corpus);
        assert_eq!(h.graphs, 20);
        assert_eq!(h.node_deciles.len(), 11);
        assert_eq!(h.edge_deciles.len(), 11);
        assert_eq!(h.node_deciles[0], 1, "p0 is the minimum");
        assert_eq!(h.node_deciles[10], 20, "p100 is the maximum");
        assert!(h.node_deciles.windows(2).all(|w| w[0] <= w[1]));
        assert!(h.edge_deciles.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn size_histogram_of_empty_corpus_is_default() {
        assert_eq!(SizeHistogram::of(&[]), SizeHistogram::default());
    }

    #[test]
    fn size_histogram_renders_three_lines() {
        let corpus = vec![acfg_with(3, &[(0, 1), (1, 2)])];
        let text = SizeHistogram::of(&corpus).render();
        assert_eq!(text.lines().count(), 3);
        assert!(text.contains("nodes"));
        assert!(text.contains("edges"));
        assert!(text.contains("p50"));
    }
}
