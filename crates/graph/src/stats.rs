//! Whole-graph statistics, used by the handcrafted-feature baselines and
//! the dataset summaries.

use crate::acfg::Acfg;

/// Summary statistics of a directed graph.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct GraphStats {
    /// Vertex count.
    pub vertices: usize,
    /// Edge count.
    pub edges: usize,
    /// Mean out-degree.
    pub avg_out_degree: f64,
    /// Maximum out-degree.
    pub max_out_degree: usize,
    /// Edge density `m / (n * (n - 1))` (0 for graphs with < 2 vertices).
    pub density: f64,
    /// Fraction of vertices reachable from vertex 0.
    pub entry_coverage: f64,
}

impl GraphStats {
    /// Computes statistics for an ACFG.
    pub fn of(acfg: &Acfg) -> Self {
        let g = acfg.graph();
        let n = g.vertex_count();
        let m = g.edge_count();
        let max_out = (0..n).map(|v| g.out_degree(v)).max().unwrap_or(0);
        GraphStats {
            vertices: n,
            edges: m,
            avg_out_degree: if n > 0 { m as f64 / n as f64 } else { 0.0 },
            max_out_degree: max_out,
            density: if n > 1 {
                m as f64 / (n as f64 * (n as f64 - 1.0))
            } else {
                0.0
            },
            entry_coverage: if n > 0 {
                g.reachable_from_entry() as f64 / n as f64
            } else {
                0.0
            },
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::digraph::DiGraph;
    use magic_tensor::Tensor;

    fn acfg_with(n: usize, edges: &[(usize, usize)]) -> Acfg {
        let mut g = DiGraph::new(n);
        for &(u, v) in edges {
            g.add_edge(u, v);
        }
        Acfg::new(g, Tensor::zeros([n, crate::NUM_ATTRIBUTES]))
    }

    #[test]
    fn stats_of_simple_chain() {
        let acfg = acfg_with(3, &[(0, 1), (1, 2)]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.vertices, 3);
        assert_eq!(s.edges, 2);
        assert!((s.avg_out_degree - 2.0 / 3.0).abs() < 1e-9);
        assert_eq!(s.max_out_degree, 1);
        assert!((s.density - 2.0 / 6.0).abs() < 1e-9);
        assert_eq!(s.entry_coverage, 1.0);
    }

    #[test]
    fn stats_of_disconnected_graph() {
        let acfg = acfg_with(4, &[(0, 1)]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.entry_coverage, 0.5);
    }

    #[test]
    fn stats_of_empty_graph() {
        let acfg = acfg_with(0, &[]);
        let s = GraphStats::of(&acfg);
        assert_eq!(s.vertices, 0);
        assert_eq!(s.density, 0.0);
        assert_eq!(s.entry_coverage, 0.0);
    }
}
