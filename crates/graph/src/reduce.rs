//! Deterministic CFG reduction: shrink a graph before it ever hits a
//! kernel.
//!
//! Every optimisation downstream of extraction lowers the per-node or
//! per-nonzero cost; this stage lowers `n` and `nnz` themselves. Three
//! strategies are provided, all deterministic functions of the input
//! graph (no randomness, no iteration-order dependence) and all
//! **idempotent** — reducing an already-reduced graph is a no-op:
//!
//! * [`ReduceStrategy::Chain`] — collapse maximal single-in/single-out
//!   basic-block chains into supernodes. Straight-line code dominates
//!   real CFGs, so this is the cheapest large win.
//! * [`ReduceStrategy::Prune`] — iteratively drop low-information
//!   degree-1 leaf blocks (few instructions), folding their attribute
//!   mass into the unique neighbour.
//! * [`ReduceStrategy::Coarsen`] — Weisfeiler–Lehman supernode
//!   coarsening: hash 1-hop neighbourhoods for `rounds` rounds and
//!   contract same-colour partitions, repeated until stable. Fewer
//!   rounds ⇒ coarser colours ⇒ smaller graphs.
//!
//! # Attribute semantics
//!
//! Merged supernodes sum every Table I count channel of their members
//! (instruction counts are extensive quantities), then recompute
//! `Offspring` (channel 9) from the reduced structure — it is defined
//! as the vertex out-degree, which reduction changes. Attribute mass is
//! therefore conserved exactly on all channels except `Offspring`;
//! [`ReduceStrategy::Prune`] keeps isolated zero-degree vertices alive
//! precisely because there is no neighbour to fold their mass into.
//!
//! # Determinism contract
//!
//! Vertex numbering of the reduced graph is derived solely from
//! original vertex indices (groups are ordered by their minimum member
//! index; the entry block's group is always vertex 0), and
//! [`crate::DiGraph`] keeps adjacency canonical, so the same input
//! always produces the bitwise-identical reduced ACFG on every worker
//! count and batching mode.

use crate::acfg::{Acfg, Attribute, NUM_ATTRIBUTES};
use crate::digraph::DiGraph;
use magic_tensor::Tensor;
use std::collections::HashMap;
use std::error::Error;
use std::fmt;

/// Default WL refinement rounds for `coarsen` when no level is given.
pub const DEFAULT_COARSEN_ROUNDS: usize = 2;

/// Blocks with at most this many total instructions are "low
/// information" for [`ReduceStrategy::Prune`]. Chosen from the mskcfg
/// size histogram: the bottom decile of blocks carries ≤ 4
/// instructions, typically jump-pads and padding.
pub const PRUNE_MAX_INSTRUCTIONS: f32 = 4.0;

/// A graph-reduction strategy, selected with `--reduce` on the CLI.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum ReduceStrategy {
    /// Leave graphs untouched (the default).
    #[default]
    None,
    /// Collapse maximal single-in/single-out chains into supernodes.
    Chain,
    /// Drop low-information degree-1 leaves, folding attributes inward.
    Prune,
    /// WL-colour coarsening with the given refinement round count.
    Coarsen {
        /// WL refinement rounds per contraction pass (≥ 1). Fewer
        /// rounds merge more aggressively.
        rounds: usize,
    },
}

impl ReduceStrategy {
    /// Parses a `--reduce` argument: `none`, `chain`, `prune`,
    /// `coarsen` or `coarsen:<rounds>`.
    ///
    /// # Errors
    ///
    /// Returns [`ReduceParseError`] for unknown names or a bad level.
    pub fn parse(s: &str) -> Result<Self, ReduceParseError> {
        match s {
            "none" => Ok(ReduceStrategy::None),
            "chain" => Ok(ReduceStrategy::Chain),
            "prune" => Ok(ReduceStrategy::Prune),
            "coarsen" => Ok(ReduceStrategy::Coarsen { rounds: DEFAULT_COARSEN_ROUNDS }),
            other => {
                if let Some(level) = other.strip_prefix("coarsen:") {
                    match level.parse::<usize>() {
                        Ok(rounds) if rounds >= 1 => Ok(ReduceStrategy::Coarsen { rounds }),
                        _ => Err(ReduceParseError { input: s.to_string() }),
                    }
                } else {
                    Err(ReduceParseError { input: s.to_string() })
                }
            }
        }
    }

    /// Canonical name, used in cache fingerprints, manifests and model
    /// checkpoints. `parse(name())` round-trips.
    pub fn name(&self) -> String {
        match self {
            ReduceStrategy::None => "none".to_string(),
            ReduceStrategy::Chain => "chain".to_string(),
            ReduceStrategy::Prune => "prune".to_string(),
            ReduceStrategy::Coarsen { rounds } => format!("coarsen:{rounds}"),
        }
    }

    /// Whether this strategy changes graphs at all.
    pub fn is_none(&self) -> bool {
        matches!(self, ReduceStrategy::None)
    }

    /// Applies the strategy, returning the reduced ACFG.
    pub fn apply(&self, acfg: &Acfg) -> Acfg {
        self.apply_with_report(acfg).0
    }

    /// Applies the strategy and reports how much structure was removed.
    ///
    /// Every non-`none` application emits a
    /// [`magic_obs::stage::REDUCE_APPLY`] span (with before/after node
    /// and edge fields) plus the
    /// [`magic_obs::stage::C_REDUCE_NODES_REMOVED`] /
    /// [`magic_obs::stage::C_REDUCE_EDGES_REMOVED`] counters.
    pub fn apply_with_report(&self, acfg: &Acfg) -> (Acfg, ReduceReport) {
        if self.is_none() {
            let report = ReduceReport {
                nodes_before: acfg.vertex_count(),
                edges_before: acfg.edge_count(),
                nodes_after: acfg.vertex_count(),
                edges_after: acfg.edge_count(),
            };
            return (acfg.clone(), report);
        }
        let before = (acfg.vertex_count(), acfg.edge_count());
        let reduced = {
            let _span = magic_obs::span_fields(
                magic_obs::stage::REDUCE_APPLY,
                &[("nodes_before", before.0 as f64), ("edges_before", before.1 as f64)],
            );
            match self {
                ReduceStrategy::None => unreachable!("handled above"),
                ReduceStrategy::Chain => collapse_chains(acfg),
                ReduceStrategy::Prune => prune_leaves(acfg),
                ReduceStrategy::Coarsen { rounds } => coarsen_fixpoint(acfg, *rounds),
            }
        };
        let report = ReduceReport {
            nodes_before: before.0,
            edges_before: before.1,
            nodes_after: reduced.vertex_count(),
            edges_after: reduced.edge_count(),
        };
        magic_obs::counter(
            magic_obs::stage::C_REDUCE_NODES_REMOVED,
            report.nodes_removed() as f64,
        );
        magic_obs::counter(
            magic_obs::stage::C_REDUCE_EDGES_REMOVED,
            report.edges_removed() as f64,
        );
        (reduced, report)
    }
}

impl fmt::Display for ReduceStrategy {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.name())
    }
}

/// Error from [`ReduceStrategy::parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReduceParseError {
    input: String,
}

impl fmt::Display for ReduceParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "invalid reduce strategy '{}': expected none|chain|prune|coarsen[:rounds]",
            self.input
        )
    }
}

impl Error for ReduceParseError {}

/// Structure removed by one [`ReduceStrategy::apply_with_report`] call.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct ReduceReport {
    /// Vertices before reduction.
    pub nodes_before: usize,
    /// Edges before reduction.
    pub edges_before: usize,
    /// Vertices after reduction.
    pub nodes_after: usize,
    /// Edges after reduction.
    pub edges_after: usize,
}

impl ReduceReport {
    /// Vertices removed.
    pub fn nodes_removed(&self) -> usize {
        self.nodes_before - self.nodes_after
    }

    /// Edges removed.
    pub fn edges_removed(&self) -> usize {
        self.edges_before.saturating_sub(self.edges_after)
    }

    /// Fraction of vertices removed (0 for empty graphs).
    pub fn node_reduction(&self) -> f64 {
        if self.nodes_before == 0 {
            0.0
        } else {
            self.nodes_removed() as f64 / self.nodes_before as f64
        }
    }
}

/// Builds the reduced ACFG from a `vertex → group id` assignment where
/// group ids are "minimum original member index". Groups are renumbered
/// by ascending id, so the entry's group (which always contains vertex
/// 0) becomes vertex 0. Count channels sum over members; `Offspring` is
/// recomputed from the reduced out-degree. `keep_self_loop[g]` forces a
/// self-loop on a contracted group that swallowed a cycle, which both
/// records the loop structurally and blocks the group from chain-merging
/// on a second pass (idempotence).
fn contract(
    acfg: &Acfg,
    group_of: &[usize],
    keep_self_loop: impl Fn(usize, usize) -> bool,
) -> Acfg {
    let n = acfg.vertex_count();
    let mut ids: Vec<usize> = group_of.to_vec();
    ids.sort_unstable();
    ids.dedup();
    let mut new_index = vec![usize::MAX; n];
    for (new, &id) in ids.iter().enumerate() {
        new_index[id] = new;
    }
    let renum = |v: usize| new_index[group_of[v]];

    let mut graph = DiGraph::new(ids.len());
    for (u, v) in acfg.graph().edges() {
        let (gu, gv) = (renum(u), renum(v));
        if gu != gv || keep_self_loop(u, v) {
            graph.add_edge(gu, gv);
        }
    }

    let mut attributes = Tensor::zeros([ids.len(), NUM_ATTRIBUTES]);
    for v in 0..n {
        let g = renum(v);
        let row = acfg.attributes().row(v);
        for (c, &x) in row.iter().enumerate() {
            let cur = attributes.get2(g, c);
            attributes.set2(g, c, cur + x);
        }
    }
    for g in 0..ids.len() {
        attributes.set2(g, Attribute::Offspring as usize, graph.out_degree(g) as f32);
    }
    Acfg::new(graph, attributes)
}

/// Linear-chain collapse. Vertex `v` merges into its unique predecessor
/// `u` when `out(u) == 1`, `in(v) == 1`, `u ≠ v` and `v` is not the
/// entry block. Merge links form chains (and, in pathological graphs,
/// pure cycles, which contract to a single vertex); each vertex's group
/// is its chain head. Internal non-merge edges (a tail closing a cycle
/// back to its head) become a supernode self-loop — that self-loop
/// raises the supernode's in- and out-degree above 1, which is what
/// makes the pass idempotent.
fn collapse_chains(acfg: &Acfg) -> Acfg {
    let g = acfg.graph();
    let n = g.vertex_count();
    if n == 0 {
        return acfg.clone();
    }
    let in_deg = g.in_degrees();
    // pred[v] = u when v merges into u.
    let mut pred = vec![usize::MAX; n];
    for u in 0..n {
        if g.out_degree(u) == 1 {
            let v = g.successors(u)[0];
            if v != 0 && v != u && in_deg[v] == 1 {
                pred[v] = u;
            }
        }
    }
    // Chain head of every vertex, walking merge links backwards. A walk
    // that revisits itself found a pure merge cycle; its head is the
    // minimum member index (deterministic and entry-safe, since vertex
    // 0 never has a merge predecessor).
    let mut head = vec![usize::MAX; n];
    for start in 0..n {
        if head[start] != usize::MAX {
            continue;
        }
        let mut path = vec![start];
        let mut v = start;
        let h = loop {
            let u = pred[v];
            if u == usize::MAX {
                break v;
            }
            if head[u] != usize::MAX {
                break head[u];
            }
            if let Some(pos) = path.iter().position(|&p| p == u) {
                break *path[pos..].iter().min().unwrap().min(&u);
            }
            path.push(u);
            v = u;
        };
        for p in path {
            head[p] = h;
        }
    }
    contract(acfg, &head, |u, v| pred[v] != u)
}

/// Degree/leaf pruning to a fixpoint: repeatedly remove non-entry
/// vertices with exactly one incident edge (a sink leaf or an orphan
/// source) whose `TotalInstructions` is at most
/// [`PRUNE_MAX_INSTRUCTIONS`], folding the removed row into the unique
/// neighbour. Isolated vertices are kept (there is nowhere to fold
/// their mass). Running to a fixpoint makes the pass idempotent.
fn prune_leaves(acfg: &Acfg) -> Acfg {
    let mut current = acfg.clone();
    loop {
        let g = current.graph();
        let n = g.vertex_count();
        let in_deg = g.in_degrees();
        // fold_into[v] = unique neighbour for prunable v.
        let mut fold_into = vec![usize::MAX; n];
        for v in 1..n {
            let small = current.attribute(v, Attribute::TotalInstructions)
                <= PRUNE_MAX_INSTRUCTIONS;
            if !small || g.has_edge(v, v) {
                continue;
            }
            if g.out_degree(v) == 0 && in_deg[v] == 1 {
                // Sink leaf: fold into its unique predecessor.
                let u = (0..n).find(|&u| g.has_edge(u, v)).expect("in-degree 1");
                fold_into[v] = u;
            } else if in_deg[v] == 0 && g.out_degree(v) == 1 {
                // Orphan source: fold into its unique successor.
                fold_into[v] = g.successors(v)[0];
            }
        }
        // A fold target must itself survive this round, otherwise two
        // mutually-prunable vertices would drop each other's mass.
        for v in 0..n {
            if fold_into[v] != usize::MAX && fold_into[fold_into[v]] != usize::MAX {
                fold_into[v] = usize::MAX;
            }
        }
        if fold_into.iter().all(|&f| f == usize::MAX) {
            return current;
        }
        let group_of: Vec<usize> =
            (0..n).map(|v| if fold_into[v] == usize::MAX { v } else { fold_into[v] }).collect();
        current = contract(&current, &group_of, |u, v| u == v);
    }
}

/// One WL coarsening pass: `rounds` rounds of colour refinement from
/// uniform initial colours, then contraction of same-colour groups.
/// Returns `None` when every vertex has a distinct colour (contraction
/// would be the identity).
fn coarsen_once(acfg: &Acfg, rounds: usize) -> Option<Acfg> {
    let g = acfg.graph();
    let n = g.vertex_count();
    if n == 0 {
        return None;
    }
    // Nonzero seed colour: zero is absorbing under the WL hash's
    // multiplicative mixing and would glue the whole graph together.
    let mut colors = vec![1u64; n];
    for _ in 0..rounds {
        colors = g.wl_refine(&colors);
    }
    // Group id = minimum vertex index with this colour.
    let mut first_with: HashMap<u64, usize> = HashMap::new();
    for (v, &color) in colors.iter().enumerate() {
        first_with.entry(color).or_insert(v);
    }
    if first_with.len() == n {
        return None;
    }
    let group_of: Vec<usize> = (0..n).map(|v| first_with[&colors[v]]).collect();
    // An edge between two same-colour vertices is real structure; keep
    // it as a supernode self-loop (original self-loops too).
    Some(contract(acfg, &group_of, |_, _| true))
}

/// WL coarsening iterated until contraction is the identity, which
/// makes the whole strategy idempotent: the fixpoint condition is a
/// property of the graph alone, so a second application terminates
/// immediately.
fn coarsen_fixpoint(acfg: &Acfg, rounds: usize) -> Acfg {
    let mut current = acfg.clone();
    while let Some(next) = coarsen_once(&current, rounds) {
        current = next;
    }
    current
}

#[cfg(test)]
mod tests {
    use super::*;

    /// ACFG whose `TotalInstructions`/`InstructionsInVertex` are 1 and
    /// all other hand-set channels 0 (Offspring filled from structure).
    fn acfg_with(n: usize, edges: &[(usize, usize)]) -> Acfg {
        let g = DiGraph::from_edges(n, edges.iter().copied());
        let mut attrs = Tensor::zeros([n, NUM_ATTRIBUTES]);
        for v in 0..n {
            attrs.set2(v, Attribute::TotalInstructions as usize, 1.0);
            attrs.set2(v, Attribute::InstructionsInVertex as usize, 1.0);
            attrs.set2(v, Attribute::Offspring as usize, g.out_degree(v) as f32);
        }
        Acfg::new(g, attrs)
    }

    fn total_instructions(acfg: &Acfg) -> f32 {
        (0..acfg.vertex_count())
            .map(|v| acfg.attribute(v, Attribute::TotalInstructions))
            .sum()
    }

    #[test]
    fn parse_roundtrips_canonical_names() {
        for s in ["none", "chain", "prune", "coarsen:1", "coarsen:3"] {
            let strat = ReduceStrategy::parse(s).unwrap();
            assert_eq!(strat.name(), s);
        }
        assert_eq!(
            ReduceStrategy::parse("coarsen").unwrap(),
            ReduceStrategy::Coarsen { rounds: DEFAULT_COARSEN_ROUNDS }
        );
        assert!(ReduceStrategy::parse("coarsen:0").is_err());
        assert!(ReduceStrategy::parse("squash").is_err());
        assert!(ReduceStrategy::parse("").is_err());
    }

    #[test]
    fn chain_collapses_straight_line_to_one_vertex() {
        // 0→1→2→3 with a side leaf 0→4: the 1-2-3 chain collapses.
        let acfg = acfg_with(5, &[(0, 1), (1, 2), (2, 3), (0, 4)]);
        let (reduced, report) = ReduceStrategy::Chain.apply_with_report(&acfg);
        assert_eq!(report.nodes_removed(), 2, "1,2,3 merge into one supernode");
        assert_eq!(reduced.vertex_count(), 3);
        // Entry keeps index 0 and its two branches.
        assert_eq!(reduced.graph().out_degree(0), 2);
        assert_eq!(total_instructions(&reduced), 5.0);
        // The supernode carries the whole chain's instruction mass.
        let supernode = (1..3)
            .find(|&v| reduced.attribute(v, Attribute::TotalInstructions) == 3.0)
            .expect("one supernode holds the chain");
        assert_eq!(reduced.attribute(supernode, Attribute::Offspring), 0.0);
    }

    #[test]
    fn chain_preserves_entry_at_vertex_zero() {
        // Pure chain 0→1→2 contracts entirely into the entry.
        let acfg = acfg_with(3, &[(0, 1), (1, 2)]);
        let reduced = ReduceStrategy::Chain.apply(&acfg);
        assert_eq!(reduced.vertex_count(), 1);
        assert_eq!(reduced.attribute(0, Attribute::TotalInstructions), 3.0);
        assert_eq!(reduced.attribute(0, Attribute::Offspring), 0.0);
    }

    #[test]
    fn chain_keeps_cycle_as_self_loop() {
        // 0→1, 1→2, 2→3, 3→2: the 2↔3 loop contracts with a self-loop.
        let acfg = acfg_with(4, &[(0, 1), (1, 2), (2, 3), (3, 2)]);
        let reduced = ReduceStrategy::Chain.apply(&acfg);
        let n = reduced.vertex_count();
        let has_loop = (0..n).any(|v| reduced.graph().has_edge(v, v));
        assert!(has_loop, "cycle structure survives as a self-loop");
        // Idempotent despite the loop merge.
        let again = ReduceStrategy::Chain.apply(&reduced);
        assert_eq!(again, reduced);
    }

    #[test]
    fn chain_preserves_reachability() {
        let acfg = acfg_with(
            7,
            &[(0, 1), (1, 2), (2, 3), (3, 4), (0, 5), (5, 6), (6, 3)],
        );
        assert_eq!(acfg.graph().reachable_from_entry(), 7);
        let reduced = ReduceStrategy::Chain.apply(&acfg);
        assert_eq!(
            reduced.graph().reachable_from_entry(),
            reduced.vertex_count(),
            "everything reachable before stays reachable after"
        );
    }

    #[test]
    fn prune_folds_leaf_mass_into_neighbour() {
        // 0→1, 0→2 where 2 is a tiny leaf; 1 is kept (has the branch).
        let acfg = acfg_with(3, &[(0, 1), (0, 2)]);
        let (reduced, report) = ReduceStrategy::Prune.apply_with_report(&acfg);
        assert_eq!(report.nodes_after, 1, "both tiny leaves fold into the entry");
        assert_eq!(total_instructions(&reduced), 3.0, "mass conserved");
    }

    #[test]
    fn prune_keeps_large_leaves() {
        let mut acfg = acfg_with(2, &[(0, 1)]);
        // Make the leaf "informative": more instructions than the bar.
        let mut attrs = acfg.attributes().clone();
        attrs.set2(1, Attribute::TotalInstructions as usize, PRUNE_MAX_INSTRUCTIONS + 1.0);
        acfg = Acfg::new(acfg.graph().clone(), attrs);
        let reduced = ReduceStrategy::Prune.apply(&acfg);
        assert_eq!(reduced.vertex_count(), 2, "leaf above threshold survives");
    }

    #[test]
    fn coarsen_merges_isomorphic_leaves() {
        // A fan: 0 → {1,2,3}, all leaves identical under 2-round WL.
        let acfg = acfg_with(4, &[(0, 1), (0, 2), (0, 3)]);
        let (reduced, report) = ReduceStrategy::Coarsen { rounds: 2 }.apply_with_report(&acfg);
        assert_eq!(reduced.vertex_count(), 2, "the three leaves share a colour");
        assert_eq!(report.nodes_removed(), 2);
        assert_eq!(total_instructions(&reduced), 4.0);
        // Entry is still vertex 0.
        assert_eq!(reduced.graph().out_degree(0), 1);
    }

    #[test]
    fn all_strategies_are_idempotent() {
        let acfg = acfg_with(
            8,
            &[(0, 1), (1, 2), (2, 3), (3, 1), (0, 4), (4, 5), (4, 6), (6, 7), (7, 7)],
        );
        for strat in [
            ReduceStrategy::None,
            ReduceStrategy::Chain,
            ReduceStrategy::Prune,
            ReduceStrategy::Coarsen { rounds: 1 },
            ReduceStrategy::Coarsen { rounds: 2 },
        ] {
            let once = strat.apply(&acfg);
            let twice = strat.apply(&once);
            assert_eq!(twice, once, "{strat} must be idempotent");
        }
    }

    #[test]
    fn offspring_matches_reduced_out_degree() {
        let acfg = acfg_with(5, &[(0, 1), (1, 2), (2, 3), (0, 4), (4, 3)]);
        for strat in
            [ReduceStrategy::Chain, ReduceStrategy::Prune, ReduceStrategy::Coarsen { rounds: 2 }]
        {
            let reduced = strat.apply(&acfg);
            for v in 0..reduced.vertex_count() {
                assert_eq!(
                    reduced.attribute(v, Attribute::Offspring),
                    reduced.graph().out_degree(v) as f32,
                    "{strat}: Offspring is recomputed from structure"
                );
            }
        }
    }

    #[test]
    fn none_is_identity_and_reports_zero() {
        let acfg = acfg_with(3, &[(0, 1), (1, 2)]);
        let (reduced, report) = ReduceStrategy::None.apply_with_report(&acfg);
        assert_eq!(reduced, acfg);
        assert_eq!(report.nodes_removed(), 0);
        assert_eq!(report.edges_removed(), 0);
        assert_eq!(report.node_reduction(), 0.0);
    }

    #[test]
    fn empty_graph_reduces_to_empty() {
        let acfg = acfg_with(0, &[]);
        for strat in
            [ReduceStrategy::Chain, ReduceStrategy::Prune, ReduceStrategy::Coarsen { rounds: 2 }]
        {
            assert_eq!(strat.apply(&acfg).vertex_count(), 0);
        }
    }
}
