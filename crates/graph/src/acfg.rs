//! Attributed control flow graphs (Section II-B, Table I).

use crate::digraph::DiGraph;
use magic_asm::{categorize, Cfg, InstrCategory};
use magic_tensor::Tensor;
use std::error::Error;
use std::fmt;

/// The eleven block-level attributes of Table I, in channel order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Attribute {
    /// `# Numeric Constants` appearing in operands.
    NumericConstants = 0,
    /// `# Transfer Instructions` (jumps).
    TransferInstructions = 1,
    /// `# Call Instructions`.
    CallInstructions = 2,
    /// `# Arithmetic Instructions`.
    ArithmeticInstructions = 3,
    /// `# Compare Instructions`.
    CompareInstructions = 4,
    /// `# Mov Instructions`.
    MovInstructions = 5,
    /// `# Termination Instructions`.
    TerminationInstructions = 6,
    /// `# Data Declaration Instructions`.
    DataDeclarationInstructions = 7,
    /// `# Total Instructions` in the code sequence.
    TotalInstructions = 8,
    /// `# Offspring, i.e., Degree` — the vertex out-degree.
    Offspring = 9,
    /// `# Instructions in the Vertex` (vertex-structure view).
    InstructionsInVertex = 10,
}

impl Attribute {
    /// All attributes, in channel order.
    pub const ALL: [Attribute; NUM_ATTRIBUTES] = [
        Attribute::NumericConstants,
        Attribute::TransferInstructions,
        Attribute::CallInstructions,
        Attribute::ArithmeticInstructions,
        Attribute::CompareInstructions,
        Attribute::MovInstructions,
        Attribute::TerminationInstructions,
        Attribute::DataDeclarationInstructions,
        Attribute::TotalInstructions,
        Attribute::Offspring,
        Attribute::InstructionsInVertex,
    ];

    /// Human-readable name, as printed in Table I.
    pub fn name(self) -> &'static str {
        match self {
            Attribute::NumericConstants => "# Numeric Constants",
            Attribute::TransferInstructions => "# Transfer Instructions",
            Attribute::CallInstructions => "# Call Instructions",
            Attribute::ArithmeticInstructions => "# Arithmetic Instructions",
            Attribute::CompareInstructions => "# Compare Instructions",
            Attribute::MovInstructions => "# Mov Instructions",
            Attribute::TerminationInstructions => "# Termination Instructions",
            Attribute::DataDeclarationInstructions => "# Data Declaration Instructions",
            Attribute::TotalInstructions => "# Total Instructions",
            Attribute::Offspring => "# Offspring, i.e., Degree",
            Attribute::InstructionsInVertex => "# Instructions in the Vertex",
        }
    }
}

/// Number of attribute channels (`c` in the paper's notation).
pub const NUM_ATTRIBUTES: usize = 11;

/// An attributed CFG: the graph structure plus an `(n, 11)` vertex
/// attribute matrix `X` (the paper's machine-learning-ready malware
/// representation).
#[derive(Debug, Clone, PartialEq)]
pub struct Acfg {
    graph: DiGraph,
    attributes: Tensor,
}

impl Acfg {
    /// Builds an ACFG from a structure and a pre-computed attribute
    /// matrix.
    ///
    /// # Panics
    ///
    /// Panics if the attribute matrix is not `(vertex_count, 11)`.
    pub fn new(graph: DiGraph, attributes: Tensor) -> Self {
        assert_eq!(
            attributes.shape().dims(),
            &[graph.vertex_count(), NUM_ATTRIBUTES],
            "attribute matrix must be (n, {NUM_ATTRIBUTES})"
        );
        Acfg { graph, attributes }
    }

    /// Extracts an ACFG from a CFG by computing all Table I attributes.
    pub fn from_cfg(cfg: &Cfg) -> Self {
        let _span = magic_obs::span(magic_obs::stage::ACFG_ATTRIBUTES);
        let n = cfg.block_count();
        let mut graph = DiGraph::new(n);
        for (u, v) in cfg.edges() {
            graph.add_edge(u, v);
        }
        let mut attributes = Tensor::zeros([n, NUM_ATTRIBUTES]);
        for (v, block) in cfg.blocks().iter().enumerate() {
            let mut row = [0.0f32; NUM_ATTRIBUTES];
            for inst in &block.instructions {
                row[Attribute::NumericConstants as usize] +=
                    inst.numeric_constant_count() as f32;
                let cat = categorize(&inst.mnemonic);
                let idx = match cat {
                    InstrCategory::Transfer => Some(Attribute::TransferInstructions),
                    InstrCategory::Call => Some(Attribute::CallInstructions),
                    InstrCategory::Arithmetic => Some(Attribute::ArithmeticInstructions),
                    InstrCategory::Compare => Some(Attribute::CompareInstructions),
                    InstrCategory::Mov => Some(Attribute::MovInstructions),
                    InstrCategory::Termination => Some(Attribute::TerminationInstructions),
                    InstrCategory::DataDeclaration => Some(Attribute::DataDeclarationInstructions),
                    InstrCategory::Other => None,
                };
                if let Some(a) = idx {
                    row[a as usize] += 1.0;
                }
                row[Attribute::TotalInstructions as usize] += 1.0;
            }
            row[Attribute::Offspring as usize] = cfg.out_degree(v) as f32;
            row[Attribute::InstructionsInVertex as usize] = block.len() as f32;
            attributes.set_row(v, &row);
        }
        Acfg { graph, attributes }
    }

    /// Number of vertices (basic blocks).
    pub fn vertex_count(&self) -> usize {
        self.graph.vertex_count()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.graph.edge_count()
    }

    /// The structural half.
    pub fn graph(&self) -> &DiGraph {
        &self.graph
    }

    /// The raw attribute matrix `X ∈ R^{n×11}`.
    pub fn attributes(&self) -> &Tensor {
        &self.attributes
    }

    /// One attribute value.
    pub fn attribute(&self, vertex: usize, attr: Attribute) -> f32 {
        self.attributes.get2(vertex, attr as usize)
    }

    /// `log(1+x)`-scaled attributes — raw counts have heavy-tailed
    /// magnitudes (a packer block may hold thousands of instructions),
    /// and compressing them stabilizes DGCNN training.
    pub fn log_scaled_attributes(&self) -> Tensor {
        self.attributes.map(|x| (1.0 + x).ln())
    }

    /// Dense adjacency matrix `A ∈ {0,1}^{n×n}`.
    pub fn adjacency_tensor(&self) -> Tensor {
        let n = self.vertex_count();
        let mut a = Tensor::zeros([n, n]);
        for (u, v) in self.graph.edges() {
            a.set2(u, v, 1.0);
        }
        a
    }

    /// Serializes to a compact line format (for caching corpora):
    /// `n m` / `m` edge lines `u v` / `n` attribute lines.
    pub fn to_text(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = writeln!(out, "{} {}", self.vertex_count(), self.edge_count());
        for (u, v) in self.graph.edges() {
            let _ = writeln!(out, "{u} {v}");
        }
        for i in 0..self.vertex_count() {
            let row: Vec<String> = self
                .attributes
                .row(i)
                .iter()
                .map(|x| format!("{x}"))
                .collect();
            let _ = writeln!(out, "{}", row.join(" "));
        }
        out
    }

    /// Parses the [`Acfg::to_text`] format.
    ///
    /// # Errors
    ///
    /// Returns [`AcfgParseError`] on malformed input.
    pub fn from_text(text: &str) -> Result<Self, AcfgParseError> {
        let bad = |msg: &str| AcfgParseError { message: msg.to_string() };
        let mut lines = text.lines();
        let header = lines.next().ok_or_else(|| bad("empty input"))?;
        let mut parts = header.split_whitespace();
        let n: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad vertex count"))?;
        let m: usize = parts
            .next()
            .and_then(|t| t.parse().ok())
            .ok_or_else(|| bad("bad edge count"))?;
        let mut graph = DiGraph::new(n);
        for _ in 0..m {
            let line = lines.next().ok_or_else(|| bad("missing edge line"))?;
            let mut it = line.split_whitespace();
            let u: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("bad edge source"))?;
            let v: usize = it
                .next()
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| bad("bad edge target"))?;
            if u >= n || v >= n {
                return Err(bad("edge endpoint out of range"));
            }
            graph.add_edge(u, v);
        }
        let mut attributes = Tensor::zeros([n, NUM_ATTRIBUTES]);
        for i in 0..n {
            let line = lines.next().ok_or_else(|| bad("missing attribute line"))?;
            let row: Result<Vec<f32>, _> = line.split_whitespace().map(str::parse).collect();
            let row = row.map_err(|_| bad("bad attribute value"))?;
            if row.len() != NUM_ATTRIBUTES {
                return Err(bad("wrong attribute count"));
            }
            attributes.set_row(i, &row);
        }
        Ok(Acfg { graph, attributes })
    }
}

/// Error from [`Acfg::from_text`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AcfgParseError {
    message: String,
}

impl fmt::Display for AcfgParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid ACFG text: {}", self.message)
    }
}

impl Error for AcfgParseError {}

#[cfg(test)]
mod tests {
    use super::*;
    use magic_asm::{parse_listing, CfgBuilder};

    fn sample_acfg() -> Acfg {
        let p = parse_listing(
            ".text:00401000    cmp     eax, 5\n\
             .text:00401003    jz      short loc_401008\n\
             .text:00401005    add     eax, 0x10\n\
             .text:00401008 loc_401008:\n\
             .text:00401008    mov     ebx, eax\n\
             .text:0040100A    retn\n",
        )
        .unwrap();
        Acfg::from_cfg(&CfgBuilder::new(&p).build())
    }

    #[test]
    fn table1_attributes_of_entry_block() {
        let acfg = sample_acfg();
        // Entry block: cmp eax,5 ; jz loc.
        assert_eq!(acfg.attribute(0, Attribute::CompareInstructions), 1.0);
        assert_eq!(acfg.attribute(0, Attribute::TransferInstructions), 1.0);
        assert_eq!(acfg.attribute(0, Attribute::NumericConstants), 1.0);
        assert_eq!(acfg.attribute(0, Attribute::TotalInstructions), 2.0);
        assert_eq!(acfg.attribute(0, Attribute::Offspring), 2.0);
        assert_eq!(acfg.attribute(0, Attribute::InstructionsInVertex), 2.0);
    }

    #[test]
    fn arithmetic_and_mov_counted_in_middle_blocks() {
        let acfg = sample_acfg();
        // Block 1: add eax, 0x10 (arithmetic, one constant).
        let add_block = (0..acfg.vertex_count())
            .find(|&v| acfg.attribute(v, Attribute::ArithmeticInstructions) > 0.0)
            .expect("some block has arithmetic");
        assert_eq!(acfg.attribute(add_block, Attribute::NumericConstants), 1.0);
        // Final block: mov + retn.
        let term_block = (0..acfg.vertex_count())
            .find(|&v| acfg.attribute(v, Attribute::TerminationInstructions) > 0.0)
            .expect("some block has a return");
        assert_eq!(acfg.attribute(term_block, Attribute::MovInstructions), 1.0);
    }

    #[test]
    fn adjacency_tensor_matches_edges() {
        let acfg = sample_acfg();
        let a = acfg.adjacency_tensor();
        let mut count = 0.0;
        for x in a.as_slice() {
            count += x;
        }
        assert_eq!(count as usize, acfg.edge_count());
        for (u, v) in acfg.graph().edges() {
            assert_eq!(a.get2(u, v), 1.0);
        }
    }

    #[test]
    fn log_scaling_is_monotone_and_zero_preserving() {
        let acfg = sample_acfg();
        let scaled = acfg.log_scaled_attributes();
        for (raw, s) in acfg.attributes().as_slice().iter().zip(scaled.as_slice()) {
            if *raw == 0.0 {
                assert_eq!(*s, 0.0);
            } else {
                assert!(*s > 0.0 && *s < *raw + 1.0);
            }
        }
    }

    #[test]
    fn text_roundtrip_preserves_acfg() {
        let acfg = sample_acfg();
        let text = acfg.to_text();
        let back = Acfg::from_text(&text).unwrap();
        assert_eq!(back.vertex_count(), acfg.vertex_count());
        assert_eq!(back.edge_count(), acfg.edge_count());
        assert!(back.attributes().approx_eq(acfg.attributes(), 1e-6));
    }

    #[test]
    fn from_text_rejects_malformed_input() {
        assert!(Acfg::from_text("").is_err());
        assert!(Acfg::from_text("2 1\n0 5\n").is_err());
        assert!(Acfg::from_text("1 0\n1 2 3\n").is_err());
    }

    #[test]
    fn attribute_names_cover_all_channels() {
        assert_eq!(Attribute::ALL.len(), NUM_ATTRIBUTES);
        for (i, a) in Attribute::ALL.iter().enumerate() {
            assert_eq!(*a as usize, i);
            assert!(a.name().starts_with('#'));
        }
    }

    #[test]
    #[should_panic(expected = "attribute matrix")]
    fn new_rejects_wrong_attribute_shape() {
        Acfg::new(DiGraph::new(2), Tensor::zeros([2, 3]));
    }
}
