//! A lightweight directed graph with adjacency lists.

use std::collections::VecDeque;

/// A directed graph over vertices `0..n`, stored as adjacency lists.
///
/// Used by the synthetic corpus generators and as the structural half of
/// an [`crate::Acfg`].
///
/// Adjacency rows are kept **canonical**: each successor list is sorted
/// ascending and duplicate-free regardless of insertion order, and
/// self-loops are stored like any other edge. Two graphs with the same
/// edge set therefore compare equal and serialize identically, and CSR
/// construction never sees a non-canonical row — a hard requirement for
/// the reduction stage, whose rewiring would otherwise depend on
/// contraction visit order.
///
/// # Example
///
/// ```
/// use magic_graph::DiGraph;
///
/// let mut g = DiGraph::new(3);
/// g.add_edge(0, 1);
/// g.add_edge(1, 2);
/// assert_eq!(g.out_degree(0), 1);
/// assert!(g.bfs_order(0).len() == 3);
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct DiGraph {
    succ: Vec<Vec<usize>>,
    edge_count: usize,
}

impl DiGraph {
    /// Creates a graph with `n` vertices and no edges.
    pub fn new(n: usize) -> Self {
        DiGraph { succ: vec![Vec::new(); n], edge_count: 0 }
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.succ.len()
    }

    /// Number of directed edges (parallel edges are not stored).
    pub fn edge_count(&self) -> usize {
        self.edge_count
    }

    /// Adds vertex and returns its id.
    pub fn add_vertex(&mut self) -> usize {
        self.succ.push(Vec::new());
        self.succ.len() - 1
    }

    /// Builds a graph from an edge list (duplicates collapse, order is
    /// irrelevant — the result is canonical).
    ///
    /// # Panics
    ///
    /// Panics if any endpoint is out of range.
    pub fn from_edges(n: usize, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let mut g = DiGraph::new(n);
        for (u, v) in edges {
            g.add_edge(u, v);
        }
        g
    }

    /// Adds edge `u → v` (idempotent — duplicates are deduplicated at
    /// construction, and the successor row stays sorted ascending).
    /// Self-loops are permitted. Returns whether the edge was new.
    ///
    /// # Panics
    ///
    /// Panics if either endpoint is out of range.
    pub fn add_edge(&mut self, u: usize, v: usize) -> bool {
        let n = self.vertex_count();
        assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} vertices");
        match self.succ[u].binary_search(&v) {
            Ok(_) => false,
            Err(pos) => {
                self.succ[u].insert(pos, v);
                self.edge_count += 1;
                true
            }
        }
    }

    /// Whether edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.succ.get(u).is_some_and(|s| s.binary_search(&v).is_ok())
    }

    /// Successors of `u`.
    pub fn successors(&self, u: usize) -> &[usize] {
        &self.succ[u]
    }

    /// Out-degree of `u`.
    pub fn out_degree(&self, u: usize) -> usize {
        self.succ[u].len()
    }

    /// In-degrees of all vertices.
    pub fn in_degrees(&self) -> Vec<usize> {
        let mut deg = vec![0; self.vertex_count()];
        for s in &self.succ {
            for &v in s {
                deg[v] += 1;
            }
        }
        deg
    }

    /// Iterates all edges as `(from, to)` pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.succ
            .iter()
            .enumerate()
            .flat_map(|(u, vs)| vs.iter().map(move |&v| (u, v)))
    }

    /// Breadth-first order from `root` (only vertices reachable from it).
    pub fn bfs_order(&self, root: usize) -> Vec<usize> {
        let mut seen = vec![false; self.vertex_count()];
        let mut order = Vec::new();
        let mut queue = VecDeque::new();
        if root < self.vertex_count() {
            seen[root] = true;
            queue.push_back(root);
        }
        while let Some(u) = queue.pop_front() {
            order.push(u);
            for &v in &self.succ[u] {
                if !seen[v] {
                    seen[v] = true;
                    queue.push_back(v);
                }
            }
        }
        order
    }

    /// Number of vertices reachable from vertex 0 (the CFG entry).
    pub fn reachable_from_entry(&self) -> usize {
        if self.vertex_count() == 0 {
            0
        } else {
            self.bfs_order(0).len()
        }
    }

    /// Builds the augmented adjacency `Â = A + I` in CSR form together
    /// with the inverse augmented degree diagonal `D̂⁻¹`, directly from
    /// the adjacency lists — the dense `n×n` matrix is never
    /// materialized. This is the production entry point for Eq. (1)'s
    /// sparse propagation path.
    pub fn augmented_csr(&self) -> (magic_tensor::CsrMatrix, Vec<f32>) {
        magic_tensor::CsrMatrix::augmented_from_edges(self.vertex_count(), self.edges())
    }

    /// One round of Weisfeiler–Lehman color refinement: every vertex's new
    /// color is a hash of its current color and the sorted multiset of its
    /// successors' colors. The paper grounds SortPooling in WL colors
    /// (Section III-A3); this primitive also powers test invariants.
    pub fn wl_refine(&self, colors: &[u64]) -> Vec<u64> {
        assert_eq!(colors.len(), self.vertex_count(), "one color per vertex");
        (0..self.vertex_count())
            .map(|u| {
                let mut neigh: Vec<u64> = self.succ[u].iter().map(|&v| colors[v]).collect();
                neigh.sort_unstable();
                let mut h = colors[u].wrapping_mul(0x9E37_79B9_7F4A_7C15);
                for c in neigh {
                    h ^= c.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(17);
                    h = h.wrapping_mul(0x94D0_49BB_1331_11EB);
                }
                h
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn chain(n: usize) -> DiGraph {
        let mut g = DiGraph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(i, i + 1);
        }
        g
    }

    #[test]
    fn add_edge_is_idempotent() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge(0, 1));
        assert!(!g.add_edge(0, 1));
        assert_eq!(g.edge_count(), 1);
    }

    #[test]
    fn bfs_visits_reachable_only() {
        let mut g = chain(4);
        g.add_vertex(); // vertex 4, unreachable
        assert_eq!(g.bfs_order(0), vec![0, 1, 2, 3]);
        assert_eq!(g.reachable_from_entry(), 4);
    }

    #[test]
    fn in_degrees_count_incoming() {
        let mut g = DiGraph::new(3);
        g.add_edge(0, 2);
        g.add_edge(1, 2);
        assert_eq!(g.in_degrees(), vec![0, 0, 2]);
    }

    #[test]
    fn edges_iterator_matches_count() {
        let mut g = chain(5);
        g.add_edge(4, 0);
        assert_eq!(g.edges().count(), g.edge_count());
    }

    #[test]
    fn augmented_csr_adds_self_loops_and_inverts_degrees() {
        let mut g = chain(3);
        g.add_edge(0, 2);
        let (csr, inv_deg) = g.augmented_csr();
        // Â = A + I: every vertex gains a self loop.
        assert_eq!(csr.nnz(), g.edge_count() + 3);
        let dense = csr.to_dense();
        for i in 0..3 {
            assert_eq!(dense.get2(i, i), 1.0, "self loop at {i}");
        }
        for (u, v) in g.edges() {
            assert_eq!(dense.get2(u, v), 1.0);
        }
        // Vertex 0: edges to 1 and 2 plus self loop -> degree 3.
        assert!((inv_deg[0] - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(inv_deg[2], 1.0, "sink vertex has only its self loop");
    }

    #[test]
    fn wl_distinguishes_chain_from_cycle() {
        let chain3 = chain(3);
        let mut cycle3 = chain(3);
        cycle3.add_edge(2, 0);
        let c0 = vec![1u64; 3];
        let mut a = chain3.wl_refine(&c0);
        let mut b = cycle3.wl_refine(&c0);
        // Two refinement rounds separate the structures.
        a = chain3.wl_refine(&a);
        b = cycle3.wl_refine(&b);
        assert_ne!(a, b);
    }

    #[test]
    fn wl_is_isomorphism_invariant_on_relabeled_graph() {
        // Graph and its relabeling under the permutation (0 1 2) -> (2 0 1).
        let mut g = DiGraph::new(3);
        g.add_edge(0, 1);
        g.add_edge(0, 2);
        let mut h = DiGraph::new(3);
        h.add_edge(2, 0);
        h.add_edge(2, 1);
        let init = vec![7u64; 3];
        let mut cg = g.wl_refine(&init);
        let mut ch = h.wl_refine(&init);
        cg.sort_unstable();
        ch.sort_unstable();
        assert_eq!(cg, ch);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn add_edge_checks_bounds() {
        DiGraph::new(1).add_edge(0, 1);
    }

    #[test]
    fn adjacency_is_canonical_regardless_of_insertion_order() {
        let a = DiGraph::from_edges(4, [(0, 3), (0, 1), (0, 2), (2, 1)]);
        let b = DiGraph::from_edges(4, [(2, 1), (0, 1), (0, 2), (0, 3)]);
        assert_eq!(a, b, "same edge set must yield the same graph");
        assert_eq!(a.successors(0), &[1, 2, 3], "rows are sorted ascending");
        assert_eq!(
            a.edges().collect::<Vec<_>>(),
            b.edges().collect::<Vec<_>>(),
            "edge iteration order is canonical"
        );
    }

    #[test]
    fn self_loops_are_stored_and_deduplicated() {
        let mut g = DiGraph::new(2);
        assert!(g.add_edge(1, 1));
        assert!(!g.add_edge(1, 1), "duplicate self-loop collapses");
        g.add_edge(1, 0);
        assert!(g.has_edge(1, 1));
        assert_eq!(g.edge_count(), 2);
        assert_eq!(g.successors(1), &[0, 1]);
        assert_eq!(g.in_degrees(), vec![1, 1], "self-loop counts as an in-edge");
    }

    #[test]
    fn duplicate_edges_never_reach_csr_rows() {
        let mut g = DiGraph::new(3);
        for _ in 0..3 {
            g.add_edge(0, 2);
            g.add_edge(0, 1);
        }
        assert_eq!(g.edge_count(), 2);
        let (csr, _) = g.augmented_csr();
        // Row 0 of Â: self loop + two distinct successors, all weight 1.
        assert_eq!(csr.nnz(), 2 + 3);
        let dense = csr.to_dense();
        assert_eq!(dense.get2(0, 1), 1.0);
        assert_eq!(dense.get2(0, 2), 1.0);
    }
}
