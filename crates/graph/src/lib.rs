#![warn(missing_docs)]

//! Graph data structures for the MAGIC reproduction: a directed graph
//! type, the attributed control flow graph (ACFG) with the Table I vertex
//! attributes, and graph statistics used by the handcrafted-feature
//! baselines.
//!
//! # Example
//!
//! ```
//! use magic_asm::{parse_listing, CfgBuilder};
//! use magic_graph::Acfg;
//!
//! let p = parse_listing(".text:00401000   xor eax, eax\n.text:00401002   retn")?;
//! let cfg = CfgBuilder::new(&p).build();
//! let acfg = Acfg::from_cfg(&cfg);
//! assert_eq!(acfg.vertex_count(), 1);
//! assert_eq!(acfg.attributes().cols(), magic_graph::NUM_ATTRIBUTES);
//! # Ok::<(), magic_asm::ParseError>(())
//! ```

mod acfg;
mod digraph;
mod reduce;
mod stats;

pub use acfg::{Acfg, AcfgParseError, Attribute, NUM_ATTRIBUTES};
pub use digraph::DiGraph;
pub use reduce::{
    ReduceParseError, ReduceReport, ReduceStrategy, DEFAULT_COARSEN_ROUNDS,
    PRUNE_MAX_INSTRUCTIONS,
};
pub use stats::{GraphStats, SizeHistogram};
