//! Property-based tests of the listing parser and CFG builder, driven by
//! a seeded [`Rng64`] loop (the build is offline, so no proptest).

use magic_asm::{categorize, parse_listing, CfgBuilder, InstrCategory};
use magic_tensor::Rng64;

const CASES: u64 = 128;

/// A printable-plus-unicode byte soup of up to `max_len` characters.
fn random_text(rng: &mut Rng64, max_len: usize) -> String {
    const POOL: &[char] = &[
        'a', 'Z', '0', '9', ' ', '\t', ':', '.', ',', ';', '_', '-', '[', ']', '(', ')', '+',
        '*', '#', '"', '\'', '\\', '/', '|', '!', '?', '=', '<', '>', 'é', 'λ', '中', '😀',
        '\n',
    ];
    let len = rng.next_below(max_len + 1);
    (0..len).map(|_| POOL[rng.next_below(POOL.len())]).collect()
}

/// Parsing is total: any byte soup either parses or errors, never
/// panics.
#[test]
fn parse_never_panics() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let text = random_text(&mut rng, 300);
        let _ = parse_listing(&text);
    }
}

/// A well-formed single instruction always parses to exactly one program
/// entry with the expected mnemonic.
#[test]
fn well_formed_instruction_roundtrips() {
    const MNEMONICS: &[&str] = &["mov", "add", "xor", "cmp", "push", "pop", "test", "inc"];
    const REGS: &[&str] = &["eax", "ebx", "ecx", "edx", "esi", "edi"];
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let addr = 1 + rng.next_u64() % (0xFFFF_FF00 - 1);
        let mnemonic = MNEMONICS[rng.next_below(MNEMONICS.len())];
        let reg = REGS[rng.next_below(REGS.len())];
        let imm = rng.next_below(0xFFFF) as u32;
        let listing = format!(".text:{addr:08X}    {mnemonic}    {reg}, {imm}\n");
        let program = parse_listing(&listing).unwrap();
        assert_eq!(program.len(), 1);
        let inst = program.at(addr).unwrap();
        assert_eq!(inst.mnemonic.as_str(), mnemonic);
        assert_eq!(inst.operands.len(), 2);
        assert_eq!(inst.numeric_constant_count(), 1);
    }
}

/// Random straight-line programs (no control flow) always produce a
/// single basic block whose instruction count matches.
#[test]
fn straight_line_code_is_one_block() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(1, 30);
        let mut listing = String::new();
        for i in 0..len {
            listing.push_str(&format!(".text:{:08X}    mov eax, {i}\n", 0x1000 + 4 * i));
        }
        listing.push_str(&format!(".text:{:08X}    retn\n", 0x1000 + 4 * len));
        let program = parse_listing(&listing).unwrap();
        let cfg = CfgBuilder::new(&program).build();
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.instruction_count(), len + 1);
        assert_eq!(cfg.edge_count(), 0);
    }
}

/// Total instructions across CFG blocks always equals the program size,
/// whatever the (valid-target) jump structure.
#[test]
fn blocks_partition_instructions() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = 20usize;
        let mut lines: Vec<String> = (0..len)
            .map(|i| format!(".text:{:08X}    nop\n", 0x1000 + 2 * i))
            .collect();
        for _ in 0..rng.next_below(10) {
            let src = rng.next_below(len);
            let dst = rng.next_below(len);
            lines[src] = format!(
                ".text:{:08X}    jnz loc_{:X}\n",
                0x1000 + 2 * src,
                0x1000 + 2 * dst
            );
        }
        let program = parse_listing(&lines.concat()).unwrap();
        let cfg = CfgBuilder::new(&program).build();
        let total: usize = cfg.blocks().iter().map(|b| b.len()).sum();
        assert_eq!(total, program.len());
        // Out-degree is at most 2 (branch + fall-through) for any vertex.
        for v in 0..cfg.block_count() {
            assert!(cfg.out_degree(v) <= 2);
        }
    }
}

/// Every known mnemonic category is stable under categorize (no overlaps
/// drift in).
#[test]
fn categorize_is_deterministic() {
    const MNEMONICS: &[&str] = &["jmp", "jz", "call", "add", "cmp", "mov", "retn", "db", "nop", "fld"];
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let m = MNEMONICS[rng.next_below(MNEMONICS.len())];
        let a = categorize(m);
        let b = categorize(m);
        assert_eq!(a, b);
        if m == "fld" || m == "nop" {
            assert_eq!(a, InstrCategory::Other);
        }
    }
}
