//! Property-based tests of the listing parser and CFG builder.

use magic_asm::{categorize, parse_listing, CfgBuilder, InstrCategory};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    /// Parsing is total: any byte soup either parses or errors, never
    /// panics.
    #[test]
    fn parse_never_panics(text in "\\PC{0,300}") {
        let _ = parse_listing(&text);
    }

    /// A well-formed single instruction always parses to exactly one
    /// program entry with the expected mnemonic.
    #[test]
    fn well_formed_instruction_roundtrips(
        addr in 1u64..0xFFFF_FF00,
        mnemonic in "(mov|add|xor|cmp|push|pop|test|inc)",
        reg in "(eax|ebx|ecx|edx|esi|edi)",
        imm in 0u32..0xFFFF,
    ) {
        let listing = format!(".text:{addr:08X}    {mnemonic}    {reg}, {imm}\n");
        let program = parse_listing(&listing).unwrap();
        prop_assert_eq!(program.len(), 1);
        let inst = program.at(addr).unwrap();
        prop_assert_eq!(inst.mnemonic.as_str(), mnemonic.as_str());
        prop_assert_eq!(inst.operands.len(), 2);
        prop_assert_eq!(inst.numeric_constant_count(), 1);
    }

    /// Random straight-line programs (no control flow) always produce a
    /// single basic block whose instruction count matches.
    #[test]
    fn straight_line_code_is_one_block(len in 1usize..30) {
        let mut listing = String::new();
        for i in 0..len {
            listing.push_str(&format!(".text:{:08X}    mov eax, {i}\n", 0x1000 + 4 * i));
        }
        listing.push_str(&format!(".text:{:08X}    retn\n", 0x1000 + 4 * len));
        let program = parse_listing(&listing).unwrap();
        let cfg = CfgBuilder::new(&program).build();
        prop_assert_eq!(cfg.block_count(), 1);
        prop_assert_eq!(cfg.instruction_count(), len + 1);
        prop_assert_eq!(cfg.edge_count(), 0);
    }

    /// Total instructions across CFG blocks always equals the program
    /// size, whatever the (valid-target) jump structure.
    #[test]
    fn blocks_partition_instructions(jumps in prop::collection::vec((0usize..20, 0usize..20), 0..10)) {
        let len = 20usize;
        let mut lines: Vec<String> = (0..len)
            .map(|i| format!(".text:{:08X}    nop\n", 0x1000 + 2 * i))
            .collect();
        for (src, dst) in jumps {
            lines[src] = format!(
                ".text:{:08X}    jnz loc_{:X}\n",
                0x1000 + 2 * src,
                0x1000 + 2 * dst
            );
        }
        let program = parse_listing(&lines.concat()).unwrap();
        let cfg = CfgBuilder::new(&program).build();
        let total: usize = cfg.blocks().iter().map(|b| b.len()).sum();
        prop_assert_eq!(total, program.len());
        // Out-degree is at most 2 (branch + fall-through) for any vertex.
        for v in 0..cfg.block_count() {
            prop_assert!(cfg.out_degree(v) <= 2);
        }
    }

    /// Every known mnemonic category is stable under categorize (no
    /// overlaps drift in).
    #[test]
    fn categorize_is_deterministic(m in "(jmp|jz|call|add|cmp|mov|retn|db|nop|fld)") {
        let a = categorize(&m);
        let b = categorize(&m);
        prop_assert_eq!(a, b);
        if m == "fld" || m == "nop" {
            prop_assert_eq!(a, InstrCategory::Other);
        }
    }
}
