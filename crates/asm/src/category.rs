//! Instruction categorization for the Table I block attributes.

use std::fmt;

/// The instruction classes counted per basic block (Table I of the
/// paper): transfer, call, arithmetic, compare, mov, termination and
/// data-declaration instructions, with everything else in `Other`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum InstrCategory {
    /// Control transfers: unconditional and conditional jumps, loops.
    Transfer,
    /// Procedure calls.
    Call,
    /// Integer/bitwise arithmetic.
    Arithmetic,
    /// Comparisons and tests.
    Compare,
    /// Data movement (mov family, push/pop, exchanges, lea).
    Mov,
    /// Returns, halts and interrupts-returns.
    Termination,
    /// Assembler data declarations (`db`, `dd`, ...).
    DataDeclaration,
    /// Anything not covered above.
    Other,
}

impl InstrCategory {
    /// All categories that Table I counts explicitly (excludes `Other`).
    pub const COUNTED: [InstrCategory; 7] = [
        InstrCategory::Transfer,
        InstrCategory::Call,
        InstrCategory::Arithmetic,
        InstrCategory::Compare,
        InstrCategory::Mov,
        InstrCategory::Termination,
        InstrCategory::DataDeclaration,
    ];
}

impl fmt::Display for InstrCategory {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let name = match self {
            InstrCategory::Transfer => "transfer",
            InstrCategory::Call => "call",
            InstrCategory::Arithmetic => "arithmetic",
            InstrCategory::Compare => "compare",
            InstrCategory::Mov => "mov",
            InstrCategory::Termination => "termination",
            InstrCategory::DataDeclaration => "data declaration",
            InstrCategory::Other => "other",
        };
        f.write_str(name)
    }
}

/// Conditional jump mnemonics (branch *and* fall through — Algorithm 1).
pub(crate) const CONDITIONAL_JUMPS: &[&str] = &[
    "ja", "jae", "jb", "jbe", "jc", "jcxz", "jecxz", "je", "jg", "jge", "jl", "jle", "jna",
    "jnae", "jnb", "jnbe", "jnc", "jne", "jng", "jnge", "jnl", "jnle", "jno", "jnp", "jns",
    "jnz", "jo", "jp", "jpe", "jpo", "js", "jz", "loop", "loope", "loopne", "loopnz", "loopz",
];

/// Unconditional jump mnemonics (branch, never fall through).
pub(crate) const UNCONDITIONAL_JUMPS: &[&str] = &["jmp", "ljmp"];

const CALLS: &[&str] = &["call", "lcall"];

const ARITHMETIC: &[&str] = &[
    "add", "adc", "sub", "sbb", "mul", "imul", "div", "idiv", "inc", "dec", "neg", "not",
    "and", "or", "xor", "shl", "shr", "sal", "sar", "rol", "ror", "rcl", "rcr", "cdq", "cbw",
    "cwde", "aaa", "aad", "aam", "aas", "daa", "das",
];

const COMPARES: &[&str] = &["cmp", "test", "cmpsb", "cmpsw", "cmpsd", "scasb", "scasw", "scasd"];

const MOVS: &[&str] = &[
    "mov", "movzx", "movsx", "movsb", "movsw", "movsd", "movaps", "movups", "movdqa", "movdqu",
    "xchg", "push", "pusha", "pushad", "pushf", "pushfd", "pop", "popa", "popad", "popf",
    "popfd", "lea", "lodsb", "lodsw", "lodsd", "stosb", "stosw", "stosd",
];

const TERMINATIONS: &[&str] = &["ret", "retn", "retf", "iret", "iretd", "hlt"];

const DATA_DECLS: &[&str] = &["db", "dw", "dd", "dq", "dt", "align", "unicode"];

/// Classifies a (lower-case) mnemonic into its Table I category.
///
/// # Example
///
/// ```
/// use magic_asm::{categorize, InstrCategory};
///
/// assert_eq!(categorize("jz"), InstrCategory::Transfer);
/// assert_eq!(categorize("retn"), InstrCategory::Termination);
/// assert_eq!(categorize("fnop"), InstrCategory::Other);
/// ```
pub fn categorize(mnemonic: &str) -> InstrCategory {
    if CONDITIONAL_JUMPS.contains(&mnemonic) || UNCONDITIONAL_JUMPS.contains(&mnemonic) {
        InstrCategory::Transfer
    } else if CALLS.contains(&mnemonic) {
        InstrCategory::Call
    } else if ARITHMETIC.contains(&mnemonic) {
        InstrCategory::Arithmetic
    } else if COMPARES.contains(&mnemonic) {
        InstrCategory::Compare
    } else if MOVS.contains(&mnemonic) {
        InstrCategory::Mov
    } else if TERMINATIONS.contains(&mnemonic) {
        InstrCategory::Termination
    } else if DATA_DECLS.contains(&mnemonic) {
        InstrCategory::DataDeclaration
    } else {
        InstrCategory::Other
    }
}

/// Whether the mnemonic is a conditional jump.
pub(crate) fn is_conditional_jump(mnemonic: &str) -> bool {
    CONDITIONAL_JUMPS.contains(&mnemonic)
}

/// Whether the mnemonic is an unconditional jump.
pub(crate) fn is_unconditional_jump(mnemonic: &str) -> bool {
    UNCONDITIONAL_JUMPS.contains(&mnemonic)
}

/// Whether the mnemonic is a call.
pub(crate) fn is_call(mnemonic: &str) -> bool {
    CALLS.contains(&mnemonic)
}

/// Whether the mnemonic terminates control flow (no fall-through).
pub(crate) fn is_termination(mnemonic: &str) -> bool {
    TERMINATIONS.contains(&mnemonic)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn jumps_are_transfer() {
        for m in ["jmp", "jz", "jnz", "ja", "loop"] {
            assert_eq!(categorize(m), InstrCategory::Transfer, "{m}");
        }
    }

    #[test]
    fn representative_mnemonics_map_to_expected_categories() {
        assert_eq!(categorize("call"), InstrCategory::Call);
        assert_eq!(categorize("xor"), InstrCategory::Arithmetic);
        assert_eq!(categorize("cmp"), InstrCategory::Compare);
        assert_eq!(categorize("test"), InstrCategory::Compare);
        assert_eq!(categorize("push"), InstrCategory::Mov);
        assert_eq!(categorize("lea"), InstrCategory::Mov);
        assert_eq!(categorize("hlt"), InstrCategory::Termination);
        assert_eq!(categorize("db"), InstrCategory::DataDeclaration);
        assert_eq!(categorize("nop"), InstrCategory::Other);
    }

    #[test]
    fn categories_are_disjoint() {
        let lists: [&[&str]; 7] = [
            CONDITIONAL_JUMPS,
            UNCONDITIONAL_JUMPS,
            CALLS,
            ARITHMETIC,
            COMPARES,
            MOVS,
            TERMINATIONS,
        ];
        let mut seen = std::collections::HashSet::new();
        for list in lists {
            for m in list {
                assert!(seen.insert(*m), "mnemonic {m} appears in two categories");
            }
        }
    }

    #[test]
    fn predicates_agree_with_categorize() {
        assert!(is_conditional_jump("jz"));
        assert!(!is_conditional_jump("jmp"));
        assert!(is_unconditional_jump("jmp"));
        assert!(is_call("call"));
        assert!(is_termination("retn"));
        assert!(!is_termination("jmp"));
    }

    #[test]
    fn counted_excludes_other() {
        assert_eq!(InstrCategory::COUNTED.len(), 7);
        assert!(!InstrCategory::COUNTED.contains(&InstrCategory::Other));
    }
}
