#![warn(missing_docs)]

//! Assembly front-end of the MAGIC reproduction: instruction model,
//! IDA-style listing parser, and the paper's two-pass control-flow-graph
//! construction (Section IV-A, Algorithms 1 and 2).
//!
//! The paper extracts CFGs from IDA Pro `.asm` listings. This crate
//! implements that path from scratch:
//!
//! 1. [`parse_listing`] turns a textual listing into a [`Program`] — "a
//!    one-to-one mapping from sorted addresses to assembly instructions".
//! 2. A first pass walks the program with the instruction-visitor of
//!    [`tagging`] (Algorithm 1), marking `start`, `branchTo`,
//!    `fallThrough` and `return` tags.
//! 3. A second pass ([`CfgBuilder`]) creates basic blocks and connects
//!    them (Algorithm 2), yielding a [`Cfg`].
//!
//! # Example
//!
//! ```
//! use magic_asm::{parse_listing, CfgBuilder};
//!
//! let listing = "\
//! .text:00401000    cmp     eax, 1
//! .text:00401002    jz      loc_401006
//! .text:00401004    add     eax, 2
//! .text:00401006    retn
//! ";
//! let program = parse_listing(listing)?;
//! let cfg = CfgBuilder::new(&program).build();
//! assert_eq!(cfg.block_count(), 3);
//! # Ok::<(), magic_asm::ParseError>(())
//! ```

mod builder;
mod category;
mod instr;
mod parser;
pub mod tagging;

pub use builder::{BasicBlock, Cfg, CfgBuilder};
pub use category::{categorize, InstrCategory};
pub use instr::{Instruction, Program};
pub use parser::{parse_listing, ParseError};
