//! Second pass of CFG construction: block creation and connection
//! (Algorithm 2, `CfgBuilder::connectBlocks`).

use crate::instr::{Instruction, Program};
use crate::tagging::{TagMap, TaggingVisitor};
use std::collections::{BTreeSet, HashMap};
use std::fmt::Write as _;

/// A basic block: "a straight sequence of code or assembly instructions
/// without any control flow transition except at its exit" (Section II-A).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BasicBlock {
    /// Address of the first instruction.
    pub start_addr: u64,
    /// The instructions, in address order.
    pub instructions: Vec<Instruction>,
}

impl BasicBlock {
    /// Creates an empty block starting at `start_addr`.
    pub fn new(start_addr: u64) -> Self {
        BasicBlock { start_addr, instructions: Vec::new() }
    }

    /// Number of instructions in the block (a Table I attribute).
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the block holds no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }
}

/// A control flow graph: basic blocks plus directed edges between them.
///
/// Vertex `u → v` exists iff the last instruction of `u` falls through to
/// the first instruction of `v`, or an instruction in `u` jumps/calls into
/// `v` (Section II-A).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cfg {
    blocks: Vec<BasicBlock>,
    edges: BTreeSet<(usize, usize)>,
}

impl Cfg {
    /// Builds a CFG directly from blocks and edges (used by corpora that
    /// ship pre-extracted CFGs, like the paper's YANCFG dataset).
    ///
    /// # Panics
    ///
    /// Panics if any edge endpoint is out of range.
    pub fn from_parts(blocks: Vec<BasicBlock>, edges: impl IntoIterator<Item = (usize, usize)>) -> Self {
        let n = blocks.len();
        let edges: BTreeSet<(usize, usize)> = edges.into_iter().collect();
        for &(u, v) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} blocks");
        }
        Cfg { blocks, edges }
    }

    /// Number of basic blocks (vertices).
    pub fn block_count(&self) -> usize {
        self.blocks.len()
    }

    /// Number of directed edges.
    pub fn edge_count(&self) -> usize {
        self.edges.len()
    }

    /// The blocks, indexed by vertex id.
    pub fn blocks(&self) -> &[BasicBlock] {
        &self.blocks
    }

    /// The block with vertex id `v`.
    pub fn block(&self, v: usize) -> &BasicBlock {
        &self.blocks[v]
    }

    /// Iterates directed edges as `(from, to)` vertex-id pairs.
    pub fn edges(&self) -> impl Iterator<Item = (usize, usize)> + '_ {
        self.edges.iter().copied()
    }

    /// Whether edge `u → v` exists.
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        self.edges.contains(&(u, v))
    }

    /// Out-degree of vertex `v` ("# offspring", a Table I attribute).
    pub fn out_degree(&self, v: usize) -> usize {
        self.edges.range((v, 0)..(v + 1, 0)).count()
    }

    /// Successor vertex ids of `v`.
    pub fn successors(&self, v: usize) -> impl Iterator<Item = usize> + '_ {
        self.edges.range((v, 0)..(v + 1, 0)).map(|&(_, t)| t)
    }

    /// Total instruction count across all blocks.
    pub fn instruction_count(&self) -> usize {
        self.blocks.iter().map(BasicBlock::len).sum()
    }

    /// Renders the CFG in Graphviz DOT format.
    pub fn to_dot(&self) -> String {
        let mut out = String::from("digraph cfg {\n  node [shape=box fontname=monospace];\n");
        for (i, b) in self.blocks.iter().enumerate() {
            let label: Vec<String> = b.instructions.iter().map(|x| x.to_string()).collect();
            let _ = writeln!(out, "  n{} [label=\"{}\"];", i, label.join("\\l"));
        }
        for (u, v) in &self.edges {
            let _ = writeln!(out, "  n{u} -> n{v};");
        }
        out.push_str("}\n");
        out
    }
}

/// The two-pass CFG builder of Section IV-A.
///
/// # Example
///
/// ```
/// use magic_asm::{parse_listing, CfgBuilder};
///
/// let p = parse_listing(".text:00401000    retn")?;
/// let cfg = CfgBuilder::new(&p).build();
/// assert_eq!(cfg.block_count(), 1);
/// # Ok::<(), magic_asm::ParseError>(())
/// ```
#[derive(Debug)]
pub struct CfgBuilder<'a> {
    program: &'a Program,
    tags: TagMap,
}

impl<'a> CfgBuilder<'a> {
    /// Runs the first pass (Algorithm 1 tagging) over `program`.
    pub fn new(program: &'a Program) -> Self {
        let tags = TaggingVisitor::new().tag_program(program);
        CfgBuilder { program, tags }
    }

    /// Runs the second pass (Algorithm 2) and returns the CFG.
    pub fn build(&self) -> Cfg {
        let _span = magic_obs::span(magic_obs::stage::CFG_BUILD);
        let mut blocks: Vec<BasicBlock> = Vec::new();
        let mut by_addr: HashMap<u64, usize> = HashMap::new();
        let mut edges: BTreeSet<(usize, usize)> = BTreeSet::new();

        // The paper's getBlockAtAddr: return the block starting at addr,
        // creating it first if needed.
        let mut get_block_at = |addr: u64, blocks: &mut Vec<BasicBlock>| -> usize {
            *by_addr.entry(addr).or_insert_with(|| {
                blocks.push(BasicBlock::new(addr));
                blocks.len() - 1
            })
        };

        let mut curr_block: Option<usize> = None;
        for inst in self.program.iter() {
            let tags = self.tags.get(&inst.addr).copied().unwrap_or_default();
            if tags.start || curr_block.is_none() {
                curr_block = Some(get_block_at(inst.addr, &mut blocks));
            }
            let curr = curr_block.expect("current block must exist");
            let mut next_block = curr;

            if let Some(next_inst) = self.program.next_inst(inst) {
                let next_tags = self.tags.get(&next_inst.addr).copied().unwrap_or_default();
                if tags.fall_through && next_tags.start {
                    next_block = get_block_at(next_inst.addr, &mut blocks);
                    edges.insert((curr, next_block));
                }
            }

            if let Some(dst) = tags.branch_to {
                let target = get_block_at(dst, &mut blocks);
                edges.insert((curr, target));
            }

            blocks[curr_block.unwrap()].instructions.push(inst.clone());
            curr_block = Some(next_block);
        }

        magic_obs::counter(magic_obs::stage::C_CFG_BLOCKS, blocks.len() as f64);
        magic_obs::counter(magic_obs::stage::C_CFG_EDGES, edges.len() as f64);
        Cfg { blocks, edges }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instr::Instruction;

    fn program(lines: &[(u64, &str, &[&str])]) -> Program {
        lines
            .iter()
            .map(|(addr, m, ops)| {
                Instruction::new(*addr, 2, *m, ops.iter().map(|s| s.to_string()).collect())
            })
            .collect()
    }

    /// if/else diamond:
    ///   0x10 cmp ; 0x12 jz 0x18 ; 0x14 mov ; 0x16 jmp 0x1a ; 0x18 inc ;
    ///   0x1a retn
    fn diamond() -> Program {
        program(&[
            (0x10, "cmp", &["eax", "0"]),
            (0x12, "jz", &["loc_18"]),
            (0x14, "mov", &["eax", "1"]),
            (0x16, "jmp", &["loc_1A"]),
            (0x18, "inc", &["eax"]),
            (0x1A, "retn", &[]),
        ])
    }

    #[test]
    fn diamond_has_four_blocks_and_four_edges() {
        let p = diamond();
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 4);
        assert_eq!(cfg.edge_count(), 4);
        // Entry block: cmp + jz.
        assert_eq!(cfg.block(0).start_addr, 0x10);
        assert_eq!(cfg.block(0).len(), 2);
        assert_eq!(cfg.out_degree(0), 2);
    }

    #[test]
    fn straight_line_code_is_one_block() {
        let p = program(&[
            (0x10, "mov", &["eax", "1"]),
            (0x12, "add", &["eax", "2"]),
            (0x14, "retn", &[]),
        ]);
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 1);
        assert_eq!(cfg.edge_count(), 0);
        assert_eq!(cfg.block(0).len(), 3);
    }

    #[test]
    fn self_loop_is_preserved() {
        // 0x10: dec eax ; 0x12: jnz 0x10 ; 0x14: retn
        let p = program(&[
            (0x10, "dec", &["eax"]),
            (0x12, "jnz", &["loc_10"]),
            (0x14, "retn", &[]),
        ]);
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 2);
        assert!(cfg.has_edge(0, 0), "loop back edge");
        assert!(cfg.has_edge(0, 1), "fall-through exit edge");
    }

    #[test]
    fn call_creates_edge_to_callee_and_resumption() {
        let p = program(&[
            (0x10, "call", &["sub_20"]),
            (0x12, "retn", &[]),
            (0x20, "xor", &["eax", "eax"]),
            (0x22, "retn", &[]),
        ]);
        let cfg = CfgBuilder::new(&p).build();
        // Blocks: [call], [retn@12], [xor,retn@20].
        assert_eq!(cfg.block_count(), 3);
        let call_block = 0;
        assert_eq!(cfg.out_degree(call_block), 2);
    }

    #[test]
    fn jump_into_middle_of_block_splits_it() {
        // 0x14 is entered both by fall-through from 0x12 and a back jump.
        let p = program(&[
            (0x10, "mov", &["eax", "0"]),
            (0x12, "mov", &["ebx", "0"]),
            (0x14, "inc", &["eax"]),
            (0x16, "jnz", &["loc_14"]),
            (0x18, "retn", &[]),
        ]);
        let cfg = CfgBuilder::new(&p).build();
        // Blocks: [mov,mov], [inc,jnz], [retn].
        assert_eq!(cfg.block_count(), 3);
        let loop_block = cfg
            .blocks()
            .iter()
            .position(|b| b.start_addr == 0x14)
            .unwrap();
        assert!(cfg.has_edge(loop_block, loop_block));
    }

    #[test]
    fn out_degree_and_successors_agree() {
        let p = diamond();
        let cfg = CfgBuilder::new(&p).build();
        for v in 0..cfg.block_count() {
            assert_eq!(cfg.out_degree(v), cfg.successors(v).count());
        }
    }

    #[test]
    fn dot_output_mentions_every_block() {
        let p = diamond();
        let cfg = CfgBuilder::new(&p).build();
        let dot = cfg.to_dot();
        for i in 0..cfg.block_count() {
            assert!(dot.contains(&format!("n{i} ")), "missing node n{i}");
        }
        assert!(dot.contains("->"));
    }

    #[test]
    fn from_parts_validates_edges() {
        let blocks = vec![BasicBlock::new(0), BasicBlock::new(2)];
        let cfg = Cfg::from_parts(blocks, [(0, 1), (1, 0)]);
        assert_eq!(cfg.edge_count(), 2);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn from_parts_rejects_dangling_edge() {
        Cfg::from_parts(vec![BasicBlock::new(0)], [(0, 3)]);
    }

    #[test]
    fn empty_program_gives_empty_cfg() {
        let p = Program::new();
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 0);
        assert_eq!(cfg.edge_count(), 0);
    }

    #[test]
    fn duplicate_edges_are_deduplicated() {
        // Two paths to the same target produce one edge entry per pair.
        let p = program(&[
            (0x10, "jz", &["loc_14"]),
            (0x12, "jmp", &["loc_14"]),
            (0x14, "retn", &[]),
        ]);
        let cfg = CfgBuilder::new(&p).build();
        let pairs: Vec<_> = cfg.edges().collect();
        let unique: std::collections::HashSet<_> = pairs.iter().collect();
        assert_eq!(pairs.len(), unique.len());
    }
}
