//! Instructions and programs.

use std::collections::BTreeMap;
use std::fmt;

/// One assembly instruction at a fixed address.
///
/// The `size` field is the encoded byte length; the fall-through successor
/// of an instruction lives at `addr + size` (Algorithm 1, line 5).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Instruction {
    /// Virtual address of the instruction.
    pub addr: u64,
    /// Encoded size in bytes.
    pub size: u64,
    /// Lower-case mnemonic, e.g. `mov`.
    pub mnemonic: String,
    /// Operand strings, comma-split, trimmed.
    pub operands: Vec<String>,
}

impl Instruction {
    /// Creates an instruction.
    pub fn new(addr: u64, size: u64, mnemonic: impl Into<String>, operands: Vec<String>) -> Self {
        Instruction {
            addr,
            size,
            mnemonic: mnemonic.into().to_lowercase(),
            operands,
        }
    }

    /// Address of the instruction textually following this one.
    pub fn next_addr(&self) -> u64 {
        self.addr + self.size
    }

    /// Number of numeric constants among the operands (a Table I
    /// attribute). Handles `123`, `0x1F`, `1Fh`, and negative forms,
    /// including constants inside memory expressions like `[ebp-8]`.
    pub fn numeric_constant_count(&self) -> usize {
        self.operands
            .iter()
            .map(|op| count_numeric_tokens(op))
            .sum()
    }

    /// Destination address for jump/call operands, when statically known.
    ///
    /// Recognizes IDA-style symbolic targets (`loc_401000`, `sub_401000`,
    /// `locret_401000`), raw hex (`0x401000`), and assembler hex
    /// (`401000h`). Register or memory targets return `None`.
    pub fn dst_addr(&self) -> Option<u64> {
        let op = self.operands.first()?;
        parse_target(op)
    }
}

impl fmt::Display for Instruction {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:08X}  {}", self.addr, self.mnemonic)?;
        if !self.operands.is_empty() {
            write!(f, " {}", self.operands.join(", "))?;
        }
        Ok(())
    }
}

fn count_numeric_tokens(operand: &str) -> usize {
    // Split on non-alphanumeric boundaries keeping sign context simple;
    // a token counts as numeric if it is decimal, 0x-hex or h-suffix hex.
    operand
        .split(|c: char| !c.is_ascii_alphanumeric() && c != '_')
        .filter(|tok| !tok.is_empty())
        .filter(|tok| is_numeric_token(tok))
        .count()
}

fn is_numeric_token(tok: &str) -> bool {
    if let Some(hex) = tok.strip_prefix("0x").or_else(|| tok.strip_prefix("0X")) {
        return !hex.is_empty() && hex.chars().all(|c| c.is_ascii_hexdigit());
    }
    if let Some(hex) = tok.strip_suffix('h').or_else(|| tok.strip_suffix('H')) {
        return !hex.is_empty()
            && hex.chars().all(|c| c.is_ascii_hexdigit())
            && hex.starts_with(|c: char| c.is_ascii_digit());
    }
    tok.chars().all(|c| c.is_ascii_digit())
}

/// Parses a symbolic or literal branch target into an address.
pub(crate) fn parse_target(op: &str) -> Option<u64> {
    let op = op.trim();
    // Strip IDA "short"/"near ptr"/"far ptr" qualifiers.
    let op = op
        .trim_start_matches("short ")
        .trim_start_matches("near ptr ")
        .trim_start_matches("far ptr ")
        .trim();
    for prefix in ["loc_", "locret_", "sub_", "off_", "unk_"] {
        if let Some(hex) = op.strip_prefix(prefix) {
            return u64::from_str_radix(hex, 16).ok();
        }
    }
    if let Some(hex) = op.strip_prefix("0x").or_else(|| op.strip_prefix("0X")) {
        return u64::from_str_radix(hex, 16).ok();
    }
    if let Some(hex) = op.strip_suffix('h').or_else(|| op.strip_suffix('H')) {
        if hex.starts_with(|c: char| c.is_ascii_digit()) {
            return u64::from_str_radix(hex, 16).ok();
        }
    }
    if op.chars().all(|c| c.is_ascii_digit()) && !op.is_empty() {
        return op.parse().ok();
    }
    None
}

/// A program: the paper's `P : Z+ -> I`, a one-to-one mapping from sorted
/// addresses to instructions (Section IV-A).
///
/// # Example
///
/// ```
/// use magic_asm::{Instruction, Program};
///
/// let mut p = Program::new();
/// p.insert(Instruction::new(0x1000, 2, "mov", vec!["eax".into(), "1".into()]));
/// assert_eq!(p.len(), 1);
/// assert!(p.at(0x1000).is_some());
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Program {
    instructions: BTreeMap<u64, Instruction>,
}

impl Program {
    /// Creates an empty program.
    pub fn new() -> Self {
        Program::default()
    }

    /// Inserts an instruction, keyed and ordered by address. Returns the
    /// previous instruction at that address, if any.
    pub fn insert(&mut self, inst: Instruction) -> Option<Instruction> {
        self.instructions.insert(inst.addr, inst)
    }

    /// The instruction at `addr`, if present.
    pub fn at(&self, addr: u64) -> Option<&Instruction> {
        self.instructions.get(&addr)
    }

    /// Whether an instruction exists at `addr`.
    pub fn contains(&self, addr: u64) -> bool {
        self.instructions.contains_key(&addr)
    }

    /// Number of instructions.
    pub fn len(&self) -> usize {
        self.instructions.len()
    }

    /// Whether the program has no instructions.
    pub fn is_empty(&self) -> bool {
        self.instructions.is_empty()
    }

    /// Iterates instructions in ascending address order.
    pub fn iter(&self) -> impl Iterator<Item = &Instruction> {
        self.instructions.values()
    }

    /// The instruction textually following `inst`, if any — the paper's
    /// `getNextInst(P, inst)` helper (Section IV-A).
    pub fn next_inst(&self, inst: &Instruction) -> Option<&Instruction> {
        self.instructions
            .range((inst.addr + 1)..)
            .next()
            .map(|(_, i)| i)
    }

    /// All addresses, ascending.
    pub fn addresses(&self) -> impl Iterator<Item = u64> + '_ {
        self.instructions.keys().copied()
    }
}

impl FromIterator<Instruction> for Program {
    fn from_iter<T: IntoIterator<Item = Instruction>>(iter: T) -> Self {
        let mut p = Program::new();
        for inst in iter {
            p.insert(inst);
        }
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn inst(addr: u64, mnemonic: &str, ops: &[&str]) -> Instruction {
        Instruction::new(addr, 2, mnemonic, ops.iter().map(|s| s.to_string()).collect())
    }

    #[test]
    fn program_iterates_in_address_order() {
        let p: Program = [inst(0x30, "nop", &[]), inst(0x10, "nop", &[]), inst(0x20, "nop", &[])]
            .into_iter()
            .collect();
        let addrs: Vec<u64> = p.addresses().collect();
        assert_eq!(addrs, vec![0x10, 0x20, 0x30]);
    }

    #[test]
    fn next_inst_skips_gaps() {
        let p: Program = [inst(0x10, "nop", &[]), inst(0x40, "nop", &[])].into_iter().collect();
        let first = p.at(0x10).unwrap();
        assert_eq!(p.next_inst(first).unwrap().addr, 0x40);
        let last = p.at(0x40).unwrap();
        assert!(p.next_inst(last).is_none());
    }

    #[test]
    fn numeric_constants_in_various_forms() {
        assert_eq!(inst(0, "mov", &["eax", "5"]).numeric_constant_count(), 1);
        assert_eq!(inst(0, "mov", &["eax", "0x1F"]).numeric_constant_count(), 1);
        assert_eq!(inst(0, "mov", &["eax", "1Fh"]).numeric_constant_count(), 1);
        assert_eq!(inst(0, "mov", &["eax", "[ebp-8]"]).numeric_constant_count(), 1);
        assert_eq!(inst(0, "mov", &["eax", "ebx"]).numeric_constant_count(), 0);
        assert_eq!(inst(0, "add", &["dword ptr [esi+4]", "10h"]).numeric_constant_count(), 2);
    }

    #[test]
    fn registers_are_not_numeric() {
        // `ah` looks hex-suffixed but starts with a letter.
        assert_eq!(inst(0, "mov", &["ah", "bh"]).numeric_constant_count(), 0);
    }

    #[test]
    fn dst_addr_parses_symbolic_targets() {
        assert_eq!(inst(0, "jmp", &["loc_401000"]).dst_addr(), Some(0x401000));
        assert_eq!(inst(0, "jz", &["short loc_4F"]).dst_addr(), Some(0x4F));
        assert_eq!(inst(0, "call", &["sub_1234"]).dst_addr(), Some(0x1234));
        assert_eq!(inst(0, "jmp", &["0x500"]).dst_addr(), Some(0x500));
        assert_eq!(inst(0, "jmp", &["500h"]).dst_addr(), Some(0x500));
        assert_eq!(inst(0, "jmp", &["eax"]).dst_addr(), None);
        assert_eq!(inst(0, "call", &["dword ptr [eax+4]"]).dst_addr(), None);
    }

    #[test]
    fn insert_replaces_same_address() {
        let mut p = Program::new();
        p.insert(inst(0x10, "nop", &[]));
        let old = p.insert(inst(0x10, "mov", &["eax", "1"]));
        assert_eq!(old.unwrap().mnemonic, "nop");
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn display_formats_instruction() {
        let i = inst(0x401000, "mov", &["eax", "1"]);
        assert_eq!(i.to_string(), "00401000  mov eax, 1");
    }
}
