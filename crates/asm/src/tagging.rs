//! First pass of CFG construction: instruction tagging (Algorithm 1).
//!
//! The paper associates each instruction with the tags `{start, branchTo,
//! fallThrough, return}` and fills them with an if-else-free *visitor*
//! over the instruction kinds. The [`InstructionVisitor`] trait mirrors
//! that design: [`dispatch`] classifies each instruction once and calls
//! the matching visit method; the default [`TaggingVisitor`] implements
//! exactly the paper's tagging rules.

use crate::category;
use crate::instr::{Instruction, Program};
use std::collections::BTreeMap;

/// The per-instruction tags of Section IV-A.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Tags {
    /// This instruction starts a new basic block.
    pub start: bool,
    /// Static branch destination, if this instruction branches.
    pub branch_to: Option<u64>,
    /// Control may continue to the textually next instruction.
    pub fall_through: bool,
    /// This instruction returns from the procedure.
    pub is_return: bool,
}

/// The tag table produced by the first pass: address → [`Tags`].
pub type TagMap = BTreeMap<u64, Tags>;

/// Visitor over instruction kinds, mirroring the paper's "visitor pattern
/// to implement if-else free instruction tagging".
///
/// Implementations receive the program so they can mark *other*
/// instructions (e.g. a jump target) as block starts.
pub trait InstructionVisitor {
    /// Conditional jump: branches *and* falls through (Algorithm 1).
    fn visit_conditional_jump(&mut self, program: &Program, inst: &Instruction);
    /// Unconditional jump: branches, never falls through.
    fn visit_unconditional_jump(&mut self, program: &Program, inst: &Instruction);
    /// Call: branches to the callee and falls through on return.
    fn visit_call(&mut self, program: &Program, inst: &Instruction);
    /// Return/halt: terminates the block with no successors.
    fn visit_return(&mut self, program: &Program, inst: &Instruction);
    /// Any other instruction: plain fall-through.
    fn visit_other(&mut self, program: &Program, inst: &Instruction);
}

/// Classifies `inst` and invokes the matching visit method.
pub fn dispatch<V: InstructionVisitor + ?Sized>(visitor: &mut V, program: &Program, inst: &Instruction) {
    let m = inst.mnemonic.as_str();
    if category::is_conditional_jump(m) {
        visitor.visit_conditional_jump(program, inst);
    } else if category::is_unconditional_jump(m) {
        visitor.visit_unconditional_jump(program, inst);
    } else if category::is_call(m) {
        visitor.visit_call(program, inst);
    } else if category::is_termination(m) {
        visitor.visit_return(program, inst);
    } else {
        visitor.visit_other(program, inst);
    }
}

/// The concrete tagging visitor of Algorithm 1.
///
/// Call [`TaggingVisitor::tag_program`] to run the full first pass.
#[derive(Debug, Default)]
pub struct TaggingVisitor {
    tags: TagMap,
}

impl TaggingVisitor {
    /// Creates a visitor with an empty tag table.
    pub fn new() -> Self {
        TaggingVisitor::default()
    }

    /// Runs the first pass over the whole program and returns the tag
    /// table. The first instruction is always a block start.
    pub fn tag_program(mut self, program: &Program) -> TagMap {
        if let Some(first) = program.iter().next() {
            self.tags.entry(first.addr).or_default().start = true;
        }
        for inst in program.iter() {
            dispatch(&mut self, program, inst);
        }
        self.tags
    }

    fn tag(&mut self, addr: u64) -> &mut Tags {
        self.tags.entry(addr).or_default()
    }

    /// Marks the branch destination (if statically known and present in
    /// the program) as a block start and records `branchTo`.
    fn mark_branch(&mut self, program: &Program, inst: &Instruction) {
        if let Some(dst) = inst.dst_addr() {
            if program.contains(dst) {
                self.tag(inst.addr).branch_to = Some(dst);
                self.tag(dst).start = true;
            }
        }
    }

    /// Marks `inst` as falling through and its textual successor as a
    /// block start when the fall-through crosses a block boundary created
    /// by the branch.
    fn mark_fall_through(&mut self, program: &Program, inst: &Instruction, new_block: bool) {
        self.tag(inst.addr).fall_through = true;
        if new_block {
            if let Some(next) = program.next_inst(inst) {
                self.tag(next.addr).start = true;
            }
        }
    }
}

impl InstructionVisitor for TaggingVisitor {
    fn visit_conditional_jump(&mut self, program: &Program, inst: &Instruction) {
        // Algorithm 1: branch to the target (its instruction starts a
        // block) and fall through (the next instruction starts a block).
        self.mark_branch(program, inst);
        self.mark_fall_through(program, inst, true);
    }

    fn visit_unconditional_jump(&mut self, program: &Program, inst: &Instruction) {
        self.mark_branch(program, inst);
        // No fall-through; whatever follows starts a fresh block.
        if let Some(next) = program.next_inst(inst) {
            self.tag(next.addr).start = true;
        }
    }

    fn visit_call(&mut self, program: &Program, inst: &Instruction) {
        // A call transfers to the callee and resumes at the next
        // instruction; both get edges in the second pass.
        self.mark_branch(program, inst);
        self.mark_fall_through(program, inst, true);
    }

    fn visit_return(&mut self, program: &Program, inst: &Instruction) {
        self.tag(inst.addr).is_return = true;
        if let Some(next) = program.next_inst(inst) {
            self.tag(next.addr).start = true;
        }
    }

    fn visit_other(&mut self, program: &Program, inst: &Instruction) {
        self.mark_fall_through(program, inst, false);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn program(lines: &[(u64, &str, &[&str])]) -> Program {
        lines
            .iter()
            .map(|(addr, m, ops)| {
                Instruction::new(*addr, 2, *m, ops.iter().map(|s| s.to_string()).collect())
            })
            .collect()
    }

    #[test]
    fn conditional_jump_tags_target_and_fallthrough() {
        // 0x10: jz 0x14 ; 0x12: nop ; 0x14: nop
        let p = program(&[
            (0x10, "jz", &["loc_14"]),
            (0x12, "nop", &[]),
            (0x14, "nop", &[]),
        ]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert!(tags[&0x10].start); // entry
        assert_eq!(tags[&0x10].branch_to, Some(0x14));
        assert!(tags[&0x10].fall_through);
        assert!(tags[&0x12].start); // fall-through successor of a branch
        assert!(tags[&0x14].start); // branch target
    }

    #[test]
    fn unconditional_jump_does_not_fall_through() {
        let p = program(&[(0x10, "jmp", &["loc_14"]), (0x12, "nop", &[]), (0x14, "nop", &[])]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert!(!tags[&0x10].fall_through);
        assert_eq!(tags[&0x10].branch_to, Some(0x14));
        assert!(tags[&0x12].start);
    }

    #[test]
    fn return_has_no_successors() {
        let p = program(&[(0x10, "retn", &[]), (0x12, "nop", &[])]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert!(tags[&0x10].is_return);
        assert!(!tags[&0x10].fall_through);
        assert_eq!(tags[&0x10].branch_to, None);
        assert!(tags[&0x12].start);
    }

    #[test]
    fn call_branches_and_falls_through() {
        let p = program(&[
            (0x10, "call", &["sub_20"]),
            (0x12, "nop", &[]),
            (0x20, "retn", &[]),
        ]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert_eq!(tags[&0x10].branch_to, Some(0x20));
        assert!(tags[&0x10].fall_through);
        assert!(tags[&0x12].start);
        assert!(tags[&0x20].start);
    }

    #[test]
    fn branch_to_unknown_address_is_ignored() {
        // Target outside the program (e.g. an imported function).
        let p = program(&[(0x10, "jmp", &["loc_9999"]), (0x12, "nop", &[])]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert_eq!(tags[&0x10].branch_to, None);
    }

    #[test]
    fn plain_instructions_only_fall_through() {
        let p = program(&[(0x10, "mov", &["eax", "1"]), (0x12, "nop", &[])]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert!(tags[&0x10].fall_through);
        assert!(!tags.get(&0x12).map(|t| t.start).unwrap_or(false));
    }

    #[test]
    fn register_indirect_jump_has_no_static_target() {
        let p = program(&[(0x10, "jmp", &["eax"]), (0x12, "nop", &[])]);
        let tags = TaggingVisitor::new().tag_program(&p);
        assert_eq!(tags[&0x10].branch_to, None);
        assert!(tags[&0x12].start, "next block still starts after jmp");
    }
}
