//! Parser for IDA-Pro-style `.asm` listings.
//!
//! The Microsoft malware challenge ships files like
//!
//! ```text
//! .text:00401000                 push    ebp
//! .text:00401001                 mov     ebp, esp
//! .text:00401003 loc_401003:                 ; CODE XREF: sub_401000+12
//! .text:00401003                 cmp     [ebp+arg_0], 0
//! ```
//!
//! This parser accepts that shape: a `section:ADDRESS` prefix, optional
//! label, a mnemonic, comma-separated operands, and `;` comments. Lines
//! without a recognizable instruction (pure labels, directives, comments,
//! byte dumps) are skipped. Successive lines sharing an address keep the
//! last instruction (IDA repeats addresses for label lines).

use crate::instr::{Instruction, Program};
use std::error::Error;
use std::fmt;

/// Error produced when a listing line has an address field that cannot be
/// parsed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    line_number: usize,
    message: String,
}

impl ParseError {
    /// 1-based line number of the offending line.
    pub fn line_number(&self) -> usize {
        self.line_number
    }
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "line {}: {}", self.line_number, self.message)
    }
}

impl Error for ParseError {}

/// Mnemonics that start an operand-bearing data declaration we keep.
const DATA_DECLS: &[&str] = &["db", "dw", "dd", "dq", "dt"];

/// Registers and keywords that can never be a mnemonic; lines whose first
/// token is one of these are metadata, not instructions.
const NON_MNEMONICS: &[&str] = &[
    "proc", "endp", "segment", "ends", "assume", "public", "extrn", "include", ";",
];

/// Parses a listing into a [`Program`].
///
/// # Errors
///
/// Returns [`ParseError`] if a line carries a malformed address field
/// (e.g. `.text:ZZZZ`). Unrecognized but well-addressed content is
/// silently skipped, mirroring how MAGIC tolerates IDA's imperfect
/// disassembly (Section V-A).
pub fn parse_listing(text: &str) -> Result<Program, ParseError> {
    let _span = magic_obs::span(magic_obs::stage::ASM_PARSE);
    let mut program = Program::new();
    let mut pending: Option<(u64, String, Vec<String>)> = None;

    for (lineno, raw) in text.lines().enumerate() {
        // Strip comments.
        let line = match raw.find(';') {
            Some(pos) => &raw[..pos],
            None => raw,
        };
        let line = line.trim_end();
        if line.trim().is_empty() {
            continue;
        }

        let Some((addr, rest)) = split_address(line, lineno + 1)? else {
            continue;
        };
        let Some((mnemonic, operands)) = parse_instruction(rest) else {
            continue;
        };

        // Finalize the previous instruction now that we know the next
        // address; its size is the address delta (IDA does not print
        // encoded sizes, so the delta is the faithful reconstruction).
        if let Some((paddr, pm, pops)) = pending.take() {
            let size = addr.saturating_sub(paddr).max(1);
            program.insert(Instruction::new(paddr, size, pm, pops));
        }
        pending = Some((addr, mnemonic, operands));
    }
    if let Some((paddr, pm, pops)) = pending {
        program.insert(Instruction::new(paddr, 2, pm, pops));
    }
    magic_obs::counter(magic_obs::stage::C_ASM_INSTRUCTIONS, program.len() as f64);
    Ok(program)
}

/// Splits `section:ADDRESS rest` into the address and the remaining text.
/// Returns `Ok(None)` for lines without an address prefix.
fn split_address(line: &str, lineno: usize) -> Result<Option<(u64, &str)>, ParseError> {
    let trimmed = line.trim_start();
    let Some(colon) = trimmed.find(':') else {
        return Ok(None);
    };
    let (section, rest) = trimmed.split_at(colon);
    if section.is_empty() || section.contains(char::is_whitespace) {
        return Ok(None);
    }
    let rest = &rest[1..];
    let addr_end = rest
        .char_indices()
        .find(|(_, c)| !c.is_ascii_hexdigit())
        .map(|(i, _)| i)
        .unwrap_or(rest.len());
    if addr_end == 0 {
        return Err(ParseError {
            line_number: lineno,
            message: format!("missing address after section prefix {section:?}"),
        });
    }
    let addr = u64::from_str_radix(&rest[..addr_end], 16).map_err(|e| ParseError {
        line_number: lineno,
        message: format!("bad address: {e}"),
    })?;
    Ok(Some((addr, &rest[addr_end..])))
}

/// Parses `[label:] mnemonic [operands]` from the post-address text.
fn parse_instruction(rest: &str) -> Option<(String, Vec<String>)> {
    let mut text = rest.trim();
    // Skip a leading label ("loc_401003:" or "start:").
    while let Some(first) = text.split_whitespace().next() {
        if let Some(label) = first.strip_suffix(':') {
            if label.chars().all(|c| c.is_ascii_alphanumeric() || c == '_' || c == '@') {
                text = text[first.len()..].trim_start();
                continue;
            }
        }
        break;
    }
    if text.is_empty() {
        return None;
    }
    let mut parts = text.splitn(2, char::is_whitespace);
    let mnemonic = parts.next()?.to_lowercase();
    if NON_MNEMONICS.contains(&mnemonic.as_str()) {
        return None;
    }
    // Label-definition lines like "var_8 = dword ptr -8".
    if text.contains(" = ") {
        return None;
    }
    if !mnemonic.chars().all(|c| c.is_ascii_alphanumeric()) {
        return None;
    }
    // Data declarations are kept (they are a Table I category) but their
    // operand dumps can be huge; keep at most the first operand.
    let op_text = parts.next().unwrap_or("").trim();
    let mut operands: Vec<String> = if op_text.is_empty() {
        Vec::new()
    } else {
        split_operands(op_text)
    };
    if DATA_DECLS.contains(&mnemonic.as_str()) {
        operands.truncate(1);
    }
    Some((mnemonic, operands))
}

/// Splits operands on commas that are not inside brackets or quotes.
fn split_operands(text: &str) -> Vec<String> {
    let mut out = Vec::new();
    let mut depth = 0usize;
    let mut in_quote = false;
    let mut cur = String::new();
    for c in text.chars() {
        match c {
            '\'' | '"' => {
                in_quote = !in_quote;
                cur.push(c);
            }
            '[' | '(' if !in_quote => {
                depth += 1;
                cur.push(c);
            }
            ']' | ')' if !in_quote => {
                depth = depth.saturating_sub(1);
                cur.push(c);
            }
            ',' if depth == 0 && !in_quote => {
                let t = cur.trim();
                if !t.is_empty() {
                    out.push(t.to_string());
                }
                cur.clear();
            }
            _ => cur.push(c),
        }
    }
    let t = cur.trim();
    if !t.is_empty() {
        out.push(t.to_string());
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_basic_listing() {
        let p = parse_listing(
            ".text:00401000                 push    ebp\n\
             .text:00401001                 mov     ebp, esp\n\
             .text:00401003                 retn\n",
        )
        .unwrap();
        assert_eq!(p.len(), 3);
        let mov = p.at(0x401001).unwrap();
        assert_eq!(mov.mnemonic, "mov");
        assert_eq!(mov.operands, vec!["ebp", "esp"]);
        // Size reconstructed from the address delta.
        assert_eq!(p.at(0x401000).unwrap().size, 1);
        assert_eq!(mov.size, 2);
    }

    #[test]
    fn skips_labels_and_comments() {
        let p = parse_listing(
            ".text:00401000 loc_401000:             ; CODE XREF: foo\n\
             .text:00401000                 inc     eax ; bump\n",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.at(0x401000).unwrap().mnemonic, "inc");
    }

    #[test]
    fn skips_directives_and_definitions() {
        let p = parse_listing(
            ".text:00401000 sub_401000      proc near\n\
             .text:00401000 var_8           = dword ptr -8\n\
             .text:00401000                 push    ebp\n\
             .text:00401005 sub_401000      endp\n",
        )
        .unwrap();
        assert_eq!(p.len(), 1);
        assert_eq!(p.at(0x401000).unwrap().mnemonic, "push");
    }

    #[test]
    fn operand_splitting_respects_brackets() {
        let p = parse_listing(".text:00401000    mov     dword ptr [eax+4], 10h\n").unwrap();
        let i = p.at(0x401000).unwrap();
        assert_eq!(i.operands, vec!["dword ptr [eax+4]", "10h"]);
    }

    #[test]
    fn data_declarations_are_kept_truncated() {
        let p = parse_listing(".data:00402000    db 90h, 90h, 90h, 90h\n").unwrap();
        let i = p.at(0x402000).unwrap();
        assert_eq!(i.mnemonic, "db");
        assert_eq!(i.operands.len(), 1);
    }

    #[test]
    fn bad_address_is_an_error() {
        let err = parse_listing(".text:    mov eax, 1\n").unwrap_err();
        assert_eq!(err.line_number(), 1);
        assert!(err.to_string().contains("line 1"));
    }

    #[test]
    fn lines_without_prefix_are_skipped() {
        let p = parse_listing("just some text\n\n.text:00401000 nop\n").unwrap();
        assert_eq!(p.len(), 1);
    }

    #[test]
    fn end_to_end_with_builder() {
        use crate::builder::CfgBuilder;
        let p = parse_listing(
            ".text:00401000                 cmp     eax, 0\n\
             .text:00401003                 jz      short loc_401008\n\
             .text:00401005                 add     eax, 1\n\
             .text:00401008 loc_401008:\n\
             .text:00401008                 retn\n",
        )
        .unwrap();
        let cfg = CfgBuilder::new(&p).build();
        assert_eq!(cfg.block_count(), 3);
        assert!(cfg.has_edge(0, 1) || cfg.has_edge(0, 2));
        assert_eq!(cfg.instruction_count(), 4);
    }

    #[test]
    fn quoted_strings_keep_commas() {
        let p = parse_listing(".data:00402000    dd 'a,b', 5\n").unwrap();
        let i = p.at(0x402000).unwrap();
        assert_eq!(i.operands, vec!["'a,b'"]);
    }
}
