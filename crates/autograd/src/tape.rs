//! The recording tape: forward operations and the reverse gradient sweep.

use crate::conv;
use crate::profile::{self, OpKey, OpProfile, PHASE_BACKWARD, PHASE_FORWARD};
use magic_tensor::{CsrMatrix, Rng64, Shape, Tensor, Workspace, WorkspaceStats};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which convolution implementation the tape dispatches to.
///
/// Both lowerings are individually bitwise deterministic; they accumulate
/// in different orders, so *across* lowerings results agree to float
/// tolerance (~1e-5), not bitwise. See `crates/autograd/src/conv.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvLowering {
    /// im2col patch gather + one register-blocked GEMM per conv, with
    /// workspace-pooled buffers. The default.
    #[default]
    Im2colGemm,
    /// The original scalar loops. Escape hatch (`MAGIC_NAIVE_CONV=1`) for
    /// A/B timing and parity testing.
    Naive,
}

impl ConvLowering {
    /// The lowering selected by the `MAGIC_NAIVE_CONV` environment
    /// variable (`1` → [`ConvLowering::Naive`]), read once per process.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<ConvLowering> = OnceLock::new();
        *CACHE.get_or_init(|| {
            if std::env::var("MAGIC_NAIVE_CONV").map(|v| v == "1").unwrap_or(false) {
                ConvLowering::Naive
            } else {
                ConvLowering::Im2colGemm
            }
        })
    }
}

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are cheap indices; they are only meaningful for the tape that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Matmul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddBias(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    ScaleRows(Var, Vec<f32>),
    /// Fused `D̂⁻¹ (Â F)` of Eq. (1) over a CSR adjacency. The matrices
    /// and scale vector are per-graph constants shared via `Arc`, so the
    /// backward sweep's op clone stays O(1).
    SpmmNorm {
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
    },
    Transpose(Var),
    ConcatCols(Vec<Var>),
    GatherRows(Var, Vec<usize>),
    PadRows(Var),
    Reshape(Var),
    LogSoftmaxRows(Var),
    NllLoss(Var, Vec<usize>),
    Sum(Var),
    Mean(Var),
    Dropout(Var, Vec<f32>),
    Conv1d { x: Var, w: Var, b: Var, k: usize, stride: usize, gemm: bool },
    Conv2d { x: Var, w: Var, b: Var, stride: usize, pad: usize, gemm: bool },
    AdaptiveMaxPool2d { x: Var, argmax: Vec<usize> },
    MaxPool1d { x: Var, argmax: Vec<usize> },
}

impl Op {
    /// Stable kind name used by the profiler and the `magic-trace/2`
    /// `op_profile` event. These strings are part of the trace schema:
    /// renaming one is a reader-visible change and belongs in
    /// `docs/OBSERVABILITY.md`'s op-kind registry.
    fn kind(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Matmul(..) => "matmul",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddBias(..) => "add_bias",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::ScaleRows(..) => "scale_rows",
            Op::SpmmNorm { .. } => "spmm_norm",
            Op::Transpose(..) => "transpose",
            Op::ConcatCols(..) => "concat_cols",
            Op::GatherRows(..) => "gather_rows",
            Op::PadRows(..) => "pad_rows",
            Op::Reshape(..) => "reshape",
            Op::LogSoftmaxRows(..) => "log_softmax",
            Op::NllLoss(..) => "nll_loss",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::Dropout(..) => "dropout",
            Op::Conv1d { gemm: false, .. } => "conv1d",
            Op::Conv1d { gemm: true, .. } => "conv1d.gemm",
            Op::Conv2d { gemm: false, .. } => "conv2d",
            Op::Conv2d { gemm: true, .. } => "conv2d.gemm",
            Op::AdaptiveMaxPool2d { .. } => "adaptive_max_pool2d",
            Op::MaxPool1d { .. } => "max_pool1d",
        }
    }

    /// Profile kind for this op's backward step. Almost always the
    /// forward kind; `spmm_norm`'s backward is a materially different
    /// kernel (the transpose-CSR product), so it gets its own registered
    /// pseudo-op name.
    fn backward_kind(&self) -> &'static str {
        match self {
            Op::SpmmNorm { .. } => "spmm_norm_t",
            other => other.kind(),
        }
    }
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A gradient tape: records a forward computation, then differentiates it.
///
/// One tape is used per training example (graphs have varying sizes, so
/// MAGIC batches by accumulating gradients across per-graph tapes). Call
/// [`Tape::clear`] to reuse the allocation for the next example.
///
/// # Example
///
/// ```
/// use magic_autograd::Tape;
/// use magic_tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_slice(&[1.0, -2.0]).reshape([1, 2]), true);
/// let y = tape.relu(x);
/// let s = tape.sum(y);
/// tape.backward(s);
/// assert_eq!(tape.grad(x).unwrap().as_slice(), &[1.0, 0.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    /// When set, every forward op and backward step records into
    /// `profile`. A plain `bool` keeps the disabled path to one branch.
    profiling: bool,
    profile: OpProfile,
    /// Pooled scratch/output buffers, refilled by [`Tape::reset`]. Owned
    /// by the tape (not thread-local) because the trainer keeps one tape
    /// per worker lane across batches while the executor's threads are
    /// respawned per batch.
    workspace: Workspace,
    conv_lowering: ConvLowering,
}

impl Tape {
    /// Creates an empty tape. The convolution lowering comes from
    /// [`ConvLowering::from_env`] (im2col-GEMM unless `MAGIC_NAIVE_CONV=1`).
    pub fn new() -> Self {
        Tape { conv_lowering: ConvLowering::from_env(), ..Tape::default() }
    }

    /// The convolution lowering in effect for new conv ops.
    pub fn conv_lowering(&self) -> ConvLowering {
        self.conv_lowering
    }

    /// Overrides the convolution lowering — in-process A/B and parity
    /// tests use this instead of the environment variable.
    pub fn set_conv_lowering(&mut self, lowering: ConvLowering) {
        self.conv_lowering = lowering;
    }

    /// Pool hit/miss counters of this tape's workspace. After a warm-up
    /// sample, steady-state training should add hits but no misses.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops all recorded nodes and gradients, keeping allocations.
    ///
    /// The op profile is deliberately retained: it accumulates across
    /// samples until drained with [`Tape::take_profile`].
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }

    /// Switches op-level profiling on or off. Off (the default), each op
    /// costs one branch on a plain bool; on, every forward op and
    /// backward step records `(kind, shape class, self_ns, flops,
    /// bytes_out)` into the tape-owned [`OpProfile`].
    ///
    /// Profiling is observational only — it never changes what the tape
    /// computes, so profiled and unprofiled runs are bitwise identical.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether op-level profiling is currently on.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The profile accumulated so far (empty unless profiling was on).
    pub fn profile(&self) -> &OpProfile {
        &self.profile
    }

    /// Drains and returns the accumulated profile, leaving it empty.
    pub fn take_profile(&mut self) -> OpProfile {
        self.profile.take()
    }

    /// Prepares the tape for the next sample, keeping allocations.
    ///
    /// This is the worker-reuse entry point: data-parallel training
    /// keeps one tape per worker lane and resets it between samples.
    /// Unlike [`Tape::clear`] (which drops buffers), `reset` recycles
    /// every node value, gradient, dropout mask and pooling index vector
    /// into the tape's [`Workspace`], so the next sample's kernels are
    /// served from the pool and steady-state training stops allocating.
    /// The op profile is retained, as with `clear`.
    pub fn reset(&mut self) {
        let Tape { nodes, grads, workspace, .. } = self;
        for node in nodes.drain(..) {
            match node.op {
                Op::Dropout(_, mask) => workspace.recycle(mask),
                Op::AdaptiveMaxPool2d { argmax, .. } | Op::MaxPool1d { argmax, .. } => {
                    workspace.recycle_indices(argmax)
                }
                _ => {}
            }
            workspace.recycle_tensor(node.value);
        }
        for t in grads.drain(..).flatten() {
            workspace.recycle_tensor(t);
        }
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node { value, op, requires_grad });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// Start-of-op timestamp: `Some` only when profiling, so the
    /// disabled path never touches the clock.
    #[inline]
    fn prof_start(&self) -> Option<Instant> {
        self.profiling.then(Instant::now)
    }

    /// [`Tape::push`] plus a profile observation when `started` is set.
    /// `started` must have been taken *before* the forward kernel ran so
    /// the elapsed time covers the computation, not just the push.
    fn push_profiled(
        &mut self,
        value: Tensor,
        op: Op,
        requires_grad: bool,
        started: Option<Instant>,
    ) -> Var {
        if let Some(t0) = started {
            let self_ns = t0.elapsed().as_nanos() as u64;
            let flops = self.forward_flops(&op, &value);
            let key = OpKey {
                kind: op.kind(),
                phase: PHASE_FORWARD,
                shape_bucket: profile::shape_bucket(value.len()),
            };
            let bytes_out = (value.len() * std::mem::size_of::<f32>()) as u64;
            self.profile.record(key, self_ns, flops, bytes_out);
        }
        self.push(value, op, requires_grad)
    }

    /// FLOPs of one forward execution of `op` producing `out`. Formulas
    /// are documented and unit-tested in [`crate::profile`]; pure data
    /// movement counts zero.
    fn forward_flops(&self, op: &Op, out: &Tensor) -> u64 {
        match op {
            Op::Leaf
            | Op::Transpose(_)
            | Op::ConcatCols(_)
            | Op::GatherRows(..)
            | Op::PadRows(_)
            | Op::Reshape(_)
            | Op::AdaptiveMaxPool2d { .. }
            | Op::MaxPool1d { .. } => 0,
            Op::Matmul(a, b) => profile::matmul_flops(
                self.value(*a).rows(),
                self.value(*a).cols(),
                self.value(*b).cols(),
            ),
            Op::SpmmNorm { adj, .. } => {
                profile::spmm_norm_flops(adj.nnz(), out.rows(), out.cols())
            }
            Op::Add(..)
            | Op::Sub(..)
            | Op::Mul(..)
            | Op::AddBias(..)
            | Op::Scale(..)
            | Op::Relu(_)
            | Op::ScaleRows(..)
            | Op::Dropout(..) => out.len() as u64,
            Op::Sigmoid(_) | Op::Tanh(_) => 4 * out.len() as u64,
            Op::LogSoftmaxRows(_) => 5 * out.len() as u64,
            Op::Sum(a) | Op::Mean(a) => self.value(*a).len() as u64,
            Op::NllLoss(_, targets) => targets.len() as u64,
            Op::Conv1d { x, k, .. } => profile::conv1d_flops(
                out.shape().dim(0),
                out.shape().dim(1),
                self.value(*x).shape().dim(0),
                *k,
            ),
            Op::Conv2d { w, .. } => {
                let ws = self.value(*w).shape().clone();
                profile::conv2d_flops(
                    out.shape().dim(0),
                    out.shape().dim(1),
                    out.shape().dim(2),
                    ws.dim(1),
                    ws.dim(2),
                    ws.dim(3),
                )
            }
        }
    }

    fn any_requires(&self, vars: &[Var]) -> bool {
        vars.iter().any(|v| self.nodes[v.0].requires_grad)
    }

    /// Records an input value. `requires_grad` marks trainable parameters.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated at `v` by [`Tape::backward`], if any.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).matmul(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Matmul(a, b), rg, t)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).add(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Add(a, b), rg, t)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).sub(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Sub(a, b), rg, t)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).mul(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Mul(a, b), rg, t)
    }

    /// Adds a length-`c` bias vector to every row of an `(n, c)` matrix.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let t = self.prof_start();
        let m = self.value(a);
        let b = self.value(bias);
        assert_eq!(m.cols(), b.len(), "bias length must match columns");
        let cols = m.cols();
        let mut value = m.clone();
        for i in 0..value.rows() {
            for j in 0..cols {
                let cur = value.get2(i, j);
                value.set2(i, j, cur + b.as_slice()[j]);
            }
        }
        let rg = self.any_requires(&[a, bias]);
        self.push_profiled(value, Op::AddBias(a, bias), rg, t)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        let t = self.prof_start();
        let value = self.value(a).scale(factor);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Scale(a, factor), rg, t)
    }

    /// Elementwise ReLU.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).relu();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Relu(a), rg, t)
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).sigmoid();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Sigmoid(a), rg, t)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).tanh();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Tanh(a), rg, t)
    }

    /// Scales row `i` by `factors[i]` (constant). This is the `D̂⁻¹ (·)`
    /// normalization of Eq. (1).
    pub fn scale_rows(&mut self, a: Var, factors: Vec<f32>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).scale_rows(&factors);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::ScaleRows(a, factors), rg, t)
    }

    /// Fused sparse graph propagation `D̂⁻¹ (Â F)` — the whole
    /// constant-matrix half of Eq. (1) in one pass over the adjacency
    /// nonzeros.
    ///
    /// * `adj` — the augmented adjacency `Â` in CSR form.
    /// * `adj_t` — `Âᵀ`, precomputed once per graph; the backward pass
    ///   is the transpose-CSR product `Âᵀ (D̂⁻¹ g)`.
    /// * `inv_degree` — the diagonal of `D̂⁻¹` (one entry per vertex).
    /// * `f` — the dense feature matrix `F = Z W`, `(n, c)`.
    ///
    /// Only `f` is differentiable; the graph structure is a per-sample
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or `adj_t` cannot be the transpose
    /// of `adj` (shape or nnz mismatch).
    pub fn spmm_norm(
        &mut self,
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
    ) -> Var {
        let t = self.prof_start();
        assert_eq!(
            adj.cols(),
            self.value(f).rows(),
            "spmm_norm inner dimension mismatch"
        );
        assert_eq!(inv_degree.len(), adj.rows(), "one inverse degree per row");
        assert_eq!(
            (adj_t.rows(), adj_t.cols(), adj_t.nnz()),
            (adj.cols(), adj.rows(), adj.nnz()),
            "adj_t must be the transpose of adj"
        );
        let value = adj.spmm_row_scaled(&inv_degree, self.value(f));
        let rg = self.any_requires(&[f]);
        self.push_profiled(value, Op::SpmmNorm { adj, adj_t, inv_degree, f }, rg, t)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).transpose();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Transpose(a), rg, t)
    }

    /// Horizontal concatenation, forming `Z^{1:h} = [Z_1, ..., Z_h]`.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let t = self.prof_start();
        let tensors: Vec<&Tensor> = parts.iter().map(|v| self.value(*v)).collect();
        let value = Tensor::concat_cols(&tensors);
        let rg = self.any_requires(parts);
        self.push_profiled(value, Op::ConcatCols(parts.to_vec()), rg, t)
    }

    /// Gathers matrix rows by (constant) indices. Gradients scatter-add
    /// back, so repeated indices accumulate.
    pub fn gather_rows(&mut self, a: Var, indices: Vec<usize>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).gather_rows(&indices);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::GatherRows(a, indices), rg, t)
    }

    /// Pads with zero rows or truncates to exactly `rows` rows
    /// (SortPooling's size unification).
    pub fn pad_or_truncate_rows(&mut self, a: Var, rows: usize) -> Var {
        let t = self.prof_start();
        let value = self.value(a).pad_or_truncate_rows(rows);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::PadRows(a), rg, t)
    }

    /// Reshapes without changing data.
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).reshape(shape);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Reshape(a), rg, t)
    }

    /// Row-wise log-softmax of an `(n, c)` matrix.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let m = self.value(a);
        let mut value = Tensor::zeros(m.shape().clone());
        for i in 0..m.rows() {
            let row = Tensor::from_slice(m.row(i)).log_softmax();
            value.set_row(i, row.as_slice());
        }
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::LogSoftmaxRows(a), rg, t)
    }

    /// Mean negative log-likelihood (Eq. 5) of row-wise log-probabilities
    /// against integer class targets. Returns a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or a target is
    /// out of range.
    pub fn nll_loss(&mut self, log_probs: Var, targets: Vec<usize>) -> Var {
        let t = self.prof_start();
        let lp = self.value(log_probs);
        assert_eq!(lp.rows(), targets.len(), "one target per row required");
        let mut total = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < lp.cols(), "target {t} out of range");
            total -= lp.get2(i, t);
        }
        let value = Tensor::scalar(total / targets.len() as f32);
        let rg = self.any_requires(&[log_probs]);
        self.push_profiled(value, Op::NllLoss(log_probs, targets), rg, t)
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = Tensor::scalar(self.value(a).sum());
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Sum(a), rg, t)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = Tensor::scalar(self.value(a).mean());
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Mean(a), rg, t)
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1-p)`. Identity when `p == 0`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut Rng64) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        let t = self.prof_start();
        let keep = 1.0 - p;
        // Mask and output come from the workspace; the RNG is drawn in
        // the same element order as before pooling, so masks are
        // unchanged bitwise.
        let (masked, mask) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let av = &nodes[a.0].value;
            let mut mask = workspace.take(av.len());
            for m in mask.iter_mut() {
                *m = if rng.next_f32() < p { 0.0 } else { 1.0 / keep };
            }
            let mut masked = workspace.take_tensor(av.shape().clone());
            for ((o, &x), &m) in masked.as_mut_slice().iter_mut().zip(av.as_slice()).zip(&mask) {
                *o = x * m;
            }
            (masked, mask)
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(masked, Op::Dropout(a, mask), rg, t)
    }

    /// Records the patch-gather half of a GEMM-lowered convolution as its
    /// own forward profile row: `im2col` is pure data movement (0 FLOPs,
    /// `bytes_out` = column buffer size), timed separately so the
    /// `conv*.gemm` rows cover only the GEMM + bias.
    fn record_im2col(&mut self, started: Option<Instant>, elems: usize) {
        if let Some(t0) = started {
            let key = OpKey {
                kind: "im2col",
                phase: PHASE_FORWARD,
                shape_bucket: profile::shape_bucket(elems),
            };
            let bytes = (elems * std::mem::size_of::<f32>()) as u64;
            self.profile.record(key, t0.elapsed().as_nanos() as u64, 0, bytes);
        }
    }

    /// 1-D convolution of `(c_in, len)` by `(c_out, c_in, k)` weights with
    /// the given stride, plus a `c_out` bias. Dispatches on the tape's
    /// [`ConvLowering`].
    pub fn conv1d(&mut self, x: Var, w: Var, b: Var, stride: usize) -> Var {
        let k = self.value(w).shape().dim(2);
        let rg = self.any_requires(&[x, w, b]);
        match self.conv_lowering {
            ConvLowering::Naive => {
                let t = self.prof_start();
                let value = conv::conv1d_forward(
                    self.value(x),
                    self.value(w),
                    self.value(b).as_slice(),
                    k,
                    stride,
                );
                self.push_profiled(value, Op::Conv1d { x, w, b, k, stride, gemm: false }, rg, t)
            }
            ConvLowering::Im2colGemm => {
                let out_len = conv::conv1d_shape(self.value(x).cols(), k, stride);
                let t_cols = self.prof_start();
                let cols = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::im2col_1d(&nodes[x.0].value, k, stride, workspace)
                };
                self.record_im2col(t_cols, cols.len());
                let t = self.prof_start();
                let value = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::conv1d_forward_gemm(
                        &cols,
                        &nodes[w.0].value,
                        nodes[b.0].value.as_slice(),
                        out_len,
                        workspace,
                    )
                };
                self.workspace.recycle(cols);
                self.push_profiled(value, Op::Conv1d { x, w, b, k, stride, gemm: true }, rg, t)
            }
        }
    }

    /// 2-D convolution of `(c_in, h, w)` by `(c_out, c_in, kh, kw)` weights
    /// with the given stride and zero padding, plus a `c_out` bias.
    /// Dispatches on the tape's [`ConvLowering`].
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, stride: usize, pad: usize) -> Var {
        let rg = self.any_requires(&[x, w, b]);
        match self.conv_lowering {
            ConvLowering::Naive => {
                let t = self.prof_start();
                let value = conv::conv2d_forward(
                    self.value(x),
                    self.value(w),
                    self.value(b).as_slice(),
                    stride,
                    pad,
                );
                self.push_profiled(value, Op::Conv2d { x, w, b, stride, pad, gemm: false }, rg, t)
            }
            ConvLowering::Im2colGemm => {
                let (kh, kw) = {
                    let ws = self.value(w).shape();
                    (ws.dim(2), ws.dim(3))
                };
                let (oh, ow) = {
                    let xs = self.value(x).shape();
                    conv::conv2d_shape(xs.dim(1), xs.dim(2), kh, kw, stride, pad)
                };
                let t_cols = self.prof_start();
                let cols = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::im2col_2d(&nodes[x.0].value, kh, kw, stride, pad, workspace)
                };
                self.record_im2col(t_cols, cols.len());
                let t = self.prof_start();
                let value = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::conv2d_forward_gemm(
                        &cols,
                        &nodes[w.0].value,
                        nodes[b.0].value.as_slice(),
                        oh,
                        ow,
                        workspace,
                    )
                };
                self.workspace.recycle(cols);
                self.push_profiled(value, Op::Conv2d { x, w, b, stride, pad, gemm: true }, rg, t)
            }
        }
    }

    /// Adaptive max pooling of `(c, h, w)` to `(c, oh, ow)` — the paper's
    /// AMP layer (Section III-C). Output and winner-index buffers are
    /// pooled; ties break to the first maximum in scan order.
    pub fn adaptive_max_pool2d(&mut self, x: Var, oh: usize, ow: usize) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::adaptive_max_pool2d_forward(&nodes[x.0].value, oh, ow, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::AdaptiveMaxPool2d { x, argmax }, rg, t)
    }

    /// Non-overlapping 1-D max pooling with window `k` over `(c, len)`.
    pub fn max_pool1d(&mut self, x: Var, k: usize) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::max_pool1d_forward(&nodes[x.0].value, k, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::MaxPool1d { x, argmax }, rg, t)
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        let Tape { grads, workspace, .. } = self;
        match &mut grads[v.0] {
            Some(existing) => {
                existing.add_assign(&g);
                workspace.recycle_tensor(g);
            }
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the reverse sweep from a scalar `loss` node, filling gradients
    /// for every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).len(), 1, "backward requires a scalar loss");
        {
            let Tape { grads, workspace, .. } = &mut *self;
            for g in grads.iter_mut() {
                if let Some(old) = g.take() {
                    workspace.recycle_tensor(old);
                }
            }
        }
        let seed_shape = self.value(loss).shape().clone();
        let mut seed = self.workspace.take_tensor(seed_shape);
        seed.as_mut_slice().fill(1.0);
        self.grads[loss.0] = Some(seed);

        for idx in (0..self.nodes.len()).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            let Some(gout) = self.grads[idx].clone() else {
                continue;
            };
            let op = self.nodes[idx].op.clone();
            // Time each backward step individually so the profiler can
            // attribute the sweep to op kinds. Leaf steps are no-ops and
            // would only add noise rows, so they are skipped. Backward
            // FLOPs use the standard 2× forward heuristic (one gradient
            // product per differentiable input of a dense kernel).
            let t = if matches!(op, Op::Leaf) { None } else { self.prof_start() };
            let prof_key = t.map(|_| {
                let out = &self.nodes[idx].value;
                // `spmm_norm` has exactly one differentiable input, and
                // its backward (one transpose-CSR product plus the row
                // scaling) does the same work as forward — charge 1×,
                // not the dense 2× heuristic, so the nnz-based count
                // stays exact.
                let flops = match &op {
                    Op::SpmmNorm { .. } => self.forward_flops(&op, out),
                    _ => 2 * self.forward_flops(&op, out),
                };
                (
                    OpKey {
                        kind: op.backward_kind(),
                        phase: PHASE_BACKWARD,
                        shape_bucket: profile::shape_bucket(out.len()),
                    },
                    flops,
                    (out.len() * std::mem::size_of::<f32>()) as u64,
                )
            });
            match op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    // gA = gOut·Bᵀ and gB = Aᵀ·gOut via the transpose-free
                    // kernels, accumulating into zero-filled pool buffers —
                    // no operand clones, no materialized transposes.
                    let (m, kk) = (self.value(a).rows(), self.value(a).cols());
                    let n = self.value(b).cols();
                    if self.needs(a) {
                        let ga = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let mut ga = workspace.take_tensor([m, kk]);
                            magic_tensor::gemm_nt_into(
                                m,
                                n,
                                kk,
                                gout.as_slice(),
                                nodes[b.0].value.as_slice(),
                                ga.as_mut_slice(),
                            );
                            ga
                        };
                        self.accumulate(a, ga);
                    }
                    if self.needs(b) {
                        let gb = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let mut gb = workspace.take_tensor([kk, n]);
                            magic_tensor::gemm_tn_into(
                                kk,
                                m,
                                n,
                                nodes[a.0].value.as_slice(),
                                gout.as_slice(),
                                gb.as_mut_slice(),
                            );
                            gb
                        };
                        self.accumulate(b, gb);
                    }
                }
                Op::Add(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout);
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout.scale(-1.0));
                    }
                }
                Op::Mul(a, b) => {
                    let av = self.value(a).clone();
                    let bv = self.value(b).clone();
                    if self.needs(a) {
                        self.accumulate(a, gout.mul(&bv));
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout.mul(&av));
                    }
                }
                Op::AddBias(a, bias) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(bias) {
                        let sums = gout.sum_rows();
                        let len = sums.len();
                        self.accumulate(bias, Tensor::from_vec(sums, [len]));
                    }
                }
                Op::Scale(a, f) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.scale(f));
                    }
                }
                Op::Relu(a) => {
                    if self.needs(a) {
                        let mask = self.value(a).map(|x| if x > 0.0 { 1.0 } else { 0.0 });
                        self.accumulate(a, gout.mul(&mask));
                    }
                }
                Op::Sigmoid(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let dy = y.zip_map(&y, |s, _| s * (1.0 - s));
                        self.accumulate(a, gout.mul(&dy));
                    }
                }
                Op::Tanh(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let dy = y.map(|t| 1.0 - t * t);
                        self.accumulate(a, gout.mul(&dy));
                    }
                }
                Op::ScaleRows(a, factors) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.scale_rows(&factors));
                    }
                }
                Op::SpmmNorm { adj_t, inv_degree, f, .. } => {
                    if self.needs(f) {
                        // d/dF of D̂⁻¹ Â F is Âᵀ D̂⁻¹: scale the incoming
                        // gradient rows, then one transpose-CSR product.
                        let scaled = gout.scale_rows(&inv_degree);
                        self.accumulate(f, adj_t.spmm(&scaled));
                    }
                }
                Op::Transpose(a) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.transpose());
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let c = self.value(p).cols();
                        if self.needs(p) {
                            let rows = self.value(p).rows();
                            let mut gp = self.workspace.take_tensor([rows, c]);
                            for i in 0..rows {
                                let src = &gout.row(i)[offset..offset + c];
                                gp.set_row(i, src);
                            }
                            self.accumulate(p, gp);
                        }
                        offset += c;
                    }
                }
                Op::GatherRows(a, indices) => {
                    if self.needs(a) {
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        let cols = ga.cols();
                        for (dst, &src) in indices.iter().enumerate() {
                            for j in 0..cols {
                                let cur = ga.get2(src, j);
                                ga.set2(src, j, cur + gout.get2(dst, j));
                            }
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::PadRows(a) => {
                    if self.needs(a) {
                        let rows = self.value(a).rows();
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        for i in 0..rows.min(gout.rows()) {
                            ga.set_row(i, gout.row(i));
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::Reshape(a) => {
                    if self.needs(a) {
                        let shape = self.value(a).shape().clone();
                        self.accumulate(a, gout.reshape(shape));
                    }
                }
                Op::LogSoftmaxRows(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let mut ga = self.workspace.take_tensor(y.shape().clone());
                        for i in 0..y.rows() {
                            let grow = gout.row(i);
                            let gsum: f32 = grow.iter().sum();
                            let row: Vec<f32> = y
                                .row(i)
                                .iter()
                                .zip(grow)
                                .map(|(&ly, &g)| g - ly.exp() * gsum)
                                .collect();
                            ga.set_row(i, &row);
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::NllLoss(lp, targets) => {
                    if self.needs(lp) {
                        let n = targets.len() as f32;
                        let g = gout.item();
                        let shape = self.value(lp).shape().clone();
                        let mut glp = self.workspace.take_tensor(shape);
                        for (i, &t) in targets.iter().enumerate() {
                            glp.set2(i, t, -g / n);
                        }
                        self.accumulate(lp, glp);
                    }
                }
                Op::Sum(a) => {
                    if self.needs(a) {
                        let g = gout.item();
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        ga.as_mut_slice().fill(g);
                        self.accumulate(a, ga);
                    }
                }
                Op::Mean(a) => {
                    if self.needs(a) {
                        let n = self.value(a).len() as f32;
                        let g = gout.item() / n;
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        ga.as_mut_slice().fill(g);
                        self.accumulate(a, ga);
                    }
                }
                Op::Dropout(a, mask) => {
                    if self.needs(a) {
                        let mut gm = self.workspace.take_tensor(gout.shape().clone());
                        for ((o, &g), &m) in
                            gm.as_mut_slice().iter_mut().zip(gout.as_slice()).zip(&mask)
                        {
                            *o = g * m;
                        }
                        self.accumulate(a, gm);
                    }
                }
                Op::Conv1d { x, w, b, k, stride, gemm } => {
                    let (gx, gw, gb) = if gemm {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv1d_backward_gemm(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            k,
                            stride,
                            &gout,
                            workspace,
                        )
                    } else {
                        conv::conv1d_backward(self.value(x), self.value(w), k, stride, &gout)
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
                Op::Conv2d { x, w, b, stride, pad, gemm } => {
                    let (gx, gw, gb) = if gemm {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv2d_backward_gemm(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            stride,
                            pad,
                            &gout,
                            workspace,
                        )
                    } else {
                        conv::conv2d_backward(self.value(x), self.value(w), stride, pad, &gout)
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
                Op::AdaptiveMaxPool2d { x, argmax } => {
                    if self.needs(x) {
                        let shape = self.value(x).shape().clone();
                        let mut gx = self.workspace.take_tensor(shape);
                        for (cell, &src) in argmax.iter().enumerate() {
                            gx.as_mut_slice()[src] += gout.as_slice()[cell];
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::MaxPool1d { x, argmax } => {
                    if self.needs(x) {
                        let shape = self.value(x).shape().clone();
                        let mut gx = self.workspace.take_tensor(shape);
                        for (cell, &src) in argmax.iter().enumerate() {
                            gx.as_mut_slice()[src] += gout.as_slice()[cell];
                        }
                        self.accumulate(x, gx);
                    }
                }
            }
            if let (Some(t0), Some((key, flops, bytes))) = (t, prof_key) {
                self.profile.record(key, t0.elapsed().as_nanos() as u64, flops, bytes);
            }
        }
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_tape() -> (Tape, Var) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
        (tape, x)
    }

    #[test]
    fn matmul_gradients_are_transposed_products() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[3.0], &[5.0]]), true);
        let y = tape.matmul(a, b);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[3.0, 5.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[-1.0, 2.0]).reshape([1, 2]), true);
        let y = tape.relu(x);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn gather_rows_accumulates_repeats() {
        let (mut tape, x) = scalar_tape();
        let g = tape.gather_rows(x, vec![0, 0, 1]);
        let s = tape.sum(g);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[2.0, 2.0]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[1.0, 1.0]);
    }

    #[test]
    fn pad_rows_drops_gradient_of_truncated_rows() {
        let (mut tape, x) = scalar_tape();
        let p = tape.pad_or_truncate_rows(x, 1);
        let s = tape.sum(p);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[1.0, 1.0]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[0.0, 0.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[2.0, 3.0]]), true);
        let c = tape.concat_cols(&[a, b]);
        let w = tape.leaf(Tensor::from_rows(&[&[1.0], &[10.0], &[100.0]]), false);
        let y = tape.matmul(c, w);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[10.0, 100.0]);
    }

    #[test]
    fn nll_after_log_softmax_gives_softmax_minus_onehot() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]), true);
        let lp = tape.log_softmax_rows(logits);
        let loss = tape.nll_loss(lp, vec![2]);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        let sm = Tensor::from_slice(&[1.0, 2.0, 3.0]).softmax();
        let expected = [sm.as_slice()[0], sm.as_slice()[1], sm.as_slice()[2] - 1.0];
        for (a, b) in g.as_slice().iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn scale_rows_backward_uses_same_factors() {
        let (mut tape, x) = scalar_tape();
        let y = tape.scale_rows(x, vec![0.5, 2.0]);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[0.5, 0.5]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[2.0, 2.0]);
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = Rng64::new(1);
        let (mut tape, x) = scalar_tape();
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(tape.value(y), tape.value(x));
        let s = tape.sum(y);
        tape.backward(s);
        assert!(tape.grad(x).unwrap().as_slice().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn dropout_masks_gradient_consistently() {
        let mut rng = Rng64::new(9);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 100]), true);
        let y = tape.dropout(x, 0.5, &mut rng);
        let s = tape.sum(y);
        tape.backward(s);
        let value = tape.value(y).clone();
        let grad = tape.grad(x).unwrap();
        // Wherever the output was zeroed, the gradient must be zero too.
        for (v, g) in value.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*v == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn backward_twice_resets_gradients() {
        let (mut tape, x) = scalar_tape();
        let s = tape.sum(x);
        tape.backward(s);
        tape.backward(s);
        assert!(tape.grad(x).unwrap().as_slice().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn no_grad_leaf_stays_empty() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), false);
        let w = tape.leaf(Tensor::ones([2, 2]), true);
        let y = tape.matmul(x, w);
        let s = tape.sum(y);
        tape.backward(s);
        assert!(tape.grad(x).is_none());
        assert!(tape.grad(w).is_some());
    }

    #[test]
    fn add_bias_sums_gradient_over_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros([3, 2]), true);
        let b = tape.leaf(Tensor::from_slice(&[1.0, 2.0]), true);
        let y = tape.add_bias(x, b);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn clear_allows_tape_reuse() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 1]), true);
        let s = tape.sum(x);
        tape.backward(s);
        tape.clear();
        assert!(tape.is_empty());
        let y = tape.leaf(Tensor::ones([1, 1]), true);
        let s2 = tape.sum(y);
        tape.backward(s2);
        assert_eq!(tape.grad(y).unwrap().item(), 1.0);
    }

    #[test]
    fn reset_behaves_like_clear() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), true);
        let s = tape.sum(x);
        tape.backward(s);
        tape.reset();
        assert!(tape.is_empty());
    }

    /// A small asymmetric sparse matrix plus its transpose, as the model
    /// layer would precompute them.
    fn paper_csr() -> (Arc<CsrMatrix>, Arc<CsrMatrix>, Arc<Vec<f32>>) {
        let (adj, inv) = CsrMatrix::augmented_from_edges(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)],
        );
        let adj_t = adj.transpose();
        (Arc::new(adj), Arc::new(adj_t), Arc::new(inv))
    }

    #[test]
    fn spmm_norm_matches_dense_matmul_and_scale() {
        let (adj, adj_t, inv) = paper_csr();
        let x = Tensor::from_rows(&[
            &[2.0, 1.0],
            &[2.0, 0.0],
            &[1.0, 3.0],
            &[3.0, 2.0],
            &[1.0, 5.0],
        ]);

        let mut tape = Tape::new();
        let f = tape.leaf(x.clone(), false);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv.clone(), f);

        let dense = adj.to_dense().matmul(&x).scale_rows(&inv);
        for (a, b) in tape.value(y).as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_norm_backward_is_transpose_product() {
        let (adj, adj_t, inv) = paper_csr();
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::ones([5, 3]), true);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv.clone(), f);
        let s = tape.sum(y);
        tape.backward(s);

        // d(sum)/dF = Âᵀ D̂⁻¹ 1 — compare against the dense computation.
        let gout = Tensor::ones([5, 3]).scale_rows(&inv);
        let expected = adj.to_dense().transpose().matmul(&gout);
        for (a, b) in tape.grad(f).unwrap().as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_norm_profiles_with_nnz_flops_and_backward_pseudo_op() {
        let (adj, adj_t, inv) = paper_csr();
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let f = tape.leaf(Tensor::ones([5, 3]), true);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv, f);
        let s = tape.sum(y);
        tape.backward(s);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let fwd = find("spmm_norm", profile::PHASE_FORWARD).expect("fwd spmm_norm row");
        assert_eq!(fwd.flops, profile::spmm_norm_flops(adj.nnz(), 5, 3));
        let bwd = find("spmm_norm_t", profile::PHASE_BACKWARD).expect("bwd pseudo-op row");
        assert_eq!(bwd.flops, fwd.flops, "transpose product charged exactly 1x forward");
        assert!(
            find("spmm_norm", profile::PHASE_BACKWARD).is_none(),
            "backward step records only under the pseudo-op name"
        );
    }

    #[test]
    #[should_panic(expected = "adj_t must be the transpose")]
    fn spmm_norm_rejects_mismatched_transpose() {
        let (adj, _, inv) = paper_csr();
        let (other, _) = CsrMatrix::augmented_from_edges(5, [(0, 1)]);
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::ones([5, 3]), false);
        tape.spmm_norm(adj, Arc::new(other), inv, f);
    }

    #[test]
    fn profiling_records_forward_and_backward_rows() {
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]), false);
        let y = tape.matmul(a, b);
        let r = tape.relu(y);
        let s = tape.sum(r);
        tape.backward(s);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let mm_fwd = find("matmul", profile::PHASE_FORWARD).expect("fwd matmul row");
        assert_eq!(mm_fwd.calls, 1);
        assert_eq!(mm_fwd.flops, profile::matmul_flops(2, 2, 2));
        assert_eq!(mm_fwd.bytes_out, 16, "2x2 f32 output");
        let mm_bwd = find("matmul", profile::PHASE_BACKWARD).expect("bwd matmul row");
        assert_eq!(mm_bwd.flops, 2 * mm_fwd.flops, "backward charged 2x forward");
        assert!(find("relu", profile::PHASE_FORWARD).is_some());
        assert!(find("sum", profile::PHASE_BACKWARD).is_some());
        assert!(find("leaf", profile::PHASE_BACKWARD).is_none(), "leaf steps not profiled");

        // Profile survives reset (accumulates across samples) and drains.
        tape.reset();
        assert!(!tape.profile().is_empty());
        let taken = tape.take_profile();
        assert!(taken.sorted_rows().len() >= 5);
        assert!(tape.profile().is_empty());
    }

    #[test]
    fn profiling_off_records_nothing() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), true);
        let s = tape.sum(x);
        tape.backward(s);
        assert!(tape.profile().is_empty());
        assert!(!tape.profiling());
    }

    fn conv_sample(tape: &mut Tape) -> Var {
        let x = tape.leaf(
            Tensor::from_vec((0..2 * 8).map(|i| (i as f32 * 0.37).sin()).collect(), [2, 8]),
            false,
        );
        let w = tape.leaf(
            Tensor::from_vec((0..3 * 2 * 3).map(|i| (i as f32 * 0.19).cos()).collect(), [3, 2, 3]),
            true,
        );
        let b = tape.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.3], [3]), true);
        let y = tape.conv1d(x, w, b, 1);
        let r = tape.relu(y);
        tape.sum(r)
    }

    #[test]
    fn conv_lowering_dispatch_records_gemm_kinds_and_im2col_row() {
        let mut tape = Tape::new();
        tape.set_conv_lowering(ConvLowering::Im2colGemm);
        tape.set_profiling(true);
        let loss = conv_sample(&mut tape);
        tape.backward(loss);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let fwd = find("conv1d.gemm", profile::PHASE_FORWARD).expect("fwd conv1d.gemm row");
        // Same FLOP formula as the naive lowering: the math is identical.
        assert_eq!(fwd.flops, profile::conv1d_flops(3, 6, 2, 3));
        let bwd = find("conv1d.gemm", profile::PHASE_BACKWARD).expect("bwd conv1d.gemm row");
        assert_eq!(bwd.flops, 2 * fwd.flops);
        let cols = find("im2col", profile::PHASE_FORWARD).expect("im2col row");
        assert_eq!(cols.flops, 0, "im2col is pure data movement");
        assert_eq!(cols.bytes_out, (2 * 3 * 6 * 4) as u64);
        assert!(find("conv1d", profile::PHASE_FORWARD).is_none(), "naive kind absent");
    }

    #[test]
    fn naive_lowering_keeps_old_kind_and_skips_im2col_row() {
        let mut tape = Tape::new();
        tape.set_conv_lowering(ConvLowering::Naive);
        tape.set_profiling(true);
        let loss = conv_sample(&mut tape);
        tape.backward(loss);

        let rows = tape.profile().sorted_rows();
        assert!(rows.iter().any(|(k, _)| k.kind == "conv1d"));
        assert!(rows.iter().all(|(k, _)| k.kind != "conv1d.gemm"));
        assert!(rows.iter().all(|(k, _)| k.kind != "im2col"));
    }

    #[test]
    fn gemm_and_naive_lowerings_agree_through_the_tape() {
        let mut gemm = Tape::new();
        gemm.set_conv_lowering(ConvLowering::Im2colGemm);
        let gl = conv_sample(&mut gemm);
        gemm.backward(gl);

        let mut naive = Tape::new();
        naive.set_conv_lowering(ConvLowering::Naive);
        let nl = conv_sample(&mut naive);
        naive.backward(nl);

        let dl = (gemm.value(gl).item() - naive.value(nl).item()).abs();
        assert!(dl < 1e-4, "losses differ by {dl}");
        // Weight leaf is Var(1) in both tapes (same construction order).
        let gw = gemm.grad(Var(1)).unwrap();
        let nw = naive.grad(Var(1)).unwrap();
        for (a, b) in gw.as_slice().iter().zip(nw.as_slice()) {
            assert!((a - b).abs() < 1e-4, "weight grads differ: {a} vs {b}");
        }
    }

    #[test]
    fn reset_recycles_buffers_into_zero_miss_steady_state() {
        let mut tape = Tape::new();
        // Warm-up sample: every checkout is a miss on a cold pool.
        let loss = conv_sample(&mut tape);
        tape.backward(loss);
        tape.reset();
        let warm = tape.workspace_stats();
        assert!(warm.misses > 0, "cold pool must miss");

        // Steady state: identical shapes, so every checkout must hit.
        for _ in 0..3 {
            let loss = conv_sample(&mut tape);
            tape.backward(loss);
            tape.reset();
        }
        let steady = tape.workspace_stats();
        assert_eq!(steady.misses, warm.misses, "steady-state samples must not miss the pool");
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn conv_lowering_env_default_is_gemm() {
        // The suite cannot mutate the process environment safely, but the
        // default (no MAGIC_NAIVE_CONV in the test environment) must be
        // the GEMM lowering.
        assert_eq!(Tape::new().conv_lowering(), ConvLowering::Im2colGemm);
    }

    /// The tape holds only owned tensors and plain enum data, so worker
    /// threads may own or share one. This must keep holding as ops are
    /// added — a stray `Rc` or `RefCell` in a node would silently force
    /// training back to a single thread.
    #[test]
    fn tape_and_vars_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
        assert_send_sync::<Var>();
        assert_send_sync::<Tensor>();
    }
}
