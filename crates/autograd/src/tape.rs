//! The recording tape: forward operations and the reverse gradient sweep.

use crate::conv;
use crate::profile::{self, OpKey, OpProfile, PHASE_BACKWARD, PHASE_FORWARD};
use magic_tensor::{CsrMatrix, Rng64, Shape, Tensor, Workspace, WorkspaceStats};
use std::sync::{Arc, OnceLock};
use std::time::Instant;

/// Which convolution implementation the tape dispatches to.
///
/// Both lowerings are individually bitwise deterministic; they accumulate
/// in different orders, so *across* lowerings results agree to float
/// tolerance (~1e-5), not bitwise. See `crates/autograd/src/conv.rs`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ConvLowering {
    /// im2col patch gather + one register-blocked GEMM per conv, with
    /// workspace-pooled buffers. The default.
    #[default]
    Im2colGemm,
    /// The original scalar loops. Escape hatch (`MAGIC_NAIVE_CONV=1`) for
    /// A/B timing and parity testing.
    Naive,
}

impl ConvLowering {
    /// The lowering selected by the `MAGIC_NAIVE_CONV` environment
    /// variable (`1` → [`ConvLowering::Naive`]), read once per process.
    pub fn from_env() -> Self {
        static CACHE: OnceLock<ConvLowering> = OnceLock::new();
        *CACHE.get_or_init(|| {
            if std::env::var("MAGIC_NAIVE_CONV").map(|v| v == "1").unwrap_or(false) {
                ConvLowering::Naive
            } else {
                ConvLowering::Im2colGemm
            }
        })
    }
}

/// Handle to a value recorded on a [`Tape`].
///
/// `Var`s are cheap indices; they are only meaningful for the tape that
/// created them.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Var(usize);

#[derive(Debug, Clone)]
enum Op {
    Leaf,
    Matmul(Var, Var),
    Add(Var, Var),
    Sub(Var, Var),
    Mul(Var, Var),
    AddBias(Var, Var),
    Scale(Var, f32),
    Relu(Var),
    Sigmoid(Var),
    Tanh(Var),
    ScaleRows(Var, Vec<f32>),
    /// Fused `D̂⁻¹ (Â F)` of Eq. (1) over a CSR adjacency. The matrices
    /// and scale vector are per-graph constants shared via `Arc`, so the
    /// backward sweep's op clone stays O(1). `batched` marks a
    /// block-diagonal batch adjacency (same math, own profile kind).
    SpmmNorm {
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
        batched: bool,
    },
    Transpose(Var),
    ConcatCols(Vec<Var>),
    GatherRows(Var, Vec<usize>),
    PadRows(Var),
    Reshape(Var),
    LogSoftmaxRows(Var),
    NllLoss(Var, Vec<usize>),
    Sum(Var),
    Mean(Var),
    Dropout(Var, Vec<f32>),
    Conv1d { x: Var, w: Var, b: Var, k: usize, stride: usize, gemm: bool },
    Conv2d { x: Var, w: Var, b: Var, stride: usize, pad: usize, gemm: bool },
    AdaptiveMaxPool2d { x: Var, argmax: Vec<usize> },
    MaxPool1d { x: Var, argmax: Vec<usize> },
    /// `a @ b` where `a` row-stacks one segment per sample (`bounds` are
    /// the `B+1` segment boundaries). The forward is a plain matmul; the
    /// backward unstacks `b`'s gradient per sample so the shared-operand
    /// reduction chain matches per-sample execution bitwise.
    MatmulBatched { a: Var, b: Var, bounds: Arc<Vec<usize>> },
    /// One single-row GEMM per `block_rows`-row block of `x` against the
    /// shared `(1, block_rows)` operand `w` — the batched
    /// WeightedVertices head. Output row `j` is `w @ x[j·k..(j+1)·k]`.
    MatmulRowBlocks { w: Var, x: Var, block_rows: usize },
    /// [`Op::GatherRows`] with a `usize::MAX` pad sentinel: sentinel
    /// destinations read (and backprop) a zero row. Fuses SortPooling's
    /// gather + pad for a whole batch.
    GatherRowsPad(Var, Vec<usize>),
    /// `(C, B·L)` → `(B, C·L)`: row `j` of the output is sample `j`'s
    /// per-sample row-major flatten. Pure data movement.
    UnstackColumns { a: Var, seg_len: usize },
    /// Per-row NLL: `out[j] = -lp[j, targets[j]]` as a `(B, 1)` column.
    NllLossRows(Var, Vec<usize>),
    Conv1dBatched { x: Var, w: Var, b: Var, k: usize, stride: usize, seg_len: usize },
    Conv2dBatched {
        x: Var,
        w: Var,
        b: Var,
        stride: usize,
        pad: usize,
        dims: Arc<Vec<(usize, usize)>>,
    },
    AdaptiveMaxPool2dBatched { x: Var, argmax: Vec<usize> },
    MaxPool1dBatched { x: Var, argmax: Vec<usize> },
}

impl Op {
    /// Stable kind name used by the profiler and the `magic-trace/2`
    /// `op_profile` event. These strings are part of the trace schema:
    /// renaming one is a reader-visible change and belongs in
    /// `docs/OBSERVABILITY.md`'s op-kind registry.
    fn kind(&self) -> &'static str {
        match self {
            Op::Leaf => "leaf",
            Op::Matmul(..) => "matmul",
            Op::Add(..) => "add",
            Op::Sub(..) => "sub",
            Op::Mul(..) => "mul",
            Op::AddBias(..) => "add_bias",
            Op::Scale(..) => "scale",
            Op::Relu(..) => "relu",
            Op::Sigmoid(..) => "sigmoid",
            Op::Tanh(..) => "tanh",
            Op::ScaleRows(..) => "scale_rows",
            Op::SpmmNorm { batched: false, .. } => "spmm_norm",
            Op::SpmmNorm { batched: true, .. } => "spmm_norm.batched",
            Op::Transpose(..) => "transpose",
            Op::ConcatCols(..) => "concat_cols",
            Op::GatherRows(..) => "gather_rows",
            Op::PadRows(..) => "pad_rows",
            Op::Reshape(..) => "reshape",
            Op::LogSoftmaxRows(..) => "log_softmax",
            Op::NllLoss(..) => "nll_loss",
            Op::Sum(..) => "sum",
            Op::Mean(..) => "mean",
            Op::Dropout(..) => "dropout",
            Op::Conv1d { gemm: false, .. } => "conv1d",
            Op::Conv1d { gemm: true, .. } => "conv1d.gemm",
            Op::Conv2d { gemm: false, .. } => "conv2d",
            Op::Conv2d { gemm: true, .. } => "conv2d.gemm",
            Op::AdaptiveMaxPool2d { .. } => "adaptive_max_pool2d",
            Op::MaxPool1d { .. } => "max_pool1d",
            Op::MatmulBatched { .. } | Op::MatmulRowBlocks { .. } => "gemm.batched",
            Op::GatherRowsPad(..) => "gather_pad.batched",
            Op::UnstackColumns { .. } => "unstack_cols.batched",
            Op::NllLossRows(..) => "nll_loss.batched",
            Op::Conv1dBatched { .. } => "conv1d.batched",
            Op::Conv2dBatched { .. } => "conv2d.batched",
            Op::AdaptiveMaxPool2dBatched { .. } => "adaptive_max_pool2d.batched",
            Op::MaxPool1dBatched { .. } => "max_pool1d.batched",
        }
    }

    /// Profile kind for this op's backward step. Almost always the
    /// forward kind; `spmm_norm`'s backward is a materially different
    /// kernel (the transpose-CSR product), so it gets its own registered
    /// pseudo-op name.
    fn backward_kind(&self) -> &'static str {
        match self {
            Op::SpmmNorm { batched: false, .. } => "spmm_norm_t",
            Op::SpmmNorm { batched: true, .. } => "spmm_norm_t.batched",
            other => other.kind(),
        }
    }
}

#[derive(Debug)]
struct Node {
    value: Tensor,
    op: Op,
    requires_grad: bool,
}

/// A gradient tape: records a forward computation, then differentiates it.
///
/// One tape is used per training example (graphs have varying sizes, so
/// MAGIC batches by accumulating gradients across per-graph tapes). Call
/// [`Tape::clear`] to reuse the allocation for the next example.
///
/// # Example
///
/// ```
/// use magic_autograd::Tape;
/// use magic_tensor::Tensor;
///
/// let mut tape = Tape::new();
/// let x = tape.leaf(Tensor::from_slice(&[1.0, -2.0]).reshape([1, 2]), true);
/// let y = tape.relu(x);
/// let s = tape.sum(y);
/// tape.backward(s);
/// assert_eq!(tape.grad(x).unwrap().as_slice(), &[1.0, 0.0]);
/// ```
#[derive(Debug, Default)]
pub struct Tape {
    nodes: Vec<Node>,
    grads: Vec<Option<Tensor>>,
    /// When set, every forward op and backward step records into
    /// `profile`. A plain `bool` keeps the disabled path to one branch.
    profiling: bool,
    profile: OpProfile,
    /// Pooled scratch/output buffers, refilled by [`Tape::reset`]. Owned
    /// by the tape (not thread-local) because the trainer keeps one tape
    /// per worker lane across batches while the executor's threads are
    /// respawned per batch.
    workspace: Workspace,
    conv_lowering: ConvLowering,
}

impl Tape {
    /// Creates an empty tape. The convolution lowering comes from
    /// [`ConvLowering::from_env`] (im2col-GEMM unless `MAGIC_NAIVE_CONV=1`).
    pub fn new() -> Self {
        Tape { conv_lowering: ConvLowering::from_env(), ..Tape::default() }
    }

    /// The convolution lowering in effect for new conv ops.
    pub fn conv_lowering(&self) -> ConvLowering {
        self.conv_lowering
    }

    /// Overrides the convolution lowering — in-process A/B and parity
    /// tests use this instead of the environment variable.
    pub fn set_conv_lowering(&mut self, lowering: ConvLowering) {
        self.conv_lowering = lowering;
    }

    /// Pool hit/miss counters of this tape's workspace. After a warm-up
    /// sample, steady-state training should add hits but no misses.
    pub fn workspace_stats(&self) -> WorkspaceStats {
        self.workspace.stats()
    }

    /// Number of recorded nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the tape holds no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Drops all recorded nodes and gradients, keeping allocations.
    ///
    /// The op profile is deliberately retained: it accumulates across
    /// samples until drained with [`Tape::take_profile`].
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.grads.clear();
    }

    /// Switches op-level profiling on or off. Off (the default), each op
    /// costs one branch on a plain bool; on, every forward op and
    /// backward step records `(kind, shape class, self_ns, flops,
    /// bytes_out)` into the tape-owned [`OpProfile`].
    ///
    /// Profiling is observational only — it never changes what the tape
    /// computes, so profiled and unprofiled runs are bitwise identical.
    pub fn set_profiling(&mut self, on: bool) {
        self.profiling = on;
    }

    /// Whether op-level profiling is currently on.
    pub fn profiling(&self) -> bool {
        self.profiling
    }

    /// The profile accumulated so far (empty unless profiling was on).
    pub fn profile(&self) -> &OpProfile {
        &self.profile
    }

    /// Drains and returns the accumulated profile, leaving it empty.
    pub fn take_profile(&mut self) -> OpProfile {
        self.profile.take()
    }

    /// Prepares the tape for the next sample, keeping allocations.
    ///
    /// This is the worker-reuse entry point: data-parallel training
    /// keeps one tape per worker lane and resets it between samples.
    /// Unlike [`Tape::clear`] (which drops buffers), `reset` recycles
    /// every node value, gradient, dropout mask and pooling index vector
    /// into the tape's [`Workspace`], so the next sample's kernels are
    /// served from the pool and steady-state training stops allocating.
    /// The op profile is retained, as with `clear`.
    pub fn reset(&mut self) {
        let Tape { nodes, grads, workspace, .. } = self;
        for node in nodes.drain(..) {
            match node.op {
                Op::Dropout(_, mask) => workspace.recycle(mask),
                Op::AdaptiveMaxPool2d { argmax, .. }
                | Op::MaxPool1d { argmax, .. }
                | Op::AdaptiveMaxPool2dBatched { argmax, .. }
                | Op::MaxPool1dBatched { argmax, .. } => workspace.recycle_indices(argmax),
                _ => {}
            }
            workspace.recycle_tensor(node.value);
        }
        for t in grads.drain(..).flatten() {
            workspace.recycle_tensor(t);
        }
    }

    fn push(&mut self, value: Tensor, op: Op, requires_grad: bool) -> Var {
        self.nodes.push(Node { value, op, requires_grad });
        self.grads.push(None);
        Var(self.nodes.len() - 1)
    }

    /// Start-of-op timestamp: `Some` only when profiling, so the
    /// disabled path never touches the clock.
    #[inline]
    fn prof_start(&self) -> Option<Instant> {
        self.profiling.then(Instant::now)
    }

    /// [`Tape::push`] plus a profile observation when `started` is set.
    /// `started` must have been taken *before* the forward kernel ran so
    /// the elapsed time covers the computation, not just the push.
    fn push_profiled(
        &mut self,
        value: Tensor,
        op: Op,
        requires_grad: bool,
        started: Option<Instant>,
    ) -> Var {
        if let Some(t0) = started {
            let self_ns = t0.elapsed().as_nanos() as u64;
            let flops = self.forward_flops(&op, &value);
            let key = OpKey {
                kind: op.kind(),
                phase: PHASE_FORWARD,
                shape_bucket: profile::shape_bucket(value.len()),
            };
            let bytes_out = (value.len() * std::mem::size_of::<f32>()) as u64;
            self.profile.record(key, self_ns, flops, bytes_out);
        }
        self.push(value, op, requires_grad)
    }

    /// FLOPs of one forward execution of `op` producing `out`. Formulas
    /// are documented and unit-tested in [`crate::profile`]; pure data
    /// movement counts zero.
    fn forward_flops(&self, op: &Op, out: &Tensor) -> u64 {
        match op {
            Op::Leaf
            | Op::Transpose(_)
            | Op::ConcatCols(_)
            | Op::GatherRows(..)
            | Op::GatherRowsPad(..)
            | Op::PadRows(_)
            | Op::Reshape(_)
            | Op::UnstackColumns { .. }
            | Op::AdaptiveMaxPool2d { .. }
            | Op::MaxPool1d { .. }
            | Op::AdaptiveMaxPool2dBatched { .. }
            | Op::MaxPool1dBatched { .. } => 0,
            Op::Matmul(a, b) | Op::MatmulBatched { a, b, .. } => profile::matmul_flops(
                self.value(*a).rows(),
                self.value(*a).cols(),
                self.value(*b).cols(),
            ),
            Op::MatmulRowBlocks { block_rows, .. } => {
                profile::matmul_flops(out.rows(), *block_rows, out.cols())
            }
            Op::SpmmNorm { adj, .. } => {
                profile::spmm_norm_flops(adj.nnz(), out.rows(), out.cols())
            }
            Op::Add(..)
            | Op::Sub(..)
            | Op::Mul(..)
            | Op::AddBias(..)
            | Op::Scale(..)
            | Op::Relu(_)
            | Op::ScaleRows(..)
            | Op::Dropout(..) => out.len() as u64,
            Op::Sigmoid(_) | Op::Tanh(_) => 4 * out.len() as u64,
            Op::LogSoftmaxRows(_) => 5 * out.len() as u64,
            Op::Sum(a) | Op::Mean(a) => self.value(*a).len() as u64,
            Op::NllLoss(_, targets) | Op::NllLossRows(_, targets) => targets.len() as u64,
            Op::Conv1d { x, k, .. } | Op::Conv1dBatched { x, k, .. } => profile::conv1d_flops(
                out.shape().dim(0),
                out.shape().dim(1),
                self.value(*x).shape().dim(0),
                *k,
            ),
            Op::Conv2d { w, .. } => {
                let ws = self.value(*w).shape().clone();
                profile::conv2d_flops(
                    out.shape().dim(0),
                    out.shape().dim(1),
                    out.shape().dim(2),
                    ws.dim(1),
                    ws.dim(2),
                    ws.dim(3),
                )
            }
            // Flat column-stacked output: same formula over oh·ow = Σ ohⱼ·owⱼ.
            Op::Conv2dBatched { w, .. } => {
                let ws = self.value(*w).shape().clone();
                profile::conv2d_flops(
                    out.shape().dim(0),
                    1,
                    out.shape().dim(1),
                    ws.dim(1),
                    ws.dim(2),
                    ws.dim(3),
                )
            }
        }
    }

    fn any_requires(&self, vars: &[Var]) -> bool {
        vars.iter().any(|v| self.nodes[v.0].requires_grad)
    }

    /// Records an input value. `requires_grad` marks trainable parameters.
    pub fn leaf(&mut self, value: Tensor, requires_grad: bool) -> Var {
        self.push(value, Op::Leaf, requires_grad)
    }

    /// The forward value of `v`.
    pub fn value(&self, v: Var) -> &Tensor {
        &self.nodes[v.0].value
    }

    /// The gradient accumulated at `v` by [`Tape::backward`], if any.
    pub fn grad(&self, v: Var) -> Option<&Tensor> {
        self.grads[v.0].as_ref()
    }

    /// Matrix product.
    pub fn matmul(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).matmul(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Matmul(a, b), rg, t)
    }

    /// Elementwise sum.
    pub fn add(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).add(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Add(a, b), rg, t)
    }

    /// Elementwise difference.
    pub fn sub(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).sub(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Sub(a, b), rg, t)
    }

    /// Elementwise product.
    pub fn mul(&mut self, a: Var, b: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).mul(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::Mul(a, b), rg, t)
    }

    /// Adds a length-`c` bias vector to every row of an `(n, c)` matrix.
    pub fn add_bias(&mut self, a: Var, bias: Var) -> Var {
        let t = self.prof_start();
        let m = self.value(a);
        let b = self.value(bias);
        assert_eq!(m.cols(), b.len(), "bias length must match columns");
        let cols = m.cols();
        let mut value = m.clone();
        for i in 0..value.rows() {
            for j in 0..cols {
                let cur = value.get2(i, j);
                value.set2(i, j, cur + b.as_slice()[j]);
            }
        }
        let rg = self.any_requires(&[a, bias]);
        self.push_profiled(value, Op::AddBias(a, bias), rg, t)
    }

    /// Multiplies every element by a constant.
    pub fn scale(&mut self, a: Var, factor: f32) -> Var {
        let t = self.prof_start();
        let value = self.value(a).scale(factor);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Scale(a, factor), rg, t)
    }

    /// Elementwise ReLU. The output comes from the workspace pool — on
    /// batched-size activations a fresh heap buffer means page faults on
    /// every pass, which costs more than the op itself.
    pub fn relu(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let x = &nodes[a.0].value;
            let mut out = workspace.take_tensor(x.shape().clone());
            for (o, &v) in out.as_mut_slice().iter_mut().zip(x.as_slice()) {
                *o = v.max(0.0);
            }
            out
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Relu(a), rg, t)
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).sigmoid();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Sigmoid(a), rg, t)
    }

    /// Elementwise tanh.
    pub fn tanh(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).tanh();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Tanh(a), rg, t)
    }

    /// Scales row `i` by `factors[i]` (constant). This is the `D̂⁻¹ (·)`
    /// normalization of Eq. (1).
    pub fn scale_rows(&mut self, a: Var, factors: Vec<f32>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).scale_rows(&factors);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::ScaleRows(a, factors), rg, t)
    }

    /// Fused sparse graph propagation `D̂⁻¹ (Â F)` — the whole
    /// constant-matrix half of Eq. (1) in one pass over the adjacency
    /// nonzeros.
    ///
    /// * `adj` — the augmented adjacency `Â` in CSR form.
    /// * `adj_t` — `Âᵀ`, precomputed once per graph; the backward pass
    ///   is the transpose-CSR product `Âᵀ (D̂⁻¹ g)`.
    /// * `inv_degree` — the diagonal of `D̂⁻¹` (one entry per vertex).
    /// * `f` — the dense feature matrix `F = Z W`, `(n, c)`.
    ///
    /// Only `f` is differentiable; the graph structure is a per-sample
    /// constant.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree or `adj_t` cannot be the transpose
    /// of `adj` (shape or nnz mismatch).
    pub fn spmm_norm(
        &mut self,
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
    ) -> Var {
        self.spmm_norm_impl(adj, adj_t, inv_degree, f, false)
    }

    /// [`Tape::spmm_norm`] over a block-diagonal batch adjacency: one
    /// fused pass propagates a whole mini-batch's concatenated node
    /// features. The kernel walks each output row's nonzeros exactly as
    /// the per-sample call does (a block-diagonal row *is* the sample's
    /// row), so results are bitwise identical to per-sample execution;
    /// the op records under its own `spmm_norm.batched` profile kind.
    pub fn spmm_norm_batched(
        &mut self,
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
    ) -> Var {
        self.spmm_norm_impl(adj, adj_t, inv_degree, f, true)
    }

    fn spmm_norm_impl(
        &mut self,
        adj: Arc<CsrMatrix>,
        adj_t: Arc<CsrMatrix>,
        inv_degree: Arc<Vec<f32>>,
        f: Var,
        batched: bool,
    ) -> Var {
        let t = self.prof_start();
        assert_eq!(
            adj.cols(),
            self.value(f).rows(),
            "spmm_norm inner dimension mismatch"
        );
        assert_eq!(inv_degree.len(), adj.rows(), "one inverse degree per row");
        assert_eq!(
            (adj_t.rows(), adj_t.cols(), adj_t.nnz()),
            (adj.cols(), adj.rows(), adj.nnz()),
            "adj_t must be the transpose of adj"
        );
        let value = adj.spmm_row_scaled(&inv_degree, self.value(f));
        let rg = self.any_requires(&[f]);
        self.push_profiled(value, Op::SpmmNorm { adj, adj_t, inv_degree, f, batched }, rg, t)
    }

    /// Matrix transpose.
    pub fn transpose(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = self.value(a).transpose();
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Transpose(a), rg, t)
    }

    /// Horizontal concatenation, forming `Z^{1:h} = [Z_1, ..., Z_h]`.
    pub fn concat_cols(&mut self, parts: &[Var]) -> Var {
        let t = self.prof_start();
        let tensors: Vec<&Tensor> = parts.iter().map(|v| self.value(*v)).collect();
        let value = Tensor::concat_cols(&tensors);
        let rg = self.any_requires(parts);
        self.push_profiled(value, Op::ConcatCols(parts.to_vec()), rg, t)
    }

    /// Gathers matrix rows by (constant) indices. Gradients scatter-add
    /// back, so repeated indices accumulate.
    pub fn gather_rows(&mut self, a: Var, indices: Vec<usize>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).gather_rows(&indices);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::GatherRows(a, indices), rg, t)
    }

    /// Pads with zero rows or truncates to exactly `rows` rows
    /// (SortPooling's size unification).
    pub fn pad_or_truncate_rows(&mut self, a: Var, rows: usize) -> Var {
        let t = self.prof_start();
        let value = self.value(a).pad_or_truncate_rows(rows);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::PadRows(a), rg, t)
    }

    /// Reshapes without changing data.
    pub fn reshape(&mut self, a: Var, shape: impl Into<Shape>) -> Var {
        let t = self.prof_start();
        let value = self.value(a).reshape(shape);
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Reshape(a), rg, t)
    }

    /// Row-wise log-softmax of an `(n, c)` matrix.
    pub fn log_softmax_rows(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let m = self.value(a);
        let mut value = Tensor::zeros(m.shape().clone());
        for i in 0..m.rows() {
            let row = Tensor::from_slice(m.row(i)).log_softmax();
            value.set_row(i, row.as_slice());
        }
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::LogSoftmaxRows(a), rg, t)
    }

    /// Mean negative log-likelihood (Eq. 5) of row-wise log-probabilities
    /// against integer class targets. Returns a scalar.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or a target is
    /// out of range.
    pub fn nll_loss(&mut self, log_probs: Var, targets: Vec<usize>) -> Var {
        let t = self.prof_start();
        let lp = self.value(log_probs);
        assert_eq!(lp.rows(), targets.len(), "one target per row required");
        let mut total = 0.0;
        for (i, &t) in targets.iter().enumerate() {
            assert!(t < lp.cols(), "target {t} out of range");
            total -= lp.get2(i, t);
        }
        let value = Tensor::scalar(total / targets.len() as f32);
        let rg = self.any_requires(&[log_probs]);
        self.push_profiled(value, Op::NllLoss(log_probs, targets), rg, t)
    }

    /// Sum of all elements (scalar output).
    pub fn sum(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = Tensor::scalar(self.value(a).sum());
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Sum(a), rg, t)
    }

    /// Mean of all elements (scalar output).
    pub fn mean(&mut self, a: Var) -> Var {
        let t = self.prof_start();
        let value = Tensor::scalar(self.value(a).mean());
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::Mean(a), rg, t)
    }

    /// Inverted dropout: zeroes each element with probability `p` and
    /// scales survivors by `1/(1-p)`. Identity when `p == 0`.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1`.
    pub fn dropout(&mut self, a: Var, p: f32, rng: &mut Rng64) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        let t = self.prof_start();
        let keep = 1.0 - p;
        // Mask and output come from the workspace; the RNG is drawn in
        // the same element order as before pooling, so masks are
        // unchanged bitwise.
        let (masked, mask) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let av = &nodes[a.0].value;
            let mut mask = workspace.take(av.len());
            for m in mask.iter_mut() {
                *m = if rng.next_f32() < p { 0.0 } else { 1.0 / keep };
            }
            let mut masked = workspace.take_tensor(av.shape().clone());
            for ((o, &x), &m) in masked.as_mut_slice().iter_mut().zip(av.as_slice()).zip(&mask) {
                *o = x * m;
            }
            (masked, mask)
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(masked, Op::Dropout(a, mask), rg, t)
    }

    /// Records the patch-gather half of a GEMM-lowered convolution as its
    /// own forward profile row: `im2col` is pure data movement (0 FLOPs,
    /// `bytes_out` = column buffer size), timed separately so the
    /// `conv*.gemm` rows cover only the GEMM + bias.
    fn record_im2col(&mut self, started: Option<Instant>, elems: usize) {
        if let Some(t0) = started {
            let key = OpKey {
                kind: "im2col",
                phase: PHASE_FORWARD,
                shape_bucket: profile::shape_bucket(elems),
            };
            let bytes = (elems * std::mem::size_of::<f32>()) as u64;
            self.profile.record(key, t0.elapsed().as_nanos() as u64, 0, bytes);
        }
    }

    /// 1-D convolution of `(c_in, len)` by `(c_out, c_in, k)` weights with
    /// the given stride, plus a `c_out` bias. Dispatches on the tape's
    /// [`ConvLowering`].
    pub fn conv1d(&mut self, x: Var, w: Var, b: Var, stride: usize) -> Var {
        let k = self.value(w).shape().dim(2);
        let rg = self.any_requires(&[x, w, b]);
        match self.conv_lowering {
            ConvLowering::Naive => {
                let t = self.prof_start();
                let value = conv::conv1d_forward(
                    self.value(x),
                    self.value(w),
                    self.value(b).as_slice(),
                    k,
                    stride,
                );
                self.push_profiled(value, Op::Conv1d { x, w, b, k, stride, gemm: false }, rg, t)
            }
            ConvLowering::Im2colGemm => {
                let out_len = conv::conv1d_shape(self.value(x).cols(), k, stride);
                let t_cols = self.prof_start();
                let cols = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::im2col_1d(&nodes[x.0].value, k, stride, workspace)
                };
                self.record_im2col(t_cols, cols.len());
                let t = self.prof_start();
                let value = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::conv1d_forward_gemm(
                        &cols,
                        &nodes[w.0].value,
                        nodes[b.0].value.as_slice(),
                        out_len,
                        workspace,
                    )
                };
                self.workspace.recycle(cols);
                self.push_profiled(value, Op::Conv1d { x, w, b, k, stride, gemm: true }, rg, t)
            }
        }
    }

    /// 2-D convolution of `(c_in, h, w)` by `(c_out, c_in, kh, kw)` weights
    /// with the given stride and zero padding, plus a `c_out` bias.
    /// Dispatches on the tape's [`ConvLowering`].
    pub fn conv2d(&mut self, x: Var, w: Var, b: Var, stride: usize, pad: usize) -> Var {
        let rg = self.any_requires(&[x, w, b]);
        match self.conv_lowering {
            ConvLowering::Naive => {
                let t = self.prof_start();
                let value = conv::conv2d_forward(
                    self.value(x),
                    self.value(w),
                    self.value(b).as_slice(),
                    stride,
                    pad,
                );
                self.push_profiled(value, Op::Conv2d { x, w, b, stride, pad, gemm: false }, rg, t)
            }
            ConvLowering::Im2colGemm => {
                let (kh, kw) = {
                    let ws = self.value(w).shape();
                    (ws.dim(2), ws.dim(3))
                };
                let (oh, ow) = {
                    let xs = self.value(x).shape();
                    conv::conv2d_shape(xs.dim(1), xs.dim(2), kh, kw, stride, pad)
                };
                let t_cols = self.prof_start();
                let cols = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::im2col_2d(&nodes[x.0].value, kh, kw, stride, pad, workspace)
                };
                self.record_im2col(t_cols, cols.len());
                let t = self.prof_start();
                let value = {
                    let Tape { nodes, workspace, .. } = &mut *self;
                    conv::conv2d_forward_gemm(
                        &cols,
                        &nodes[w.0].value,
                        nodes[b.0].value.as_slice(),
                        oh,
                        ow,
                        workspace,
                    )
                };
                self.workspace.recycle(cols);
                self.push_profiled(value, Op::Conv2d { x, w, b, stride, pad, gemm: true }, rg, t)
            }
        }
    }

    /// Adaptive max pooling of `(c, h, w)` to `(c, oh, ow)` — the paper's
    /// AMP layer (Section III-C). Output and winner-index buffers are
    /// pooled; ties break to the first maximum in scan order.
    pub fn adaptive_max_pool2d(&mut self, x: Var, oh: usize, ow: usize) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::adaptive_max_pool2d_forward(&nodes[x.0].value, oh, ow, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::AdaptiveMaxPool2d { x, argmax }, rg, t)
    }

    /// Non-overlapping 1-D max pooling with window `k` over `(c, len)`.
    pub fn max_pool1d(&mut self, x: Var, k: usize) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::max_pool1d_forward(&nodes[x.0].value, k, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::MaxPool1d { x, argmax }, rg, t)
    }

    // ------------------------------------------------------------------
    // Batched ops: one tape node per mini-batch instead of per sample.
    // Forward values equal the per-sample values laid side by side, and
    // shared-parameter gradients are unstacked per sample and combined
    // in sample order, so per-sample and batched execution are bitwise
    // identical end to end (see DESIGN.md, "Batched execution").
    // ------------------------------------------------------------------

    /// `a @ b` where `a` row-stacks one segment per sample and `b` is a
    /// shared parameter. `bounds` holds the `B+1` row boundaries
    /// (`bounds[j]..bounds[j+1]` is sample `j`). The forward is a plain
    /// matmul; the backward computes `b`'s gradient per sample segment
    /// and sums the per-sample results in order.
    ///
    /// # Panics
    ///
    /// Panics unless `bounds` starts at 0 and ends at `a`'s row count.
    pub fn matmul_batched(&mut self, a: Var, b: Var, bounds: Arc<Vec<usize>>) -> Var {
        let t = self.prof_start();
        assert_eq!(bounds.first().copied(), Some(0), "bounds must start at row 0");
        assert_eq!(
            bounds.last().copied(),
            Some(self.value(a).rows()),
            "bounds must end at the row count"
        );
        let value = self.value(a).matmul(self.value(b));
        let rg = self.any_requires(&[a, b]);
        self.push_profiled(value, Op::MatmulBatched { a, b, bounds }, rg, t)
    }

    /// One single-row GEMM per `block_rows`-row block of `x` against the
    /// shared `(1, block_rows)` row vector `w`: output row `j` is
    /// `w @ x[j·block_rows..(j+1)·block_rows]` — the WeightedVertices
    /// head over a whole batch of stacked SortPooling outputs.
    ///
    /// # Panics
    ///
    /// Panics if `w` is not `(1, block_rows)` or `x`'s rows don't divide
    /// into whole blocks.
    pub fn matmul_row_blocks(&mut self, w: Var, x: Var, block_rows: usize) -> Var {
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let wv = &nodes[w.0].value;
            let xv = &nodes[x.0].value;
            assert_eq!(
                (wv.rows(), wv.cols()),
                (1, block_rows),
                "left operand must be a (1, block_rows) row"
            );
            assert_eq!(xv.rows() % block_rows, 0, "rows must divide into whole blocks");
            let batch = xv.rows() / block_rows;
            let c = xv.cols();
            let mut out = workspace.take_tensor([batch, c]);
            let os = out.as_mut_slice();
            for j in 0..batch {
                magic_tensor::gemm_into(
                    1,
                    block_rows,
                    c,
                    wv.as_slice(),
                    &xv.as_slice()[j * block_rows * c..][..block_rows * c],
                    &mut os[j * c..(j + 1) * c],
                );
            }
            out
        };
        let rg = self.any_requires(&[w, x]);
        self.push_profiled(value, Op::MatmulRowBlocks { w, x, block_rows }, rg, t)
    }

    /// [`Tape::gather_rows`] with padding: an index of `usize::MAX` reads
    /// a zero row (and receives no gradient). Fuses SortPooling's
    /// gather-then-pad for every sample of a batch into one op.
    pub fn gather_rows_pad(&mut self, a: Var, indices: Vec<usize>) -> Var {
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let av = &nodes[a.0].value;
            let mut out = workspace.take_tensor([indices.len(), av.cols()]);
            for (dst, &src) in indices.iter().enumerate() {
                if src != usize::MAX {
                    out.set_row(dst, av.row(src));
                }
            }
            out
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::GatherRowsPad(a, indices), rg, t)
    }

    /// Reorders a `(C, B·seg_len)` column-stacked batch into `(B, C·seg_len)`
    /// where row `j` is sample `j`'s channels flattened row-major — the
    /// batched equivalent of the per-sample `reshape([1, C·seg_len])`
    /// after a conv/pool head. Pure data movement.
    pub fn unstack_columns(&mut self, a: Var, seg_len: usize) -> Var {
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let av = &nodes[a.0].value;
            let (c, total) = (av.rows(), av.cols());
            assert!(
                seg_len > 0 && total % seg_len == 0,
                "width {total} is not a multiple of segment length {seg_len}"
            );
            let batch = total / seg_len;
            let mut out = workspace.take_tensor([batch, c * seg_len]);
            let os = out.as_mut_slice();
            let is = av.as_slice();
            for j in 0..batch {
                for ci in 0..c {
                    os[j * c * seg_len + ci * seg_len..][..seg_len]
                        .copy_from_slice(&is[ci * total + j * seg_len..][..seg_len]);
                }
            }
            out
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(value, Op::UnstackColumns { a, seg_len }, rg, t)
    }

    /// Per-row negative log-likelihood: `out[j, 0] = -lp[j, targets[j]]`.
    /// Follow with [`Tape::sum`] for the batch loss; the per-sample
    /// losses stay readable from the rows for logging.
    ///
    /// # Panics
    ///
    /// Panics if `targets.len()` differs from the row count or a target
    /// is out of range.
    pub fn nll_loss_rows(&mut self, log_probs: Var, targets: Vec<usize>) -> Var {
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let lp = &nodes[log_probs.0].value;
            assert_eq!(lp.rows(), targets.len(), "one target per row required");
            let mut out = workspace.take_tensor([targets.len(), 1]);
            for (i, &t) in targets.iter().enumerate() {
                assert!(t < lp.cols(), "target {t} out of range");
                out.set2(i, 0, -lp.get2(i, t));
            }
            out
        };
        let rg = self.any_requires(&[log_probs]);
        self.push_profiled(value, Op::NllLossRows(log_probs, targets), rg, t)
    }

    /// [`Tape::dropout`] over a batch with one RNG stream per row: row
    /// `j`'s mask is drawn from `rngs[j]` in element order, so it is
    /// bitwise the mask the per-sample call would draw for that sample.
    /// Records a plain dropout op — the backward is unchanged.
    ///
    /// # Panics
    ///
    /// Panics unless `0 <= p < 1` and there is exactly one RNG per row.
    pub fn dropout_rows(&mut self, a: Var, p: f32, rngs: &mut [Rng64]) -> Var {
        assert!((0.0..1.0).contains(&p), "dropout rate must be in [0, 1)");
        let t = self.prof_start();
        let keep = 1.0 - p;
        let (masked, mask) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            let av = &nodes[a.0].value;
            assert_eq!(av.rows(), rngs.len(), "one RNG stream per row");
            let mut mask = workspace.take(av.len());
            for (row, rng) in mask.chunks_exact_mut(av.cols()).zip(rngs.iter_mut()) {
                for m in row.iter_mut() {
                    *m = if rng.next_f32() < p { 0.0 } else { 1.0 / keep };
                }
            }
            let mut masked = workspace.take_tensor(av.shape().clone());
            for ((o, &x), &m) in masked.as_mut_slice().iter_mut().zip(av.as_slice()).zip(&mask) {
                *o = x * m;
            }
            (masked, mask)
        };
        let rg = self.any_requires(&[a]);
        self.push_profiled(masked, Op::Dropout(a, mask), rg, t)
    }

    /// Batched 1-D convolution over `x = (c_in, B·seg_len)` — every
    /// sample occupies one `seg_len` column segment. Always lowered via
    /// the batched im2col + one GEMM (there is no naive batched path).
    ///
    /// # Panics
    ///
    /// Panics if `x`'s width is not a multiple of `seg_len`.
    pub fn conv1d_batched(&mut self, x: Var, w: Var, b: Var, stride: usize, seg_len: usize) -> Var {
        let k = self.value(w).shape().dim(2);
        let rg = self.any_requires(&[x, w, b]);
        let batch = self.value(x).cols() / seg_len;
        let out_len = conv::conv1d_shape(seg_len, k, stride);
        let t_cols = self.prof_start();
        let cols = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::im2col_1d_batched(&nodes[x.0].value, k, stride, seg_len, workspace)
        };
        self.record_im2col(t_cols, cols.len());
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::conv1d_forward_gemm(
                &cols,
                &nodes[w.0].value,
                nodes[b.0].value.as_slice(),
                batch * out_len,
                workspace,
            )
        };
        self.workspace.recycle(cols);
        self.push_profiled(value, Op::Conv1dBatched { x, w, b, k, stride, seg_len }, rg, t)
    }

    /// Batched 2-D convolution over a column-stacked `x = (c_in, Σ hⱼ·wⱼ)`
    /// with per-sample map dims in `dims`. The output is the flat
    /// `(c_out, Σ ohⱼ·owⱼ)` column-stacked matrix. Always im2col + GEMM.
    pub fn conv2d_batched(
        &mut self,
        x: Var,
        w: Var,
        b: Var,
        stride: usize,
        pad: usize,
        dims: Arc<Vec<(usize, usize)>>,
    ) -> Var {
        let rg = self.any_requires(&[x, w, b]);
        let (kh, kw) = {
            let ws = self.value(w).shape();
            (ws.dim(2), ws.dim(3))
        };
        let out_total: usize = conv::conv2d_batched_out_dims(&dims, kh, kw, stride, pad)
            .iter()
            .map(|&(oh, ow)| oh * ow)
            .sum();
        let t_cols = self.prof_start();
        let cols = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::im2col_2d_batched(&nodes[x.0].value, &dims, kh, kw, stride, pad, workspace)
        };
        self.record_im2col(t_cols, cols.len());
        let t = self.prof_start();
        let value = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::conv2d_batched_forward_gemm(
                &cols,
                &nodes[w.0].value,
                nodes[b.0].value.as_slice(),
                out_total,
                workspace,
            )
        };
        self.workspace.recycle(cols);
        self.push_profiled(value, Op::Conv2dBatched { x, w, b, stride, pad, dims }, rg, t)
    }

    /// Batched adaptive max pooling of a column-stacked `(c, Σ hⱼ·wⱼ)`
    /// batch to `(c, B·oh·ow)` (sample `j` in columns `[j·oh·ow, …)`).
    pub fn adaptive_max_pool2d_batched(
        &mut self,
        x: Var,
        dims: &[(usize, usize)],
        oh: usize,
        ow: usize,
    ) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::adaptive_max_pool2d_batched_forward(&nodes[x.0].value, dims, oh, ow, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::AdaptiveMaxPool2dBatched { x, argmax }, rg, t)
    }

    /// Batched non-overlapping 1-D max pooling over `(c, B·seg_len)`;
    /// windows never straddle a sample's segment boundary.
    pub fn max_pool1d_batched(&mut self, x: Var, k: usize, seg_len: usize) -> Var {
        let t = self.prof_start();
        let (value, argmax) = {
            let Tape { nodes, workspace, .. } = &mut *self;
            conv::max_pool1d_batched_forward(&nodes[x.0].value, k, seg_len, workspace)
        };
        let rg = self.any_requires(&[x]);
        self.push_profiled(value, Op::MaxPool1dBatched { x, argmax }, rg, t)
    }

    fn accumulate(&mut self, v: Var, g: Tensor) {
        let Tape { grads, workspace, .. } = self;
        match &mut grads[v.0] {
            Some(existing) => {
                existing.add_assign(&g);
                workspace.recycle_tensor(g);
            }
            slot @ None => *slot = Some(g),
        }
    }

    /// Runs the reverse sweep from a scalar `loss` node, filling gradients
    /// for every node with `requires_grad`.
    ///
    /// # Panics
    ///
    /// Panics if `loss` is not a single-element tensor.
    pub fn backward(&mut self, loss: Var) {
        assert_eq!(self.value(loss).len(), 1, "backward requires a scalar loss");
        {
            let Tape { grads, workspace, .. } = &mut *self;
            for g in grads.iter_mut() {
                if let Some(old) = g.take() {
                    workspace.recycle_tensor(old);
                }
            }
        }
        let seed_shape = self.value(loss).shape().clone();
        let mut seed = self.workspace.take_tensor(seed_shape);
        seed.as_mut_slice().fill(1.0);
        self.grads[loss.0] = Some(seed);

        for idx in (0..self.nodes.len()).rev() {
            if !self.nodes[idx].requires_grad {
                continue;
            }
            // Take the upstream gradient out of its slot instead of
            // cloning it: a clone is a full deep copy per node — on
            // batched-size tensors that is a DRAM sweep that dwarfs the
            // op itself. Ops only accumulate into *earlier* nodes, so
            // the slot can be repopulated right after the match.
            let Some(gout) = self.grads[idx].take() else {
                continue;
            };
            let op = self.nodes[idx].op.clone();
            // Time each backward step individually so the profiler can
            // attribute the sweep to op kinds. Leaf steps are no-ops and
            // would only add noise rows, so they are skipped. Backward
            // FLOPs use the standard 2× forward heuristic (one gradient
            // product per differentiable input of a dense kernel).
            let t = if matches!(op, Op::Leaf) { None } else { self.prof_start() };
            let prof_key = t.map(|_| {
                let out = &self.nodes[idx].value;
                // `spmm_norm` has exactly one differentiable input, and
                // its backward (one transpose-CSR product plus the row
                // scaling) does the same work as forward — charge 1×,
                // not the dense 2× heuristic, so the nnz-based count
                // stays exact.
                let flops = match &op {
                    Op::SpmmNorm { .. } => self.forward_flops(&op, out),
                    _ => 2 * self.forward_flops(&op, out),
                };
                (
                    OpKey {
                        kind: op.backward_kind(),
                        phase: PHASE_BACKWARD,
                        shape_bucket: profile::shape_bucket(out.len()),
                    },
                    flops,
                    (out.len() * std::mem::size_of::<f32>()) as u64,
                )
            });
            match op {
                Op::Leaf => {}
                Op::Matmul(a, b) => {
                    // gA = gOut·Bᵀ and gB = Aᵀ·gOut via the transpose-free
                    // kernels, accumulating into zero-filled pool buffers —
                    // no operand clones, no materialized transposes.
                    let (m, kk) = (self.value(a).rows(), self.value(a).cols());
                    let n = self.value(b).cols();
                    if self.needs(a) {
                        let ga = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let mut ga = workspace.take_tensor([m, kk]);
                            magic_tensor::gemm_nt_into(
                                m,
                                n,
                                kk,
                                gout.as_slice(),
                                nodes[b.0].value.as_slice(),
                                ga.as_mut_slice(),
                            );
                            ga
                        };
                        self.accumulate(a, ga);
                    }
                    if self.needs(b) {
                        let gb = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let mut gb = workspace.take_tensor([kk, n]);
                            magic_tensor::gemm_tn_into(
                                kk,
                                m,
                                n,
                                nodes[a.0].value.as_slice(),
                                gout.as_slice(),
                                gb.as_mut_slice(),
                            );
                            gb
                        };
                        self.accumulate(b, gb);
                    }
                }
                Op::Add(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout.clone());
                    }
                }
                Op::Sub(a, b) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout.scale(-1.0));
                    }
                }
                Op::Mul(a, b) => {
                    let av = self.value(a).clone();
                    let bv = self.value(b).clone();
                    if self.needs(a) {
                        self.accumulate(a, gout.mul(&bv));
                    }
                    if self.needs(b) {
                        self.accumulate(b, gout.mul(&av));
                    }
                }
                Op::AddBias(a, bias) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.clone());
                    }
                    if self.needs(bias) {
                        let sums = gout.sum_rows();
                        let len = sums.len();
                        self.accumulate(bias, Tensor::from_vec(sums, [len]));
                    }
                }
                Op::Scale(a, f) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.scale(f));
                    }
                }
                Op::Relu(a) => {
                    if self.needs(a) {
                        // One fused sweep instead of mask-map + multiply:
                        // `g·1.0 = g` and the blocked lanes keep `g·0.0`'s
                        // signed zero, so this is bitwise identical to the
                        // two-pass form while reading each operand once.
                        let gx = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let x = nodes[a.0].value.as_slice();
                            let mut gx = workspace.take_tensor(nodes[a.0].value.shape().clone());
                            for ((o, &g), &xv) in
                                gx.as_mut_slice().iter_mut().zip(gout.as_slice()).zip(x)
                            {
                                *o = if xv > 0.0 { g } else { g * 0.0 };
                            }
                            gx
                        };
                        self.accumulate(a, gx);
                    }
                }
                Op::Sigmoid(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let dy = y.zip_map(&y, |s, _| s * (1.0 - s));
                        self.accumulate(a, gout.mul(&dy));
                    }
                }
                Op::Tanh(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let dy = y.map(|t| 1.0 - t * t);
                        self.accumulate(a, gout.mul(&dy));
                    }
                }
                Op::ScaleRows(a, factors) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.scale_rows(&factors));
                    }
                }
                Op::SpmmNorm { adj_t, inv_degree, f, .. } => {
                    if self.needs(f) {
                        // d/dF of D̂⁻¹ Â F is Âᵀ D̂⁻¹: scale the incoming
                        // gradient rows, then one transpose-CSR product.
                        let scaled = gout.scale_rows(&inv_degree);
                        self.accumulate(f, adj_t.spmm(&scaled));
                    }
                }
                Op::Transpose(a) => {
                    if self.needs(a) {
                        self.accumulate(a, gout.transpose());
                    }
                }
                Op::ConcatCols(parts) => {
                    let mut offset = 0;
                    for p in parts {
                        let c = self.value(p).cols();
                        if self.needs(p) {
                            let rows = self.value(p).rows();
                            let mut gp = self.workspace.take_tensor([rows, c]);
                            for i in 0..rows {
                                let src = &gout.row(i)[offset..offset + c];
                                gp.set_row(i, src);
                            }
                            self.accumulate(p, gp);
                        }
                        offset += c;
                    }
                }
                Op::GatherRows(a, indices) => {
                    if self.needs(a) {
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        let cols = ga.cols();
                        for (dst, &src) in indices.iter().enumerate() {
                            for j in 0..cols {
                                let cur = ga.get2(src, j);
                                ga.set2(src, j, cur + gout.get2(dst, j));
                            }
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::PadRows(a) => {
                    if self.needs(a) {
                        let rows = self.value(a).rows();
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        for i in 0..rows.min(gout.rows()) {
                            ga.set_row(i, gout.row(i));
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::Reshape(a) => {
                    if self.needs(a) {
                        let shape = self.value(a).shape().clone();
                        self.accumulate(a, gout.reshape(shape));
                    }
                }
                Op::LogSoftmaxRows(a) => {
                    if self.needs(a) {
                        let y = self.nodes[idx].value.clone();
                        let mut ga = self.workspace.take_tensor(y.shape().clone());
                        for i in 0..y.rows() {
                            let grow = gout.row(i);
                            let gsum: f32 = grow.iter().sum();
                            let row: Vec<f32> = y
                                .row(i)
                                .iter()
                                .zip(grow)
                                .map(|(&ly, &g)| g - ly.exp() * gsum)
                                .collect();
                            ga.set_row(i, &row);
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::NllLoss(lp, targets) => {
                    if self.needs(lp) {
                        let n = targets.len() as f32;
                        let g = gout.item();
                        let shape = self.value(lp).shape().clone();
                        let mut glp = self.workspace.take_tensor(shape);
                        for (i, &t) in targets.iter().enumerate() {
                            glp.set2(i, t, -g / n);
                        }
                        self.accumulate(lp, glp);
                    }
                }
                Op::Sum(a) => {
                    if self.needs(a) {
                        let g = gout.item();
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        ga.as_mut_slice().fill(g);
                        self.accumulate(a, ga);
                    }
                }
                Op::Mean(a) => {
                    if self.needs(a) {
                        let n = self.value(a).len() as f32;
                        let g = gout.item() / n;
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        ga.as_mut_slice().fill(g);
                        self.accumulate(a, ga);
                    }
                }
                Op::Dropout(a, mask) => {
                    if self.needs(a) {
                        let mut gm = self.workspace.take_tensor(gout.shape().clone());
                        for ((o, &g), &m) in
                            gm.as_mut_slice().iter_mut().zip(gout.as_slice()).zip(&mask)
                        {
                            *o = g * m;
                        }
                        self.accumulate(a, gm);
                    }
                }
                Op::Conv1d { x, w, b, k, stride, gemm } => {
                    let (gx, gw, gb) = if gemm {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv1d_backward_gemm(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            k,
                            stride,
                            &gout,
                            workspace,
                        )
                    } else {
                        conv::conv1d_backward(self.value(x), self.value(w), k, stride, &gout)
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
                Op::Conv2d { x, w, b, stride, pad, gemm } => {
                    let (gx, gw, gb) = if gemm {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv2d_backward_gemm(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            stride,
                            pad,
                            &gout,
                            workspace,
                        )
                    } else {
                        conv::conv2d_backward(self.value(x), self.value(w), stride, pad, &gout)
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
                Op::AdaptiveMaxPool2d { x, argmax }
                | Op::MaxPool1d { x, argmax }
                | Op::AdaptiveMaxPool2dBatched { x, argmax }
                | Op::MaxPool1dBatched { x, argmax } => {
                    // Winner indices were pushed in ascending output flat
                    // order (batched variants included), so one
                    // enumerate-scatter serves all four pooling ops.
                    if self.needs(x) {
                        let shape = self.value(x).shape().clone();
                        let mut gx = self.workspace.take_tensor(shape);
                        for (cell, &src) in argmax.iter().enumerate() {
                            gx.as_mut_slice()[src] += gout.as_slice()[cell];
                        }
                        self.accumulate(x, gx);
                    }
                }
                Op::MatmulBatched { a, b, bounds } => {
                    let (m, kk) = (self.value(a).rows(), self.value(a).cols());
                    let n = self.value(b).cols();
                    if self.needs(a) {
                        // Row-stacked input: gA = gOut·Bᵀ is per-row, so
                        // the full product equals the per-sample products.
                        let ga = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let mut ga = workspace.take_tensor([m, kk]);
                            magic_tensor::gemm_nt_into(
                                m,
                                n,
                                kk,
                                gout.as_slice(),
                                nodes[b.0].value.as_slice(),
                                ga.as_mut_slice(),
                            );
                            ga
                        };
                        self.accumulate(a, ga);
                    }
                    if self.needs(b) {
                        // Shared operand: per-sample row-segment products
                        // into a re-zeroed temp, summed in sample order —
                        // the per-sample gradient buffer's chain exactly.
                        let gb = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let a_val = &nodes[a.0].value;
                            let mut gb = workspace.take_tensor([kk, n]);
                            let mut temp = workspace.take(kk * n);
                            for seg in bounds.windows(2) {
                                let (r0, r1) = (seg[0], seg[1]);
                                temp.fill(0.0);
                                magic_tensor::gemm_tn_into(
                                    kk,
                                    r1 - r0,
                                    n,
                                    &a_val.as_slice()[r0 * kk..r1 * kk],
                                    &gout.as_slice()[r0 * n..r1 * n],
                                    &mut temp,
                                );
                                for (acc, &g) in gb.as_mut_slice().iter_mut().zip(temp.iter()) {
                                    *acc += g;
                                }
                            }
                            workspace.recycle(temp);
                            gb
                        };
                        self.accumulate(b, gb);
                    }
                }
                Op::MatmulRowBlocks { w, x, block_rows } => {
                    let batch = self.value(x).rows() / block_rows;
                    let c = self.value(x).cols();
                    if self.needs(w) {
                        let gw = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let xv = &nodes[x.0].value;
                            let mut gw = workspace.take_tensor([1, block_rows]);
                            let mut temp = workspace.take(block_rows);
                            for j in 0..batch {
                                temp.fill(0.0);
                                magic_tensor::gemm_nt_into(
                                    1,
                                    c,
                                    block_rows,
                                    &gout.as_slice()[j * c..][..c],
                                    &xv.as_slice()[j * block_rows * c..][..block_rows * c],
                                    &mut temp,
                                );
                                for (acc, &g) in gw.as_mut_slice().iter_mut().zip(temp.iter()) {
                                    *acc += g;
                                }
                            }
                            workspace.recycle(temp);
                            gw
                        };
                        self.accumulate(w, gw);
                    }
                    if self.needs(x) {
                        let gx = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let wv = &nodes[w.0].value;
                            let shape = nodes[x.0].value.shape().clone();
                            let mut gx = workspace.take_tensor(shape);
                            let gxs = gx.as_mut_slice();
                            for j in 0..batch {
                                magic_tensor::gemm_tn_into(
                                    block_rows,
                                    1,
                                    c,
                                    wv.as_slice(),
                                    &gout.as_slice()[j * c..][..c],
                                    &mut gxs[j * block_rows * c..][..block_rows * c],
                                );
                            }
                            gx
                        };
                        self.accumulate(x, gx);
                    }
                }
                Op::GatherRowsPad(a, indices) => {
                    if self.needs(a) {
                        let shape = self.value(a).shape().clone();
                        let mut ga = self.workspace.take_tensor(shape);
                        let cols = ga.cols();
                        for (dst, &src) in indices.iter().enumerate() {
                            if src == usize::MAX {
                                continue;
                            }
                            for j in 0..cols {
                                let cur = ga.get2(src, j);
                                ga.set2(src, j, cur + gout.get2(dst, j));
                            }
                        }
                        self.accumulate(a, ga);
                    }
                }
                Op::UnstackColumns { a, seg_len } => {
                    if self.needs(a) {
                        let ga = {
                            let Tape { nodes, workspace, .. } = &mut *self;
                            let av = &nodes[a.0].value;
                            let (c, total) = (av.rows(), av.cols());
                            let batch = total / seg_len;
                            let mut ga = workspace.take_tensor(av.shape().clone());
                            let gas = ga.as_mut_slice();
                            let gs = gout.as_slice();
                            for j in 0..batch {
                                for ci in 0..c {
                                    gas[ci * total + j * seg_len..][..seg_len].copy_from_slice(
                                        &gs[j * c * seg_len + ci * seg_len..][..seg_len],
                                    );
                                }
                            }
                            ga
                        };
                        self.accumulate(a, ga);
                    }
                }
                Op::NllLossRows(lp, targets) => {
                    if self.needs(lp) {
                        let shape = self.value(lp).shape().clone();
                        let mut glp = self.workspace.take_tensor(shape);
                        for (i, &t) in targets.iter().enumerate() {
                            glp.set2(i, t, -gout.get2(i, 0));
                        }
                        self.accumulate(lp, glp);
                    }
                }
                Op::Conv1dBatched { x, w, b, k, stride, seg_len } => {
                    let (gx, gw, gb) = {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv1d_batched_backward(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            k,
                            stride,
                            seg_len,
                            &gout,
                            workspace,
                        )
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
                Op::Conv2dBatched { x, w, b, stride, pad, dims } => {
                    let (gx, gw, gb) = {
                        let Tape { nodes, workspace, .. } = &mut *self;
                        conv::conv2d_batched_backward(
                            &nodes[x.0].value,
                            &nodes[w.0].value,
                            stride,
                            pad,
                            &dims,
                            &gout,
                            workspace,
                        )
                    };
                    if self.needs(x) {
                        self.accumulate(x, gx);
                    } else {
                        self.workspace.recycle_tensor(gx);
                    }
                    if self.needs(w) {
                        self.accumulate(w, gw);
                    } else {
                        self.workspace.recycle_tensor(gw);
                    }
                    if self.needs(b) {
                        let n = gb.len();
                        self.accumulate(b, Tensor::from_vec(gb, [n]));
                    } else {
                        self.workspace.recycle(gb);
                    }
                }
            }
            // Put the gradient back so callers can still read it after
            // the sweep (nothing writes to this slot in between: ops
            // only accumulate into their inputs, which precede `idx`).
            self.grads[idx] = Some(gout);
            if let (Some(t0), Some((key, flops, bytes))) = (t, prof_key) {
                self.profile.record(key, t0.elapsed().as_nanos() as u64, flops, bytes);
            }
        }
    }

    fn needs(&self, v: Var) -> bool {
        self.nodes[v.0].requires_grad
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scalar_tape() -> (Tape, Var) {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
        (tape, x)
    }

    #[test]
    fn matmul_gradients_are_transposed_products() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[3.0], &[5.0]]), true);
        let y = tape.matmul(a, b);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[3.0, 5.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn relu_blocks_negative_gradients() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::from_slice(&[-1.0, 2.0]).reshape([1, 2]), true);
        let y = tape.relu(x);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().as_slice(), &[0.0, 1.0]);
    }

    #[test]
    fn gather_rows_accumulates_repeats() {
        let (mut tape, x) = scalar_tape();
        let g = tape.gather_rows(x, vec![0, 0, 1]);
        let s = tape.sum(g);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[2.0, 2.0]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[1.0, 1.0]);
    }

    #[test]
    fn pad_rows_drops_gradient_of_truncated_rows() {
        let (mut tape, x) = scalar_tape();
        let p = tape.pad_or_truncate_rows(x, 1);
        let s = tape.sum(p);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[1.0, 1.0]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[0.0, 0.0]);
    }

    #[test]
    fn concat_cols_splits_gradient() {
        let mut tape = Tape::new();
        let a = tape.leaf(Tensor::from_rows(&[&[1.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[2.0, 3.0]]), true);
        let c = tape.concat_cols(&[a, b]);
        let w = tape.leaf(Tensor::from_rows(&[&[1.0], &[10.0], &[100.0]]), false);
        let y = tape.matmul(c, w);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(a).unwrap().as_slice(), &[1.0]);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[10.0, 100.0]);
    }

    #[test]
    fn nll_after_log_softmax_gives_softmax_minus_onehot() {
        let mut tape = Tape::new();
        let logits = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0, 3.0]]), true);
        let lp = tape.log_softmax_rows(logits);
        let loss = tape.nll_loss(lp, vec![2]);
        tape.backward(loss);
        let g = tape.grad(logits).unwrap();
        let sm = Tensor::from_slice(&[1.0, 2.0, 3.0]).softmax();
        let expected = [sm.as_slice()[0], sm.as_slice()[1], sm.as_slice()[2] - 1.0];
        for (a, b) in g.as_slice().iter().zip(&expected) {
            assert!((a - b).abs() < 1e-5, "{a} vs {b}");
        }
    }

    #[test]
    fn scale_rows_backward_uses_same_factors() {
        let (mut tape, x) = scalar_tape();
        let y = tape.scale_rows(x, vec![0.5, 2.0]);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(x).unwrap().row(0), &[0.5, 0.5]);
        assert_eq!(tape.grad(x).unwrap().row(1), &[2.0, 2.0]);
    }

    #[test]
    fn dropout_zero_rate_is_identity() {
        let mut rng = Rng64::new(1);
        let (mut tape, x) = scalar_tape();
        let y = tape.dropout(x, 0.0, &mut rng);
        assert_eq!(tape.value(y), tape.value(x));
        let s = tape.sum(y);
        tape.backward(s);
        assert!(tape.grad(x).unwrap().as_slice().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn dropout_masks_gradient_consistently() {
        let mut rng = Rng64::new(9);
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 100]), true);
        let y = tape.dropout(x, 0.5, &mut rng);
        let s = tape.sum(y);
        tape.backward(s);
        let value = tape.value(y).clone();
        let grad = tape.grad(x).unwrap();
        // Wherever the output was zeroed, the gradient must be zero too.
        for (v, g) in value.as_slice().iter().zip(grad.as_slice()) {
            assert_eq!(*v == 0.0, *g == 0.0);
        }
    }

    #[test]
    fn backward_twice_resets_gradients() {
        let (mut tape, x) = scalar_tape();
        let s = tape.sum(x);
        tape.backward(s);
        tape.backward(s);
        assert!(tape.grad(x).unwrap().as_slice().iter().all(|&g| g == 1.0));
    }

    #[test]
    fn no_grad_leaf_stays_empty() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), false);
        let w = tape.leaf(Tensor::ones([2, 2]), true);
        let y = tape.matmul(x, w);
        let s = tape.sum(y);
        tape.backward(s);
        assert!(tape.grad(x).is_none());
        assert!(tape.grad(w).is_some());
    }

    #[test]
    fn add_bias_sums_gradient_over_rows() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::zeros([3, 2]), true);
        let b = tape.leaf(Tensor::from_slice(&[1.0, 2.0]), true);
        let y = tape.add_bias(x, b);
        let s = tape.sum(y);
        tape.backward(s);
        assert_eq!(tape.grad(b).unwrap().as_slice(), &[3.0, 3.0]);
    }

    #[test]
    fn clear_allows_tape_reuse() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([1, 1]), true);
        let s = tape.sum(x);
        tape.backward(s);
        tape.clear();
        assert!(tape.is_empty());
        let y = tape.leaf(Tensor::ones([1, 1]), true);
        let s2 = tape.sum(y);
        tape.backward(s2);
        assert_eq!(tape.grad(y).unwrap().item(), 1.0);
    }

    #[test]
    fn reset_behaves_like_clear() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), true);
        let s = tape.sum(x);
        tape.backward(s);
        tape.reset();
        assert!(tape.is_empty());
    }

    /// A small asymmetric sparse matrix plus its transpose, as the model
    /// layer would precompute them.
    fn paper_csr() -> (Arc<CsrMatrix>, Arc<CsrMatrix>, Arc<Vec<f32>>) {
        let (adj, inv) = CsrMatrix::augmented_from_edges(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)],
        );
        let adj_t = adj.transpose();
        (Arc::new(adj), Arc::new(adj_t), Arc::new(inv))
    }

    #[test]
    fn spmm_norm_matches_dense_matmul_and_scale() {
        let (adj, adj_t, inv) = paper_csr();
        let x = Tensor::from_rows(&[
            &[2.0, 1.0],
            &[2.0, 0.0],
            &[1.0, 3.0],
            &[3.0, 2.0],
            &[1.0, 5.0],
        ]);

        let mut tape = Tape::new();
        let f = tape.leaf(x.clone(), false);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv.clone(), f);

        let dense = adj.to_dense().matmul(&x).scale_rows(&inv);
        for (a, b) in tape.value(y).as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_norm_backward_is_transpose_product() {
        let (adj, adj_t, inv) = paper_csr();
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::ones([5, 3]), true);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv.clone(), f);
        let s = tape.sum(y);
        tape.backward(s);

        // d(sum)/dF = Âᵀ D̂⁻¹ 1 — compare against the dense computation.
        let gout = Tensor::ones([5, 3]).scale_rows(&inv);
        let expected = adj.to_dense().transpose().matmul(&gout);
        for (a, b) in tape.grad(f).unwrap().as_slice().iter().zip(expected.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_norm_profiles_with_nnz_flops_and_backward_pseudo_op() {
        let (adj, adj_t, inv) = paper_csr();
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let f = tape.leaf(Tensor::ones([5, 3]), true);
        let y = tape.spmm_norm(adj.clone(), adj_t, inv, f);
        let s = tape.sum(y);
        tape.backward(s);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let fwd = find("spmm_norm", profile::PHASE_FORWARD).expect("fwd spmm_norm row");
        assert_eq!(fwd.flops, profile::spmm_norm_flops(adj.nnz(), 5, 3));
        let bwd = find("spmm_norm_t", profile::PHASE_BACKWARD).expect("bwd pseudo-op row");
        assert_eq!(bwd.flops, fwd.flops, "transpose product charged exactly 1x forward");
        assert!(
            find("spmm_norm", profile::PHASE_BACKWARD).is_none(),
            "backward step records only under the pseudo-op name"
        );
    }

    #[test]
    #[should_panic(expected = "adj_t must be the transpose")]
    fn spmm_norm_rejects_mismatched_transpose() {
        let (adj, _, inv) = paper_csr();
        let (other, _) = CsrMatrix::augmented_from_edges(5, [(0, 1)]);
        let mut tape = Tape::new();
        let f = tape.leaf(Tensor::ones([5, 3]), false);
        tape.spmm_norm(adj, Arc::new(other), inv, f);
    }

    #[test]
    fn profiling_records_forward_and_backward_rows() {
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let a = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]), true);
        let b = tape.leaf(Tensor::from_rows(&[&[1.0, 0.0], &[0.0, 1.0]]), false);
        let y = tape.matmul(a, b);
        let r = tape.relu(y);
        let s = tape.sum(r);
        tape.backward(s);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let mm_fwd = find("matmul", profile::PHASE_FORWARD).expect("fwd matmul row");
        assert_eq!(mm_fwd.calls, 1);
        assert_eq!(mm_fwd.flops, profile::matmul_flops(2, 2, 2));
        assert_eq!(mm_fwd.bytes_out, 16, "2x2 f32 output");
        let mm_bwd = find("matmul", profile::PHASE_BACKWARD).expect("bwd matmul row");
        assert_eq!(mm_bwd.flops, 2 * mm_fwd.flops, "backward charged 2x forward");
        assert!(find("relu", profile::PHASE_FORWARD).is_some());
        assert!(find("sum", profile::PHASE_BACKWARD).is_some());
        assert!(find("leaf", profile::PHASE_BACKWARD).is_none(), "leaf steps not profiled");

        // Profile survives reset (accumulates across samples) and drains.
        tape.reset();
        assert!(!tape.profile().is_empty());
        let taken = tape.take_profile();
        assert!(taken.sorted_rows().len() >= 5);
        assert!(tape.profile().is_empty());
    }

    #[test]
    fn profiling_off_records_nothing() {
        let mut tape = Tape::new();
        let x = tape.leaf(Tensor::ones([2, 2]), true);
        let s = tape.sum(x);
        tape.backward(s);
        assert!(tape.profile().is_empty());
        assert!(!tape.profiling());
    }

    fn conv_sample(tape: &mut Tape) -> Var {
        let x = tape.leaf(
            Tensor::from_vec((0..2 * 8).map(|i| (i as f32 * 0.37).sin()).collect(), [2, 8]),
            false,
        );
        let w = tape.leaf(
            Tensor::from_vec((0..3 * 2 * 3).map(|i| (i as f32 * 0.19).cos()).collect(), [3, 2, 3]),
            true,
        );
        let b = tape.leaf(Tensor::from_vec(vec![0.1, -0.2, 0.3], [3]), true);
        let y = tape.conv1d(x, w, b, 1);
        let r = tape.relu(y);
        tape.sum(r)
    }

    #[test]
    fn conv_lowering_dispatch_records_gemm_kinds_and_im2col_row() {
        let mut tape = Tape::new();
        tape.set_conv_lowering(ConvLowering::Im2colGemm);
        tape.set_profiling(true);
        let loss = conv_sample(&mut tape);
        tape.backward(loss);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        let fwd = find("conv1d.gemm", profile::PHASE_FORWARD).expect("fwd conv1d.gemm row");
        // Same FLOP formula as the naive lowering: the math is identical.
        assert_eq!(fwd.flops, profile::conv1d_flops(3, 6, 2, 3));
        let bwd = find("conv1d.gemm", profile::PHASE_BACKWARD).expect("bwd conv1d.gemm row");
        assert_eq!(bwd.flops, 2 * fwd.flops);
        let cols = find("im2col", profile::PHASE_FORWARD).expect("im2col row");
        assert_eq!(cols.flops, 0, "im2col is pure data movement");
        assert_eq!(cols.bytes_out, (2 * 3 * 6 * 4) as u64);
        assert!(find("conv1d", profile::PHASE_FORWARD).is_none(), "naive kind absent");
    }

    #[test]
    fn naive_lowering_keeps_old_kind_and_skips_im2col_row() {
        let mut tape = Tape::new();
        tape.set_conv_lowering(ConvLowering::Naive);
        tape.set_profiling(true);
        let loss = conv_sample(&mut tape);
        tape.backward(loss);

        let rows = tape.profile().sorted_rows();
        assert!(rows.iter().any(|(k, _)| k.kind == "conv1d"));
        assert!(rows.iter().all(|(k, _)| k.kind != "conv1d.gemm"));
        assert!(rows.iter().all(|(k, _)| k.kind != "im2col"));
    }

    #[test]
    fn gemm_and_naive_lowerings_agree_through_the_tape() {
        let mut gemm = Tape::new();
        gemm.set_conv_lowering(ConvLowering::Im2colGemm);
        let gl = conv_sample(&mut gemm);
        gemm.backward(gl);

        let mut naive = Tape::new();
        naive.set_conv_lowering(ConvLowering::Naive);
        let nl = conv_sample(&mut naive);
        naive.backward(nl);

        let dl = (gemm.value(gl).item() - naive.value(nl).item()).abs();
        assert!(dl < 1e-4, "losses differ by {dl}");
        // Weight leaf is Var(1) in both tapes (same construction order).
        let gw = gemm.grad(Var(1)).unwrap();
        let nw = naive.grad(Var(1)).unwrap();
        for (a, b) in gw.as_slice().iter().zip(nw.as_slice()) {
            assert!((a - b).abs() < 1e-4, "weight grads differ: {a} vs {b}");
        }
    }

    #[test]
    fn reset_recycles_buffers_into_zero_miss_steady_state() {
        let mut tape = Tape::new();
        // Warm-up sample: every checkout is a miss on a cold pool.
        let loss = conv_sample(&mut tape);
        tape.backward(loss);
        tape.reset();
        let warm = tape.workspace_stats();
        assert!(warm.misses > 0, "cold pool must miss");

        // Steady state: identical shapes, so every checkout must hit.
        for _ in 0..3 {
            let loss = conv_sample(&mut tape);
            tape.backward(loss);
            tape.reset();
        }
        let steady = tape.workspace_stats();
        assert_eq!(steady.misses, warm.misses, "steady-state samples must not miss the pool");
        assert!(steady.hits > warm.hits);
    }

    #[test]
    fn conv_lowering_env_default_is_gemm() {
        // The suite cannot mutate the process environment safely, but the
        // default (no MAGIC_NAIVE_CONV in the test environment) must be
        // the GEMM lowering.
        assert_eq!(Tape::new().conv_lowering(), ConvLowering::Im2colGemm);
    }

    /// The tape holds only owned tensors and plain enum data, so worker
    /// threads may own or share one. This must keep holding as ops are
    /// added — a stray `Rc` or `RefCell` in a node would silently force
    /// training back to a single thread.
    #[test]
    fn tape_and_vars_are_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Tape>();
        assert_send_sync::<Var>();
        assert_send_sync::<Tensor>();
    }

    // ---- Batched ops: bitwise parity with per-sample tapes ----

    /// Elementwise `((0 + g_0) + g_1) + ...` in sample order — the exact
    /// reduction chain the per-sample GradBuffer accumulation performs for
    /// shared parameters.
    fn chain_add(parts: &[&[f32]]) -> Vec<f32> {
        let mut acc = vec![0.0f32; parts[0].len()];
        for p in parts {
            for (a, g) in acc.iter_mut().zip(*p) {
                *a += g;
            }
        }
        acc
    }

    #[test]
    fn matmul_batched_matches_per_sample_tapes_bitwise() {
        let mut rng = Rng64::new(7);
        let (kk, n) = (5usize, 4usize);
        let rows = [3usize, 1, 4];
        let samples: Vec<Tensor> =
            rows.iter().map(|&r| Tensor::rand_uniform([r, kk], -1.0, 1.0, &mut rng)).collect();
        let w = Tensor::rand_uniform([kk, n], -1.0, 1.0, &mut rng);
        // Nontrivial upstream gradient: multiply by a constant and sum, so
        // gout(y) is the constant itself in both executions.
        let gmods: Vec<Tensor> =
            rows.iter().map(|&r| Tensor::rand_uniform([r, n], -1.0, 1.0, &mut rng)).collect();

        let mut per_out = Vec::new();
        let mut per_ga = Vec::new();
        let mut per_gw = Vec::new();
        for (xs, gm) in samples.iter().zip(&gmods) {
            let mut tape = Tape::new();
            let a = tape.leaf(xs.clone(), true);
            let b = tape.leaf(w.clone(), true);
            let y = tape.matmul(a, b);
            let m = tape.leaf(gm.clone(), false);
            let p = tape.mul(y, m);
            let s = tape.sum(p);
            tape.backward(s);
            per_out.push(tape.value(y).clone());
            per_ga.push(tape.grad(a).unwrap().clone());
            per_gw.push(tape.grad(b).unwrap().as_slice().to_vec());
        }

        let stacked = Tensor::concat_rows(&samples.iter().collect::<Vec<_>>());
        let gstacked = Tensor::concat_rows(&gmods.iter().collect::<Vec<_>>());
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let a = tape.leaf(stacked, true);
        let b = tape.leaf(w, true);
        let y = tape.matmul_batched(a, b, Arc::new(vec![0, 3, 4, 8]));
        let m = tape.leaf(gstacked, false);
        let p = tape.mul(y, m);
        let s = tape.sum(p);
        tape.backward(s);

        let mut r0 = 0;
        for (j, out_j) in per_out.iter().enumerate() {
            let r1 = r0 + rows[j];
            assert_eq!(&tape.value(y).as_slice()[r0 * n..r1 * n], out_j.as_slice(), "fwd {j}");
            assert_eq!(
                &tape.grad(a).unwrap().as_slice()[r0 * kk..r1 * kk],
                per_ga[j].as_slice(),
                "ga segment {j}"
            );
            r0 = r1;
        }
        let chained = chain_add(&per_gw.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(tape.grad(b).unwrap().as_slice(), chained.as_slice(), "shared-weight chain");

        let prof = tape.profile().sorted_rows();
        let has = |kind: &str, phase: &str| {
            prof.iter().any(|(k, _)| k.kind == kind && k.phase == phase)
        };
        assert!(has("gemm.batched", profile::PHASE_FORWARD));
        assert!(has("gemm.batched", profile::PHASE_BACKWARD));
    }

    #[test]
    fn spmm_norm_batched_over_block_diagonal_matches_per_sample_blocks() {
        let (adj1, adj1_t, inv1) = paper_csr();
        let (adj2, inv2) = CsrMatrix::augmented_from_edges(3, [(0, 1), (1, 2)]);
        let adj2_t = adj2.transpose();
        let mut rng = Rng64::new(8);
        let f1 = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let f2 = Tensor::rand_uniform([3, 3], -1.0, 1.0, &mut rng);

        let run = |adj: Arc<CsrMatrix>, adj_t: Arc<CsrMatrix>, inv: Arc<Vec<f32>>, f: &Tensor| {
            let mut tape = Tape::new();
            let fv = tape.leaf(f.clone(), true);
            let y = tape.spmm_norm(adj, adj_t, inv, fv);
            let s = tape.sum(y);
            tape.backward(s);
            (tape.value(y).clone(), tape.grad(fv).unwrap().clone())
        };
        let (y1, g1) = run(adj1.clone(), adj1_t, inv1.clone(), &f1);
        let (y2, g2) = run(Arc::new(adj2), Arc::new(adj2_t), Arc::new(inv2.clone()), &f2);

        let (adj2b, _) = CsrMatrix::augmented_from_edges(3, [(0, 1), (1, 2)]);
        let batch = CsrMatrix::block_diagonal(&[&adj1, &adj2b]);
        let batch_t = batch.transpose();
        let mut inv = inv1.as_ref().clone();
        inv.extend_from_slice(&inv2);
        let mut tape = Tape::new();
        tape.set_profiling(true);
        let fv = tape.leaf(Tensor::concat_rows(&[&f1, &f2]), true);
        let y = tape.spmm_norm_batched(Arc::new(batch), Arc::new(batch_t), Arc::new(inv), fv);
        let s = tape.sum(y);
        tape.backward(s);

        assert_eq!(&tape.value(y).as_slice()[..5 * 3], y1.as_slice());
        assert_eq!(&tape.value(y).as_slice()[5 * 3..], y2.as_slice());
        assert_eq!(&tape.grad(fv).unwrap().as_slice()[..5 * 3], g1.as_slice());
        assert_eq!(&tape.grad(fv).unwrap().as_slice()[5 * 3..], g2.as_slice());

        let prof = tape.profile().sorted_rows();
        let has = |kind: &str, phase: &str| {
            prof.iter().any(|(k, _)| k.kind == kind && k.phase == phase)
        };
        assert!(has("spmm_norm.batched", profile::PHASE_FORWARD));
        assert!(has("spmm_norm_t.batched", profile::PHASE_BACKWARD));
        assert!(!has("spmm_norm", profile::PHASE_FORWARD), "batched kind must not alias plain");
    }

    #[test]
    fn gather_rows_pad_matches_gather_then_pad() {
        let mut rng = Rng64::new(9);
        let x = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut rng);
        let mask = Tensor::rand_uniform([3, 3], -1.0, 1.0, &mut rng);

        let mut per = Tape::new();
        let xa = per.leaf(x.clone(), true);
        let g = per.gather_rows(xa, vec![2, 0]);
        let p = per.pad_or_truncate_rows(g, 3);
        let m = per.leaf(mask.clone(), false);
        let pr = per.mul(p, m);
        let s = per.sum(pr);
        per.backward(s);

        let mut bat = Tape::new();
        let xb = bat.leaf(x, true);
        let gp = bat.gather_rows_pad(xb, vec![2, 0, usize::MAX]);
        let m = bat.leaf(mask, false);
        let pr = bat.mul(gp, m);
        let s = bat.sum(pr);
        bat.backward(s);

        assert_eq!(bat.value(gp).as_slice(), per.value(p).as_slice());
        assert_eq!(bat.grad(xb).unwrap().as_slice(), per.grad(xa).unwrap().as_slice());
    }

    #[test]
    fn nll_loss_rows_matches_per_sample_nll_loss() {
        let mut rng = Rng64::new(10);
        let logits = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);
        let targets = [1usize, 3, 0];

        let mut per_loss = Vec::new();
        let mut per_glp = Vec::new();
        for (i, &t) in targets.iter().enumerate() {
            let mut tape = Tape::new();
            let lp = tape.leaf(Tensor::from_rows(&[logits.row(i)]), true);
            let l = tape.nll_loss(lp, vec![t]);
            tape.backward(l);
            per_loss.push(tape.value(l).item());
            per_glp.push(tape.grad(lp).unwrap().as_slice().to_vec());
        }

        let mut tape = Tape::new();
        let lp = tape.leaf(logits, true);
        let l = tape.nll_loss_rows(lp, targets.to_vec());
        let s = tape.sum(l);
        tape.backward(s);

        for (i, &want) in per_loss.iter().enumerate() {
            assert_eq!(tape.value(l).get2(i, 0), want, "per-row loss {i}");
            assert_eq!(tape.grad(lp).unwrap().row(i), per_glp[i].as_slice(), "glp row {i}");
        }
    }

    #[test]
    fn unstack_columns_inverts_the_channel_major_layout() {
        // (C=2, B*L=6) with L=3: row-major per-sample segments move to
        // (B=2, C*L=6) rows.
        let mut tape = Tape::new();
        let a = tape.leaf(
            Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0], &[
                7.0, 8.0, 9.0, 10.0, 11.0, 12.0,
            ]]),
            true,
        );
        let u = tape.unstack_columns(a, 3);
        assert_eq!(tape.value(u).row(0), &[1.0, 2.0, 3.0, 7.0, 8.0, 9.0]);
        assert_eq!(tape.value(u).row(1), &[4.0, 5.0, 6.0, 10.0, 11.0, 12.0]);

        let m = tape.leaf(
            Tensor::from_rows(&[&[0.1, 0.2, 0.3, 0.4, 0.5, 0.6], &[
                0.7, 0.8, 0.9, 1.0, 1.1, 1.2,
            ]]),
            false,
        );
        let p = tape.mul(u, m);
        let s = tape.sum(p);
        tape.backward(s);
        // The gradient routes back through the inverse copy.
        let ga = tape.grad(a).unwrap();
        assert_eq!(ga.row(0), &[0.1, 0.2, 0.3, 0.7, 0.8, 0.9]);
        assert_eq!(ga.row(1), &[0.4, 0.5, 0.6, 1.0, 1.1, 1.2]);
    }

    #[test]
    fn matmul_row_blocks_matches_per_sample_weighted_sum() {
        let mut rng = Rng64::new(11);
        let (k, c, batch) = (4usize, 3usize, 3usize);
        let w = Tensor::rand_uniform([1, k], -1.0, 1.0, &mut rng);
        let blocks: Vec<Tensor> =
            (0..batch).map(|_| Tensor::rand_uniform([k, c], -1.0, 1.0, &mut rng)).collect();
        let gmod = Tensor::rand_uniform([batch, c], -1.0, 1.0, &mut rng);

        let mut per_out = Vec::new();
        let mut per_gw = Vec::new();
        let mut per_gx = Vec::new();
        for (j, z) in blocks.iter().enumerate() {
            let mut tape = Tape::new();
            let wv = tape.leaf(w.clone(), true);
            let zv = tape.leaf(z.clone(), true);
            let y = tape.matmul(wv, zv);
            let m = tape.leaf(Tensor::from_rows(&[gmod.row(j)]), false);
            let p = tape.mul(y, m);
            let s = tape.sum(p);
            tape.backward(s);
            per_out.push(tape.value(y).as_slice().to_vec());
            per_gw.push(tape.grad(wv).unwrap().as_slice().to_vec());
            per_gx.push(tape.grad(zv).unwrap().as_slice().to_vec());
        }

        let mut tape = Tape::new();
        let wv = tape.leaf(w, true);
        let xv = tape.leaf(Tensor::concat_rows(&blocks.iter().collect::<Vec<_>>()), true);
        let y = tape.matmul_row_blocks(wv, xv, k);
        let m = tape.leaf(gmod, false);
        let p = tape.mul(y, m);
        let s = tape.sum(p);
        tape.backward(s);

        for (j, want) in per_out.iter().enumerate() {
            assert_eq!(tape.value(y).row(j), want.as_slice(), "fwd row {j}");
            assert_eq!(
                &tape.grad(xv).unwrap().as_slice()[j * k * c..(j + 1) * k * c],
                per_gx[j].as_slice(),
                "gx block {j}"
            );
        }
        let chained = chain_add(&per_gw.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(tape.grad(wv).unwrap().as_slice(), chained.as_slice(), "gw chain");
    }

    #[test]
    fn dropout_rows_replays_per_sample_rng_streams() {
        let mut rng = Rng64::new(12);
        let x = Tensor::rand_uniform([3, 40], -1.0, 1.0, &mut rng);

        let mut per_val = Vec::new();
        let mut per_grad = Vec::new();
        for i in 0..3 {
            let mut sample_rng = Rng64::new(100 + i as u64);
            let mut tape = Tape::new();
            let xv = tape.leaf(Tensor::from_rows(&[x.row(i)]), true);
            let d = tape.dropout(xv, 0.5, &mut sample_rng);
            let s = tape.sum(d);
            tape.backward(s);
            per_val.push(tape.value(d).as_slice().to_vec());
            per_grad.push(tape.grad(xv).unwrap().as_slice().to_vec());
        }

        let mut rngs: Vec<Rng64> = (0..3).map(|i| Rng64::new(100 + i as u64)).collect();
        let mut tape = Tape::new();
        let xv = tape.leaf(x, true);
        let d = tape.dropout_rows(xv, 0.5, &mut rngs);
        let s = tape.sum(d);
        tape.backward(s);

        for i in 0..3 {
            assert_eq!(tape.value(d).row(i), per_val[i].as_slice(), "value row {i}");
            assert_eq!(tape.grad(xv).unwrap().row(i), per_grad[i].as_slice(), "grad row {i}");
        }
    }

    #[test]
    fn batched_head_ops_record_batched_kinds_and_conv_flops() {
        let mut rng = Rng64::new(21);
        let mut tape = Tape::new();
        tape.set_profiling(true);
        // Two samples of one channel x six columns each.
        let x = tape.leaf(Tensor::rand_uniform([1, 12], -1.0, 1.0, &mut rng), true);
        let w = tape.leaf(Tensor::rand_uniform([2, 1, 3], -1.0, 1.0, &mut rng), true);
        let b = tape.leaf(Tensor::rand_uniform([2], -1.0, 1.0, &mut rng), true);
        let y = tape.conv1d_batched(x, w, b, 3, 6); // (2, 2*2)
        let p = tape.max_pool1d_batched(y, 2, 2); // (2, 2*1)
        let u = tape.unstack_columns(p, 1); // (2, 2)
        let lp = tape.log_softmax_rows(u);
        let l = tape.nll_loss_rows(lp, vec![0, 1]);
        let s = tape.sum(l);
        tape.backward(s);

        let rows = tape.profile().sorted_rows();
        let find = |kind: &str, phase: &str| {
            rows.iter().find(|(k, _)| k.kind == kind && k.phase == phase).map(|(_, s)| *s)
        };
        for kind in ["conv1d.batched", "max_pool1d.batched", "unstack_cols.batched", "nll_loss.batched"]
        {
            assert!(find(kind, profile::PHASE_FORWARD).is_some(), "missing fwd {kind}");
            assert!(find(kind, profile::PHASE_BACKWARD).is_some(), "missing bwd {kind}");
        }
        // The FLOP formula charges the concatenated output width, exactly
        // like one long per-sample convolution.
        let fwd = find("conv1d.batched", profile::PHASE_FORWARD).unwrap();
        assert_eq!(fwd.flops, profile::conv1d_flops(2, 4, 1, 3));
    }
}
