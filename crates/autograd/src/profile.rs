//! Op-level profiling: attribute time, FLOPs, and bytes to individual
//! tape operations.
//!
//! When profiling is switched on ([`crate::Tape::set_profiling`]), every
//! forward op and every backward sweep step records one observation —
//! `(kind, phase, shape class, self nanoseconds, flops, bytes out)` —
//! into the tape-owned [`OpProfile`]. Tapes are per-worker-lane, so
//! aggregation is contention-free; the trainer drains lane profiles at
//! epoch boundaries and flushes them as `op_profile` events in the
//! `magic-trace/2` schema.
//!
//! With profiling off (the default) each op costs a single branch on a
//! plain `bool` — cheaper than the relaxed atomic load budget the
//! observability contract allows.
//!
//! # FLOP accounting
//!
//! FLOP counts follow the standard dense-kernel conventions, documented
//! in `docs/OBSERVABILITY.md` and unit-tested here:
//!
//! * [`matmul_flops`]: `2·m·k·n` for `(m,k) @ (k,n)` (one multiply + one
//!   add per inner-product term).
//! * [`spmm_norm_flops`]: `2·nnz·c + rows·c` for the fused
//!   `D̂⁻¹ (Â F)` — one multiply-add per nonzero per feature column plus
//!   the row-scaling multiply. Scales with *edges*, not `rows²`. The
//!   backward step (`spmm_norm_t`, the transpose-CSR product) has the
//!   same nnz and is charged exactly 1× this count, not the dense 2×
//!   heuristic.
//! * [`conv1d_flops`]: `out_elems · (2·c_in·k + 1)` — the `+1` is the
//!   bias add per output element.
//! * [`conv2d_flops`]: `out_elems · (2·c_in·kh·kw + 1)`.
//! * `conv1d.gemm` / `conv2d.gemm` (the im2col-GEMM lowerings) use the
//!   *same* formulas — the math is identical, only the loop order
//!   differs — so naive-vs-GEMM profiles compare like for like. The
//!   patch gather is profiled separately as a forward-only `im2col` row
//!   with 0 FLOPs and `bytes_out` = column-buffer size. The backward
//!   GEMM step *recomputes* im2col internally (cheaper than keeping the
//!   buffer alive across the tape); that recompute is charged inside the
//!   `conv*.gemm` backward row's standard 2× heuristic, not as a second
//!   `im2col` row.
//! * Batched op kinds (`gemm.batched`, `spmm_norm.batched` /
//!   `spmm_norm_t.batched`, `conv1d.batched`, `conv2d.batched`) reuse the
//!   formulas above applied to the *concatenated* output — a block-diagonal
//!   propagation over `Σ nnz_j` nonzeros or a column-stacked convolution
//!   over `Σ out_j` positions performs exactly the per-sample FLOPs summed,
//!   so per-sample and batched profiles of the same mini-batch report the
//!   same totals and `magic profile` attribution stays comparable across
//!   the two execution modes. `matmul_row_blocks` (also `gemm.batched`)
//!   charges `2·B·block_rows·c` via `matmul_flops(B, block_rows, c)`.
//!   Batched data movement (`gather_pad.batched`, `unstack_cols.batched`,
//!   `max_pool1d.batched`, `adaptive_max_pool2d.batched`) counts zero
//!   FLOPs like its per-sample counterparts; `nll_loss.batched` counts one
//!   FLOP per row.
//! * Cheap elementwise ops count one FLOP per output element;
//!   transcendentals (`sigmoid`, `tanh`, `log_softmax`) count a few.
//! * Data movement (`transpose`, `reshape`, `gather_rows`, pooling,
//!   `concat_cols`, `pad_rows`) counts zero FLOPs; `bytes_out` captures
//!   its cost instead.
//! * Backward steps are charged `2×` the forward FLOPs of their op (the
//!   usual two-gradient heuristic for dense kernels).

use std::collections::HashMap;

/// Phase label for forward execution.
pub const PHASE_FORWARD: &str = "fwd";
/// Phase label for the backward sweep.
pub const PHASE_BACKWARD: &str = "bwd";
/// Phase label for host-side (non-tape) work attributed by the trainer:
/// parameter binding, gradient reduction, the optimizer step, evaluation.
pub const PHASE_HOST: &str = "host";

/// FLOPs of an `(m, k) @ (k, n)` matrix product.
pub fn matmul_flops(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// FLOPs of the fused `D̂⁻¹ (Â F)` sparse propagation producing a
/// `(rows, cols)` output from an adjacency with `nnz` stored nonzeros:
/// one multiply + one add per nonzero per feature column, plus one
/// row-normalization multiply per output element.
pub fn spmm_norm_flops(nnz: usize, rows: usize, cols: usize) -> u64 {
    2 * (nnz as u64) * (cols as u64) + (rows as u64) * (cols as u64)
}

/// FLOPs of a 1-D convolution producing `(c_out, l_out)` from `c_in`
/// input channels with kernel width `k`, bias included.
pub fn conv1d_flops(c_out: usize, l_out: usize, c_in: usize, k: usize) -> u64 {
    (c_out as u64) * (l_out as u64) * (2 * (c_in as u64) * (k as u64) + 1)
}

/// FLOPs of a 2-D convolution producing `(c_out, oh, ow)` from `c_in`
/// input channels with a `kh × kw` kernel, bias included.
pub fn conv2d_flops(c_out: usize, oh: usize, ow: usize, c_in: usize, kh: usize, kw: usize) -> u64 {
    (c_out as u64) * (oh as u64) * (ow as u64) * (2 * (c_in as u64) * (kh as u64) * (kw as u64) + 1)
}

/// Buckets an element count into a power-of-two shape class, so ops on
/// similar problem sizes aggregate together without exploding the row
/// count. Bucket `b` covers `[2^(b-1), 2^b)` elements; 0 elements is
/// bucket 0.
pub fn shape_bucket(elems: usize) -> u8 {
    (usize::BITS - elems.leading_zeros()) as u8
}

/// Human label for a [`shape_bucket`] value, e.g. `"≤4Ki"` for the
/// bucket whose upper bound is 4096 elements.
pub fn bucket_label(bucket: u8) -> String {
    if bucket == 0 {
        return "0".to_string();
    }
    let upper: u64 = 1 << bucket;
    if upper >= 1 << 20 {
        format!("≤{}Mi", upper >> 20)
    } else if upper >= 1 << 10 {
        format!("≤{}Ki", upper >> 10)
    } else {
        format!("≤{upper}")
    }
}

/// Aggregation key: one profile row per (kind, phase, shape class).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct OpKey {
    /// Stable op kind name (see `Tape`'s op registry) or a host-side
    /// pseudo-op name like `"grad.reduce"`.
    pub kind: &'static str,
    /// One of [`PHASE_FORWARD`], [`PHASE_BACKWARD`], [`PHASE_HOST`].
    pub phase: &'static str,
    /// [`shape_bucket`] of the op's output element count.
    pub shape_bucket: u8,
}

/// Accumulated observations for one [`OpKey`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct OpStat {
    /// Number of op executions folded into this row.
    pub calls: u64,
    /// Summed self time, nanoseconds.
    pub self_ns: u64,
    /// Summed FLOPs.
    pub flops: u64,
    /// Summed output bytes.
    pub bytes_out: u64,
}

/// Per-tape (and therefore per-thread) op-level profile.
///
/// Rows accumulate across samples until drained with
/// [`OpProfile::take`]; merging profiles from several lanes is
/// commutative, so the trainer's epoch-end reduction is order-free.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct OpProfile {
    rows: HashMap<OpKey, OpStat>,
}

impl OpProfile {
    /// An empty profile.
    pub fn new() -> Self {
        OpProfile::default()
    }

    /// Whether any observation has been recorded.
    pub fn is_empty(&self) -> bool {
        self.rows.is_empty()
    }

    /// Folds one observation into the row for `key`.
    pub fn record(&mut self, key: OpKey, self_ns: u64, flops: u64, bytes_out: u64) {
        let stat = self.rows.entry(key).or_default();
        stat.calls += 1;
        stat.self_ns += self_ns;
        stat.flops += flops;
        stat.bytes_out += bytes_out;
    }

    /// Folds every row of `other` into `self`.
    pub fn merge(&mut self, other: &OpProfile) {
        for (key, stat) in &other.rows {
            let mine = self.rows.entry(*key).or_default();
            mine.calls += stat.calls;
            mine.self_ns += stat.self_ns;
            mine.flops += stat.flops;
            mine.bytes_out += stat.bytes_out;
        }
    }

    /// Drains the profile, returning the accumulated rows and leaving it
    /// empty (allocation retained).
    pub fn take(&mut self) -> OpProfile {
        OpProfile { rows: std::mem::take(&mut self.rows) }
    }

    /// Rows in deterministic order: self time descending, then key.
    pub fn sorted_rows(&self) -> Vec<(OpKey, OpStat)> {
        let mut rows: Vec<(OpKey, OpStat)> = self.rows.iter().map(|(k, s)| (*k, *s)).collect();
        rows.sort_by(|a, b| {
            b.1.self_ns
                .cmp(&a.1.self_ns)
                .then(a.0.kind.cmp(b.0.kind))
                .then(a.0.phase.cmp(b.0.phase))
                .then(a.0.shape_bucket.cmp(&b.0.shape_bucket))
        });
        rows
    }

    /// Total self time across all rows, nanoseconds.
    pub fn total_self_ns(&self) -> u64 {
        self.rows.values().map(|s| s.self_ns).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_flops_is_two_mkn() {
        // (3,4) @ (4,5): 3·5 outputs × 4 multiply-adds each.
        assert_eq!(matmul_flops(3, 4, 5), 120);
        assert_eq!(matmul_flops(1, 1, 1), 2);
        assert_eq!(matmul_flops(0, 4, 5), 0);
    }

    #[test]
    fn spmm_norm_flops_scale_with_nonzeros() {
        // 10 nonzeros into a (4, 3) output: 2·10·3 product flops plus
        // 4·3 row-scaling multiplies.
        assert_eq!(spmm_norm_flops(10, 4, 3), 72);
        // An empty matrix still pays the row scaling.
        assert_eq!(spmm_norm_flops(0, 4, 3), 12);
        // A CFG-sparse 1024-vertex graph (nnz ≈ 2n) is ~1000× cheaper
        // than the dense n² product at the same width.
        let sparse = spmm_norm_flops(2 * 1024, 1024, 32);
        let dense = matmul_flops(1024, 1024, 32);
        assert!(dense / sparse > 250, "{dense} / {sparse}");
    }

    #[test]
    fn conv1d_flops_counts_kernel_and_bias() {
        // 2 out-channels × 10 positions, 3 in-channels, kernel 5:
        // each output element costs 2·3·5 MACs-as-flops + 1 bias add.
        assert_eq!(conv1d_flops(2, 10, 3, 5), 2 * 10 * (2 * 3 * 5 + 1));
    }

    #[test]
    fn conv2d_flops_counts_kernel_and_bias() {
        // 4 out-channels on a 6×6 output, 3 in-channels, 3×3 kernel.
        assert_eq!(conv2d_flops(4, 6, 6, 3, 3, 3), 4 * 36 * (2 * 3 * 9 + 1));
        // 1×1 kernel degenerates to a per-pixel matmul plus bias.
        assert_eq!(conv2d_flops(1, 2, 2, 1, 1, 1), 4 * 3);
    }

    #[test]
    fn shape_buckets_are_powers_of_two() {
        assert_eq!(shape_bucket(0), 0);
        assert_eq!(shape_bucket(1), 1);
        assert_eq!(shape_bucket(2), 2);
        assert_eq!(shape_bucket(3), 2);
        assert_eq!(shape_bucket(4), 3);
        assert_eq!(shape_bucket(1023), 10);
        assert_eq!(shape_bucket(1024), 11);
    }

    #[test]
    fn bucket_labels_scale_units() {
        assert_eq!(bucket_label(0), "0");
        assert_eq!(bucket_label(3), "≤8");
        assert_eq!(bucket_label(12), "≤4Ki");
        assert_eq!(bucket_label(21), "≤2Mi");
    }

    #[test]
    fn record_merge_and_take_accumulate() {
        let key = OpKey { kind: "matmul", phase: PHASE_FORWARD, shape_bucket: 4 };
        let mut a = OpProfile::new();
        a.record(key, 100, 64, 40);
        a.record(key, 50, 64, 40);
        let mut b = OpProfile::new();
        b.record(key, 25, 64, 40);
        b.record(OpKey { kind: "relu", phase: PHASE_BACKWARD, shape_bucket: 4 }, 5, 16, 40);
        a.merge(&b);

        let rows = a.sorted_rows();
        assert_eq!(rows.len(), 2);
        assert_eq!(rows[0].0, key, "largest self time first");
        assert_eq!(rows[0].1, OpStat { calls: 3, self_ns: 175, flops: 192, bytes_out: 120 });
        assert_eq!(a.total_self_ns(), 180);

        let taken = a.take();
        assert!(a.is_empty());
        assert_eq!(taken.sorted_rows().len(), 2);
    }
}
