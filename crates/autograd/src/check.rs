//! Finite-difference gradient checking.
//!
//! Every layer in `magic-nn` validates its analytic gradients against the
//! central-difference approximations produced here; the same utilities are
//! exposed so downstream models can check their full pipelines.

use magic_tensor::Tensor;

/// Central-difference gradient of `f` with respect to `input`.
///
/// `f` must be a deterministic scalar function of the input tensor.
/// Complexity is two evaluations of `f` per element — use small tensors.
pub fn finite_difference_gradient(
    input: &Tensor,
    eps: f32,
    mut f: impl FnMut(&Tensor) -> f32,
) -> Tensor {
    let mut grad = Tensor::zeros(input.shape().clone());
    for i in 0..input.len() {
        let mut plus = input.clone();
        plus.as_mut_slice()[i] += eps;
        let mut minus = input.clone();
        minus.as_mut_slice()[i] -= eps;
        grad.as_mut_slice()[i] = (f(&plus) - f(&minus)) / (2.0 * eps);
    }
    grad
}

/// First element at which two tensors differ in exact bit pattern, if
/// any.
///
/// Gradient-path refactors (e.g. moving accumulation from a single store
/// onto per-worker buffers) are required to be *bitwise* no-ops, and a
/// plain float `==` cannot check that: it accepts `-0.0 == 0.0` and
/// rejects `NaN == NaN`. Comparing the `f32` bit patterns does exactly
/// what the determinism contract demands.
///
/// # Panics
///
/// Panics if the shapes differ.
pub fn first_bitwise_mismatch(a: &Tensor, b: &Tensor) -> Option<usize> {
    assert_eq!(
        a.shape(),
        b.shape(),
        "tensor shapes differ: {} vs {}",
        a.shape(),
        b.shape()
    );
    a.as_slice()
        .iter()
        .zip(b.as_slice())
        .position(|(x, y)| x.to_bits() != y.to_bits())
}

/// Largest absolute elementwise difference between an analytic gradient and
/// its finite-difference estimate, normalized by `1 + |numeric|` so the
/// tolerance is meaningful across magnitudes.
pub fn max_grad_error(analytic: &Tensor, numeric: &Tensor) -> f32 {
    assert_eq!(
        analytic.shape(),
        numeric.shape(),
        "gradient shapes differ: {} vs {}",
        analytic.shape(),
        numeric.shape()
    );
    analytic
        .as_slice()
        .iter()
        .zip(numeric.as_slice())
        .map(|(a, n)| (a - n).abs() / (1.0 + n.abs()))
        .fold(0.0, f32::max)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tape;
    use magic_tensor::Rng64;

    /// Helper: checks the tape gradient of `build` (which must create a
    /// scalar loss from a single leaf) against finite differences, under
    /// the given convolution lowering.
    fn check_op_with(
        lowering: crate::ConvLowering,
        input: Tensor,
        build: impl Fn(&mut Tape, crate::Var) -> crate::Var,
    ) {
        let mut tape = Tape::new();
        tape.set_conv_lowering(lowering);
        let x = tape.leaf(input.clone(), true);
        let loss = build(&mut tape, x);
        tape.backward(loss);
        let analytic = tape.grad(x).expect("input should have a gradient").clone();

        let numeric = finite_difference_gradient(&input, 1e-2, |t| {
            let mut tape = Tape::new();
            tape.set_conv_lowering(lowering);
            let x = tape.leaf(t.clone(), false);
            let loss = build(&mut tape, x);
            tape.value(loss).item()
        });
        let err = max_grad_error(&analytic, &numeric);
        assert!(err < 2e-2, "gradient mismatch under {lowering:?}: {err}");
    }

    fn check_op(input: Tensor, build: impl Fn(&mut Tape, crate::Var) -> crate::Var) {
        check_op_with(crate::ConvLowering::default(), input, build);
    }

    /// Both convolution lowerings, for ops whose kernels dispatch on it.
    fn check_op_both_lowerings(
        input: Tensor,
        build: impl Fn(&mut Tape, crate::Var) -> crate::Var,
    ) {
        check_op_with(crate::ConvLowering::Naive, input.clone(), &build);
        check_op_with(crate::ConvLowering::Im2colGemm, input, &build);
    }

    #[test]
    fn grad_check_matmul_chain() {
        let mut rng = Rng64::new(10);
        let input = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([4, 2], -1.0, 1.0, &mut rng);
        check_op(input, move |tape, x| {
            let wv = tape.leaf(w.clone(), false);
            let y = tape.matmul(x, wv);
            let r = tape.relu(y);
            tape.sum(r)
        });
    }

    #[test]
    fn grad_check_sigmoid_tanh() {
        let mut rng = Rng64::new(11);
        let input = Tensor::rand_uniform([2, 3], -2.0, 2.0, &mut rng);
        check_op(input, |tape, x| {
            let s = tape.sigmoid(x);
            let t = tape.tanh(s);
            tape.sum(t)
        });
    }

    #[test]
    fn grad_check_log_softmax_nll() {
        let mut rng = Rng64::new(12);
        let input = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut rng);
        check_op(input, |tape, x| {
            let lp = tape.log_softmax_rows(x);
            tape.nll_loss(lp, vec![0, 2, 1, 1])
        });
    }

    #[test]
    fn grad_check_spmm_norm() {
        use magic_tensor::CsrMatrix;
        use std::sync::Arc;

        let mut rng = Rng64::new(19);
        let (adj, inv) = CsrMatrix::augmented_from_edges(
            5,
            [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1), (4, 4)],
        );
        let adj = Arc::new(adj);
        let adj_t = Arc::new(adj.transpose());
        let inv = Arc::new(inv);
        let input = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        check_op(input, move |tape, x| {
            let y = tape.spmm_norm(adj.clone(), adj_t.clone(), inv.clone(), x);
            let sq = tape.mul(y, y);
            tape.sum(sq)
        });
    }

    #[test]
    fn grad_check_scale_rows_and_concat() {
        let mut rng = Rng64::new(13);
        let input = Tensor::rand_uniform([3, 2], -1.0, 1.0, &mut rng);
        check_op(input, |tape, x| {
            let a = tape.scale_rows(x, vec![0.5, 1.5, -1.0]);
            let b = tape.relu(x);
            let c = tape.concat_cols(&[a, b]);
            tape.sum(c)
        });
    }

    #[test]
    fn grad_check_gather_pad_pipeline() {
        let mut rng = Rng64::new(14);
        let input = Tensor::rand_uniform([4, 3], -1.0, 1.0, &mut rng);
        check_op(input, |tape, x| {
            let g = tape.gather_rows(x, vec![3, 1, 1]);
            let p = tape.pad_or_truncate_rows(g, 5);
            let sq = tape.mul(p, p);
            tape.sum(sq)
        });
    }

    #[test]
    fn grad_check_conv1d_both_lowerings() {
        let mut rng = Rng64::new(15);
        let input = Tensor::rand_uniform([2, 8], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 2], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([3], -0.5, 0.5, &mut rng);
        check_op_both_lowerings(input, move |tape, x| {
            let wv = tape.leaf(w.clone(), false);
            let bv = tape.leaf(b.clone(), false);
            let y = tape.conv1d(x, wv, bv, 2);
            let r = tape.relu(y);
            tape.sum(r)
        });
    }

    #[test]
    fn grad_check_conv2d_input_both_lowerings() {
        // Padded, strided conv: exercises the col2im scatter of the GEMM
        // lowering (and the zero-skip-free naive backward).
        let mut rng = Rng64::new(21);
        let input = Tensor::rand_uniform([2, 5, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([3], -0.5, 0.5, &mut rng);
        check_op_both_lowerings(input, move |tape, x| {
            let wv = tape.leaf(w.clone(), false);
            let bv = tape.leaf(b.clone(), false);
            let y = tape.conv2d(x, wv, bv, 2, 1);
            // Square instead of ReLU: smooth everywhere, so the central
            // difference cannot straddle an activation kink.
            let sq = tape.mul(y, y);
            tape.sum(sq)
        });
    }

    #[test]
    fn grad_check_conv2d_weights_both_lowerings() {
        // Differentiate w.r.t. the *weights* here to cover that path.
        let mut rng = Rng64::new(16);
        let x = Tensor::rand_uniform([1, 5, 5], -1.0, 1.0, &mut rng);
        let w0 = Tensor::rand_uniform([2, 1, 3, 3], -1.0, 1.0, &mut rng);

        for lowering in [crate::ConvLowering::Im2colGemm, crate::ConvLowering::Naive] {
            let mut tape = Tape::new();
            tape.set_conv_lowering(lowering);
            let xv = tape.leaf(x.clone(), false);
            let wv = tape.leaf(w0.clone(), true);
            let b = tape.leaf(Tensor::zeros([2]), false);
            let y = tape.conv2d(xv, wv, b, 1, 1);
            let s = tape.sum(y);
            tape.backward(s);
            let analytic = tape.grad(wv).unwrap().clone();

            let numeric = finite_difference_gradient(&w0, 1e-2, |w| {
                let mut tape = Tape::new();
                tape.set_conv_lowering(lowering);
                let xv = tape.leaf(x.clone(), false);
                let wv = tape.leaf(w.clone(), false);
                let b = tape.leaf(Tensor::zeros([2]), false);
                let y = tape.conv2d(xv, wv, b, 1, 1);
                tape.value(y).sum()
            });
            assert!(max_grad_error(&analytic, &numeric) < 2e-2, "{lowering:?}");
        }
    }

    #[test]
    fn grad_check_adaptive_max_pool() {
        let mut rng = Rng64::new(17);
        // Distinct values so the argmax is stable under the epsilon nudge.
        let mut input = Tensor::zeros([1, 4, 6]);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = (i as f32 * 0.731).sin() * 3.0;
        }
        let _ = &mut rng;
        check_op(input, |tape, x| {
            let p = tape.adaptive_max_pool2d(x, 2, 3);
            tape.sum(p)
        });
    }

    #[test]
    fn grad_check_maxpool1d() {
        let mut input = Tensor::zeros([2, 8]);
        for (i, v) in input.as_mut_slice().iter_mut().enumerate() {
            *v = ((i * 7 + 3) % 11) as f32;
        }
        check_op(input, |tape, x| {
            let p = tape.max_pool1d(x, 2);
            tape.sum(p)
        });
    }

    #[test]
    fn grad_check_transpose_and_bias() {
        let mut rng = Rng64::new(18);
        let input = Tensor::rand_uniform([2, 4], -1.0, 1.0, &mut rng);
        let bias = Tensor::rand_uniform([2], -1.0, 1.0, &mut rng);
        check_op(input, move |tape, x| {
            let t = tape.transpose(x);
            let b = tape.leaf(bias.clone(), false);
            let y = tape.add_bias(t, b);
            let sq = tape.mul(y, y);
            tape.mean(sq)
        });
    }

    #[test]
    fn max_grad_error_is_zero_for_equal_tensors() {
        let t = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(max_grad_error(&t, &t), 0.0);
    }

    #[test]
    fn bitwise_mismatch_distinguishes_what_float_eq_cannot() {
        let a = Tensor::from_slice(&[1.0, 0.0, 3.0]);
        assert_eq!(first_bitwise_mismatch(&a, &a), None);
        let b = Tensor::from_slice(&[1.0, -0.0, 3.0]);
        // -0.0 == 0.0 under float comparison, but the bits differ.
        assert_eq!(first_bitwise_mismatch(&a, &b), Some(1));
        let n = Tensor::from_slice(&[f32::NAN, 0.0, 3.0]);
        // Same NaN payload compares as identical bits.
        assert_eq!(first_bitwise_mismatch(&n, &n), None);
        // One ULP apart: far below any plausible approx-eq tolerance.
        let c = Tensor::from_slice(&[1.0, 0.0, f32::from_bits(3.0f32.to_bits() + 1)]);
        assert_eq!(first_bitwise_mismatch(&a, &c), Some(2));
    }
}
