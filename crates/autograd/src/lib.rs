#![warn(missing_docs)]

//! Tape-based reverse-mode automatic differentiation for the MAGIC
//! reproduction.
//!
//! The paper trains its DGCNN with PyTorch's autograd; this crate is the
//! from-scratch equivalent. A [`Tape`] records every tensor operation of a
//! forward pass as a node; [`Tape::backward`] then walks the recording in
//! reverse, accumulating gradients into every node that requires them.
//!
//! The operation set is exactly what the MAGIC architecture needs:
//! matrix products and row scaling for the graph convolution of Eq. (1),
//! row gathering and padding for SortPooling, 1-D/2-D convolutions and
//! adaptive max pooling for the two classification heads, plus the usual
//! activations, dropout and the negative log-likelihood loss of Eq. (5).
//!
//! # Example
//!
//! ```
//! use magic_autograd::Tape;
//! use magic_tensor::Tensor;
//!
//! let mut tape = Tape::new();
//! let x = tape.leaf(Tensor::from_rows(&[&[1.0, 2.0]]), true);
//! let w = tape.leaf(Tensor::from_rows(&[&[3.0], &[4.0]]), true);
//! let y = tape.matmul(x, w);
//! let loss = tape.sum(y);
//! tape.backward(loss);
//! // d(x@w)/dw = x^T
//! assert_eq!(tape.grad(w).unwrap().as_slice(), &[1.0, 2.0]);
//! ```

mod check;
mod conv;
pub mod profile;
mod tape;

pub use check::{finite_difference_gradient, first_bitwise_mismatch, max_grad_error};
pub use conv::{conv1d_shape, conv2d_shape};
pub use profile::{OpKey, OpProfile, OpStat};
pub use tape::{ConvLowering, Tape, Var};
