//! Convolution and pooling kernels (forward and backward) shared by the
//! tape operations.
//!
//! Layout conventions: 1-D signals are `(channels, length)` matrices; 2-D
//! feature maps are rank-3 `(channels, height, width)` tensors; conv
//! weights are `(out_channels, in_channels, k)` or
//! `(out_channels, in_channels, kh, kw)`.
//!
//! # Two lowerings
//!
//! Each convolution exists in two numerically equivalent forms selected by
//! the tape's `ConvLowering`:
//!
//! - **im2col + GEMM** (default): [`im2col_1d`]/[`im2col_2d`] gather input
//!   patches into a `(c_in·k, out)` column buffer (zero padding becomes
//!   zero columns entries), then the whole convolution is one
//!   register-blocked [`magic_tensor::gemm_into`] against the weight
//!   matrix viewed as `(c_out, c_in·k)`, with the bias pre-loaded into the
//!   output. The backward pass recomputes the columns and runs two
//!   transpose-GEMMs — `gW = gOut · colsᵀ` ([`magic_tensor::gemm_nt_into`])
//!   and `gCols = Wᵀ · gOut` ([`magic_tensor::gemm_tn_into`]) — followed
//!   by a col2im scatter-add for `gX`. All scratch and output buffers come
//!   from the caller's [`Workspace`], so steady-state training reuses them.
//! - **naive** (`MAGIC_NAIVE_CONV=1` escape hatch): the original scalar
//!   loops, kept for A/B timing and parity testing.
//!
//! Both lowerings visit every tap unconditionally (no data-dependent
//! zero skipping) with a loop order fixed by the shapes alone, so each is
//! individually bitwise deterministic; across lowerings they accumulate in
//! different orders and agree to float tolerance (~1e-5), not bitwise.

use magic_tensor::{gemm_into, gemm_nt_into, gemm_tn_into, Tensor, Workspace};

/// Output length of a 1-D convolution: `(len - k) / stride + 1`.
///
/// # Panics
///
/// Panics if the kernel is larger than the input or `stride == 0`.
pub fn conv1d_shape(len: usize, k: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(k <= len, "kernel {k} larger than input length {len}");
    (len - k) / stride + 1
}

/// Output height/width of a 2-D convolution with symmetric padding.
///
/// # Panics
///
/// Panics if the (padded) input is smaller than the kernel or `stride == 0`.
pub fn conv2d_shape(h: usize, w: usize, kh: usize, kw: usize, stride: usize, pad: usize) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    assert!(kh <= ph && kw <= pw, "kernel {kh}x{kw} larger than padded input {ph}x{pw}");
    ((ph - kh) / stride + 1, (pw - kw) / stride + 1)
}

/// The half-open input window `[start, end)` that output cell `i` of an
/// adaptive pooling with `out` cells over an input of size `n` covers.
/// This matches PyTorch's `AdaptiveMaxPool2d` window rule
/// (`start = floor(i*n/out)`, `end = ceil((i+1)*n/out)`), which is what the
/// paper's AMP layer (Section III-C, Fig. 6) relies on.
pub(crate) fn adaptive_window(i: usize, out: usize, n: usize) -> (usize, usize) {
    let start = i * n / out;
    let end = ((i + 1) * n).div_ceil(out);
    (start, end.max(start + 1).min(n.max(1)))
}

/// Forward 1-D convolution. `x` is `(c_in, len)`, `w` is flattened
/// `(c_out, c_in, k)`, `b` has `c_out` entries. Returns `(c_out, out_len)`.
pub(crate) fn conv1d_forward(x: &Tensor, w: &Tensor, b: &[f32], k: usize, stride: usize) -> Tensor {
    let c_in = x.rows();
    let len = x.cols();
    let c_out = w.shape().dim(0);
    debug_assert_eq!(w.shape().dims(), &[c_out, c_in, k]);
    let out_len = conv1d_shape(len, k, stride);
    let mut out = Tensor::zeros([c_out, out_len]);
    let ws = w.as_slice();
    let os = out.as_mut_slice();
    for o in 0..c_out {
        for t in 0..out_len {
            let mut acc = b[o];
            for ci in 0..c_in {
                let xr = x.row(ci);
                let w_row = (o * c_in + ci) * k;
                for j in 0..k {
                    acc += ws[w_row + j] * xr[t * stride + j];
                }
            }
            os[o * out_len + t] = acc;
        }
    }
    out
}

/// Backward 1-D convolution. Returns `(grad_x, grad_w, grad_b)`.
pub(crate) fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    k: usize,
    stride: usize,
    gout: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let len = x.cols();
    let c_out = w.shape().dim(0);
    let out_len = gout.cols();
    let mut gx = Tensor::zeros([c_in, len]);
    let mut gw = Tensor::zeros(w.shape().clone());
    let mut gb = vec![0.0; c_out];
    let xs = x.as_slice();
    let ws = w.as_slice();
    let gs = gout.as_slice();
    for o in 0..c_out {
        for t in 0..out_len {
            // No data-dependent skip on g == 0.0: backward cost must be a
            // function of the shapes alone (determinism/FLOP-honesty
            // contract, DESIGN.md).
            let g = gs[o * out_len + t];
            gb[o] += g;
            for ci in 0..c_in {
                for j in 0..k {
                    let xi = t * stride + j;
                    let gw_off = (o * c_in + ci) * k + j;
                    gw.as_mut_slice()[gw_off] += g * xs[ci * len + xi];
                    gx.as_mut_slice()[ci * len + xi] += g * ws[gw_off];
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Forward 2-D convolution with zero padding. `x` is `(c_in, h, w)`,
/// `wt` is `(c_out, c_in, kh, kw)`. Returns `(c_out, oh, ow)`.
pub(crate) fn conv2d_forward(
    x: &Tensor,
    wt: &Tensor,
    b: &[f32],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    debug_assert_eq!(wt.shape().dim(1), c_in);
    let (oh, ow) = conv2d_shape(h, w, kh, kw, stride, pad);
    let mut out = Tensor::zeros([c_out, oh, ow]);
    let xs = x.as_slice();
    let ws = wt.as_slice();
    let os = out.as_mut_slice();
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b[o];
                for ci in 0..c_in {
                    for dy in 0..kh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = (ci * h + iy as usize) * w;
                        let w_row = ((o * c_in + ci) * kh + dy) * kw;
                        for dx in 0..kw {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += ws[w_row + dx] * xs[x_row + ix as usize];
                        }
                    }
                }
                os[(o * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// Backward 2-D convolution. Returns `(grad_x, grad_w, grad_b)`.
pub(crate) fn conv2d_backward(
    x: &Tensor,
    wt: &Tensor,
    stride: usize,
    pad: usize,
    gout: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    let (oh, ow) = (gout.shape().dim(1), gout.shape().dim(2));
    let mut gx = Tensor::zeros(x.shape().clone());
    let mut gw = Tensor::zeros(wt.shape().clone());
    let mut gb = vec![0.0; c_out];
    let gs = gout.as_slice();
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                // No g == 0.0 skip — see conv1d_backward.
                let g = gs[(o * oh + oy) * ow + ox];
                gb[o] += g;
                for ci in 0..c_in {
                    for dy in 0..kh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for dx in 0..kw {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let x_off = (ci * h + iy as usize) * w + ix as usize;
                            let w_off = ((o * c_in + ci) * kh + dy) * kw + dx;
                            gw.as_mut_slice()[w_off] += g * x.as_slice()[x_off];
                            gx.as_mut_slice()[x_off] += g * wt.as_slice()[w_off];
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Gathers 1-D convolution patches into a `(c_in·k, out_len)` column
/// buffer checked out of `ws`: `cols[ci·k + j, t] = x[ci, t·stride + j]`.
///
/// The caller owns the returned buffer and must recycle it.
pub(crate) fn im2col_1d(x: &Tensor, k: usize, stride: usize, ws: &mut Workspace) -> Vec<f32> {
    let c_in = x.rows();
    let len = x.cols();
    let out_len = conv1d_shape(len, k, stride);
    let mut cols = ws.take(c_in * k * out_len);
    for ci in 0..c_in {
        let xr = x.row(ci);
        for j in 0..k {
            let row = &mut cols[(ci * k + j) * out_len..(ci * k + j + 1) * out_len];
            for (t, c) in row.iter_mut().enumerate() {
                *c = xr[t * stride + j];
            }
        }
    }
    cols
}

/// GEMM half of the im2col 1-D convolution: `out = b ⊕ W₂ @ cols` where
/// `W₂` is the weight viewed as `(c_out, c_in·k)` and `cols` comes from
/// [`im2col_1d`]. Returns a pooled `(c_out, out_len)` tensor.
pub(crate) fn conv1d_forward_gemm(
    cols: &[f32],
    w: &Tensor,
    b: &[f32],
    out_len: usize,
    ws: &mut Workspace,
) -> Tensor {
    let c_out = w.shape().dim(0);
    let ck = w.shape().dim(1) * w.shape().dim(2);
    debug_assert_eq!(cols.len(), ck * out_len);
    let mut out = ws.take_tensor([c_out, out_len]);
    let os = out.as_mut_slice();
    for (o, row) in os.chunks_exact_mut(out_len).enumerate() {
        row.fill(b[o]);
    }
    gemm_into(c_out, ck, out_len, w.as_slice(), cols, os);
    out
}

/// Scatters 1-D column gradients back onto the input:
/// `gx[ci, t·stride + j] += gcols[ci·k + j, t]`, in a fixed loop order.
fn col2im_1d(gcols: &[f32], c_in: usize, len: usize, k: usize, stride: usize, gx: &mut [f32]) {
    let out_len = gcols.len() / (c_in * k);
    for ci in 0..c_in {
        let gxr = &mut gx[ci * len..(ci + 1) * len];
        for j in 0..k {
            let row = &gcols[(ci * k + j) * out_len..(ci * k + j + 1) * out_len];
            for (t, &g) in row.iter().enumerate() {
                gxr[t * stride + j] += g;
            }
        }
    }
}

/// Backward 1-D convolution on the im2col lowering. Recomputes the column
/// buffer, then `gW = gOut · colsᵀ`, `gCols = W₂ᵀ · gOut`, and a col2im
/// scatter for `gX`. All outputs are pooled. Returns `(gx, gw, gb)`.
pub(crate) fn conv1d_backward_gemm(
    x: &Tensor,
    w: &Tensor,
    k: usize,
    stride: usize,
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let c_out = w.shape().dim(0);
    let out_len = gout.cols();
    let ck = c_in * k;
    let cols = im2col_1d(x, k, stride, ws);
    let mut gb = ws.take(c_out);
    for (o, row) in gout.as_slice().chunks_exact(out_len).enumerate() {
        gb[o] = row.iter().sum();
    }
    let mut gw = ws.take_tensor(w.shape().clone());
    gemm_nt_into(c_out, out_len, ck, gout.as_slice(), &cols, gw.as_mut_slice());
    let mut gcols = ws.take(ck * out_len);
    gemm_tn_into(ck, c_out, out_len, w.as_slice(), gout.as_slice(), &mut gcols);
    let mut gx = ws.take_tensor(x.shape().clone());
    col2im_1d(&gcols, c_in, x.cols(), k, stride, gx.as_mut_slice());
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// Gathers 2-D convolution patches into a `(c_in·kh·kw, oh·ow)` column
/// buffer checked out of `ws`. Taps that fall in the zero padding stay at
/// the buffer's zero fill, so padding costs nothing extra in the GEMM.
///
/// The caller owns the returned buffer and must recycle it.
pub(crate) fn im2col_2d(
    x: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Vec<f32> {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (oh, ow) = conv2d_shape(h, w, kh, kw, stride, pad);
    let mut cols = ws.take(c_in * kh * kw * oh * ow);
    let xs = x.as_slice();
    for ci in 0..c_in {
        for dy in 0..kh {
            for dx in 0..kw {
                let row =
                    &mut cols[((ci * kh + dy) * kw + dx) * oh * ow..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + dy) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let x_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + dx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        row[oy * ow + ox] = xs[x_row + ix as usize];
                    }
                }
            }
        }
    }
    cols
}

/// GEMM half of the im2col 2-D convolution. `cols` comes from
/// [`im2col_2d`]; returns a pooled `(c_out, oh, ow)` tensor.
pub(crate) fn conv2d_forward_gemm(
    cols: &[f32],
    wt: &Tensor,
    b: &[f32],
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> Tensor {
    let c_out = wt.shape().dim(0);
    let ckk = wt.shape().dim(1) * wt.shape().dim(2) * wt.shape().dim(3);
    debug_assert_eq!(cols.len(), ckk * oh * ow);
    let mut out = ws.take_tensor([c_out, oh, ow]);
    let os = out.as_mut_slice();
    for (o, row) in os.chunks_exact_mut(oh * ow).enumerate() {
        row.fill(b[o]);
    }
    gemm_into(c_out, ckk, oh * ow, wt.as_slice(), cols, os);
    out
}

/// Scatters 2-D column gradients back onto the input, skipping taps in
/// the zero padding, in a fixed loop order.
#[allow(clippy::too_many_arguments)]
fn col2im_2d(
    gcols: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    gx: &mut [f32],
) {
    for ci in 0..c_in {
        for dy in 0..kh {
            for dx in 0..kw {
                let row = &gcols[((ci * kh + dy) * kw + dx) * oh * ow..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + dy) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let x_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + dx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        gx[x_row + ix as usize] += row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Backward 2-D convolution on the im2col lowering (see
/// [`conv1d_backward_gemm`]). Returns pooled `(gx, gw, gb)`.
pub(crate) fn conv2d_backward_gemm(
    x: &Tensor,
    wt: &Tensor,
    stride: usize,
    pad: usize,
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    let (oh, ow) = (gout.shape().dim(1), gout.shape().dim(2));
    let ckk = c_in * kh * kw;
    let cols = im2col_2d(x, kh, kw, stride, pad, ws);
    let mut gb = ws.take(c_out);
    for (o, row) in gout.as_slice().chunks_exact(oh * ow).enumerate() {
        gb[o] = row.iter().sum();
    }
    let mut gw = ws.take_tensor(wt.shape().clone());
    gemm_nt_into(c_out, oh * ow, ckk, gout.as_slice(), &cols, gw.as_mut_slice());
    let mut gcols = ws.take(ckk * oh * ow);
    gemm_tn_into(ckk, c_out, oh * ow, wt.as_slice(), gout.as_slice(), &mut gcols);
    let mut gx = ws.take_tensor(x.shape().clone());
    col2im_2d(&gcols, c_in, h, w, kh, kw, stride, pad, oh, ow, gx.as_mut_slice());
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// Forward adaptive max pooling of a `(c, h, w)` tensor to `(c, oh, ow)`.
/// Returns the output and, per output cell, the flat index of the winning
/// input element (for the backward scatter). Both buffers are checked out
/// of `ws`; ties break to the *first* maximum in window scan order
/// (`v > best`, strict), so reusing pooled buffers cannot change winners.
pub(crate) fn adaptive_max_pool2d_forward(
    x: &Tensor,
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<usize>) {
    let (c, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let mut out = ws.take_tensor([c, oh, ow]);
    let mut argmax = ws.take_indices(c * oh * ow);
    for ci in 0..c {
        for oy in 0..oh {
            let (y0, y1) = adaptive_window(oy, oh, h);
            for ox in 0..ow {
                let (x0, x1) = adaptive_window(ox, ow, w);
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = (ci * h + y0) * w + x0;
                for iy in y0..y1 {
                    for ix in x0..x1 {
                        let off = (ci * h + iy) * w + ix;
                        let v = x.as_slice()[off];
                        if v > best {
                            best = v;
                            best_idx = off;
                        }
                    }
                }
                out.set(&[ci, oy, ox], best);
                argmax.push(best_idx);
            }
        }
    }
    (out, argmax)
}

/// Forward 1-D max pooling of a `(c, len)` matrix with window `k` and
/// stride `k` (non-overlapping, as in the original DGCNN head). Returns the
/// output and per-cell argmax flat indices, both checked out of `ws`;
/// ties break to the first maximum (strict `>`).
pub(crate) fn max_pool1d_forward(x: &Tensor, k: usize, ws: &mut Workspace) -> (Tensor, Vec<usize>) {
    let (c, len) = (x.rows(), x.cols());
    let out_len = len / k;
    assert!(out_len > 0, "pooling window {k} larger than input {len}");
    let mut out = ws.take_tensor([c, out_len]);
    let mut argmax = ws.take_indices(c * out_len);
    for ci in 0..c {
        for t in 0..out_len {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = ci * len + t * k;
            for j in 0..k {
                let off = ci * len + t * k + j;
                let v = x.as_slice()[off];
                if v > best {
                    best = v;
                    best_idx = off;
                }
            }
            out.set2(ci, t, best);
            argmax.push(best_idx);
        }
    }
    (out, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_shape_basic() {
        assert_eq!(conv1d_shape(10, 3, 1), 8);
        assert_eq!(conv1d_shape(10, 5, 5), 2);
        assert_eq!(conv1d_shape(10, 10, 10), 1);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn conv1d_shape_rejects_big_kernel() {
        conv1d_shape(3, 5, 1);
    }

    #[test]
    fn conv2d_shape_with_padding() {
        assert_eq!(conv2d_shape(5, 7, 3, 3, 1, 1), (5, 7));
        assert_eq!(conv2d_shape(4, 4, 2, 2, 2, 0), (2, 2));
    }

    #[test]
    fn adaptive_window_partitions_input() {
        // 7 inputs into 3 windows: PyTorch gives [0,3), [2,5), [4,7).
        assert_eq!(adaptive_window(0, 3, 7), (0, 3));
        assert_eq!(adaptive_window(1, 3, 7), (2, 5));
        assert_eq!(adaptive_window(2, 3, 7), (4, 7));
    }

    #[test]
    fn adaptive_window_when_output_larger_than_input() {
        // 2 inputs into 3 windows: every window non-empty.
        for i in 0..3 {
            let (s, e) = adaptive_window(i, 3, 2);
            assert!(s < e, "window {i} empty: ({s},{e})");
            assert!(e <= 2);
        }
    }

    #[test]
    fn conv1d_identity_kernel() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let w = Tensor::from_vec(vec![1.0], [1, 1, 1]);
        let y = conv1d_forward(&x, &w, &[0.0], 1, 1);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv1d_sums_window() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 1, 2]);
        let y = conv1d_forward(&x, &w, &[0.0], 2, 2);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn conv2d_averaging_kernel() {
        let x = Tensor::from_vec((1..=4).map(|v| v as f32).collect(), [1, 2, 2]);
        let w = Tensor::from_vec(vec![0.25; 4], [1, 1, 2, 2]);
        let y = conv2d_forward(&x, &w, &[0.0], 1, 0);
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let x = Tensor::ones([1, 3, 3]);
        let w = Tensor::from_vec(vec![1.0; 9], [1, 1, 3, 3]);
        let y = conv2d_forward(&x, &w, &[0.0], 1, 1);
        assert_eq!(y.shape().dims(), &[1, 3, 3]);
        // Center cell sees all nine ones; corner sees four.
        assert_eq!(y.at(&[0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0]), 4.0);
    }

    #[test]
    fn amp_forward_picks_window_maxima() {
        // Fig. 6 style: pool a 4x7 map (1 channel) into 3x3.
        let x = Tensor::from_vec((0..28).map(|v| v as f32).collect(), [1, 4, 7]);
        let (y, argmax) = adaptive_max_pool2d_forward(&x, 3, 3, &mut Workspace::new());
        assert_eq!(y.shape().dims(), &[1, 3, 3]);
        // Bottom-right window must contain the global max (27).
        assert_eq!(y.at(&[0, 2, 2]), 27.0);
        assert_eq!(argmax[8], 27);
    }

    #[test]
    fn maxpool1d_nonoverlapping() {
        let x = Tensor::from_rows(&[&[1.0, 5.0, 2.0, 4.0]]);
        let (y, argmax) = max_pool1d_forward(&x, 2, &mut Workspace::new());
        assert_eq!(y.as_slice(), &[5.0, 4.0]);
        assert_eq!(argmax, vec![1, 3]);
    }

    #[test]
    fn amp_tie_breaking_first_max_wins() {
        // All-equal input: every window's winner must be its first cell in
        // scan order, and pooled-buffer reuse must not change that.
        let mut ws = Workspace::new();
        let x = Tensor::ones([1, 4, 4]);
        let (y, argmax) = adaptive_max_pool2d_forward(&x, 2, 2, &mut ws);
        assert!(y.as_slice().iter().all(|&v| v == 1.0));
        assert_eq!(argmax, vec![0, 2, 8, 10]);
        // Recycle and pool a different tensor through the same workspace:
        // stale winners from the first call must not leak.
        ws.recycle_indices(argmax);
        ws.recycle_tensor(y);
        let x2 = Tensor::from_vec(vec![2.0; 16], [1, 4, 4]);
        let (y2, argmax2) = adaptive_max_pool2d_forward(&x2, 2, 2, &mut ws);
        assert!(y2.as_slice().iter().all(|&v| v == 2.0));
        assert_eq!(argmax2, vec![0, 2, 8, 10]);
        assert!(ws.stats().hits >= 2, "second call should reuse pooled buffers");
    }

    #[test]
    fn maxpool1d_tie_breaking_first_max_wins() {
        let x = Tensor::from_rows(&[&[7.0, 7.0, 7.0, 7.0]]);
        let (y, argmax) = max_pool1d_forward(&x, 2, &mut Workspace::new());
        assert_eq!(y.as_slice(), &[7.0, 7.0]);
        assert_eq!(argmax, vec![0, 2]);
    }

    #[test]
    fn conv1d_gemm_matches_naive_forward_and_backward() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(21);
        let mut ws = Workspace::new();
        for (c_in, len, c_out, k, stride) in
            [(1, 5, 1, 1, 1), (2, 8, 3, 2, 2), (3, 9, 4, 3, 1), (1, 12, 16, 4, 4), (2, 7, 2, 7, 7)]
        {
            let x = Tensor::rand_uniform([c_in, len], -1.0, 1.0, &mut rng);
            let w = Tensor::rand_uniform([c_out, c_in, k], -1.0, 1.0, &mut rng);
            let b: Vec<f32> = (0..c_out).map(|i| 0.1 * i as f32 - 0.2).collect();
            let out_len = conv1d_shape(len, k, stride);

            let naive = conv1d_forward(&x, &w, &b, k, stride);
            let cols = im2col_1d(&x, k, stride, &mut ws);
            let gemm = conv1d_forward_gemm(&cols, &w, &b, out_len, &mut ws);
            ws.recycle(cols);
            assert_eq!(gemm.shape(), naive.shape());
            for (g, n) in gemm.as_slice().iter().zip(naive.as_slice()) {
                assert!((g - n).abs() < 1e-5, "fwd ({c_in},{len},{c_out},{k},{stride}): {g} vs {n}");
            }

            let gout = Tensor::rand_uniform(naive.shape().clone(), -1.0, 1.0, &mut rng);
            let (ngx, ngw, ngb) = conv1d_backward(&x, &w, k, stride, &gout);
            let (ggx, ggw, ggb) = conv1d_backward_gemm(&x, &w, k, stride, &gout, &mut ws);
            for (g, n) in ggx.as_slice().iter().zip(ngx.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gx: {g} vs {n}");
            }
            for (g, n) in ggw.as_slice().iter().zip(ngw.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gw: {g} vs {n}");
            }
            for (g, n) in ggb.iter().zip(&ngb) {
                assert!((g - n).abs() < 1e-4, "gb: {g} vs {n}");
            }
            ws.recycle_tensor(ggx);
            ws.recycle_tensor(ggw);
            ws.recycle(ggb);
            ws.recycle_tensor(gemm);
        }
    }

    #[test]
    fn conv2d_gemm_matches_naive_forward_and_backward() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(22);
        let mut ws = Workspace::new();
        for (c_in, h, w_dim, c_out, kh, kw, stride, pad) in [
            (1, 3, 3, 1, 1, 1, 1, 0),
            (2, 5, 5, 3, 3, 3, 1, 1),
            (1, 6, 4, 2, 3, 3, 2, 1),
            (3, 4, 7, 2, 2, 4, 1, 0),
            (2, 5, 5, 4, 3, 3, 2, 2),
        ] {
            let x = Tensor::rand_uniform([c_in, h, w_dim], -1.0, 1.0, &mut rng);
            let wt = Tensor::rand_uniform([c_out, c_in, kh, kw], -1.0, 1.0, &mut rng);
            let b: Vec<f32> = (0..c_out).map(|i| 0.05 * i as f32 + 0.1).collect();
            let (oh, ow) = conv2d_shape(h, w_dim, kh, kw, stride, pad);

            let naive = conv2d_forward(&x, &wt, &b, stride, pad);
            let cols = im2col_2d(&x, kh, kw, stride, pad, &mut ws);
            let gemm = conv2d_forward_gemm(&cols, &wt, &b, oh, ow, &mut ws);
            ws.recycle(cols);
            assert_eq!(gemm.shape(), naive.shape());
            for (g, n) in gemm.as_slice().iter().zip(naive.as_slice()) {
                assert!(
                    (g - n).abs() < 1e-5,
                    "fwd ({c_in},{h},{w_dim},{c_out},{kh},{kw},{stride},{pad}): {g} vs {n}"
                );
            }

            let gout = Tensor::rand_uniform(naive.shape().clone(), -1.0, 1.0, &mut rng);
            let (ngx, ngw, ngb) = conv2d_backward(&x, &wt, stride, pad, &gout);
            let (ggx, ggw, ggb) = conv2d_backward_gemm(&x, &wt, stride, pad, &gout, &mut ws);
            for (g, n) in ggx.as_slice().iter().zip(ngx.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gx: {g} vs {n}");
            }
            for (g, n) in ggw.as_slice().iter().zip(ngw.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gw: {g} vs {n}");
            }
            for (g, n) in ggb.iter().zip(&ngb) {
                assert!((g - n).abs() < 1e-4, "gb: {g} vs {n}");
            }
            ws.recycle_tensor(ggx);
            ws.recycle_tensor(ggw);
            ws.recycle(ggb);
            ws.recycle_tensor(gemm);
        }
    }

    #[test]
    fn gemm_lowering_is_bitwise_deterministic() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(33);
        let x = Tensor::rand_uniform([2, 6, 6], -1.0, 1.0, &mut rng);
        let wt = Tensor::rand_uniform([3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let b = vec![0.1, 0.2, 0.3];
        let run = || {
            // A fresh workspace and a warmed one must agree bitwise.
            let mut ws = Workspace::new();
            let mut last = None;
            for _ in 0..2 {
                let cols = im2col_2d(&x, 3, 3, 1, 1, &mut ws);
                let out = conv2d_forward_gemm(&cols, &wt, &b, 6, 6, &mut ws);
                ws.recycle(cols);
                if let Some(prev) = last.take() {
                    assert_eq!(prev, out, "warm pool changed the numbers");
                }
                last = Some(out);
            }
            last.unwrap()
        };
        assert_eq!(run(), run(), "runs must be bitwise identical");
    }

    #[test]
    fn naive_backward_does_not_skip_zero_gradients() {
        // A gout of exactly zero must flow through the same code path —
        // gradients are zero either way, but this pins the no-skip
        // contract by checking the all-zero case still writes zeros (not
        // stale values) everywhere, matching the gemm path bitwise.
        let x = Tensor::ones([1, 4]);
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 1, 2]);
        let gout = Tensor::zeros([1, 2]);
        let (gx, gw, gb) = conv1d_backward(&x, &w, 2, 2, &gout);
        let mut ws = Workspace::new();
        let (ggx, ggw, ggb) = conv1d_backward_gemm(&x, &w, 2, 2, &gout, &mut ws);
        assert_eq!(gx.as_slice(), ggx.as_slice());
        assert_eq!(gw.as_slice(), ggw.as_slice());
        assert_eq!(gb, ggb);
    }

    #[test]
    fn conv1d_backward_grads_match_finite_difference() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_uniform([2, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 2], -1.0, 1.0, &mut rng);
        let b = vec![0.1, -0.2, 0.3];
        let y = conv1d_forward(&x, &w, &b, 2, 2);
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, _gb) = conv1d_backward(&x, &w, 2, 2, &gout);

        let eps = 1e-3;
        // Check one x element and one w element by central differences.
        let mut xp = x.clone();
        xp.as_mut_slice()[3] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[3] -= eps;
        let num = (conv1d_forward(&xp, &w, &b, 2, 2).sum() - conv1d_forward(&xm, &w, &b, 2, 2).sum()) / (2.0 * eps);
        assert!((num - gx.as_slice()[3]).abs() < 1e-2, "{num} vs {}", gx.as_slice()[3]);

        let mut wp = w.clone();
        wp.as_mut_slice()[5] += eps;
        let mut wm = w.clone();
        wm.as_mut_slice()[5] -= eps;
        let numw = (conv1d_forward(&x, &wp, &b, 2, 2).sum() - conv1d_forward(&x, &wm, &b, 2, 2).sum()) / (2.0 * eps);
        assert!((numw - gw.as_slice()[5]).abs() < 1e-2);
    }

    #[test]
    fn conv2d_backward_grads_match_finite_difference() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(4);
        let x = Tensor::rand_uniform([2, 4, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([2, 2, 3, 3], -1.0, 1.0, &mut rng);
        let b = vec![0.0, 0.0];
        let y = conv2d_forward(&x, &w, &b, 1, 1);
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w, 1, 1, &gout);
        assert_eq!(gb, vec![16.0, 16.0]);

        let eps = 1e-2;
        for &idx in &[0usize, 7, 20] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (conv2d_forward(&xp, &w, &b, 1, 1).sum() - conv2d_forward(&xm, &w, &b, 1, 1).sum()) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-2);
        }
        for &idx in &[0usize, 9, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (conv2d_forward(&x, &wp, &b, 1, 1).sum() - conv2d_forward(&x, &wm, &b, 1, 1).sum()) / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 1e-1);
        }
    }
}
