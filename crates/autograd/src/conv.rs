//! Convolution and pooling kernels (forward and backward) shared by the
//! tape operations.
//!
//! Layout conventions: 1-D signals are `(channels, length)` matrices; 2-D
//! feature maps are rank-3 `(channels, height, width)` tensors; conv
//! weights are `(out_channels, in_channels, k)` or
//! `(out_channels, in_channels, kh, kw)`.
//!
//! # Two lowerings
//!
//! Each convolution exists in two numerically equivalent forms selected by
//! the tape's `ConvLowering`:
//!
//! - **im2col + GEMM** (default): [`im2col_1d`]/[`im2col_2d`] gather input
//!   patches into a `(c_in·k, out)` column buffer (zero padding becomes
//!   zero columns entries), then the whole convolution is one
//!   register-blocked [`magic_tensor::gemm_into`] against the weight
//!   matrix viewed as `(c_out, c_in·k)`, with the bias pre-loaded into the
//!   output. The backward pass recomputes the columns and runs two
//!   transpose-GEMMs — `gW = gOut · colsᵀ` ([`magic_tensor::gemm_nt_into`])
//!   and `gCols = Wᵀ · gOut` ([`magic_tensor::gemm_tn_into`]) — followed
//!   by a col2im scatter-add for `gX`. All scratch and output buffers come
//!   from the caller's [`Workspace`], so steady-state training reuses them.
//! - **naive** (`MAGIC_NAIVE_CONV=1` escape hatch): the original scalar
//!   loops, kept for A/B timing and parity testing.
//!
//! Both lowerings visit every tap unconditionally (no data-dependent
//! zero skipping) with a loop order fixed by the shapes alone, so each is
//! individually bitwise deterministic; across lowerings they accumulate in
//! different orders and agree to float tolerance (~1e-5), not bitwise.
//!
//! # Batched kernels
//!
//! The `*_batched` variants below run a whole mini-batch through one
//! kernel call by stacking samples along the length/width axis (1-D:
//! equal `seg_len` segments; 2-D: heterogeneous `(h, w)` segments of a
//! column-stacked `(c, Σ hⱼ·wⱼ)` matrix). Forward outputs and backward
//! input gradients are computed per output element / per sample segment
//! exactly as the per-sample kernels compute them, and the *shared*
//! weight/bias gradients are unstacked per sample and combined in sample
//! order with the same `((0 + g₀) + g₁) + …` chain the per-sample
//! gradient buffers use — so batched execution is bitwise identical to
//! the per-sample path, not merely close.

use magic_tensor::{gemm_into, gemm_nt_into, gemm_tn_into, Tensor, Workspace};

/// Output length of a 1-D convolution: `(len - k) / stride + 1`.
///
/// # Panics
///
/// Panics if the kernel is larger than the input or `stride == 0`.
pub fn conv1d_shape(len: usize, k: usize, stride: usize) -> usize {
    assert!(stride > 0, "stride must be positive");
    assert!(k <= len, "kernel {k} larger than input length {len}");
    (len - k) / stride + 1
}

/// Output height/width of a 2-D convolution with symmetric padding.
///
/// # Panics
///
/// Panics if the (padded) input is smaller than the kernel or `stride == 0`.
pub fn conv2d_shape(h: usize, w: usize, kh: usize, kw: usize, stride: usize, pad: usize) -> (usize, usize) {
    assert!(stride > 0, "stride must be positive");
    let ph = h + 2 * pad;
    let pw = w + 2 * pad;
    assert!(kh <= ph && kw <= pw, "kernel {kh}x{kw} larger than padded input {ph}x{pw}");
    ((ph - kh) / stride + 1, (pw - kw) / stride + 1)
}

/// The half-open input window `[start, end)` that output cell `i` of an
/// adaptive pooling with `out` cells over an input of size `n` covers.
/// This matches PyTorch's `AdaptiveMaxPool2d` window rule
/// (`start = floor(i*n/out)`, `end = ceil((i+1)*n/out)`), which is what the
/// paper's AMP layer (Section III-C, Fig. 6) relies on.
pub(crate) fn adaptive_window(i: usize, out: usize, n: usize) -> (usize, usize) {
    let start = i * n / out;
    let end = ((i + 1) * n).div_ceil(out);
    (start, end.max(start + 1).min(n.max(1)))
}

/// Forward 1-D convolution. `x` is `(c_in, len)`, `w` is flattened
/// `(c_out, c_in, k)`, `b` has `c_out` entries. Returns `(c_out, out_len)`.
pub(crate) fn conv1d_forward(x: &Tensor, w: &Tensor, b: &[f32], k: usize, stride: usize) -> Tensor {
    let c_in = x.rows();
    let len = x.cols();
    let c_out = w.shape().dim(0);
    debug_assert_eq!(w.shape().dims(), &[c_out, c_in, k]);
    let out_len = conv1d_shape(len, k, stride);
    let mut out = Tensor::zeros([c_out, out_len]);
    let ws = w.as_slice();
    let os = out.as_mut_slice();
    for o in 0..c_out {
        for t in 0..out_len {
            let mut acc = b[o];
            for ci in 0..c_in {
                let xr = x.row(ci);
                let w_row = (o * c_in + ci) * k;
                for j in 0..k {
                    acc += ws[w_row + j] * xr[t * stride + j];
                }
            }
            os[o * out_len + t] = acc;
        }
    }
    out
}

/// Backward 1-D convolution. Returns `(grad_x, grad_w, grad_b)`.
pub(crate) fn conv1d_backward(
    x: &Tensor,
    w: &Tensor,
    k: usize,
    stride: usize,
    gout: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let len = x.cols();
    let c_out = w.shape().dim(0);
    let out_len = gout.cols();
    let mut gx = Tensor::zeros([c_in, len]);
    let mut gw = Tensor::zeros(w.shape().clone());
    let mut gb = vec![0.0; c_out];
    let xs = x.as_slice();
    let ws = w.as_slice();
    let gs = gout.as_slice();
    for o in 0..c_out {
        for t in 0..out_len {
            // No data-dependent skip on g == 0.0: backward cost must be a
            // function of the shapes alone (determinism/FLOP-honesty
            // contract, DESIGN.md).
            let g = gs[o * out_len + t];
            gb[o] += g;
            for ci in 0..c_in {
                for j in 0..k {
                    let xi = t * stride + j;
                    let gw_off = (o * c_in + ci) * k + j;
                    gw.as_mut_slice()[gw_off] += g * xs[ci * len + xi];
                    gx.as_mut_slice()[ci * len + xi] += g * ws[gw_off];
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Forward 2-D convolution with zero padding. `x` is `(c_in, h, w)`,
/// `wt` is `(c_out, c_in, kh, kw)`. Returns `(c_out, oh, ow)`.
pub(crate) fn conv2d_forward(
    x: &Tensor,
    wt: &Tensor,
    b: &[f32],
    stride: usize,
    pad: usize,
) -> Tensor {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    debug_assert_eq!(wt.shape().dim(1), c_in);
    let (oh, ow) = conv2d_shape(h, w, kh, kw, stride, pad);
    let mut out = Tensor::zeros([c_out, oh, ow]);
    let xs = x.as_slice();
    let ws = wt.as_slice();
    let os = out.as_mut_slice();
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                let mut acc = b[o];
                for ci in 0..c_in {
                    for dy in 0..kh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = (ci * h + iy as usize) * w;
                        let w_row = ((o * c_in + ci) * kh + dy) * kw;
                        for dx in 0..kw {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            acc += ws[w_row + dx] * xs[x_row + ix as usize];
                        }
                    }
                }
                os[(o * oh + oy) * ow + ox] = acc;
            }
        }
    }
    out
}

/// Backward 2-D convolution. Returns `(grad_x, grad_w, grad_b)`.
pub(crate) fn conv2d_backward(
    x: &Tensor,
    wt: &Tensor,
    stride: usize,
    pad: usize,
    gout: &Tensor,
) -> (Tensor, Tensor, Vec<f32>) {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    let (oh, ow) = (gout.shape().dim(1), gout.shape().dim(2));
    let mut gx = Tensor::zeros(x.shape().clone());
    let mut gw = Tensor::zeros(wt.shape().clone());
    let mut gb = vec![0.0; c_out];
    let gs = gout.as_slice();
    for o in 0..c_out {
        for oy in 0..oh {
            for ox in 0..ow {
                // No g == 0.0 skip — see conv1d_backward.
                let g = gs[(o * oh + oy) * ow + ox];
                gb[o] += g;
                for ci in 0..c_in {
                    for dy in 0..kh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        for dx in 0..kw {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            let x_off = (ci * h + iy as usize) * w + ix as usize;
                            let w_off = ((o * c_in + ci) * kh + dy) * kw + dx;
                            gw.as_mut_slice()[w_off] += g * x.as_slice()[x_off];
                            gx.as_mut_slice()[x_off] += g * wt.as_slice()[w_off];
                        }
                    }
                }
            }
        }
    }
    (gx, gw, gb)
}

/// Gathers 1-D convolution patches into a `(c_in·k, out_len)` column
/// buffer checked out of `ws`: `cols[ci·k + j, t] = x[ci, t·stride + j]`.
///
/// The caller owns the returned buffer and must recycle it.
pub(crate) fn im2col_1d(x: &Tensor, k: usize, stride: usize, ws: &mut Workspace) -> Vec<f32> {
    let c_in = x.rows();
    let len = x.cols();
    let out_len = conv1d_shape(len, k, stride);
    let mut cols = ws.take(c_in * k * out_len);
    for ci in 0..c_in {
        let xr = x.row(ci);
        for j in 0..k {
            let row = &mut cols[(ci * k + j) * out_len..(ci * k + j + 1) * out_len];
            for (t, c) in row.iter_mut().enumerate() {
                *c = xr[t * stride + j];
            }
        }
    }
    cols
}

/// GEMM half of the im2col 1-D convolution: `out = b ⊕ W₂ @ cols` where
/// `W₂` is the weight viewed as `(c_out, c_in·k)` and `cols` comes from
/// [`im2col_1d`]. Returns a pooled `(c_out, out_len)` tensor.
pub(crate) fn conv1d_forward_gemm(
    cols: &[f32],
    w: &Tensor,
    b: &[f32],
    out_len: usize,
    ws: &mut Workspace,
) -> Tensor {
    let c_out = w.shape().dim(0);
    let ck = w.shape().dim(1) * w.shape().dim(2);
    debug_assert_eq!(cols.len(), ck * out_len);
    let mut out = ws.take_tensor([c_out, out_len]);
    let os = out.as_mut_slice();
    for (o, row) in os.chunks_exact_mut(out_len).enumerate() {
        row.fill(b[o]);
    }
    gemm_into(c_out, ck, out_len, w.as_slice(), cols, os);
    out
}

/// Scatters 1-D column gradients back onto the input:
/// `gx[ci, t·stride + j] += gcols[ci·k + j, t]`, in a fixed loop order.
fn col2im_1d(gcols: &[f32], c_in: usize, len: usize, k: usize, stride: usize, gx: &mut [f32]) {
    let out_len = gcols.len() / (c_in * k);
    for ci in 0..c_in {
        let gxr = &mut gx[ci * len..(ci + 1) * len];
        for j in 0..k {
            let row = &gcols[(ci * k + j) * out_len..(ci * k + j + 1) * out_len];
            for (t, &g) in row.iter().enumerate() {
                gxr[t * stride + j] += g;
            }
        }
    }
}

/// Backward 1-D convolution on the im2col lowering. Recomputes the column
/// buffer, then `gW = gOut · colsᵀ`, `gCols = W₂ᵀ · gOut`, and a col2im
/// scatter for `gX`. All outputs are pooled. Returns `(gx, gw, gb)`.
pub(crate) fn conv1d_backward_gemm(
    x: &Tensor,
    w: &Tensor,
    k: usize,
    stride: usize,
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let c_out = w.shape().dim(0);
    let out_len = gout.cols();
    let ck = c_in * k;
    let cols = im2col_1d(x, k, stride, ws);
    let mut gb = ws.take(c_out);
    for (o, row) in gout.as_slice().chunks_exact(out_len).enumerate() {
        gb[o] = row.iter().sum();
    }
    let mut gw = ws.take_tensor(w.shape().clone());
    gemm_nt_into(c_out, out_len, ck, gout.as_slice(), &cols, gw.as_mut_slice());
    let mut gcols = ws.take(ck * out_len);
    gemm_tn_into(ck, c_out, out_len, w.as_slice(), gout.as_slice(), &mut gcols);
    let mut gx = ws.take_tensor(x.shape().clone());
    col2im_1d(&gcols, c_in, x.cols(), k, stride, gx.as_mut_slice());
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// Gathers 2-D convolution patches into a `(c_in·kh·kw, oh·ow)` column
/// buffer checked out of `ws`. Taps that fall in the zero padding stay at
/// the buffer's zero fill, so padding costs nothing extra in the GEMM.
///
/// The caller owns the returned buffer and must recycle it.
pub(crate) fn im2col_2d(
    x: &Tensor,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Vec<f32> {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (oh, ow) = conv2d_shape(h, w, kh, kw, stride, pad);
    let mut cols = ws.take(c_in * kh * kw * oh * ow);
    let xs = x.as_slice();
    for ci in 0..c_in {
        for dy in 0..kh {
            for dx in 0..kw {
                let row =
                    &mut cols[((ci * kh + dy) * kw + dx) * oh * ow..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + dy) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let x_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + dx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        row[oy * ow + ox] = xs[x_row + ix as usize];
                    }
                }
            }
        }
    }
    cols
}

/// GEMM half of the im2col 2-D convolution. `cols` comes from
/// [`im2col_2d`]; returns a pooled `(c_out, oh, ow)` tensor.
pub(crate) fn conv2d_forward_gemm(
    cols: &[f32],
    wt: &Tensor,
    b: &[f32],
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> Tensor {
    let c_out = wt.shape().dim(0);
    let ckk = wt.shape().dim(1) * wt.shape().dim(2) * wt.shape().dim(3);
    debug_assert_eq!(cols.len(), ckk * oh * ow);
    let mut out = ws.take_tensor([c_out, oh, ow]);
    let os = out.as_mut_slice();
    for (o, row) in os.chunks_exact_mut(oh * ow).enumerate() {
        row.fill(b[o]);
    }
    gemm_into(c_out, ckk, oh * ow, wt.as_slice(), cols, os);
    out
}

/// Scatters 2-D column gradients back onto the input, skipping taps in
/// the zero padding, in a fixed loop order.
#[allow(clippy::too_many_arguments)]
fn col2im_2d(
    gcols: &[f32],
    c_in: usize,
    h: usize,
    w: usize,
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    oh: usize,
    ow: usize,
    gx: &mut [f32],
) {
    for ci in 0..c_in {
        for dy in 0..kh {
            for dx in 0..kw {
                let row = &gcols[((ci * kh + dy) * kw + dx) * oh * ow..][..oh * ow];
                for oy in 0..oh {
                    let iy = (oy * stride + dy) as isize - pad as isize;
                    if iy < 0 || iy >= h as isize {
                        continue;
                    }
                    let x_row = (ci * h + iy as usize) * w;
                    for ox in 0..ow {
                        let ix = (ox * stride + dx) as isize - pad as isize;
                        if ix < 0 || ix >= w as isize {
                            continue;
                        }
                        gx[x_row + ix as usize] += row[oy * ow + ox];
                    }
                }
            }
        }
    }
}

/// Backward 2-D convolution on the im2col lowering (see
/// [`conv1d_backward_gemm`]). Returns pooled `(gx, gw, gb)`.
pub(crate) fn conv2d_backward_gemm(
    x: &Tensor,
    wt: &Tensor,
    stride: usize,
    pad: usize,
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let (c_in, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    let (oh, ow) = (gout.shape().dim(1), gout.shape().dim(2));
    let ckk = c_in * kh * kw;
    let cols = im2col_2d(x, kh, kw, stride, pad, ws);
    let mut gb = ws.take(c_out);
    for (o, row) in gout.as_slice().chunks_exact(oh * ow).enumerate() {
        gb[o] = row.iter().sum();
    }
    let mut gw = ws.take_tensor(wt.shape().clone());
    gemm_nt_into(c_out, oh * ow, ckk, gout.as_slice(), &cols, gw.as_mut_slice());
    let mut gcols = ws.take(ckk * oh * ow);
    gemm_tn_into(ckk, c_out, oh * ow, wt.as_slice(), gout.as_slice(), &mut gcols);
    let mut gx = ws.take_tensor(x.shape().clone());
    col2im_2d(&gcols, c_in, h, w, kh, kw, stride, pad, oh, ow, gx.as_mut_slice());
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// Forward adaptive max pooling of a `(c, h, w)` tensor to `(c, oh, ow)`.
/// Returns the output and, per output cell, the flat index of the winning
/// input element (for the backward scatter). Both buffers are checked out
/// of `ws`; ties break to the *first* maximum in window scan order
/// (`v > best`, strict), so reusing pooled buffers cannot change winners.
pub(crate) fn adaptive_max_pool2d_forward(
    x: &Tensor,
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<usize>) {
    let (c, h, w) = (x.shape().dim(0), x.shape().dim(1), x.shape().dim(2));
    let mut out = ws.take_tensor([c, oh, ow]);
    let mut argmax = ws.take_indices(c * oh * ow);
    for ci in 0..c {
        for oy in 0..oh {
            let (y0, y1) = adaptive_window(oy, oh, h);
            for ox in 0..ow {
                let (x0, x1) = adaptive_window(ox, ow, w);
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = (ci * h + y0) * w + x0;
                for iy in y0..y1 {
                    for ix in x0..x1 {
                        let off = (ci * h + iy) * w + ix;
                        let v = x.as_slice()[off];
                        if v > best {
                            best = v;
                            best_idx = off;
                        }
                    }
                }
                out.set(&[ci, oy, ox], best);
                argmax.push(best_idx);
            }
        }
    }
    (out, argmax)
}

/// Forward 1-D max pooling of a `(c, len)` matrix with window `k` and
/// stride `k` (non-overlapping, as in the original DGCNN head). Returns the
/// output and per-cell argmax flat indices, both checked out of `ws`;
/// ties break to the first maximum (strict `>`).
pub(crate) fn max_pool1d_forward(x: &Tensor, k: usize, ws: &mut Workspace) -> (Tensor, Vec<usize>) {
    let (c, len) = (x.rows(), x.cols());
    let out_len = len / k;
    assert!(out_len > 0, "pooling window {k} larger than input {len}");
    let mut out = ws.take_tensor([c, out_len]);
    let mut argmax = ws.take_indices(c * out_len);
    for ci in 0..c {
        for t in 0..out_len {
            let mut best = f32::NEG_INFINITY;
            let mut best_idx = ci * len + t * k;
            for j in 0..k {
                let off = ci * len + t * k + j;
                let v = x.as_slice()[off];
                if v > best {
                    best = v;
                    best_idx = off;
                }
            }
            out.set2(ci, t, best);
            argmax.push(best_idx);
        }
    }
    (out, argmax)
}

/// [`im2col_1d`] over a batch of `x.cols() / seg_len` equal-length
/// segments: `cols[ci·k + j, s·L + t] = x[ci, s·seg_len + t·stride + j]`
/// where `L` is the per-sample output length. Each sample's columns are
/// the contiguous range `[s·L, (s+1)·L)` of every row, so the batched
/// GEMM computes exactly the per-sample outputs side by side.
///
/// # Panics
///
/// Panics if `x.cols()` is not a multiple of `seg_len`.
pub(crate) fn im2col_1d_batched(
    x: &Tensor,
    k: usize,
    stride: usize,
    seg_len: usize,
    ws: &mut Workspace,
) -> Vec<f32> {
    let c_in = x.rows();
    let total = x.cols();
    assert!(
        seg_len > 0 && total.is_multiple_of(seg_len),
        "input width {total} is not a multiple of segment length {seg_len}"
    );
    let batch = total / seg_len;
    let out_len = conv1d_shape(seg_len, k, stride);
    let out_total = batch * out_len;
    let mut cols = ws.take(c_in * k * out_total);
    for ci in 0..c_in {
        let xr = x.row(ci);
        for j in 0..k {
            let row = &mut cols[(ci * k + j) * out_total..(ci * k + j + 1) * out_total];
            for s in 0..batch {
                let seg = &mut row[s * out_len..(s + 1) * out_len];
                let x_seg = &xr[s * seg_len..(s + 1) * seg_len];
                for (t, c) in seg.iter_mut().enumerate() {
                    *c = x_seg[t * stride + j];
                }
            }
        }
    }
    cols
}

/// Backward of the batched 1-D convolution (`x` is `(c_in, B·seg_len)`,
/// `gout` is `(c_out, B·L)`). Input gradients scatter per sample segment
/// in the per-sample col2im order; the shared `gw`/`gb` are unstacked per
/// sample and combined in sample order (see the module docs on bitwise
/// parity). Returns pooled `(gx, gw, gb)`.
pub(crate) fn conv1d_batched_backward(
    x: &Tensor,
    w: &Tensor,
    k: usize,
    stride: usize,
    seg_len: usize,
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let total = x.cols();
    let c_out = w.shape().dim(0);
    let batch = total / seg_len;
    let out_len = conv1d_shape(seg_len, k, stride);
    let out_total = batch * out_len;
    debug_assert_eq!(gout.cols(), out_total);
    let ck = c_in * k;
    let cols = im2col_1d_batched(x, k, stride, seg_len, ws);
    let gs = gout.as_slice();

    // gb: per-sample segment sums added in sample order — the reduction
    // chain the per-sample gradient buffer uses.
    let mut gb = ws.take(c_out);
    for s in 0..batch {
        for (o, g) in gb.iter_mut().enumerate() {
            *g += gs[o * out_total + s * out_len..][..out_len].iter().sum::<f32>();
        }
    }

    // gW: per-sample GEMM into a re-zeroed temp, combined elementwise in
    // sample order. The sample's gout/cols are column ranges of row-major
    // matrices, so they are copied into contiguous temps first.
    let mut gw = ws.take_tensor(w.shape().clone());
    let mut temp_g = ws.take(c_out * out_len);
    let mut temp_c = ws.take(ck * out_len);
    let mut temp_gw = ws.take(w.len());
    for s in 0..batch {
        for o in 0..c_out {
            temp_g[o * out_len..(o + 1) * out_len]
                .copy_from_slice(&gs[o * out_total + s * out_len..][..out_len]);
        }
        for r in 0..ck {
            temp_c[r * out_len..(r + 1) * out_len]
                .copy_from_slice(&cols[r * out_total + s * out_len..][..out_len]);
        }
        temp_gw.fill(0.0);
        gemm_nt_into(c_out, out_len, ck, &temp_g, &temp_c, &mut temp_gw);
        for (acc, &g) in gw.as_mut_slice().iter_mut().zip(temp_gw.iter()) {
            *acc += g;
        }
    }
    ws.recycle(temp_g);
    ws.recycle(temp_c);
    ws.recycle(temp_gw);

    // gCols: one full transpose-GEMM. Each output column reads only its
    // own column of gOut, so every sample's chain is untouched.
    let mut gcols = ws.take(ck * out_total);
    gemm_tn_into(ck, c_out, out_total, w.as_slice(), gout.as_slice(), &mut gcols);

    // gX: per-sample col2im scatter in the per-sample order (ci, j, t).
    let mut gx = ws.take_tensor(x.shape().clone());
    let gxs = gx.as_mut_slice();
    for s in 0..batch {
        for ci in 0..c_in {
            let gxr = &mut gxs[ci * total + s * seg_len..][..seg_len];
            for j in 0..k {
                let row = &gcols[(ci * k + j) * out_total + s * out_len..][..out_len];
                for (t, &g) in row.iter().enumerate() {
                    gxr[t * stride + j] += g;
                }
            }
        }
    }
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// Per-sample output dims of a batched 2-D convolution over `dims`.
pub(crate) fn conv2d_batched_out_dims(
    dims: &[(usize, usize)],
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
) -> Vec<(usize, usize)> {
    dims.iter().map(|&(h, w)| conv2d_shape(h, w, kh, kw, stride, pad)).collect()
}

/// [`im2col_2d`] over a column-stacked batch: `x` is `(c_in, Σ hⱼ·wⱼ)`
/// with sample `j`'s `(hⱼ, wⱼ)` map flattened into the column range
/// starting at `Σ_{i<j} hᵢ·wᵢ` of every row. Produces a
/// `(c_in·kh·kw, Σ ohⱼ·owⱼ)` column buffer whose sample column ranges
/// are laid out the same way; padding taps stay at the zero fill.
pub(crate) fn im2col_2d_batched(
    x: &Tensor,
    dims: &[(usize, usize)],
    kh: usize,
    kw: usize,
    stride: usize,
    pad: usize,
    ws: &mut Workspace,
) -> Vec<f32> {
    let c_in = x.rows();
    let total_in = x.cols();
    debug_assert_eq!(total_in, dims.iter().map(|&(h, w)| h * w).sum::<usize>());
    let out_dims = conv2d_batched_out_dims(dims, kh, kw, stride, pad);
    let out_total: usize = out_dims.iter().map(|&(oh, ow)| oh * ow).sum();
    let mut cols = ws.take(c_in * kh * kw * out_total);
    let xs = x.as_slice();
    let mut in_off = 0;
    let mut out_off = 0;
    for (&(h, w), &(oh, ow)) in dims.iter().zip(&out_dims) {
        for ci in 0..c_in {
            for dy in 0..kh {
                for dx in 0..kw {
                    let row =
                        &mut cols[((ci * kh + dy) * kw + dx) * out_total + out_off..][..oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = ci * total_in + in_off + iy as usize * w;
                        for ox in 0..ow {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            row[oy * ow + ox] = xs[x_row + ix as usize];
                        }
                    }
                }
            }
        }
        in_off += h * w;
        out_off += oh * ow;
    }
    cols
}

/// GEMM half of the batched im2col 2-D convolution. Unlike
/// [`conv2d_forward_gemm`], the output is the flat `(c_out, Σ ohⱼ·owⱼ)`
/// column-stacked matrix (per-sample maps are not materialized).
pub(crate) fn conv2d_batched_forward_gemm(
    cols: &[f32],
    wt: &Tensor,
    b: &[f32],
    out_total: usize,
    ws: &mut Workspace,
) -> Tensor {
    let c_out = wt.shape().dim(0);
    let ckk = wt.shape().dim(1) * wt.shape().dim(2) * wt.shape().dim(3);
    debug_assert_eq!(cols.len(), ckk * out_total);
    let mut out = ws.take_tensor([c_out, out_total]);
    let os = out.as_mut_slice();
    for (o, row) in os.chunks_exact_mut(out_total).enumerate() {
        row.fill(b[o]);
    }
    gemm_into(c_out, ckk, out_total, wt.as_slice(), cols, os);
    out
}

/// Backward of the batched 2-D convolution (`x` column-stacked as in
/// [`im2col_2d_batched`]). Same unstacking strategy as
/// [`conv1d_batched_backward`]. Returns pooled `(gx, gw, gb)`.
pub(crate) fn conv2d_batched_backward(
    x: &Tensor,
    wt: &Tensor,
    stride: usize,
    pad: usize,
    dims: &[(usize, usize)],
    gout: &Tensor,
    ws: &mut Workspace,
) -> (Tensor, Tensor, Vec<f32>) {
    let c_in = x.rows();
    let total_in = x.cols();
    let (c_out, kh, kw) = (wt.shape().dim(0), wt.shape().dim(2), wt.shape().dim(3));
    let ckk = c_in * kh * kw;
    let out_dims = conv2d_batched_out_dims(dims, kh, kw, stride, pad);
    let out_total = gout.cols();
    debug_assert_eq!(out_total, out_dims.iter().map(|&(oh, ow)| oh * ow).sum::<usize>());
    let cols = im2col_2d_batched(x, dims, kh, kw, stride, pad, ws);
    let gs = gout.as_slice();

    let mut gb = ws.take(c_out);
    let mut out_off = 0;
    for &(oh, ow) in &out_dims {
        for (o, g) in gb.iter_mut().enumerate() {
            *g += gs[o * out_total + out_off..][..oh * ow].iter().sum::<f32>();
        }
        out_off += oh * ow;
    }

    let seg_max = out_dims.iter().map(|&(oh, ow)| oh * ow).max().unwrap_or(0);
    let mut gw = ws.take_tensor(wt.shape().clone());
    let mut temp_g = ws.take(c_out * seg_max);
    let mut temp_c = ws.take(ckk * seg_max);
    let mut temp_gw = ws.take(wt.len());
    let mut out_off = 0;
    for &(oh, ow) in &out_dims {
        let sz = oh * ow;
        for o in 0..c_out {
            temp_g[o * sz..(o + 1) * sz].copy_from_slice(&gs[o * out_total + out_off..][..sz]);
        }
        for r in 0..ckk {
            temp_c[r * sz..(r + 1) * sz].copy_from_slice(&cols[r * out_total + out_off..][..sz]);
        }
        temp_gw.fill(0.0);
        gemm_nt_into(c_out, sz, ckk, &temp_g[..c_out * sz], &temp_c[..ckk * sz], &mut temp_gw);
        for (acc, &g) in gw.as_mut_slice().iter_mut().zip(temp_gw.iter()) {
            *acc += g;
        }
        out_off += sz;
    }
    ws.recycle(temp_g);
    ws.recycle(temp_c);
    ws.recycle(temp_gw);

    let mut gcols = ws.take(ckk * out_total);
    gemm_tn_into(ckk, c_out, out_total, wt.as_slice(), gout.as_slice(), &mut gcols);

    let mut gx = ws.take_tensor(x.shape().clone());
    let gxs = gx.as_mut_slice();
    let mut in_off = 0;
    let mut out_off = 0;
    for (&(h, w), &(oh, ow)) in dims.iter().zip(&out_dims) {
        // Per-sample col2im in the per-sample order (ci, dy, dx, oy, ox).
        for ci in 0..c_in {
            for dy in 0..kh {
                for dx in 0..kw {
                    let row = &gcols[((ci * kh + dy) * kw + dx) * out_total + out_off..][..oh * ow];
                    for oy in 0..oh {
                        let iy = (oy * stride + dy) as isize - pad as isize;
                        if iy < 0 || iy >= h as isize {
                            continue;
                        }
                        let x_row = ci * total_in + in_off + iy as usize * w;
                        for ox in 0..ow {
                            let ix = (ox * stride + dx) as isize - pad as isize;
                            if ix < 0 || ix >= w as isize {
                                continue;
                            }
                            gxs[x_row + ix as usize] += row[oy * ow + ox];
                        }
                    }
                }
            }
        }
        in_off += h * w;
        out_off += oh * ow;
    }
    ws.recycle(cols);
    ws.recycle(gcols);
    (gx, gw, gb)
}

/// [`adaptive_max_pool2d_forward`] over a column-stacked batch: `x` is
/// `(c, Σ hⱼ·wⱼ)`, the output is `(c, B·oh·ow)` with sample `j`'s pooled
/// map in the column range `[j·oh·ow, (j+1)·oh·ow)`. Argmax indices are
/// pushed in ascending output flat order (channel-major, then sample),
/// so the standard enumerate-scatter backward applies unchanged; within
/// each `(sample, channel)` the window scan order — and hence strict-`>`
/// tie-breaking — matches the per-sample kernel exactly.
pub(crate) fn adaptive_max_pool2d_batched_forward(
    x: &Tensor,
    dims: &[(usize, usize)],
    oh: usize,
    ow: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<usize>) {
    let c = x.rows();
    let total_in = x.cols();
    debug_assert_eq!(total_in, dims.iter().map(|&(h, w)| h * w).sum::<usize>());
    let out_cols = dims.len() * oh * ow;
    let mut out = ws.take_tensor([c, out_cols]);
    let mut argmax = ws.take_indices(c * out_cols);
    let offsets: Vec<usize> = dims
        .iter()
        .scan(0usize, |acc, &(h, w)| {
            let off = *acc;
            *acc += h * w;
            Some(off)
        })
        .collect();
    let xs = x.as_slice();
    for ci in 0..c {
        for (s, (&(h, w), &in_off)) in dims.iter().zip(&offsets).enumerate() {
            for oy in 0..oh {
                let (y0, y1) = adaptive_window(oy, oh, h);
                for ox in 0..ow {
                    let (x0, x1) = adaptive_window(ox, ow, w);
                    let mut best = f32::NEG_INFINITY;
                    let mut best_idx = ci * total_in + in_off + y0 * w + x0;
                    for iy in y0..y1 {
                        for ix in x0..x1 {
                            let off = ci * total_in + in_off + iy * w + ix;
                            let v = xs[off];
                            if v > best {
                                best = v;
                                best_idx = off;
                            }
                        }
                    }
                    out.set2(ci, (s * oh + oy) * ow + ox, best);
                    argmax.push(best_idx);
                }
            }
        }
    }
    (out, argmax)
}

/// [`max_pool1d_forward`] over a batch of equal `seg_len` segments.
/// Windows never straddle a segment boundary and each segment's tail
/// (`seg_len % k`) is dropped exactly as the per-sample kernel drops it.
/// Argmax indices are pushed in ascending output flat order.
pub(crate) fn max_pool1d_batched_forward(
    x: &Tensor,
    k: usize,
    seg_len: usize,
    ws: &mut Workspace,
) -> (Tensor, Vec<usize>) {
    let (c, total) = (x.rows(), x.cols());
    assert!(
        seg_len > 0 && total.is_multiple_of(seg_len),
        "input width {total} is not a multiple of segment length {seg_len}"
    );
    let batch = total / seg_len;
    let out_len = seg_len / k;
    assert!(out_len > 0, "pooling window {k} larger than segment {seg_len}");
    let mut out = ws.take_tensor([c, batch * out_len]);
    let mut argmax = ws.take_indices(c * batch * out_len);
    let xs = x.as_slice();
    for ci in 0..c {
        for s in 0..batch {
            for t in 0..out_len {
                let base = ci * total + s * seg_len + t * k;
                let mut best = f32::NEG_INFINITY;
                let mut best_idx = base;
                for j in 0..k {
                    let v = xs[base + j];
                    if v > best {
                        best = v;
                        best_idx = base + j;
                    }
                }
                out.set2(ci, s * out_len + t, best);
                argmax.push(best_idx);
            }
        }
    }
    (out, argmax)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn conv1d_shape_basic() {
        assert_eq!(conv1d_shape(10, 3, 1), 8);
        assert_eq!(conv1d_shape(10, 5, 5), 2);
        assert_eq!(conv1d_shape(10, 10, 10), 1);
    }

    #[test]
    #[should_panic(expected = "larger than input")]
    fn conv1d_shape_rejects_big_kernel() {
        conv1d_shape(3, 5, 1);
    }

    #[test]
    fn conv2d_shape_with_padding() {
        assert_eq!(conv2d_shape(5, 7, 3, 3, 1, 1), (5, 7));
        assert_eq!(conv2d_shape(4, 4, 2, 2, 2, 0), (2, 2));
    }

    #[test]
    fn adaptive_window_partitions_input() {
        // 7 inputs into 3 windows: PyTorch gives [0,3), [2,5), [4,7).
        assert_eq!(adaptive_window(0, 3, 7), (0, 3));
        assert_eq!(adaptive_window(1, 3, 7), (2, 5));
        assert_eq!(adaptive_window(2, 3, 7), (4, 7));
    }

    #[test]
    fn adaptive_window_when_output_larger_than_input() {
        // 2 inputs into 3 windows: every window non-empty.
        for i in 0..3 {
            let (s, e) = adaptive_window(i, 3, 2);
            assert!(s < e, "window {i} empty: ({s},{e})");
            assert!(e <= 2);
        }
    }

    #[test]
    fn conv1d_identity_kernel() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0]]);
        let w = Tensor::from_vec(vec![1.0], [1, 1, 1]);
        let y = conv1d_forward(&x, &w, &[0.0], 1, 1);
        assert_eq!(y.as_slice(), x.as_slice());
    }

    #[test]
    fn conv1d_sums_window() {
        let x = Tensor::from_rows(&[&[1.0, 2.0, 3.0, 4.0]]);
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 1, 2]);
        let y = conv1d_forward(&x, &w, &[0.0], 2, 2);
        assert_eq!(y.as_slice(), &[3.0, 7.0]);
    }

    #[test]
    fn conv2d_averaging_kernel() {
        let x = Tensor::from_vec((1..=4).map(|v| v as f32).collect(), [1, 2, 2]);
        let w = Tensor::from_vec(vec![0.25; 4], [1, 1, 2, 2]);
        let y = conv2d_forward(&x, &w, &[0.0], 1, 0);
        assert_eq!(y.as_slice(), &[2.5]);
    }

    #[test]
    fn conv2d_padding_preserves_size() {
        let x = Tensor::ones([1, 3, 3]);
        let w = Tensor::from_vec(vec![1.0; 9], [1, 1, 3, 3]);
        let y = conv2d_forward(&x, &w, &[0.0], 1, 1);
        assert_eq!(y.shape().dims(), &[1, 3, 3]);
        // Center cell sees all nine ones; corner sees four.
        assert_eq!(y.at(&[0, 1, 1]), 9.0);
        assert_eq!(y.at(&[0, 0, 0]), 4.0);
    }

    #[test]
    fn amp_forward_picks_window_maxima() {
        // Fig. 6 style: pool a 4x7 map (1 channel) into 3x3.
        let x = Tensor::from_vec((0..28).map(|v| v as f32).collect(), [1, 4, 7]);
        let (y, argmax) = adaptive_max_pool2d_forward(&x, 3, 3, &mut Workspace::new());
        assert_eq!(y.shape().dims(), &[1, 3, 3]);
        // Bottom-right window must contain the global max (27).
        assert_eq!(y.at(&[0, 2, 2]), 27.0);
        assert_eq!(argmax[8], 27);
    }

    #[test]
    fn maxpool1d_nonoverlapping() {
        let x = Tensor::from_rows(&[&[1.0, 5.0, 2.0, 4.0]]);
        let (y, argmax) = max_pool1d_forward(&x, 2, &mut Workspace::new());
        assert_eq!(y.as_slice(), &[5.0, 4.0]);
        assert_eq!(argmax, vec![1, 3]);
    }

    #[test]
    fn amp_tie_breaking_first_max_wins() {
        // All-equal input: every window's winner must be its first cell in
        // scan order, and pooled-buffer reuse must not change that.
        let mut ws = Workspace::new();
        let x = Tensor::ones([1, 4, 4]);
        let (y, argmax) = adaptive_max_pool2d_forward(&x, 2, 2, &mut ws);
        assert!(y.as_slice().iter().all(|&v| v == 1.0));
        assert_eq!(argmax, vec![0, 2, 8, 10]);
        // Recycle and pool a different tensor through the same workspace:
        // stale winners from the first call must not leak.
        ws.recycle_indices(argmax);
        ws.recycle_tensor(y);
        let x2 = Tensor::from_vec(vec![2.0; 16], [1, 4, 4]);
        let (y2, argmax2) = adaptive_max_pool2d_forward(&x2, 2, 2, &mut ws);
        assert!(y2.as_slice().iter().all(|&v| v == 2.0));
        assert_eq!(argmax2, vec![0, 2, 8, 10]);
        assert!(ws.stats().hits >= 2, "second call should reuse pooled buffers");
    }

    #[test]
    fn maxpool1d_tie_breaking_first_max_wins() {
        let x = Tensor::from_rows(&[&[7.0, 7.0, 7.0, 7.0]]);
        let (y, argmax) = max_pool1d_forward(&x, 2, &mut Workspace::new());
        assert_eq!(y.as_slice(), &[7.0, 7.0]);
        assert_eq!(argmax, vec![0, 2]);
    }

    #[test]
    fn conv1d_gemm_matches_naive_forward_and_backward() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(21);
        let mut ws = Workspace::new();
        for (c_in, len, c_out, k, stride) in
            [(1, 5, 1, 1, 1), (2, 8, 3, 2, 2), (3, 9, 4, 3, 1), (1, 12, 16, 4, 4), (2, 7, 2, 7, 7)]
        {
            let x = Tensor::rand_uniform([c_in, len], -1.0, 1.0, &mut rng);
            let w = Tensor::rand_uniform([c_out, c_in, k], -1.0, 1.0, &mut rng);
            let b: Vec<f32> = (0..c_out).map(|i| 0.1 * i as f32 - 0.2).collect();
            let out_len = conv1d_shape(len, k, stride);

            let naive = conv1d_forward(&x, &w, &b, k, stride);
            let cols = im2col_1d(&x, k, stride, &mut ws);
            let gemm = conv1d_forward_gemm(&cols, &w, &b, out_len, &mut ws);
            ws.recycle(cols);
            assert_eq!(gemm.shape(), naive.shape());
            for (g, n) in gemm.as_slice().iter().zip(naive.as_slice()) {
                assert!((g - n).abs() < 1e-5, "fwd ({c_in},{len},{c_out},{k},{stride}): {g} vs {n}");
            }

            let gout = Tensor::rand_uniform(naive.shape().clone(), -1.0, 1.0, &mut rng);
            let (ngx, ngw, ngb) = conv1d_backward(&x, &w, k, stride, &gout);
            let (ggx, ggw, ggb) = conv1d_backward_gemm(&x, &w, k, stride, &gout, &mut ws);
            for (g, n) in ggx.as_slice().iter().zip(ngx.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gx: {g} vs {n}");
            }
            for (g, n) in ggw.as_slice().iter().zip(ngw.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gw: {g} vs {n}");
            }
            for (g, n) in ggb.iter().zip(&ngb) {
                assert!((g - n).abs() < 1e-4, "gb: {g} vs {n}");
            }
            ws.recycle_tensor(ggx);
            ws.recycle_tensor(ggw);
            ws.recycle(ggb);
            ws.recycle_tensor(gemm);
        }
    }

    #[test]
    fn conv2d_gemm_matches_naive_forward_and_backward() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(22);
        let mut ws = Workspace::new();
        for (c_in, h, w_dim, c_out, kh, kw, stride, pad) in [
            (1, 3, 3, 1, 1, 1, 1, 0),
            (2, 5, 5, 3, 3, 3, 1, 1),
            (1, 6, 4, 2, 3, 3, 2, 1),
            (3, 4, 7, 2, 2, 4, 1, 0),
            (2, 5, 5, 4, 3, 3, 2, 2),
        ] {
            let x = Tensor::rand_uniform([c_in, h, w_dim], -1.0, 1.0, &mut rng);
            let wt = Tensor::rand_uniform([c_out, c_in, kh, kw], -1.0, 1.0, &mut rng);
            let b: Vec<f32> = (0..c_out).map(|i| 0.05 * i as f32 + 0.1).collect();
            let (oh, ow) = conv2d_shape(h, w_dim, kh, kw, stride, pad);

            let naive = conv2d_forward(&x, &wt, &b, stride, pad);
            let cols = im2col_2d(&x, kh, kw, stride, pad, &mut ws);
            let gemm = conv2d_forward_gemm(&cols, &wt, &b, oh, ow, &mut ws);
            ws.recycle(cols);
            assert_eq!(gemm.shape(), naive.shape());
            for (g, n) in gemm.as_slice().iter().zip(naive.as_slice()) {
                assert!(
                    (g - n).abs() < 1e-5,
                    "fwd ({c_in},{h},{w_dim},{c_out},{kh},{kw},{stride},{pad}): {g} vs {n}"
                );
            }

            let gout = Tensor::rand_uniform(naive.shape().clone(), -1.0, 1.0, &mut rng);
            let (ngx, ngw, ngb) = conv2d_backward(&x, &wt, stride, pad, &gout);
            let (ggx, ggw, ggb) = conv2d_backward_gemm(&x, &wt, stride, pad, &gout, &mut ws);
            for (g, n) in ggx.as_slice().iter().zip(ngx.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gx: {g} vs {n}");
            }
            for (g, n) in ggw.as_slice().iter().zip(ngw.as_slice()) {
                assert!((g - n).abs() < 1e-4, "gw: {g} vs {n}");
            }
            for (g, n) in ggb.iter().zip(&ngb) {
                assert!((g - n).abs() < 1e-4, "gb: {g} vs {n}");
            }
            ws.recycle_tensor(ggx);
            ws.recycle_tensor(ggw);
            ws.recycle(ggb);
            ws.recycle_tensor(gemm);
        }
    }

    #[test]
    fn gemm_lowering_is_bitwise_deterministic() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(33);
        let x = Tensor::rand_uniform([2, 6, 6], -1.0, 1.0, &mut rng);
        let wt = Tensor::rand_uniform([3, 2, 3, 3], -1.0, 1.0, &mut rng);
        let b = vec![0.1, 0.2, 0.3];
        let run = || {
            // A fresh workspace and a warmed one must agree bitwise.
            let mut ws = Workspace::new();
            let mut last = None;
            for _ in 0..2 {
                let cols = im2col_2d(&x, 3, 3, 1, 1, &mut ws);
                let out = conv2d_forward_gemm(&cols, &wt, &b, 6, 6, &mut ws);
                ws.recycle(cols);
                if let Some(prev) = last.take() {
                    assert_eq!(prev, out, "warm pool changed the numbers");
                }
                last = Some(out);
            }
            last.unwrap()
        };
        assert_eq!(run(), run(), "runs must be bitwise identical");
    }

    #[test]
    fn naive_backward_does_not_skip_zero_gradients() {
        // A gout of exactly zero must flow through the same code path —
        // gradients are zero either way, but this pins the no-skip
        // contract by checking the all-zero case still writes zeros (not
        // stale values) everywhere, matching the gemm path bitwise.
        let x = Tensor::ones([1, 4]);
        let w = Tensor::from_vec(vec![1.0, 1.0], [1, 1, 2]);
        let gout = Tensor::zeros([1, 2]);
        let (gx, gw, gb) = conv1d_backward(&x, &w, 2, 2, &gout);
        let mut ws = Workspace::new();
        let (ggx, ggw, ggb) = conv1d_backward_gemm(&x, &w, 2, 2, &gout, &mut ws);
        assert_eq!(gx.as_slice(), ggx.as_slice());
        assert_eq!(gw.as_slice(), ggw.as_slice());
        assert_eq!(gb, ggb);
    }

    #[test]
    fn conv1d_backward_grads_match_finite_difference() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(3);
        let x = Tensor::rand_uniform([2, 6], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([3, 2, 2], -1.0, 1.0, &mut rng);
        let b = vec![0.1, -0.2, 0.3];
        let y = conv1d_forward(&x, &w, &b, 2, 2);
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, _gb) = conv1d_backward(&x, &w, 2, 2, &gout);

        let eps = 1e-3;
        // Check one x element and one w element by central differences.
        let mut xp = x.clone();
        xp.as_mut_slice()[3] += eps;
        let mut xm = x.clone();
        xm.as_mut_slice()[3] -= eps;
        let num = (conv1d_forward(&xp, &w, &b, 2, 2).sum() - conv1d_forward(&xm, &w, &b, 2, 2).sum()) / (2.0 * eps);
        assert!((num - gx.as_slice()[3]).abs() < 1e-2, "{num} vs {}", gx.as_slice()[3]);

        let mut wp = w.clone();
        wp.as_mut_slice()[5] += eps;
        let mut wm = w.clone();
        wm.as_mut_slice()[5] -= eps;
        let numw = (conv1d_forward(&x, &wp, &b, 2, 2).sum() - conv1d_forward(&x, &wm, &b, 2, 2).sum()) / (2.0 * eps);
        assert!((numw - gw.as_slice()[5]).abs() < 1e-2);
    }

    #[test]
    fn conv2d_backward_grads_match_finite_difference() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(4);
        let x = Tensor::rand_uniform([2, 4, 4], -1.0, 1.0, &mut rng);
        let w = Tensor::rand_uniform([2, 2, 3, 3], -1.0, 1.0, &mut rng);
        let b = vec![0.0, 0.0];
        let y = conv2d_forward(&x, &w, &b, 1, 1);
        let gout = Tensor::ones(y.shape().clone());
        let (gx, gw, gb) = conv2d_backward(&x, &w, 1, 1, &gout);
        assert_eq!(gb, vec![16.0, 16.0]);

        let eps = 1e-2;
        for &idx in &[0usize, 7, 20] {
            let mut xp = x.clone();
            xp.as_mut_slice()[idx] += eps;
            let mut xm = x.clone();
            xm.as_mut_slice()[idx] -= eps;
            let num = (conv2d_forward(&xp, &w, &b, 1, 1).sum() - conv2d_forward(&xm, &w, &b, 1, 1).sum()) / (2.0 * eps);
            assert!((num - gx.as_slice()[idx]).abs() < 1e-2);
        }
        for &idx in &[0usize, 9, 17] {
            let mut wp = w.clone();
            wp.as_mut_slice()[idx] += eps;
            let mut wm = w.clone();
            wm.as_mut_slice()[idx] -= eps;
            let num = (conv2d_forward(&x, &wp, &b, 1, 1).sum() - conv2d_forward(&x, &wm, &b, 1, 1).sum()) / (2.0 * eps);
            assert!((num - gw.as_slice()[idx]).abs() < 1e-1);
        }
    }

    /// Adds `parts` elementwise in order starting from zero — the exact
    /// reduction chain the per-sample gradient buffers use.
    fn chain_add(parts: &[&[f32]]) -> Vec<f32> {
        let mut acc = vec![0.0f32; parts[0].len()];
        for p in parts {
            for (a, &g) in acc.iter_mut().zip(*p) {
                *a += g;
            }
        }
        acc
    }

    /// Stacks per-sample `(c, lenⱼ)` matrices column-wise into `(c, Σ lenⱼ)`.
    fn hstack(samples: &[&Tensor]) -> Tensor {
        let c = samples[0].rows();
        let total: usize = samples.iter().map(|s| s.len() / c).sum();
        let mut data = Vec::with_capacity(c * total);
        for ci in 0..c {
            for s in samples {
                let w = s.len() / c;
                data.extend_from_slice(&s.as_slice()[ci * w..(ci + 1) * w]);
            }
        }
        Tensor::from_vec(data, [c, total])
    }

    #[test]
    fn conv1d_batched_is_bitwise_equal_to_per_sample() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(41);
        let mut ws = Workspace::new();
        let (c_in, c_out, k, stride, seg_len, batch) = (2, 3, 3, 1, 9, 3);
        let out_len = conv1d_shape(seg_len, k, stride);
        let samples: Vec<Tensor> =
            (0..batch).map(|_| Tensor::rand_uniform([c_in, seg_len], -1.0, 1.0, &mut rng)).collect();
        let w = Tensor::rand_uniform([c_out, c_in, k], -1.0, 1.0, &mut rng);
        let b: Vec<f32> = (0..c_out).map(|i| 0.1 * i as f32 - 0.1).collect();
        let gouts: Vec<Tensor> =
            (0..batch).map(|_| Tensor::rand_uniform([c_out, out_len], -1.0, 1.0, &mut rng)).collect();

        let x = hstack(&samples.iter().collect::<Vec<_>>());
        let cols = im2col_1d_batched(&x, k, stride, seg_len, &mut ws);
        let out = conv1d_forward_gemm(&cols, &w, &b, batch * out_len, &mut ws);
        ws.recycle(cols);
        let gout = hstack(&gouts.iter().collect::<Vec<_>>());
        let (gx, gw, gb) = conv1d_batched_backward(&x, &w, k, stride, seg_len, &gout, &mut ws);

        let mut per_gw = Vec::new();
        let mut per_gb = Vec::new();
        for s in 0..batch {
            let scols = im2col_1d(&samples[s], k, stride, &mut ws);
            let sout = conv1d_forward_gemm(&scols, &w, &b, out_len, &mut ws);
            ws.recycle(scols);
            for o in 0..c_out {
                assert_eq!(
                    &out.row(o)[s * out_len..(s + 1) * out_len],
                    sout.row(o),
                    "fwd sample {s} channel {o}"
                );
            }
            let (sgx, sgw, sgb) =
                conv1d_backward_gemm(&samples[s], &w, k, stride, &gouts[s], &mut ws);
            for ci in 0..c_in {
                assert_eq!(
                    &gx.row(ci)[s * seg_len..(s + 1) * seg_len],
                    sgx.row(ci),
                    "gx sample {s} channel {ci}"
                );
            }
            per_gw.push(sgw.as_slice().to_vec());
            per_gb.push(sgb.clone());
        }
        let chained_gw = chain_add(&per_gw.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let chained_gb = chain_add(&per_gb.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(gw.as_slice(), chained_gw.as_slice(), "gw chain");
        assert_eq!(gb, chained_gb, "gb chain");
    }

    #[test]
    fn conv2d_batched_is_bitwise_equal_to_per_sample_with_varied_dims() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(42);
        let mut ws = Workspace::new();
        let (c_in, c_out, kh, kw, stride, pad) = (2, 3, 3, 3, 1, 1);
        let dims = [(4, 5), (3, 3), (5, 2)];
        let samples: Vec<Tensor> = dims
            .iter()
            .map(|&(h, w)| Tensor::rand_uniform([c_in, h, w], -1.0, 1.0, &mut rng))
            .collect();
        let wt = Tensor::rand_uniform([c_out, c_in, kh, kw], -1.0, 1.0, &mut rng);
        let b: Vec<f32> = (0..c_out).map(|i| 0.05 * i as f32).collect();
        let out_dims = conv2d_batched_out_dims(&dims, kh, kw, stride, pad);
        let gouts: Vec<Tensor> = out_dims
            .iter()
            .map(|&(oh, ow)| Tensor::rand_uniform([c_out, oh, ow], -1.0, 1.0, &mut rng))
            .collect();

        // Column-stack each sample's flattened maps per channel row.
        let flat: Vec<Tensor> = samples
            .iter()
            .zip(&dims)
            .map(|(s, &(h, w))| s.reshape([c_in, h * w]))
            .collect();
        let x = hstack(&flat.iter().collect::<Vec<_>>());
        let out_total: usize = out_dims.iter().map(|&(oh, ow)| oh * ow).sum();
        let cols = im2col_2d_batched(&x, &dims, kh, kw, stride, pad, &mut ws);
        let out = conv2d_batched_forward_gemm(&cols, &wt, &b, out_total, &mut ws);
        ws.recycle(cols);
        let gflat: Vec<Tensor> = gouts
            .iter()
            .zip(&out_dims)
            .map(|(g, &(oh, ow))| g.reshape([c_out, oh * ow]))
            .collect();
        let gout = hstack(&gflat.iter().collect::<Vec<_>>());
        let (gx, gw, gb) = conv2d_batched_backward(&x, &wt, stride, pad, &dims, &gout, &mut ws);

        let mut per_gw = Vec::new();
        let mut per_gb = Vec::new();
        let mut in_off = 0;
        let mut out_off = 0;
        for s in 0..dims.len() {
            let (h, w) = dims[s];
            let (oh, ow) = out_dims[s];
            let scols = im2col_2d(&samples[s], kh, kw, stride, pad, &mut ws);
            let sout = conv2d_forward_gemm(&scols, &wt, &b, oh, ow, &mut ws);
            ws.recycle(scols);
            for o in 0..c_out {
                assert_eq!(
                    &out.row(o)[out_off..out_off + oh * ow],
                    &sout.as_slice()[o * oh * ow..(o + 1) * oh * ow],
                    "fwd sample {s} channel {o}"
                );
            }
            let (sgx, sgw, sgb) =
                conv2d_backward_gemm(&samples[s], &wt, stride, pad, &gouts[s], &mut ws);
            for ci in 0..c_in {
                assert_eq!(
                    &gx.row(ci)[in_off..in_off + h * w],
                    &sgx.as_slice()[ci * h * w..(ci + 1) * h * w],
                    "gx sample {s} channel {ci}"
                );
            }
            per_gw.push(sgw.as_slice().to_vec());
            per_gb.push(sgb.clone());
            in_off += h * w;
            out_off += oh * ow;
        }
        let chained_gw = chain_add(&per_gw.iter().map(Vec::as_slice).collect::<Vec<_>>());
        let chained_gb = chain_add(&per_gb.iter().map(Vec::as_slice).collect::<Vec<_>>());
        assert_eq!(gw.as_slice(), chained_gw.as_slice(), "gw chain");
        assert_eq!(gb, chained_gb, "gb chain");
    }

    #[test]
    fn amp_batched_matches_per_sample_outputs_and_winners() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(43);
        let mut ws = Workspace::new();
        let (c, oh, ow) = (3, 3, 3);
        let dims = [(4, 7), (3, 3), (2, 9)];
        let total_in: usize = dims.iter().map(|&(h, w)| h * w).sum();
        let samples: Vec<Tensor> =
            dims.iter().map(|&(h, w)| Tensor::rand_uniform([c, h, w], -1.0, 1.0, &mut rng)).collect();
        let flat: Vec<Tensor> = samples
            .iter()
            .zip(&dims)
            .map(|(s, &(h, w))| s.reshape([c, h * w]))
            .collect();
        let x = hstack(&flat.iter().collect::<Vec<_>>());
        let (out, argmax) = adaptive_max_pool2d_batched_forward(&x, &dims, oh, ow, &mut ws);
        let mut in_off = 0;
        for s in 0..dims.len() {
            let (h, w) = dims[s];
            let (sout, sarg) = adaptive_max_pool2d_forward(&samples[s], oh, ow, &mut ws);
            for ci in 0..c {
                assert_eq!(
                    &out.row(ci)[s * oh * ow..(s + 1) * oh * ow],
                    &sout.as_slice()[ci * oh * ow..(ci + 1) * oh * ow],
                    "out sample {s} channel {ci}"
                );
                for cell in 0..oh * ow {
                    let local = sarg[ci * oh * ow + cell] - ci * h * w;
                    assert_eq!(
                        argmax[ci * dims.len() * oh * ow + s * oh * ow + cell],
                        ci * total_in + in_off + local,
                        "winner sample {s} channel {ci} cell {cell}"
                    );
                }
            }
            in_off += h * w;
        }
    }

    #[test]
    fn maxpool1d_batched_matches_per_sample_and_drops_tails_per_segment() {
        use magic_tensor::Rng64;
        let mut rng = Rng64::new(44);
        let mut ws = Workspace::new();
        let (c, k, seg_len, batch) = (2, 2, 7, 3); // 7 % 2 == 1: one dropped tail per segment
        let out_len = seg_len / k;
        let samples: Vec<Tensor> =
            (0..batch).map(|_| Tensor::rand_uniform([c, seg_len], -1.0, 1.0, &mut rng)).collect();
        let x = hstack(&samples.iter().collect::<Vec<_>>());
        let (out, argmax) = max_pool1d_batched_forward(&x, k, seg_len, &mut ws);
        assert_eq!(out.shape().dims(), &[c, batch * out_len]);
        for s in 0..batch {
            let (sout, sarg) = max_pool1d_forward(&samples[s], k, &mut ws);
            for ci in 0..c {
                assert_eq!(
                    &out.row(ci)[s * out_len..(s + 1) * out_len],
                    sout.row(ci),
                    "out sample {s} channel {ci}"
                );
                for t in 0..out_len {
                    let local = sarg[ci * out_len + t] - ci * seg_len;
                    assert_eq!(
                        argmax[ci * batch * out_len + s * out_len + t],
                        ci * (batch * seg_len) + s * seg_len + local,
                        "winner sample {s} channel {ci} cell {t}"
                    );
                }
            }
        }
    }
}
