#![warn(missing_docs)]

//! Dependency-free JSON support for the MAGIC workspace.
//!
//! The reproduction persists checkpoints and experiment results as JSON.
//! The build environment is fully offline, so instead of `serde_json`
//! this crate provides the small subset the workspace needs: a [`Value`]
//! tree, a strict parser ([`from_str`]), compact and pretty writers, and
//! a [`json!`] construction macro mirroring the `serde_json::json!`
//! surface the experiment binaries use.
//!
//! # Example
//!
//! ```
//! use magic_json::{json, from_str};
//!
//! let v = json!({ "name": "magic", "scores": [1, 2.5, null] });
//! let text = v.to_string();
//! let back = from_str(&text).unwrap();
//! assert_eq!(back["name"].as_str(), Some("magic"));
//! assert_eq!(back["scores"][1].as_f64(), Some(2.5));
//! ```

mod macros;
mod parse;
mod value;
mod write;

pub use parse::{from_str, ParseError};
pub use value::{Map, ToJson, Value};
pub use write::{to_string, to_string_pretty};
