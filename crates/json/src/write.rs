//! Compact and pretty JSON serialization.

use crate::value::Value;
use std::fmt::Write;

/// Serializes a value compactly (no whitespace).
pub fn to_string(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, None, 0);
    out
}

/// Serializes a value with two-space indentation, matching the layout
/// `serde_json::to_string_pretty` produced for the checked-in results.
pub fn to_string_pretty(value: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, value, Some(2), 0);
    out
}

/// Formats a number the way `serde_json` does: integral values (within
/// the exactly-representable range) print without a fraction, everything
/// else uses Rust's shortest-roundtrip float formatting.
fn write_number(out: &mut String, n: f64) {
    if !n.is_finite() {
        // JSON has no inf/NaN; `serde_json` writes null for them.
        out.push_str("null");
    } else if n.fract() == 0.0 && n.abs() < 9_007_199_254_740_992.0 {
        let _ = write!(out, "{}", n as i64);
    } else {
        let _ = write!(out, "{n}");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn push_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn write_value(out: &mut String, value: &Value, indent: Option<usize>, depth: usize) {
    match value {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => write_escaped(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (key, item)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_indent(out, indent, depth + 1);
                write_escaped(out, key);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, item, indent, depth + 1);
            }
            push_indent(out, indent, depth);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn compact_output_has_no_whitespace() {
        let v = json!({ "a": [1, 2], "b": "x" });
        assert_eq!(to_string(&v), r#"{"a":[1,2],"b":"x"}"#);
    }

    #[test]
    fn pretty_output_indents_two_spaces() {
        let v = json!({ "a": [1] });
        assert_eq!(to_string_pretty(&v), "{\n  \"a\": [\n    1\n  ]\n}");
    }

    #[test]
    fn numbers_format_like_serde_json() {
        assert_eq!(to_string(&json!(3.0)), "3");
        assert_eq!(to_string(&json!(-7)), "-7");
        assert_eq!(to_string(&json!(2.5)), "2.5");
        assert_eq!(to_string(&json!(1e-4_f64)), "0.0001");
        assert_eq!(to_string(&json!(f64::NAN)), "null");
    }

    #[test]
    fn strings_escape_control_characters() {
        let v = json!("a\"b\\c\nd\u{0001}");
        assert_eq!(to_string(&v), r#""a\"b\\c\nd\u0001""#);
    }

    #[test]
    fn empty_containers_stay_inline_when_pretty() {
        assert_eq!(to_string_pretty(&json!({ "a": [], "b": {} })), "{\n  \"a\": [],\n  \"b\": {}\n}");
    }
}
