//! The [`json!`] construction macro.

/// Builds a [`crate::Value`] from JSON-like syntax, mirroring the subset
/// of `serde_json::json!` the workspace uses: object and array literals,
/// `null`/`true`/`false`, and arbitrary Rust expressions interpolated
/// through [`crate::ToJson`].
///
/// ```
/// use magic_json::json;
///
/// let families = vec!["ramnit", "lollipop"];
/// let v = json!({
///     "corpus": "mskcfg",
///     "families": families,
///     "nested": { "ratio": 0.64, "grid": [3, 3] },
/// });
/// assert_eq!(v["nested"]["grid"][1].as_u64(), Some(3));
/// ```
#[macro_export]
macro_rules! json {
    (null) => { $crate::Value::Null };
    (true) => { $crate::Value::Bool(true) };
    (false) => { $crate::Value::Bool(false) };
    ([ $($tt:tt)* ]) => { $crate::Value::Array($crate::json_array_internal!([] $($tt)*)) };
    ({ $($tt:tt)* }) => {{
        #[allow(unused_mut)]
        let mut map = $crate::Map::new();
        $crate::json_object_internal!(map () $($tt)*);
        $crate::Value::Object(map)
    }};
    ($other:expr) => { $crate::ToJson::to_json(&$other) };
}

/// Array muncher: accumulates completed element expressions in `[...]`
/// and peels one element (which may itself be an object/array literal)
/// off the remaining token stream per step.
#[doc(hidden)]
#[macro_export]
macro_rules! json_array_internal {
    // Done (with or without trailing comma).
    ([$($done:expr),*]) => { vec![$($done),*] };
    ([$($done:expr),*],) => { vec![$($done),*] };
    // Next element is a nested array or object literal or keyword.
    ([$($done:expr),*] $(,)? null $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!(null)] $($rest)*)
    };
    ([$($done:expr),*] $(,)? true $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!(true)] $($rest)*)
    };
    ([$($done:expr),*] $(,)? false $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!(false)] $($rest)*)
    };
    ([$($done:expr),*] $(,)? [ $($inner:tt)* ] $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!([ $($inner)* ])] $($rest)*)
    };
    ([$($done:expr),*] $(,)? { $($inner:tt)* } $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!({ $($inner)* })] $($rest)*)
    };
    // Plain expression element: let the compiler take the longest expr.
    ([$($done:expr),*] $(,)? $next:expr) => {
        $crate::json_array_internal!([$($done,)* $crate::json!($next)])
    };
    ([$($done:expr),*] $(,)? $next:expr, $($rest:tt)*) => {
        $crate::json_array_internal!([$($done,)* $crate::json!($next)] $($rest)*)
    };
}

/// Object muncher: `(map (partial-key-tokens) rest...)`. Keys are string
/// literals (all the workspace uses); values may be nested literals or
/// expressions.
#[doc(hidden)]
#[macro_export]
macro_rules! json_object_internal {
    // Done.
    ($map:ident ()) => {};
    ($map:ident (),) => {};
    // "key": <nested literal or keyword or expression>
    ($map:ident () $key:literal : null $($rest:tt)*) => {
        $map.insert($key, $crate::json!(null));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : true $($rest:tt)*) => {
        $map.insert($key, $crate::json!(true));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : false $($rest:tt)*) => {
        $map.insert($key, $crate::json!(false));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : [ $($inner:tt)* ] $($rest:tt)*) => {
        $map.insert($key, $crate::json!([ $($inner)* ]));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : { $($inner:tt)* } $($rest:tt)*) => {
        $map.insert($key, $crate::json!({ $($inner)* }));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : $value:expr , $($rest:tt)*) => {
        $map.insert($key, $crate::json!($value));
        $crate::json_object_internal!($map () $($rest)*);
    };
    ($map:ident () $key:literal : $value:expr) => {
        $map.insert($key, $crate::json!($value));
    };
    // Leading comma between entries.
    ($map:ident () , $($rest:tt)*) => {
        $crate::json_object_internal!($map () $($rest)*);
    };
}

#[cfg(test)]
mod tests {
    use crate::Value;

    #[test]
    fn scalars_and_keywords() {
        assert_eq!(json!(null), Value::Null);
        assert_eq!(json!(true), Value::Bool(true));
        assert_eq!(json!(2 + 3), Value::Number(5.0));
        assert_eq!(json!("s"), Value::String("s".into()));
    }

    #[test]
    fn arrays_mix_literals_and_expressions() {
        let n = 4usize;
        let v = json!([1, n, [true, null], { "k": 0 }, "end"]);
        let a = v.as_array().unwrap();
        assert_eq!(a.len(), 5);
        assert_eq!(a[1].as_u64(), Some(4));
        assert_eq!(a[2][0].as_bool(), Some(true));
        assert_eq!(a[3]["k"].as_u64(), Some(0));
    }

    #[test]
    fn objects_nest_and_interpolate() {
        struct P {
            ratio: f64,
            sizes: Vec<usize>,
        }
        let p = P { ratio: 0.2, sizes: vec![32, 32] };
        let v = json!({
            "params": {
                "ratio": p.ratio,
                "sizes": p.sizes,
                "pair": [p.sizes[0], p.sizes[1]],
            },
            "empty": {},
            "list": [],
        });
        assert_eq!(v["params"]["ratio"].as_f64(), Some(0.2));
        assert_eq!(v["params"]["sizes"][1].as_u64(), Some(32));
        assert_eq!(v["params"]["pair"][0].as_u64(), Some(32));
        assert_eq!(v["empty"], Value::Object(crate::Map::new()));
        assert_eq!(v["list"], Value::Array(vec![]));
    }

    #[test]
    fn method_call_expressions_interpolate() {
        let names = ["a", "b"];
        let v = json!({
            "items": names.iter().map(|n| json!({ "name": *n })).collect::<Vec<_>>(),
        });
        assert_eq!(v["items"][1]["name"].as_str(), Some("b"));
    }

    #[test]
    fn trailing_commas_are_accepted() {
        let v = json!({ "a": 1, });
        assert_eq!(v["a"].as_u64(), Some(1));
        let v = json!([1, 2,]);
        assert_eq!(v.as_array().unwrap().len(), 2);
    }
}
