//! A strict recursive-descent JSON parser.

use crate::value::{Map, Value};
use std::error::Error;
use std::fmt;

/// A parse failure, with the byte offset where it occurred.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// Byte offset into the input.
    pub offset: usize,
    /// What went wrong.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl Error for ParseError {}

/// Parses a complete JSON document. Trailing non-whitespace is an error.
pub fn from_str(text: &str) -> Result<Value, ParseError> {
    let mut p = Parser { bytes: text.as_bytes(), pos: 0 };
    p.skip_ws();
    let value = p.parse_value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.error("trailing characters after document"));
    }
    Ok(value)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl Parser<'_> {
    fn error(&self, message: impl Into<String>) -> ParseError {
        ParseError { offset: self.pos, message: message.into() }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, byte: u8) -> Result<(), ParseError> {
        if self.peek() == Some(byte) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.error(format!("expected {:?}", byte as char)))
        }
    }

    fn parse_value(&mut self) -> Result<Value, ParseError> {
        match self.peek() {
            Some(b'n') => self.parse_keyword("null", Value::Null),
            Some(b't') => self.parse_keyword("true", Value::Bool(true)),
            Some(b'f') => self.parse_keyword("false", Value::Bool(false)),
            Some(b'"') => Ok(Value::String(self.parse_string()?)),
            Some(b'[') => self.parse_array(),
            Some(b'{') => self.parse_object(),
            Some(c) if c == b'-' || c.is_ascii_digit() => self.parse_number(),
            Some(c) => Err(self.error(format!("unexpected character {:?}", c as char))),
            None => Err(self.error("unexpected end of input")),
        }
    }

    fn parse_keyword(&mut self, word: &str, value: Value) -> Result<Value, ParseError> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(value)
        } else {
            Err(self.error(format!("expected {word:?}")))
        }
    }

    fn parse_number(&mut self) -> Result<Value, ParseError> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
            self.pos += 1;
        }
        if self.peek() == Some(b'.') {
            self.pos += 1;
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(c) if c.is_ascii_digit()) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).expect("ascii slice");
        text.parse::<f64>()
            .map(Value::Number)
            .map_err(|_| ParseError { offset: start, message: format!("bad number {text:?}") })
    }

    fn parse_string(&mut self) -> Result<String, ParseError> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.error("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.peek() {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b't') => out.push('\t'),
                        Some(b'r') => out.push('\r'),
                        Some(b'b') => out.push('\u{8}'),
                        Some(b'f') => out.push('\u{c}'),
                        Some(b'u') => {
                            self.pos += 1;
                            out.push(self.parse_unicode_escape()?);
                            continue;
                        }
                        _ => return Err(self.error("bad escape sequence")),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 character (the input is a &str, so
                    // the bytes are valid UTF-8; copy the whole sequence).
                    let rest = std::str::from_utf8(&self.bytes[self.pos..])
                        .map_err(|_| self.error("invalid utf-8"))?;
                    let c = rest.chars().next().expect("non-empty");
                    out.push(c);
                    self.pos += c.len_utf8();
                }
            }
        }
    }

    /// Parses the 4 hex digits after `\u` (the `\u` itself is consumed).
    /// Surrogate pairs are combined when both halves are present.
    fn parse_unicode_escape(&mut self) -> Result<char, ParseError> {
        let first = self.parse_hex4()?;
        // High surrogate: require the matching low half.
        if (0xD800..0xDC00).contains(&first) {
            if self.bytes[self.pos..].starts_with(b"\\u") {
                self.pos += 2;
                let second = self.parse_hex4()?;
                if (0xDC00..0xE000).contains(&second) {
                    let combined =
                        0x10000 + ((first - 0xD800) << 10) + (second - 0xDC00);
                    return char::from_u32(combined).ok_or_else(|| self.error("bad surrogate"));
                }
            }
            return Err(self.error("unpaired surrogate"));
        }
        char::from_u32(first).ok_or_else(|| self.error("bad unicode escape"))
    }

    fn parse_hex4(&mut self) -> Result<u32, ParseError> {
        let end = self.pos + 4;
        if end > self.bytes.len() {
            return Err(self.error("truncated unicode escape"));
        }
        let hex = std::str::from_utf8(&self.bytes[self.pos..end])
            .map_err(|_| self.error("bad unicode escape"))?;
        let code =
            u32::from_str_radix(hex, 16).map_err(|_| self.error("bad unicode escape"))?;
        self.pos = end;
        Ok(code)
    }

    fn parse_array(&mut self) -> Result<Value, ParseError> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.parse_value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.error("expected ',' or ']'")),
            }
        }
    }

    fn parse_object(&mut self) -> Result<Value, ParseError> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.parse_string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let value = self.parse_value()?;
            map.insert(key, value);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.error("expected ',' or '}'")),
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::json;

    #[test]
    fn parses_every_value_kind() {
        let v = from_str(r#"{"a": [1, -2.5, 1e3], "b": null, "c": true, "d": "x\ny"}"#).unwrap();
        assert_eq!(v["a"][0].as_f64(), Some(1.0));
        assert_eq!(v["a"][1].as_f64(), Some(-2.5));
        assert_eq!(v["a"][2].as_f64(), Some(1000.0));
        assert!(v["b"].is_null());
        assert_eq!(v["c"].as_bool(), Some(true));
        assert_eq!(v["d"].as_str(), Some("x\ny"));
    }

    #[test]
    fn roundtrips_construction_and_text() {
        let v = json!({
            "name": "swizzor",
            "sizes": [1, 2, 3],
            "nested": { "ratio": 0.64, "flag": false },
        });
        assert_eq!(from_str(&v.to_string()).unwrap(), v);
        assert_eq!(from_str(&crate::to_string_pretty(&v)).unwrap(), v);
    }

    #[test]
    fn roundtrips_f32_weights_exactly() {
        // The checkpoint format serializes f32 values with Rust's shortest
        // roundtrip formatting and reads them back through f64.
        let values = [0.1f32, -1e-7, 3.4e38, 1.0 / 3.0, f32::MIN_POSITIVE];
        for v in values {
            let text = format!("{v}");
            let parsed = from_str(&text).unwrap().as_f64().unwrap() as f32;
            assert_eq!(parsed.to_bits(), v.to_bits(), "{v}");
        }
    }

    #[test]
    fn rejects_malformed_documents() {
        for bad in ["", "{", "[1,", "{\"a\" 1}", "tru", "1 2", "\"unterminated", "{a: 1}"] {
            assert!(from_str(bad).is_err(), "{bad:?} should fail");
        }
    }

    #[test]
    fn unicode_escapes_decode() {
        assert_eq!(from_str(r#""\u0041\u00e9""#).unwrap().as_str(), Some("Aé"));
        // Surrogate pair for 😀 (U+1F600).
        assert_eq!(from_str(r#""\ud83d\ude00""#).unwrap().as_str(), Some("😀"));
        assert!(from_str(r#""\ud83d""#).is_err());
    }

    #[test]
    fn error_reports_offset() {
        let err = from_str("[1, x]").unwrap_err();
        assert_eq!(err.offset, 4);
        assert!(err.to_string().contains("byte 4"));
    }
}
