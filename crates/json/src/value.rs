//! The JSON value tree and conversions into it.

use std::fmt;
use std::ops::Index;

/// A parsed or constructed JSON document.
///
/// Numbers are stored as `f64`, which covers every value the workspace
/// serializes (f32 weights, counts far below 2^53, scores).
#[derive(Debug, Clone, PartialEq, Default)]
pub enum Value {
    /// JSON `null`.
    #[default]
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// Any JSON number.
    Number(f64),
    /// A string.
    String(String),
    /// An ordered array.
    Array(Vec<Value>),
    /// An object; insertion order is preserved.
    Object(Map),
}

/// An insertion-ordered string-keyed map (the object variant's payload).
///
/// Experiment results are diffed as text, so object key order must be
/// stable and match construction order — a plain vector of pairs gives
/// that with no hashing.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Map {
    entries: Vec<(String, Value)>,
}

impl Map {
    /// Creates an empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Inserts `value` under `key`, replacing (in place) any existing
    /// entry with the same key. Returns the previous value, if any.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) -> Option<Value> {
        let key = key.into();
        for (k, v) in &mut self.entries {
            if *k == key {
                return Some(std::mem::replace(v, value));
            }
        }
        self.entries.push((key, value));
        None
    }

    /// The value stored under `key`, if present.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.entries.iter().find(|(k, _)| k == key).map(|(_, v)| v)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// Whether the map holds no entries.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Iterates entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&str, &Value)> {
        self.entries.iter().map(|(k, v)| (k.as_str(), v))
    }
}

impl FromIterator<(String, Value)> for Map {
    fn from_iter<T: IntoIterator<Item = (String, Value)>>(iter: T) -> Self {
        let mut map = Map::new();
        for (k, v) in iter {
            map.insert(k, v);
        }
        map
    }
}

static NULL: Value = Value::Null;

impl Value {
    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// The numeric payload, if this is a number.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(n) => Some(*n),
            _ => None,
        }
    }

    /// The payload as a non-negative integer, if it is one exactly.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(n) if *n >= 0.0 && n.fract() == 0.0 && *n <= u64::MAX as f64 => {
                Some(*n as u64)
            }
            _ => None,
        }
    }

    /// The payload as a signed integer, if it is one exactly.
    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::Number(n)
                if n.fract() == 0.0 && *n >= i64::MIN as f64 && *n <= i64::MAX as f64 =>
            {
                Some(*n as i64)
            }
            _ => None,
        }
    }

    /// The boolean payload, if this is a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// The element list, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// The key-value map, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Whether this is `null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Object field lookup that tolerates non-objects (returns `None`).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl Index<&str> for Value {
    type Output = Value;

    /// `value["key"]`, yielding `Null` for missing keys or non-objects —
    /// matching the forgiving indexing style of `serde_json`.
    fn index(&self, key: &str) -> &Value {
        self.get(key).unwrap_or(&NULL)
    }
}

impl Index<usize> for Value {
    type Output = Value;

    /// `value[i]`, yielding `Null` out of bounds or for non-arrays.
    fn index(&self, i: usize) -> &Value {
        match self {
            Value::Array(a) => a.get(i).unwrap_or(&NULL),
            _ => &NULL,
        }
    }
}

impl PartialEq<str> for Value {
    fn eq(&self, other: &str) -> bool {
        self.as_str() == Some(other)
    }
}

impl PartialEq<&str> for Value {
    fn eq(&self, other: &&str) -> bool {
        self.as_str() == Some(*other)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&crate::write::to_string(self))
    }
}

/// Conversion into a [`Value`], used by the [`crate::json!`] macro for
/// interpolated Rust expressions.
///
/// Implementations take `&self` so the macro can interpolate fields of
/// borrowed structs without moving them.
pub trait ToJson {
    /// Converts to a JSON value.
    fn to_json(&self) -> Value;
}

impl ToJson for Value {
    fn to_json(&self) -> Value {
        self.clone()
    }
}

impl ToJson for Map {
    fn to_json(&self) -> Value {
        Value::Object(self.clone())
    }
}

impl ToJson for bool {
    fn to_json(&self) -> Value {
        Value::Bool(*self)
    }
}

impl ToJson for str {
    fn to_json(&self) -> Value {
        Value::String(self.to_string())
    }
}

impl ToJson for String {
    fn to_json(&self) -> Value {
        Value::String(self.clone())
    }
}

macro_rules! impl_to_json_number {
    ($($t:ty),*) => {
        $(impl ToJson for $t {
            fn to_json(&self) -> Value {
                Value::Number(*self as f64)
            }
        })*
    };
}

impl_to_json_number!(i8, i16, i32, i64, isize, u8, u16, u32, u64, usize, f32, f64);

impl<T: ToJson> ToJson for Vec<T> {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for [T] {
    fn to_json(&self) -> Value {
        Value::Array(self.iter().map(ToJson::to_json).collect())
    }
}

impl<T: ToJson> ToJson for Option<T> {
    fn to_json(&self) -> Value {
        match self {
            Some(v) => v.to_json(),
            None => Value::Null,
        }
    }
}

impl<T: ToJson + ?Sized> ToJson for &T {
    fn to_json(&self) -> Value {
        (**self).to_json()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn map_preserves_insertion_order_and_replaces() {
        let mut m = Map::new();
        m.insert("b", Value::Number(1.0));
        m.insert("a", Value::Number(2.0));
        m.insert("b", Value::Number(3.0));
        let keys: Vec<&str> = m.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, vec!["b", "a"]);
        assert_eq!(m.get("b"), Some(&Value::Number(3.0)));
        assert_eq!(m.len(), 2);
    }

    #[test]
    fn indexing_missing_keys_yields_null() {
        let v = Value::Object(Map::new());
        assert!(v["missing"]["deeper"].is_null());
        assert!(v[3].is_null());
    }

    #[test]
    fn as_u64_rejects_fractional_and_negative() {
        assert_eq!(Value::Number(3.0).as_u64(), Some(3));
        assert_eq!(Value::Number(3.5).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_u64(), None);
        assert_eq!(Value::Number(-1.0).as_i64(), Some(-1));
    }

    #[test]
    fn string_comparison_with_str() {
        let v = Value::String("magic-model-v1".into());
        assert!(v == "magic-model-v1");
        assert!(v != "other");
        assert!(Value::Null != "magic-model-v1");
    }

    #[test]
    fn option_interpolates_as_null() {
        assert_eq!(None::<f64>.to_json(), Value::Null);
        assert_eq!(Some(1.5f64).to_json(), Value::Number(1.5));
    }
}
