//! `magic` — command-line front end for the MAGIC DGCNN malware
//! classifier.
//!
//! ```text
//! magic extract <listing.asm> [--dot]        print the ACFG (or DOT)
//! magic train --corpus mskcfg|yancfg [--scale S] [--epochs N] --out model.magic
//! magic predict --model model.magic <listing.asm>...
//! magic serve --model model.magic            micro-batching HTTP daemon
//! magic info --model model.magic             show checkpoint metadata
//! magic profile mskcfg|yancfg                per-op time/FLOP attribution
//! magic report --trace trace.jsonl           aggregate a telemetry trace
//! magic report --trace t.jsonl --flamegraph  collapsed stacks for flamegraphs
//! magic bench diff old.json new.json         perf-regression gate
//! ```
//!
//! Subcommands accept `--trace <path>` (stream a `magic-trace/2`
//! JSONL telemetry trace, see `docs/OBSERVABILITY.md`; `report` and
//! `profile` handle the trace themselves) and
//! `--log-level <off|error|info|debug|trace>`.

mod checkpoint_file;
mod commands;

use std::process::ExitCode;

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match commands::dispatch(&args) {
        Ok(()) => ExitCode::SUCCESS,
        Err(e) => {
            magic_obs::log(magic_obs::Level::Error, format!("error: {e}"));
            ExitCode::FAILURE
        }
    }
}
