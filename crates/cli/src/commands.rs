//! Subcommand implementations.

use crate::checkpoint_file::{deserialize_model, serialize_model, ModelHeader};
use magic::pipeline::{extract_acfg, MagicPipeline};
use magic::trainer::{Trainer, TrainConfig};
use magic::tuning::{HeadKind, HyperParams};
use magic_data::stratified_kfold;
use magic_graph::GraphStats;
use magic_model::{Dgcnn, GraphInput};
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};

/// Parses the argument list and runs the matching subcommand.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("extract") => cmd_extract(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    }
}

const USAGE: &str = "\
magic — DGCNN malware classification over control flow graphs

USAGE:
    magic extract <listing.asm> [--dot]
    magic train --corpus <mskcfg|yancfg> [--scale S] [--epochs N] [--seed S]
                [--train-workers N] --out <model.magic>
                (--train-workers 0 = auto; results are identical for any N)
    magic predict --model <model.magic> <listing.asm>...
    magic info --model <model.magic>";

/// Pulls `--flag value` out of an argument list, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Pulls a boolean `--flag` out of an argument list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_extract(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let dot = take_switch(&mut args, "--dot");
    let path = args.first().ok_or("extract requires a listing path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    if dot {
        let program = magic_asm::parse_listing(&text).map_err(|e| e.to_string())?;
        let cfg = magic_asm::CfgBuilder::new(&program).build();
        println!("{}", cfg.to_dot());
        return Ok(());
    }
    let acfg = extract_acfg(&text).map_err(|e| e.to_string())?;
    let stats = GraphStats::of(&acfg);
    eprintln!(
        "{} blocks, {} edges, density {:.3}",
        stats.vertices, stats.edges, stats.density
    );
    print!("{}", acfg.to_text());
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let corpus = take_flag(&mut args, "--corpus").ok_or("train requires --corpus")?;
    let out = take_flag(&mut args, "--out").ok_or("train requires --out")?;
    let scale: f64 = take_flag(&mut args, "--scale")
        .map(|s| s.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(0.01);
    let epochs: usize = take_flag(&mut args, "--epochs")
        .map(|s| s.parse().map_err(|_| "bad --epochs"))
        .transpose()?
        .unwrap_or(20);
    let seed: u64 = take_flag(&mut args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(7);
    let train_workers: usize = take_flag(&mut args, "--train-workers")
        .map(|s| s.parse().map_err(|_| "bad --train-workers"))
        .transpose()?
        .unwrap_or(0);

    // Build the corpus.
    let (inputs, labels, families): (Vec<GraphInput>, Vec<usize>, Vec<String>) =
        match corpus.as_str() {
            "mskcfg" => {
                let samples = MskcfgGenerator::new(seed, scale).generate();
                let mut inputs = Vec::with_capacity(samples.len());
                for s in &samples {
                    let acfg = extract_acfg(&s.listing).map_err(|e| e.to_string())?;
                    inputs.push(GraphInput::from_acfg(&acfg));
                }
                let labels = samples.iter().map(|s| s.label).collect();
                (inputs, labels, MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect())
            }
            "yancfg" => {
                let samples = YancfgGenerator::new(seed, scale).generate();
                let inputs = samples.iter().map(|s| GraphInput::from_acfg(&s.acfg)).collect();
                let labels = samples.iter().map(|s| s.label).collect();
                (inputs, labels, YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect())
            }
            other => return Err(format!("unknown corpus {other:?} (mskcfg|yancfg)")),
        };
    eprintln!("corpus: {} samples, {} families", inputs.len(), families.len());

    // The Table II best architecture for the chosen corpus.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    if corpus == "mskcfg" {
        params.pooling_ratio = 0.64;
        params.conv_sizes = vec![128, 64, 32, 32];
    } else {
        params.pooling_ratio = 0.2;
        params.dropout = 0.5;
        params.batch_size = 40;
        params.weight_decay = 5e-4;
    }
    let graph_sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();
    let config = params.to_model_config(families.len(), &graph_sizes);
    let mut model = Dgcnn::new(&config, seed);

    let folds = stratified_kfold(&labels, 5, seed);
    let split = &folds[0];
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: params.batch_size,
        weight_decay: params.weight_decay,
        learning_rate: 5e-3,
        lr_patience: 5,
        seed,
        train_workers,
        ..TrainConfig::default()
    });
    eprintln!(
        "training {} weights for {epochs} epochs on {} worker(s)...",
        model.num_weights(),
        magic::resolve_workers(train_workers)
    );
    let outcome = trainer.train(&mut model, &inputs, &labels, &split.train, &split.validation);
    let last = outcome.history.last().ok_or("no epochs ran")?;
    eprintln!(
        "done: val loss {:.4}, val accuracy {:.1}%",
        last.val_loss,
        last.val_accuracy * 100.0
    );

    let header = ModelHeader { corpus, families, params, graph_sizes };
    std::fs::write(&out, serialize_model(&header, &model))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    eprintln!("model written to {out}");
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("predict requires --model")?;
    if args.is_empty() {
        return Err("predict requires at least one listing path".into());
    }
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    let pipeline = MagicPipeline::new(model, header.families);

    for path in &args {
        let listing =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        match pipeline.classify_listing(&listing) {
            Ok((family, p)) => println!("{path}: {family} (p = {p:.3})"),
            Err(e) => println!("{path}: extraction failed ({e})"),
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("info requires --model")?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    println!("corpus:   {}", header.corpus);
    println!("families: {}", header.families.join(", "));
    println!("params:   {}", header.params);
    println!("weights:  {}", model.num_weights());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_pairs() {
        let mut args: Vec<String> =
            ["--model", "m.bin", "file.asm"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_flag(&mut args, "--model").as_deref(), Some("m.bin"));
        assert_eq!(args, vec!["file.asm"]);
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_flag_handles_missing_value() {
        let mut args: Vec<String> = vec!["--model".into()];
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_switch_removes_flag() {
        let mut args: Vec<String> = vec!["--dot".into(), "x".into()];
        assert!(take_switch(&mut args, "--dot"));
        assert!(!take_switch(&mut args, "--dot"));
        assert_eq!(args, vec!["x"]);
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        let err = dispatch(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn dispatch_help_succeeds() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".to_string()]).is_ok());
    }

    #[test]
    fn extract_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.asm");
        std::fs::write(
            &path,
            ".text:00401000    xor eax, eax\n.text:00401002    retn\n",
        )
        .unwrap();
        let args = vec![path.to_string_lossy().to_string()];
        assert!(cmd_extract(&args).is_ok());
        let dot_args = vec![path.to_string_lossy().to_string(), "--dot".to_string()];
        assert!(cmd_extract(&dot_args).is_ok());
    }

    #[test]
    fn train_rejects_unknown_corpus() {
        let args: Vec<String> = ["--corpus", "windows", "--out", "/tmp/x.magic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_train(&args).unwrap_err().contains("unknown corpus"));
    }

    #[test]
    fn train_rejects_malformed_worker_count() {
        let args: Vec<String> =
            ["--corpus", "yancfg", "--out", "/tmp/x.magic", "--train-workers", "many"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(cmd_train(&args).unwrap_err(), "bad --train-workers");
    }
}
