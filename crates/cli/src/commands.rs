//! Subcommand implementations.

use std::sync::Arc;

use crate::checkpoint_file::{deserialize_model, serialize_model, ModelHeader};
use magic::pipeline::{extract_acfg, MagicPipeline};
use magic_obs::{report::TraceSummary, JsonlRecorder};
use magic::trainer::{Trainer, TrainConfig};
use magic::tuning::{HeadKind, HyperParams};
use magic_data::stratified_kfold;
use magic_graph::GraphStats;
use magic_model::{Dgcnn, GraphInput};
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};

/// Parses the argument list and runs the matching subcommand.
///
/// Two global flags are stripped before subcommand dispatch:
/// `--log-level <off|error|info|debug|trace>` sets the stderr verbosity,
/// and `--trace <path>` (on every subcommand except `report`, where it
/// names the input) installs a [`JsonlRecorder`] streaming telemetry to
/// `<path>` for the duration of the command.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if let Some(level) = take_flag(&mut args, "--log-level") {
        magic_obs::set_log_level(level.parse::<magic_obs::Level>()?);
    }
    // `report` *reads* a trace; everything else may *write* one.
    let tracing_run = args.first().map(String::as_str) != Some("report");
    let trace_path = if tracing_run { take_flag(&mut args, "--trace") } else { None };
    if let Some(path) = &trace_path {
        let recorder = JsonlRecorder::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        magic_obs::install(Arc::new(recorder));
        magic_obs::meta(format!("magic {}", args.join(" ")));
    }

    let result = match args.first().map(String::as_str) {
        Some("extract") => cmd_extract(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };

    if let Some(path) = &trace_path {
        magic_obs::uninstall(); // flushes the trace file
        magic_obs::log(
            magic_obs::Level::Info,
            format!("trace written to {path} (aggregate with `magic report --trace {path}`)"),
        );
    }
    result
}

const USAGE: &str = "\
magic — DGCNN malware classification over control flow graphs

USAGE:
    magic extract <listing.asm> [--dot]
    magic train --corpus <mskcfg|yancfg> [--scale S] [--epochs N] [--seed S]
                [--train-workers N] --out <model.magic>
                (--train-workers 0 = auto; results are identical for any N)
    magic predict --model <model.magic> <listing.asm>...
    magic info --model <model.magic>
    magic report --trace <trace.jsonl>

GLOBAL OPTIONS:
    --trace <path>       stream a magic-trace/1 JSONL telemetry trace to
                         <path> (convention: results/logs/trace-<run>.jsonl);
                         aggregate it with `magic report --trace <path>`
    --log-level <level>  stderr verbosity: off|error|info|debug|trace
                         (default info; debug adds per-epoch statistics)";

/// Pulls `--flag value` out of an argument list, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Pulls a boolean `--flag` out of an argument list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_extract(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let dot = take_switch(&mut args, "--dot");
    let path = args.first().ok_or("extract requires a listing path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    if dot {
        let program = magic_asm::parse_listing(&text).map_err(|e| e.to_string())?;
        let cfg = magic_asm::CfgBuilder::new(&program).build();
        println!("{}", cfg.to_dot());
        return Ok(());
    }
    let acfg = extract_acfg(&text).map_err(|e| e.to_string())?;
    let stats = GraphStats::of(&acfg);
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "{} blocks, {} edges, density {:.3}",
            stats.vertices, stats.edges, stats.density
        ),
    );
    print!("{}", acfg.to_text());
    Ok(())
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let corpus = take_flag(&mut args, "--corpus").ok_or("train requires --corpus")?;
    let out = take_flag(&mut args, "--out").ok_or("train requires --out")?;
    let scale: f64 = take_flag(&mut args, "--scale")
        .map(|s| s.parse().map_err(|_| "bad --scale"))
        .transpose()?
        .unwrap_or(0.01);
    let epochs: usize = take_flag(&mut args, "--epochs")
        .map(|s| s.parse().map_err(|_| "bad --epochs"))
        .transpose()?
        .unwrap_or(20);
    let seed: u64 = take_flag(&mut args, "--seed")
        .map(|s| s.parse().map_err(|_| "bad --seed"))
        .transpose()?
        .unwrap_or(7);
    let train_workers: usize = take_flag(&mut args, "--train-workers")
        .map(|s| s.parse().map_err(|_| "bad --train-workers"))
        .transpose()?
        .unwrap_or(0);

    // Build the corpus.
    let (inputs, labels, families): (Vec<GraphInput>, Vec<usize>, Vec<String>) =
        match corpus.as_str() {
            "mskcfg" => {
                let samples = {
                    let _span = magic_obs::span(magic_obs::stage::CORPUS_GENERATE);
                    MskcfgGenerator::new(seed, scale).generate()
                };
                let _span = magic_obs::span_fields(
                    magic_obs::stage::CORPUS_EXTRACT,
                    &[("listings", samples.len() as f64)],
                );
                let mut inputs = Vec::with_capacity(samples.len());
                for s in &samples {
                    let acfg = extract_acfg(&s.listing).map_err(|e| e.to_string())?;
                    inputs.push(GraphInput::from_acfg(&acfg));
                }
                let labels = samples.iter().map(|s| s.label).collect();
                (inputs, labels, MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect())
            }
            "yancfg" => {
                let samples = {
                    let _span = magic_obs::span(magic_obs::stage::CORPUS_GENERATE);
                    YancfgGenerator::new(seed, scale).generate()
                };
                let _span = magic_obs::span_fields(
                    magic_obs::stage::CORPUS_EXTRACT,
                    &[("listings", samples.len() as f64)],
                );
                let inputs = samples.iter().map(|s| GraphInput::from_acfg(&s.acfg)).collect();
                let labels = samples.iter().map(|s| s.label).collect();
                (inputs, labels, YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect())
            }
            other => return Err(format!("unknown corpus {other:?} (mskcfg|yancfg)")),
        };
    magic_obs::log(
        magic_obs::Level::Info,
        format!("corpus: {} samples, {} families", inputs.len(), families.len()),
    );

    // The Table II best architecture for the chosen corpus.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    if corpus == "mskcfg" {
        params.pooling_ratio = 0.64;
        params.conv_sizes = vec![128, 64, 32, 32];
    } else {
        params.pooling_ratio = 0.2;
        params.dropout = 0.5;
        params.batch_size = 40;
        params.weight_decay = 5e-4;
    }
    let graph_sizes: Vec<usize> = inputs.iter().map(GraphInput::vertex_count).collect();
    let config = params.to_model_config(families.len(), &graph_sizes);
    let mut model = Dgcnn::new(&config, seed);

    let folds = stratified_kfold(&labels, 5, seed);
    let split = &folds[0];
    let trainer = Trainer::new(TrainConfig {
        epochs,
        batch_size: params.batch_size,
        weight_decay: params.weight_decay,
        learning_rate: 5e-3,
        lr_patience: 5,
        seed,
        train_workers,
        ..TrainConfig::default()
    });
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "training {} weights for {epochs} epochs on {} worker(s)...",
            model.num_weights(),
            magic::resolve_workers(train_workers)
        ),
    );
    let outcome = trainer.train(&mut model, &inputs, &labels, &split.train, &split.validation);
    let last = outcome.history.last().ok_or("no epochs ran")?;
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "done: val loss {:.4}, val accuracy {:.1}%",
            last.val_loss,
            last.val_accuracy * 100.0
        ),
    );

    let header = ModelHeader { corpus, families, params, graph_sizes };
    std::fs::write(&out, serialize_model(&header, &model))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    magic_obs::log(magic_obs::Level::Info, format!("model written to {out}"));
    Ok(())
}

/// Aggregates a `magic-trace/1` JSONL file into per-stage timing,
/// counter, and histogram tables.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let path = take_flag(&mut args, "--trace").ok_or("report requires --trace <trace.jsonl>")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    let summary = TraceSummary::from_lines(text.lines()).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("predict requires --model")?;
    if args.is_empty() {
        return Err("predict requires at least one listing path".into());
    }
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    let pipeline = MagicPipeline::new(model, header.families);

    for path in &args {
        let listing =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        match pipeline.classify_listing(&listing) {
            Ok((family, p)) => println!("{path}: {family} (p = {p:.3})"),
            Err(e) => println!("{path}: extraction failed ({e})"),
        }
    }
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("info requires --model")?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    println!("corpus:   {}", header.corpus);
    println!("families: {}", header.families.join(", "));
    println!("params:   {}", header.params);
    println!("weights:  {}", model.num_weights());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_pairs() {
        let mut args: Vec<String> =
            ["--model", "m.bin", "file.asm"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_flag(&mut args, "--model").as_deref(), Some("m.bin"));
        assert_eq!(args, vec!["file.asm"]);
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_flag_handles_missing_value() {
        let mut args: Vec<String> = vec!["--model".into()];
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_switch_removes_flag() {
        let mut args: Vec<String> = vec!["--dot".into(), "x".into()];
        assert!(take_switch(&mut args, "--dot"));
        assert!(!take_switch(&mut args, "--dot"));
        assert_eq!(args, vec!["x"]);
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        let err = dispatch(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn dispatch_help_succeeds() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".to_string()]).is_ok());
    }

    #[test]
    fn extract_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.asm");
        std::fs::write(
            &path,
            ".text:00401000    xor eax, eax\n.text:00401002    retn\n",
        )
        .unwrap();
        let args = vec![path.to_string_lossy().to_string()];
        assert!(cmd_extract(&args).is_ok());
        let dot_args = vec![path.to_string_lossy().to_string(), "--dot".to_string()];
        assert!(cmd_extract(&dot_args).is_ok());
    }

    #[test]
    fn train_rejects_unknown_corpus() {
        let args: Vec<String> = ["--corpus", "windows", "--out", "/tmp/x.magic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_train(&args).unwrap_err().contains("unknown corpus"));
    }

    #[test]
    fn dispatch_rejects_bad_log_level() {
        let args: Vec<String> =
            ["--log-level", "loud", "help"].iter().map(|s| s.to_string()).collect();
        assert!(dispatch(&args).unwrap_err().contains("unknown log level"));
    }

    #[test]
    fn report_requires_a_trace_argument() {
        assert!(dispatch(&["report".to_string()])
            .unwrap_err()
            .contains("report requires --trace"));
    }

    #[test]
    fn report_rejects_missing_and_malformed_files() {
        let missing: Vec<String> =
            ["report", "--trace", "/nonexistent/t.jsonl"].iter().map(|s| s.to_string()).collect();
        assert!(dispatch(&missing).unwrap_err().contains("cannot read"));

        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        std::fs::write(&path, "not json\n").unwrap();
        let args: Vec<String> = ["report", "--trace", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&args).unwrap_err().contains("line 1"));
    }

    #[test]
    fn report_aggregates_a_valid_trace() {
        use magic_obs::Event;
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("valid.jsonl");
        let events = [
            Event::Meta { command: "magic train".into() },
            Event::SpanStart {
                id: 1,
                parent: None,
                stage: "train.run".into(),
                ts_us: 0,
                fields: vec![],
            },
            Event::SpanEnd { id: 1, stage: "train.run".into(), ts_us: 80, dur_us: 80 },
        ];
        let text: String = events.iter().map(|e| e.to_jsonl_line() + "\n").collect();
        std::fs::write(&path, text).unwrap();
        let args: Vec<String> = ["report", "--trace", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&args).is_ok());
    }

    #[test]
    fn extract_with_trace_writes_a_parseable_jsonl_file() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let listing = dir.join("traced.asm");
        std::fs::write(
            &listing,
            ".text:00401000    xor eax, eax\n.text:00401002    retn\n",
        )
        .unwrap();
        let trace = dir.join("extract-trace.jsonl");
        let args: Vec<String> = [
            "extract",
            listing.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&args).unwrap();

        let text = std::fs::read_to_string(&trace).unwrap();
        let summary = magic_obs::report::TraceSummary::from_lines(text.lines()).unwrap();
        assert!(summary.events >= 4, "meta + extraction spans, got {}", summary.events);
        assert!(summary.stages.iter().any(|s| s.stage == magic_obs::stage::EXTRACT_ACFG));
        assert!(summary.command.as_deref().unwrap_or("").starts_with("magic extract"));
    }

    #[test]
    fn train_rejects_malformed_worker_count() {
        let args: Vec<String> =
            ["--corpus", "yancfg", "--out", "/tmp/x.magic", "--train-workers", "many"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(cmd_train(&args).unwrap_err(), "bad --train-workers");
    }
}
