//! Subcommand implementations.

use std::sync::Arc;

use crate::checkpoint_file::{deserialize_model, serialize_model, ModelHeader};
use magic::corpus_cache::{self, CacheSpec, CorpusKind, DEFAULT_SHARDS};
use magic::pipeline::{extract_acfg, MagicPipeline};
use magic::trainer::{TrainConfig, TrainOutcome, Trainer};
use magic::tuning::{HeadKind, HyperParams};
use magic_data::{stratified_kfold, CacheError, StreamedCorpus};
use magic_graph::{GraphStats, ReduceStrategy, SizeHistogram};
use magic_model::{Dgcnn, GraphInput};
use magic_obs::{report::TraceSummary, JsonlRecorder};
use magic_synth::{MskcfgGenerator, YancfgGenerator, MSKCFG_FAMILIES, YANCFG_FAMILIES};

/// Parses the argument list and runs the matching subcommand.
///
/// Two global flags are stripped before subcommand dispatch:
/// `--log-level <off|error|info|debug|trace>` sets the stderr verbosity,
/// and `--trace <path>` installs a [`JsonlRecorder`] streaming telemetry
/// to `<path>` for the duration of the command. `report` *reads* a trace
/// (the flag names its input) and `profile` manages its own recorder, so
/// neither takes the global flag. A traced run also enables tensor
/// memory accounting so training epochs report peak bytes.
pub fn dispatch(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    if let Some(level) = take_flag(&mut args, "--log-level") {
        magic_obs::set_log_level(level.parse::<magic_obs::Level>()?);
    }
    let tracing_run =
        !matches!(args.first().map(String::as_str), Some("report") | Some("profile"));
    let trace_path = if tracing_run { take_flag(&mut args, "--trace") } else { None };
    if let Some(path) = &trace_path {
        let recorder = JsonlRecorder::create(path)
            .map_err(|e| format!("cannot create trace file {path}: {e}"))?;
        magic_obs::install(Arc::new(recorder));
        magic_obs::meta(format!("magic {}", args.join(" ")));
        magic_tensor::mem::enable();
    }

    let result = match args.first().map(String::as_str) {
        Some("extract") => cmd_extract(&args[1..]),
        Some("cache") => cmd_cache(&args[1..]),
        Some("train") => cmd_train(&args[1..]),
        Some("predict") => cmd_predict(&args[1..]),
        Some("serve") => cmd_serve(&args[1..]),
        Some("info") => cmd_info(&args[1..]),
        Some("profile") => cmd_profile(&args[1..]),
        Some("report") => cmd_report(&args[1..]),
        Some("bench") => cmd_bench(&args[1..]),
        Some("help") | None => {
            println!("{USAGE}");
            Ok(())
        }
        Some(other) => Err(format!("unknown subcommand {other:?}\n{USAGE}")),
    };

    if let Some(path) = &trace_path {
        magic_obs::uninstall(); // flushes the trace file
        magic_obs::log(
            magic_obs::Level::Info,
            format!("trace written to {path} (aggregate with `magic report --trace {path}`)"),
        );
    }
    result
}

const USAGE: &str = "\
magic — DGCNN malware classification over control flow graphs

USAGE:
    magic extract <listing.asm> [--dot]
    magic extract --corpus <mskcfg|yancfg> --cache-dir <dir> [--seed S]
                [--scale S] [--reduce R] [--shards N] [--workers N] [--force]
                (corpus mode: extract the whole synthetic corpus into a
                 magic-acfg/1 shard cache — same as `magic cache build`;
                 prints a node/edge decile histogram of what was cached)
    magic cache build --corpus <mskcfg|yancfg> --cache-dir <dir> [--seed S]
                [--scale S] [--reduce R] [--shards N] [--workers N] [--force]
                (shard generation + extraction across workers and write
                 binary ACFG shards keyed by the (corpus, seed, scale,
                 reduce) fingerprint; a rerun with a matching fingerprint
                 is a no-op. Shards store *reduced* graphs, so a cache
                 built under one --reduce never serves another. Format
                 spec: DESIGN.md)
    magic cache info --cache-dir <dir> [--corpus C [--seed S] [--scale S]
                [--reduce R]]
                (validate every shard checksum and print the manifest:
                 fingerprint, samples, per-shard records/bytes. With
                 --corpus, also recompute the expected fingerprint from
                 the given identity flags and exit non-zero on mismatch
                 — e.g. a cache built under a different --reduce)
    magic train --corpus <mskcfg|yancfg> [--scale S] [--epochs N] [--seed S]
                [--reduce R] [--train-workers N] [--batched]
                [--intra-op-threads N]
                [--cache-dir <dir>] [--cache <ram|stream>]
                --out <model.magic>
                (--train-workers 0 = auto; results are identical for any N.
                 --batched fuses each mini-batch into one block-diagonal
                 pass — bitwise identical, usually faster; pair with
                 --intra-op-threads to thread the kernels instead.
                 --reduce shrinks every graph before training (see
                 REDUCE VALUES below); the strategy is recorded in the
                 model header so predict/serve reduce identically.
                 --cache-dir trains from the shard cache, building it
                 first if missing; --cache stream keeps shards on disk
                 and prefetches batches on a background thread — bitwise
                 identical to the in-memory path)
    magic predict --model <model.magic> [--reduce R] <listing.asm>...
                (--reduce overrides the training-time strategy recorded
                 in the model header; default is to match training)
    magic serve --model <model.magic> [--reduce R] [--addr HOST:PORT] [--workers N]
                [--io-threads N] [--max-batch N] [--batch-window-us U]
                [--queue-depth N] [--deadline-ms MS]
                [--access-log <access.jsonl>] [--metrics-window S]
                (HTTP inference daemon fusing concurrent requests into
                 micro-batches; POST listings to /v1/predict, health at
                 /healthz, counters at /statsz, Prometheus text at
                 /metrics, slow-request exemplars at /debug/slow, stop
                 with POST /admin/shutdown. --access-log streams one
                 JSONL lifecycle event per request; --metrics-window
                 sets the sliding quantile window (default 60 s).
                 Protocol + tuning: docs/SERVING.md)
    magic info --model <model.magic>
    magic profile <mskcfg|yancfg> [--scale S] [--epochs N] [--seed S]
                [--reduce R] [--train-workers N] [--batched]
                [--intra-op-threads N]
                [--cache-dir <dir>] [--cache <ram|stream>]
                [--trace <out.jsonl>]
                (train under the op profiler; print per-op time/FLOP
                attribution, unattributed remainder, and peak memory)
    magic report --trace <trace.jsonl> [--flamegraph]
                (aggregate a trace; --flamegraph emits collapsed-stack
                lines for flamegraph.pl / inferno / speedscope)
    magic report --serve <access.jsonl>
                (aggregate a `magic serve --access-log` file into
                per-status counts, an exact stage-latency breakdown,
                and a slowest-requests table)
    magic bench diff <old.json> <new.json> [--threshold F]
                [--require-same-machine]
                (compare results/BENCH_*.json files; exit non-zero when
                any row slows down more than F, default 0.20 = +20%)

REDUCE VALUES (--reduce, default none):
    none                 leave graphs untouched
    chain                collapse single-in/single-out basic-block chains
    prune                drop low-information degree-1 leaf blocks,
                         folding their attributes into the neighbour
    coarsen[:K]          Weisfeiler-Lehman supernode coarsening with K
                         refinement rounds (default 2; fewer = coarser)
    All strategies are deterministic and idempotent; reduction semantics
    and the determinism contract are specified in DESIGN.md.

GLOBAL OPTIONS:
    --trace <path>       stream a magic-trace/2 JSONL telemetry trace to
                         <path> (convention: results/logs/trace-<run>.jsonl);
                         aggregate it with `magic report --trace <path>`.
                         Not taken by `report` (names its input there) or
                         `profile` (manages its own recorder)
    --log-level <level>  stderr verbosity: off|error|info|debug|trace
                         (default info; info shows per-epoch progress)";

/// Pulls `--flag value` out of an argument list, returning the remainder.
fn take_flag(args: &mut Vec<String>, flag: &str) -> Option<String> {
    let pos = args.iter().position(|a| a == flag)?;
    if pos + 1 >= args.len() {
        return None;
    }
    let value = args.remove(pos + 1);
    args.remove(pos);
    Some(value)
}

/// Pulls `--reduce <none|chain|prune|coarsen[:K]>` out of an argument
/// list, defaulting to [`ReduceStrategy::None`] when absent.
fn take_reduce(args: &mut Vec<String>) -> Result<ReduceStrategy, String> {
    take_flag(args, "--reduce")
        .map(|s| ReduceStrategy::parse(&s).map_err(|e| e.to_string()))
        .transpose()
        .map(Option::unwrap_or_default)
}

/// Pulls a boolean `--flag` out of an argument list.
fn take_switch(args: &mut Vec<String>, flag: &str) -> bool {
    if let Some(pos) = args.iter().position(|a| a == flag) {
        args.remove(pos);
        true
    } else {
        false
    }
}

fn cmd_extract(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    // Corpus mode: extract the whole synthetic corpus into a shard
    // cache instead of one listing — equivalent to `magic cache build`.
    if args.iter().any(|a| a == "--corpus") {
        return cmd_cache_build(&args);
    }
    let dot = take_switch(&mut args, "--dot");
    let path = args.first().ok_or("extract requires a listing path or --corpus")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;

    if dot {
        let program = magic_asm::parse_listing(&text).map_err(|e| e.to_string())?;
        let cfg = magic_asm::CfgBuilder::new(&program).build();
        println!("{}", cfg.to_dot());
        return Ok(());
    }
    let acfg = extract_acfg(&text).map_err(|e| e.to_string())?;
    let stats = GraphStats::of(&acfg);
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "{} blocks, {} edges, density {:.3}",
            stats.vertices, stats.edges, stats.density
        ),
    );
    print!("{}", acfg.to_text());
    Ok(())
}

/// `magic cache <build|info>` — manage the sharded binary ACFG cache.
fn cmd_cache(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("build") => cmd_cache_build(&args[1..]),
        Some("info") => cmd_cache_info(&args[1..]),
        _ => Err("cache requires a subcommand: build | info".into()),
    }
}

/// Parses the shared cache identity flags (`--corpus --seed --scale
/// --reduce --shards`) into a [`CacheSpec`], with the same
/// seed/scale/reduce defaults as `train`.
fn parse_cache_spec(args: &mut Vec<String>) -> Result<CacheSpec, String> {
    let corpus = take_flag(args, "--corpus").ok_or("cache build requires --corpus")?;
    Ok(CacheSpec {
        corpus: CorpusKind::parse(&corpus)?,
        seed: take_flag(args, "--seed")
            .map(|s| s.parse().map_err(|_| "bad --seed"))
            .transpose()?
            .unwrap_or(7),
        scale: take_flag(args, "--scale")
            .map(|s| s.parse().map_err(|_| "bad --scale"))
            .transpose()?
            .unwrap_or(0.01),
        reduce: take_reduce(args)?,
        shards: take_flag(args, "--shards")
            .map(|s| s.parse().map_err(|_| "bad --shards"))
            .transpose()?
            .unwrap_or(DEFAULT_SHARDS),
    })
}

fn cmd_cache_build(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let spec = parse_cache_spec(&mut args)?;
    let dir = take_flag(&mut args, "--cache-dir").ok_or("cache build requires --cache-dir")?;
    let workers: usize = take_flag(&mut args, "--workers")
        .map(|s| s.parse().map_err(|_| "bad --workers"))
        .transpose()?
        .unwrap_or(0);
    let force = take_switch(&mut args, "--force");

    let outcome = corpus_cache::build(std::path::Path::new(&dir), &spec, workers, force)
        .map_err(|e| e.to_string())?;
    let m = &outcome.manifest;
    println!(
        "{} cache {dir}: corpus {}, reduce {}, fingerprint {:016x}, \
         {} samples in {} shard(s), {:.2} MiB",
        if outcome.rebuilt { "built" } else { "up-to-date" },
        m.corpus,
        m.reduce,
        m.fingerprint,
        m.samples,
        m.shards.len(),
        outcome.bytes as f64 / (1024.0 * 1024.0),
    );
    // Per-corpus size distribution of what was cached (post-reduction):
    // node/edge deciles over every graph in the shards.
    let loaded =
        corpus_cache::load(std::path::Path::new(&dir), Some(spec.fingerprint()), workers)
            .map_err(|e| e.to_string())?;
    println!("{}", SizeHistogram::of(&loaded.acfgs).render());
    Ok(())
}

fn cmd_cache_info(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let dir = take_flag(&mut args, "--cache-dir").ok_or("cache info requires --cache-dir")?;
    // Optional expectation flags: when --corpus is given, recompute the
    // fingerprint the caller *expects* (same defaults as `cache build`)
    // and fail with the typed mismatch error if the cache on disk was
    // built under a different identity — e.g. a different --reduce
    // strategy. This is how CI asserts a cache can never silently serve
    // a strategy it was not built with.
    let expected = if args.iter().any(|a| a == "--corpus") {
        Some(parse_cache_spec(&mut args)?.fingerprint())
    } else {
        None
    };
    // Opening the streamed view checksums every shard, so a clean exit
    // doubles as an integrity check.
    let corpus = StreamedCorpus::open(std::path::Path::new(&dir), None)
        .map_err(|e| format!("{dir}: {e}"))?;
    let m = corpus.manifest();
    if let Some(expected) = expected {
        if expected != m.fingerprint {
            let err = CacheError::FingerprintMismatch { expected, found: m.fingerprint };
            return Err(format!("{dir}: {err}"));
        }
    }
    println!("cache {dir} (magic-acfg/1, all shard checksums verified)");
    println!(
        "  corpus:      {} (seed {}, scale {}, reduce {})",
        m.corpus, m.seed, m.scale, m.reduce
    );
    println!("  fingerprint: {:016x}", m.fingerprint);
    println!("  samples:     {} across {} class(es)", m.samples, m.class_names.len());
    for (i, shard) in m.shards.iter().enumerate() {
        println!(
            "  shard {i:>3}:   {} — {} record(s), {} bytes",
            shard.file, shard.records, shard.bytes
        );
    }
    Ok(())
}

/// Knobs shared by `train` and `profile`, parsed with identical
/// defaults from either argument list.
struct TrainKnobs {
    scale: f64,
    epochs: usize,
    seed: u64,
    train_workers: usize,
    batched: bool,
    intra_op_threads: usize,
    /// Graph-reduction strategy applied to every training graph.
    reduce: ReduceStrategy,
    /// Shard-cache directory; corpus is built there on first use.
    cache_dir: Option<String>,
    /// With a cache: stream shards from disk instead of loading to RAM.
    stream: bool,
}

impl TrainKnobs {
    fn parse(args: &mut Vec<String>, default_epochs: usize) -> Result<Self, String> {
        Ok(TrainKnobs {
            batched: take_switch(args, "--batched"),
            reduce: take_reduce(args)?,
            cache_dir: take_flag(args, "--cache-dir"),
            stream: match take_flag(args, "--cache").as_deref() {
                None | Some("ram") => false,
                Some("stream") => true,
                Some(other) => return Err(format!("bad --cache {other:?} (ram|stream)")),
            },
            intra_op_threads: take_flag(args, "--intra-op-threads")
                .map(|s| s.parse().map_err(|_| "bad --intra-op-threads"))
                .transpose()?
                .unwrap_or(0),
            scale: take_flag(args, "--scale")
                .map(|s| s.parse().map_err(|_| "bad --scale"))
                .transpose()?
                .unwrap_or(0.01),
            epochs: take_flag(args, "--epochs")
                .map(|s| s.parse().map_err(|_| "bad --epochs"))
                .transpose()?
                .unwrap_or(default_epochs),
            seed: take_flag(args, "--seed")
                .map(|s| s.parse().map_err(|_| "bad --seed"))
                .transpose()?
                .unwrap_or(7),
            train_workers: take_flag(args, "--train-workers")
                .map(|s| s.parse().map_err(|_| "bad --train-workers"))
                .transpose()?
                .unwrap_or(0),
        })
    }
}

/// Model inputs, labels, and family names of a generated corpus.
type CorpusData = (Vec<GraphInput>, Vec<usize>, Vec<String>);

/// Generates a synthetic corpus and runs it through the real extraction
/// pipeline (and the chosen reduction), yielding model inputs, labels,
/// and family names.
fn build_corpus(
    corpus: &str,
    seed: u64,
    scale: f64,
    reduce: ReduceStrategy,
) -> Result<CorpusData, String> {
    let input_for = |acfg: &magic_graph::Acfg| {
        if reduce.is_none() {
            GraphInput::from_acfg(acfg)
        } else {
            GraphInput::from_acfg(&reduce.apply(acfg))
        }
    };
    match corpus {
        "mskcfg" => {
            let samples = {
                let _span = magic_obs::span(magic_obs::stage::CORPUS_GENERATE);
                MskcfgGenerator::new(seed, scale).generate()
            };
            let _span = magic_obs::span_fields(
                magic_obs::stage::CORPUS_EXTRACT,
                &[("listings", samples.len() as f64)],
            );
            let mut inputs = Vec::with_capacity(samples.len());
            for s in &samples {
                let acfg = extract_acfg(&s.listing).map_err(|e| e.to_string())?;
                inputs.push(input_for(&acfg));
            }
            let labels = samples.iter().map(|s| s.label).collect();
            Ok((inputs, labels, MSKCFG_FAMILIES.iter().map(|s| s.to_string()).collect()))
        }
        "yancfg" => {
            let samples = {
                let _span = magic_obs::span(magic_obs::stage::CORPUS_GENERATE);
                YancfgGenerator::new(seed, scale).generate()
            };
            let _span = magic_obs::span_fields(
                magic_obs::stage::CORPUS_EXTRACT,
                &[("listings", samples.len() as f64)],
            );
            let inputs = samples.iter().map(|s| input_for(&s.acfg)).collect();
            let labels = samples.iter().map(|s| s.label).collect();
            Ok((inputs, labels, YANCFG_FAMILIES.iter().map(|s| s.to_string()).collect()))
        }
        other => Err(format!("unknown corpus {other:?} (mskcfg|yancfg)")),
    }
}

/// Where training samples come from: decoded in RAM, or streamed from
/// shard files with background prefetch.
enum CorpusSource {
    Ram(Vec<GraphInput>),
    Stream(StreamedCorpus),
}

/// Builds or loads the corpus, instantiates the Table II best
/// architecture for it, and trains on fold 0 of a stratified 5-fold
/// split — the common core of `magic train` and `magic profile`.
fn run_training(
    corpus: &str,
    knobs: &TrainKnobs,
) -> Result<(Dgcnn, ModelHeader, TrainOutcome), String> {
    let (source, labels, families) = if let Some(dir) = &knobs.cache_dir {
        let spec = CacheSpec {
            corpus: CorpusKind::parse(corpus)?,
            seed: knobs.seed,
            scale: knobs.scale,
            reduce: knobs.reduce,
            shards: DEFAULT_SHARDS,
        };
        let dir = std::path::Path::new(dir);
        // Ensure the cache exists; a matching fingerprint is a no-op.
        let built = corpus_cache::build(dir, &spec, knobs.train_workers, false)
            .map_err(|e| e.to_string())?;
        magic_obs::log(
            magic_obs::Level::Info,
            format!(
                "cache {}: {} ({} samples, {} shard(s), {} mode)",
                dir.display(),
                if built.rebuilt { "built" } else { "reused" },
                built.manifest.samples,
                built.manifest.shards.len(),
                if knobs.stream { "stream" } else { "ram" },
            ),
        );
        if knobs.stream {
            let streamed = corpus_cache::open_streaming(dir, Some(spec.fingerprint()))
                .map_err(|e| e.to_string())?;
            let labels = streamed.labels().to_vec();
            let families = streamed.class_names().to_vec();
            (CorpusSource::Stream(streamed), labels, families)
        } else {
            let loaded = corpus_cache::load(dir, Some(spec.fingerprint()), knobs.train_workers)
                .map_err(|e| e.to_string())?;
            (CorpusSource::Ram(loaded.inputs), loaded.labels, loaded.class_names)
        }
    } else {
        if knobs.stream {
            return Err("--cache stream requires --cache-dir".into());
        }
        let (inputs, labels, families) =
            build_corpus(corpus, knobs.seed, knobs.scale, knobs.reduce)?;
        (CorpusSource::Ram(inputs), labels, families)
    };
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "corpus: {} samples, {} families, reduce {}",
            labels.len(),
            families.len(),
            knobs.reduce.name()
        ),
    );

    // The Table II best architecture for the chosen corpus.
    let mut params = HyperParams::paper_default();
    params.head = HeadKind::Adaptive;
    if corpus == "mskcfg" {
        params.pooling_ratio = 0.64;
        params.conv_sizes = vec![128, 64, 32, 32];
    } else {
        params.pooling_ratio = 0.2;
        params.dropout = 0.5;
        params.batch_size = 40;
        params.weight_decay = 5e-4;
    }
    let graph_sizes: Vec<usize> = match &source {
        CorpusSource::Ram(inputs) => inputs.iter().map(GraphInput::vertex_count).collect(),
        CorpusSource::Stream(streamed) => streamed.vertex_counts().to_vec(),
    };
    let config = params.to_model_config(families.len(), &graph_sizes);
    let mut model = Dgcnn::new(&config, knobs.seed);
    // A/B escape hatch for the sparse-propagation rollout: force the
    // dense adjacency path to reproduce before/after numbers (see
    // EXPERIMENTS.md). Sparse CSR is the default.
    if std::env::var("MAGIC_DENSE_PROPAGATION").map(|v| v == "1").unwrap_or(false) {
        model.set_propagation(magic_model::Propagation::Dense);
        magic_obs::log(
            magic_obs::Level::Info,
            "MAGIC_DENSE_PROPAGATION=1: using the dense adjacency path",
        );
    }
    // Same escape hatch for the im2col-GEMM conv rollout: tapes read
    // MAGIC_NAIVE_CONV themselves at construction, this just makes the
    // active lowering visible in logs.
    if magic_autograd::ConvLowering::from_env() == magic_autograd::ConvLowering::Naive {
        magic_obs::log(
            magic_obs::Level::Info,
            "MAGIC_NAIVE_CONV=1: using the naive convolution kernels",
        );
    }

    let folds = stratified_kfold(&labels, 5, knobs.seed);
    let split = &folds[0];
    let trainer = Trainer::new(TrainConfig {
        epochs: knobs.epochs,
        batch_size: params.batch_size,
        weight_decay: params.weight_decay,
        learning_rate: 5e-3,
        lr_patience: 5,
        seed: knobs.seed,
        train_workers: knobs.train_workers,
        batched: knobs.batched,
        ..TrainConfig::default()
    });
    if knobs.intra_op_threads > 0 {
        magic_tensor::set_intra_op_threads(knobs.intra_op_threads);
    }
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "training {} weights for {} epochs ({})...",
            model.num_weights(),
            knobs.epochs,
            if knobs.batched {
                format!(
                    "batched, {} intra-op thread(s)",
                    magic_tensor::intra_op_threads()
                )
            } else {
                format!("{} worker(s)", magic::resolve_workers(knobs.train_workers))
            }
        ),
    );
    let outcome = match &source {
        CorpusSource::Ram(inputs) => {
            trainer.train(&mut model, inputs, &labels, &split.train, &split.validation)
        }
        CorpusSource::Stream(streamed) => {
            trainer.train_streamed(&mut model, streamed, &labels, &split.train, &split.validation)
        }
    };
    let last = outcome.history.last().ok_or("no epochs ran")?;
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "done: val loss {:.4}, val accuracy {:.1}%",
            last.val_loss,
            last.val_accuracy * 100.0
        ),
    );
    let header = ModelHeader {
        corpus: corpus.to_string(),
        families,
        params,
        graph_sizes,
        reduce: knobs.reduce.name(),
    };
    Ok((model, header, outcome))
}

fn cmd_train(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let corpus = take_flag(&mut args, "--corpus").ok_or("train requires --corpus")?;
    let out = take_flag(&mut args, "--out").ok_or("train requires --out")?;
    let knobs = TrainKnobs::parse(&mut args, 20)?;

    let (model, header, _outcome) = run_training(&corpus, &knobs)?;
    std::fs::write(&out, serialize_model(&header, &model))
        .map_err(|e| format!("cannot write {out}: {e}"))?;
    magic_obs::log(magic_obs::Level::Info, format!("model written to {out}"));
    Ok(())
}

/// Trains under the op profiler and prints where the time went: a
/// per-op table (self time share, calls, FLOP/s), the unattributed
/// remainder of epoch wall-clock, and peak tensor memory.
///
/// The command installs its own [`JsonlRecorder`] (to `--trace <path>`
/// if given, else a deleted-afterwards temp file) and enables tensor
/// memory accounting, so it must not run under the global `--trace`
/// recorder — `dispatch` excludes it.
fn cmd_profile(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let keep_trace = take_flag(&mut args, "--trace");
    // Profiling wants a few representative epochs, not a converged model.
    let knobs = TrainKnobs::parse(&mut args, 3)?;
    let corpus =
        args.first().cloned().ok_or("profile requires a corpus (mskcfg|yancfg)")?;

    let trace_path = match &keep_trace {
        Some(path) => std::path::PathBuf::from(path),
        None => std::env::temp_dir()
            .join(format!("magic-profile-{}-{}.jsonl", corpus, std::process::id())),
    };
    let recorder = JsonlRecorder::create(&trace_path)
        .map_err(|e| format!("cannot create trace file {}: {e}", trace_path.display()))?;
    magic_obs::install(Arc::new(recorder));
    magic_obs::meta(format!("magic profile {}", args.join(" ")));
    magic_tensor::mem::enable();

    let outcome = run_training(&corpus, &knobs);
    magic_obs::uninstall(); // flushes the trace file
    outcome?;

    let text = std::fs::read_to_string(&trace_path)
        .map_err(|e| format!("cannot read back {}: {e}", trace_path.display()))?;
    if keep_trace.is_none() {
        std::fs::remove_file(&trace_path).ok();
    }
    let summary = TraceSummary::from_lines(text.lines())
        .map_err(|e| format!("{}: {e}", trace_path.display()))?;
    print!("{}", render_profile(&summary));
    if let Some(path) = keep_trace {
        magic_obs::log(
            magic_obs::Level::Info,
            format!("trace kept at {path} (see also `magic report --trace {path}`)"),
        );
    }
    Ok(())
}

/// Renders the `magic profile` attribution view from an aggregated
/// trace: the op table plus coverage against epoch wall-clock.
fn render_profile(summary: &TraceSummary) -> String {
    let mut out = String::new();
    let epochs = summary.stages.iter().find(|s| s.stage == magic_obs::stage::TRAIN_EPOCH);
    let (epoch_count, epoch_us) = epochs.map(|s| (s.count, s.total_us)).unwrap_or((0, 0));
    out.push_str(&format!(
        "profiled {epoch_count} epoch(s), {:.2}s wall inside epochs\n\n",
        epoch_us as f64 / 1e6
    ));
    out.push_str(&summary.render_ops());

    let attributed_us = summary.ops_total_self_ns() / 1_000;
    let other_us = epoch_us.saturating_sub(attributed_us);
    let pct = |us: u64| {
        if epoch_us == 0 { 0.0 } else { 100.0 * us as f64 / epoch_us as f64 }
    };
    out.push_str(&format!(
        "\nattributed {:.1}% of epoch wall-clock to {} op row(s); other (unattributed): {:.1}%\n",
        pct(attributed_us),
        summary.ops.len(),
        pct(other_us),
    ));
    if let Some(peak) =
        summary.histograms.iter().find(|h| h.name == magic_obs::stage::H_MEM_PEAK_BYTES)
    {
        out.push_str(&format!(
            "peak tensor memory: {:.1} MiB (max over {} epoch(s))\n",
            peak.max / (1024.0 * 1024.0),
            peak.count,
        ));
    }
    let hist = |name: &str| summary.histograms.iter().find(|h| h.name == name);
    if let Some(allocs) = hist(magic_obs::stage::H_ALLOC_COUNT) {
        // The first epoch pays the pool warm-up; the min over epochs is
        // what a steady-state epoch allocates.
        out.push_str(&format!(
            "tensor allocations: {:.0} total, {:.0} in the best epoch\n",
            allocs.total, allocs.min,
        ));
    }
    if let (Some(hits), Some(misses)) =
        (hist(magic_obs::stage::H_POOL_HITS), hist(magic_obs::stage::H_POOL_MISSES))
    {
        let total = hits.total + misses.total;
        let pct = if total > 0.0 { 100.0 * hits.total / total } else { 0.0 };
        out.push_str(&format!(
            "workspace pool: {:.0} hits / {:.0} misses ({pct:.1}% reuse); \
             misses in the best epoch: {:.0}\n",
            hits.total, misses.total, misses.min,
        ));
    }
    out
}

/// Aggregates a `magic-trace` JSONL file (v1 through v3) into per-stage
/// timing, counter, histogram, and op-profile tables — or, with
/// `--flamegraph`, emits collapsed-stack lines for flamegraph tooling,
/// or, with `--serve <access.jsonl>`, aggregates a serve access log
/// into status/stage-latency/slowest-request tables.
fn cmd_report(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let flamegraph = take_switch(&mut args, "--flamegraph");
    if let Some(path) = take_flag(&mut args, "--serve") {
        let text =
            std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
        let summary = magic_obs::serve_report::ServeLogSummary::from_lines(text.lines())
            .map_err(|e| format!("{path}: {e}"))?;
        print!("{}", summary.render());
        return Ok(());
    }
    let path = take_flag(&mut args, "--trace")
        .ok_or("report requires --trace <trace.jsonl> or --serve <access.jsonl>")?;
    let text =
        std::fs::read_to_string(&path).map_err(|e| format!("cannot read {path}: {e}"))?;
    if flamegraph {
        let lines = magic_obs::flamegraph::collapsed_from_lines(text.lines())
            .map_err(|e| format!("{path}: {e}"))?;
        for line in lines {
            println!("{line}");
        }
        return Ok(());
    }
    let summary = TraceSummary::from_lines(text.lines()).map_err(|e| format!("{path}: {e}"))?;
    print!("{}", summary.render());
    Ok(())
}

/// `magic bench <subcommand>` — currently only `diff`.
fn cmd_bench(args: &[String]) -> Result<(), String> {
    match args.first().map(String::as_str) {
        Some("diff") => cmd_bench_diff(&args[1..]),
        _ => Err("bench requires a subcommand: diff <old.json> <new.json>".into()),
    }
}

/// Compares two `results/BENCH_*.json` files and fails when any
/// comparable row slowed down beyond the threshold. This is the CI
/// perf-regression gate (`scripts/ci.sh` runs it against the committed
/// baselines).
fn cmd_bench_diff(args: &[String]) -> Result<(), String> {
    use magic_bench::diff;

    let mut args = args.to_vec();
    let threshold: f64 = take_flag(&mut args, "--threshold")
        .map(|s| s.parse().map_err(|_| "bad --threshold"))
        .transpose()?
        .unwrap_or(0.20);
    let require_same_machine = take_switch(&mut args, "--require-same-machine");
    let [old_path, new_path] = args.as_slice() else {
        return Err("bench diff requires exactly <old.json> <new.json>".into());
    };
    let load = |path: &str| -> Result<magic_json::Value, String> {
        let text =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        magic_json::from_str(&text).map_err(|e| format!("{path}: {e}"))
    };
    let old = load(old_path)?;
    let new = load(new_path)?;

    if require_same_machine {
        let old_fp = diff::machine_fingerprint(&old);
        let new_fp = diff::machine_fingerprint(&new);
        if old_fp.is_none() || old_fp != new_fp {
            // A baseline recorded on another machine (or before machine
            // stamping) can't gate this one: skip, succeeding, so CI
            // stays green on fresh hosts until a local baseline lands.
            println!(
                "skipping comparison: baseline machine {} != this machine {}",
                old_fp.as_deref().unwrap_or("(unstamped)"),
                new_fp.as_deref().unwrap_or("(unstamped)"),
            );
            return Ok(());
        }
    }

    let report = diff::diff(&old, &new, threshold);
    print!("{}", report.render());
    if report.rows.is_empty() {
        return Err(format!("no comparable median_ns rows between {old_path} and {new_path}"));
    }
    let regressions = report.regressions().len();
    if regressions > 0 {
        return Err(format!(
            "{regressions} benchmark row(s) regressed beyond +{:.0}%",
            threshold * 100.0
        ));
    }
    Ok(())
}

/// The reduction strategy for inference: an explicit `--reduce` CLI
/// override if present, else whatever the model was trained with
/// (recorded in its header) — serving a model with a different
/// reduction than it trained on silently degrades accuracy.
fn inference_reduce(
    flag: Option<String>,
    header: &ModelHeader,
) -> Result<ReduceStrategy, String> {
    match flag {
        Some(s) => ReduceStrategy::parse(&s).map_err(|e| e.to_string()),
        None => ReduceStrategy::parse(&header.reduce)
            .map_err(|e| format!("model header: {e}")),
    }
}

fn cmd_predict(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("predict requires --model")?;
    let reduce_flag = take_flag(&mut args, "--reduce");
    if args.is_empty() {
        return Err("predict requires at least one listing path".into());
    }
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    let reduce = inference_reduce(reduce_flag, &header)?;
    let pipeline = MagicPipeline::with_reduce(model, header.families, reduce);

    for path in &args {
        let listing =
            std::fs::read_to_string(path).map_err(|e| format!("cannot read {path}: {e}"))?;
        match pipeline.classify_listing(&listing) {
            Ok((family, p)) => println!("{path}: {family} (p = {p:.3})"),
            Err(e) => println!("{path}: extraction failed ({e})"),
        }
    }
    Ok(())
}

/// `magic serve` — load a trained model and run the micro-batching
/// inference daemon until `POST /admin/shutdown` (or process kill).
/// All flags default to [`magic_serve::ServeConfig::default`]; the
/// operational semantics are documented in `docs/SERVING.md`.
fn cmd_serve(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("serve requires --model")?;
    let mut config = magic_serve::ServeConfig::default();
    if let Some(addr) = take_flag(&mut args, "--addr") {
        config.addr = addr;
    }
    let mut numeric = |flag: &'static str, slot: &mut usize| -> Result<(), String> {
        if let Some(v) = take_flag(&mut args, flag) {
            *slot = v.parse().map_err(|_| format!("bad {flag}"))?;
        }
        Ok(())
    };
    numeric("--workers", &mut config.workers)?;
    numeric("--io-threads", &mut config.io_threads)?;
    numeric("--max-batch", &mut config.max_batch)?;
    numeric("--queue-depth", &mut config.queue_depth)?;
    if let Some(v) = take_flag(&mut args, "--batch-window-us") {
        config.batch_window_us = v.parse().map_err(|_| "bad --batch-window-us")?;
    }
    if let Some(v) = take_flag(&mut args, "--deadline-ms") {
        config.deadline_ms = v.parse().map_err(|_| "bad --deadline-ms")?;
    }
    if let Some(v) = take_flag(&mut args, "--metrics-window") {
        config.metrics_window_s = v.parse().map_err(|_| "bad --metrics-window")?;
    }
    config.access_log = take_flag(&mut args, "--access-log");
    let reduce_flag = take_flag(&mut args, "--reduce");
    if let Some(unknown) = args.first() {
        return Err(format!("serve does not take {unknown:?}"));
    }

    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    let reduce = inference_reduce(reduce_flag, &header)?;
    let pipeline = MagicPipeline::with_reduce(model, header.families, reduce);
    let handle = magic_serve::start(pipeline, config.clone())
        .map_err(|e| format!("cannot bind {}: {e}", config.addr))?;
    magic_obs::log(
        magic_obs::Level::Info,
        format!(
            "serving {} model (reduce {}) on http://{} ({} worker(s), max batch {}, \
             window {}us; stop with POST /admin/shutdown)",
            header.corpus,
            reduce.name(),
            handle.addr(),
            config.workers,
            config.max_batch,
            config.batch_window_us,
        ),
    );
    handle.wait();
    magic_obs::log(magic_obs::Level::Info, "drained and stopped");
    Ok(())
}

fn cmd_info(args: &[String]) -> Result<(), String> {
    let mut args = args.to_vec();
    let model_path = take_flag(&mut args, "--model").ok_or("info requires --model")?;
    let text = std::fs::read_to_string(&model_path)
        .map_err(|e| format!("cannot read {model_path}: {e}"))?;
    let (header, model) = deserialize_model(&text)?;
    println!("corpus:   {}", header.corpus);
    println!("families: {}", header.families.join(", "));
    println!("params:   {}", header.params);
    println!("reduce:   {}", header.reduce);
    println!("weights:  {}", model.num_weights());
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn take_flag_extracts_pairs() {
        let mut args: Vec<String> =
            ["--model", "m.bin", "file.asm"].iter().map(|s| s.to_string()).collect();
        assert_eq!(take_flag(&mut args, "--model").as_deref(), Some("m.bin"));
        assert_eq!(args, vec!["file.asm"]);
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_flag_handles_missing_value() {
        let mut args: Vec<String> = vec!["--model".into()];
        assert_eq!(take_flag(&mut args, "--model"), None);
    }

    #[test]
    fn take_switch_removes_flag() {
        let mut args: Vec<String> = vec!["--dot".into(), "x".into()];
        assert!(take_switch(&mut args, "--dot"));
        assert!(!take_switch(&mut args, "--dot"));
        assert_eq!(args, vec!["x"]);
    }

    #[test]
    fn dispatch_rejects_unknown_subcommand() {
        let err = dispatch(&["frobnicate".to_string()]).unwrap_err();
        assert!(err.contains("unknown subcommand"));
    }

    #[test]
    fn dispatch_help_succeeds() {
        assert!(dispatch(&[]).is_ok());
        assert!(dispatch(&["help".to_string()]).is_ok());
    }

    #[test]
    fn extract_roundtrip_through_tempfile() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("demo.asm");
        std::fs::write(
            &path,
            ".text:00401000    xor eax, eax\n.text:00401002    retn\n",
        )
        .unwrap();
        let args = vec![path.to_string_lossy().to_string()];
        assert!(cmd_extract(&args).is_ok());
        let dot_args = vec![path.to_string_lossy().to_string(), "--dot".to_string()];
        assert!(cmd_extract(&dot_args).is_ok());
    }

    #[test]
    fn train_rejects_unknown_corpus() {
        let args: Vec<String> = ["--corpus", "windows", "--out", "/tmp/x.magic"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(cmd_train(&args).unwrap_err().contains("unknown corpus"));
    }

    #[test]
    fn dispatch_rejects_bad_log_level() {
        let args: Vec<String> =
            ["--log-level", "loud", "help"].iter().map(|s| s.to_string()).collect();
        assert!(dispatch(&args).unwrap_err().contains("unknown log level"));
    }

    #[test]
    fn report_requires_a_trace_argument() {
        assert!(dispatch(&["report".to_string()])
            .unwrap_err()
            .contains("report requires --trace"));
    }

    #[test]
    fn report_rejects_missing_and_malformed_files() {
        let missing: Vec<String> =
            ["report", "--trace", "/nonexistent/t.jsonl"].iter().map(|s| s.to_string()).collect();
        assert!(dispatch(&missing).unwrap_err().contains("cannot read"));

        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("garbage.jsonl");
        // A garbage line followed by a valid one: mid-file damage is a
        // hard error with a line number. (A garbage *final* line alone
        // would be tolerated as a truncated tail.)
        std::fs::write(&path, "not json\n{\"v\":1,\"t\":\"meta\",\"command\":\"x\"}\n").unwrap();
        let args: Vec<String> = ["report", "--trace", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&args).unwrap_err().contains("line 1"));
    }

    #[test]
    fn report_flamegraph_emits_collapsed_stacks() {
        use magic_obs::Event;
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("flame.jsonl");
        let events = [
            Event::SpanStart {
                id: 1,
                parent: None,
                stage: "train.run".into(),
                ts_us: 0,
                fields: vec![],
            },
            Event::SpanEnd { id: 1, stage: "train.run".into(), ts_us: 80, dur_us: 80 },
        ];
        let text: String = events.iter().map(|e| e.to_jsonl_line() + "\n").collect();
        std::fs::write(&path, text).unwrap();
        let args: Vec<String> = ["report", "--flamegraph", "--trace", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&args).is_ok());
    }

    #[test]
    fn bench_diff_gates_on_regressions() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("bench-old.json");
        let fast = dir.join("bench-fast.json");
        let slow = dir.join("bench-slow.json");
        std::fs::write(&old, "{\"serial\": {\"median_ns\": 100.0}}").unwrap();
        std::fs::write(&fast, "{\"serial\": {\"median_ns\": 105.0}}").unwrap();
        std::fs::write(&slow, "{\"serial\": {\"median_ns\": 200.0}}").unwrap();
        let run = |new: &std::path::Path| {
            let args: Vec<String> =
                ["bench", "diff", old.to_str().unwrap(), new.to_str().unwrap()]
                    .iter()
                    .map(|s| s.to_string())
                    .collect();
            dispatch(&args)
        };
        assert!(run(&fast).is_ok());
        assert!(run(&slow).unwrap_err().contains("regressed"));
    }

    #[test]
    fn bench_diff_requires_same_machine_skips_on_mismatch() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let old = dir.join("bench-other-host.json");
        let new = dir.join("bench-this-host.json");
        // Baseline from another machine, candidate 10x slower: the gate
        // must skip rather than fail.
        std::fs::write(
            &old,
            "{\"machine_info\": {\"os\": \"plan9\", \"arch\": \"mips\", \
              \"available_parallelism\": 64, \"cpu_model\": \"Imaginary\"}, \
              \"serial\": {\"median_ns\": 10.0}}",
        )
        .unwrap();
        let candidate = magic_json::json!({
            "machine_info": magic_bench::results::machine_info(),
            "serial": { "median_ns": 100.0 },
        });
        std::fs::write(&new, magic_json::to_string_pretty(&candidate)).unwrap();
        let args: Vec<String> = [
            "bench",
            "diff",
            old.to_str().unwrap(),
            new.to_str().unwrap(),
            "--require-same-machine",
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        assert!(dispatch(&args).is_ok());
    }

    #[test]
    fn bench_rejects_unknown_subcommand() {
        let args: Vec<String> = ["bench", "run"].iter().map(|s| s.to_string()).collect();
        assert!(dispatch(&args).unwrap_err().contains("bench requires"));
    }

    #[test]
    fn profile_requires_a_corpus() {
        assert!(dispatch(&["profile".to_string()])
            .unwrap_err()
            .contains("profile requires a corpus"));
    }

    #[test]
    fn report_aggregates_a_valid_trace() {
        use magic_obs::Event;
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("valid.jsonl");
        let events = [
            Event::Meta { command: "magic train".into() },
            Event::SpanStart {
                id: 1,
                parent: None,
                stage: "train.run".into(),
                ts_us: 0,
                fields: vec![],
            },
            Event::SpanEnd { id: 1, stage: "train.run".into(), ts_us: 80, dur_us: 80 },
        ];
        let text: String = events.iter().map(|e| e.to_jsonl_line() + "\n").collect();
        std::fs::write(&path, text).unwrap();
        let args: Vec<String> = ["report", "--trace", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&args).is_ok());
    }

    #[test]
    fn extract_with_trace_writes_a_parseable_jsonl_file() {
        let dir = std::env::temp_dir().join("magic-cli-test");
        std::fs::create_dir_all(&dir).unwrap();
        let listing = dir.join("traced.asm");
        std::fs::write(
            &listing,
            ".text:00401000    xor eax, eax\n.text:00401002    retn\n",
        )
        .unwrap();
        let trace = dir.join("extract-trace.jsonl");
        let args: Vec<String> = [
            "extract",
            listing.to_str().unwrap(),
            "--trace",
            trace.to_str().unwrap(),
        ]
        .iter()
        .map(|s| s.to_string())
        .collect();
        dispatch(&args).unwrap();

        let text = std::fs::read_to_string(&trace).unwrap();
        let summary = magic_obs::report::TraceSummary::from_lines(text.lines()).unwrap();
        assert!(summary.events >= 4, "meta + extraction spans, got {}", summary.events);
        assert!(summary.stages.iter().any(|s| s.stage == magic_obs::stage::EXTRACT_ACFG));
        assert!(summary.command.as_deref().unwrap_or("").starts_with("magic extract"));
    }

    #[test]
    fn serve_requires_a_model() {
        assert!(dispatch(&["serve".to_string()])
            .unwrap_err()
            .contains("serve requires --model"));
    }

    #[test]
    fn serve_rejects_bad_flags_before_binding() {
        let bad_window: Vec<String> =
            ["serve", "--model", "/tmp/x.magic", "--batch-window-us", "soon"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(dispatch(&bad_window).unwrap_err(), "bad --batch-window-us");
        let bad_metrics: Vec<String> =
            ["serve", "--model", "/tmp/x.magic", "--metrics-window", "minute"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(dispatch(&bad_metrics).unwrap_err(), "bad --metrics-window");
        let stray: Vec<String> = ["serve", "--model", "/tmp/x.magic", "extra"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert!(dispatch(&stray).unwrap_err().contains("does not take"));
    }

    #[test]
    fn report_serve_aggregates_an_access_log() {
        let dir = std::env::temp_dir().join("magic-cli-report-serve");
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("access.jsonl");
        let event = magic_obs::Event::ServeAccess {
            id: 1,
            ts_us: 10,
            status: 200,
            path: "/v1/predict".into(),
            batch: 2,
            bytes_in: 64,
            bytes_out: 128,
            parse_us: 5,
            extract_us: 40,
            queue_us: 700,
            execute_us: 300,
            write_us: 3,
            total_us: 1_100,
            family: Some("Family0".into()),
        };
        std::fs::write(&path, event.to_jsonl_line() + "\n").unwrap();
        let args: Vec<String> = ["report", "--serve", path.to_str().unwrap()]
            .iter()
            .map(|s| s.to_string())
            .collect();
        dispatch(&args).unwrap();
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn train_rejects_malformed_worker_count() {
        let args: Vec<String> =
            ["--corpus", "yancfg", "--out", "/tmp/x.magic", "--train-workers", "many"]
                .iter()
                .map(|s| s.to_string())
                .collect();
        assert_eq!(cmd_train(&args).unwrap_err(), "bad --train-workers");
    }
}
