//! The `.magic` model file format: a JSON header line describing the
//! model, followed by the weight records of `magic::checkpoint`.

use magic::checkpoint::{load_weights, save_weights};
use magic::tuning::{HeadKind, HyperParams};
use magic_model::Dgcnn;
use magic_json::{from_str, json, Value};

/// Metadata stored in the header line.
#[derive(Debug, Clone, PartialEq)]
pub struct ModelHeader {
    /// Which corpus profile the model was trained for.
    pub corpus: String,
    /// Family names, indexed by class id.
    pub families: Vec<String>,
    /// Hyperparameters needed to rebuild the architecture.
    pub params: HyperParams,
    /// Representative graph sizes (to re-resolve pooling ratios).
    pub graph_sizes: Vec<usize>,
    /// Canonical name of the graph-reduction strategy the model was
    /// trained with (`magic_graph::ReduceStrategy::name`); predict and
    /// serve default to the same strategy. `"none"` for models written
    /// before the field existed.
    pub reduce: String,
}

fn head_to_str(head: HeadKind) -> &'static str {
    match head {
        HeadKind::Adaptive => "adaptive",
        HeadKind::SortConv1d => "sort_conv1d",
        HeadKind::SortWeighted => "sort_weighted",
    }
}

fn head_from_str(s: &str) -> Result<HeadKind, String> {
    match s {
        "adaptive" => Ok(HeadKind::Adaptive),
        "sort_conv1d" => Ok(HeadKind::SortConv1d),
        "sort_weighted" => Ok(HeadKind::SortWeighted),
        other => Err(format!("unknown head kind {other:?}")),
    }
}

/// Serializes a trained model plus its metadata into the `.magic` format.
pub fn serialize_model(header: &ModelHeader, model: &Dgcnn) -> String {
    let meta = json!({
        "format": "magic-model-v1",
        "corpus": header.corpus,
        "families": header.families,
        "graph_sizes": header.graph_sizes,
        "reduce": header.reduce,
        "params": {
            "head": head_to_str(header.params.head),
            "pooling_ratio": header.params.pooling_ratio,
            "conv_sizes": header.params.conv_sizes,
            "conv2d_channels": header.params.conv2d_channels,
            "conv1d_channels": [header.params.conv1d_channels.0, header.params.conv1d_channels.1],
            "conv1d_kernel": header.params.conv1d_kernel,
            "dropout": header.params.dropout,
            "batch_size": header.params.batch_size,
            "weight_decay": header.params.weight_decay,
        },
    });
    format!("{meta}\n{}", save_weights(model))
}

/// Parses a `.magic` file back into its header and a restored model.
///
/// # Errors
///
/// Returns a description of the first problem found (bad JSON, missing
/// fields, incompatible weights).
pub fn deserialize_model(text: &str) -> Result<(ModelHeader, Dgcnn), String> {
    let mut lines = text.splitn(2, '\n');
    let header_line = lines.next().ok_or("empty model file")?;
    let body = lines.next().unwrap_or("");
    let meta: Value =
        from_str(header_line).map_err(|e| format!("bad header: {e}"))?;
    if meta["format"] != "magic-model-v1" {
        return Err(format!("unsupported format {:?}", meta["format"]));
    }
    let corpus = meta["corpus"].as_str().ok_or("missing corpus")?.to_string();
    let families: Vec<String> = meta["families"]
        .as_array()
        .ok_or("missing families")?
        .iter()
        .map(|v| v.as_str().unwrap_or_default().to_string())
        .collect();
    if families.is_empty() {
        return Err("family list is empty".into());
    }
    let graph_sizes: Vec<usize> = meta["graph_sizes"]
        .as_array()
        .ok_or("missing graph_sizes")?
        .iter()
        .filter_map(Value::as_u64)
        .map(|v| v as usize)
        .collect();
    // Models serialized before graph reduction existed trained on
    // unreduced graphs.
    let reduce = meta["reduce"].as_str().unwrap_or("none").to_string();

    let p = &meta["params"];
    let mut params = HyperParams::paper_default();
    params.head = head_from_str(p["head"].as_str().ok_or("missing head")?)?;
    params.pooling_ratio = p["pooling_ratio"].as_f64().ok_or("missing pooling_ratio")?;
    params.conv_sizes = p["conv_sizes"]
        .as_array()
        .ok_or("missing conv_sizes")?
        .iter()
        .filter_map(Value::as_u64)
        .map(|v| v as usize)
        .collect();
    params.conv2d_channels = p["conv2d_channels"].as_u64().unwrap_or(16) as usize;
    if let Some(pair) = p["conv1d_channels"].as_array() {
        if pair.len() == 2 {
            params.conv1d_channels = (
                pair[0].as_u64().unwrap_or(16) as usize,
                pair[1].as_u64().unwrap_or(32) as usize,
            );
        }
    }
    params.conv1d_kernel = p["conv1d_kernel"].as_u64().unwrap_or(5) as usize;
    params.dropout = p["dropout"].as_f64().unwrap_or(0.1) as f32;
    params.batch_size = p["batch_size"].as_u64().unwrap_or(10) as usize;
    params.weight_decay = p["weight_decay"].as_f64().unwrap_or(1e-4) as f32;

    let config = params.to_model_config(families.len(), &graph_sizes);
    let mut model = Dgcnn::new(&config, 0);
    load_weights(&mut model, body).map_err(|e| format!("bad weights: {e}"))?;
    let header = ModelHeader { corpus, families, params, graph_sizes, reduce };
    Ok((header, model))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_header() -> ModelHeader {
        let mut params = HyperParams::paper_default();
        params.head = HeadKind::SortWeighted;
        ModelHeader {
            corpus: "mskcfg".into(),
            families: vec!["A".into(), "B".into(), "C".into()],
            params,
            graph_sizes: (10..60).collect(),
            reduce: "chain".into(),
        }
    }

    #[test]
    fn missing_reduce_field_defaults_to_none() {
        let header = ModelHeader { reduce: String::new(), ..sample_header() };
        let config = header.params.to_model_config(3, &header.graph_sizes);
        let model = Dgcnn::new(&config, 1);
        // Strip the reduce key to emulate a pre-reduction model file.
        let text = serialize_model(&header, &model).replacen("\"reduce\":\"\",", "", 1);
        assert!(!text.contains("\"reduce\""));
        let (back, _) = deserialize_model(&text).unwrap();
        assert_eq!(back.reduce, "none");
    }

    #[test]
    fn roundtrip_preserves_model_behaviour() {
        use magic_graph::{Acfg, DiGraph, NUM_ATTRIBUTES};
        use magic_model::GraphInput;
        use magic_tensor::{Rng64, Tensor};

        let header = sample_header();
        let config = header.params.to_model_config(3, &header.graph_sizes);
        let model = Dgcnn::new(&config, 99);
        let text = serialize_model(&header, &model);

        let (back_header, back_model) = deserialize_model(&text).unwrap();
        assert_eq!(back_header, header);

        let mut rng = Rng64::new(1);
        let mut g = DiGraph::new(5);
        for v in 0..4 {
            g.add_edge(v, v + 1);
        }
        let acfg = Acfg::new(g, Tensor::rand_uniform([5, NUM_ATTRIBUTES], 0.0, 3.0, &mut rng));
        let input = GraphInput::from_acfg(&acfg);
        assert_eq!(model.predict(&input), back_model.predict(&input));
    }

    #[test]
    fn rejects_wrong_format() {
        assert!(deserialize_model("{\"format\":\"nope\"}\n").is_err());
        assert!(deserialize_model("not json\n").is_err());
        assert!(deserialize_model("").is_err());
    }

    #[test]
    fn rejects_empty_family_list() {
        let text = "{\"format\":\"magic-model-v1\",\"corpus\":\"x\",\"families\":[],\"graph_sizes\":[10],\"params\":{\"head\":\"adaptive\",\"pooling_ratio\":0.2,\"conv_sizes\":[32]}}\n";
        assert!(deserialize_model(text).unwrap_err().contains("empty"));
    }

    #[test]
    fn head_kind_strings_roundtrip() {
        for head in [HeadKind::Adaptive, HeadKind::SortConv1d, HeadKind::SortWeighted] {
            assert_eq!(head_from_str(head_to_str(head)).unwrap(), head);
        }
        assert!(head_from_str("bogus").is_err());
    }
}
