//! Property-based tests of the tensor algebra, driven by a seeded
//! [`Rng64`] loop (the build is offline, so no proptest).

use magic_tensor::{Rng64, Tensor};

const CASES: u64 = 128;

fn random_tensor(rng: &mut Rng64, rows: usize, cols: usize) -> Tensor {
    Tensor::rand_uniform([rows, cols], -100.0, 100.0, rng)
}

#[test]
fn transpose_is_involutive() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = random_tensor(&mut rng, 3, 5);
        assert_eq!(t.transpose().transpose(), t);
    }
}

#[test]
fn matmul_transpose_identity() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_tensor(&mut rng, 3, 4);
        let b = random_tensor(&mut rng, 4, 2);
        // (AB)^T = B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        assert!(left.approx_eq(&right, 1e-3));
    }
}

#[test]
fn add_is_commutative_and_associative() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let a = random_tensor(&mut rng, 2, 3);
        let b = random_tensor(&mut rng, 2, 3);
        let c = random_tensor(&mut rng, 2, 3);
        assert_eq!(a.add(&b), b.add(&a));
        assert!(a.add(&b).add(&c).approx_eq(&a.add(&b.add(&c)), 1e-3));
    }
}

#[test]
fn relu_is_idempotent_and_nonnegative() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = random_tensor(&mut rng, 4, 4);
        let r = t.relu();
        assert_eq!(r.relu(), r.clone());
        assert!(r.as_slice().iter().all(|&x| x >= 0.0));
    }
}

#[test]
fn scale_rows_matches_diagonal_matmul() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = random_tensor(&mut rng, 3, 4);
        // D t == scale_rows(t, diag(D)) for diagonal D.
        let factors = [0.5f32, -2.0, 3.0];
        let mut d = Tensor::zeros([3, 3]);
        for (i, &f) in factors.iter().enumerate() {
            d.set2(i, i, f);
        }
        let via_matmul = d.matmul(&t);
        let via_scale = t.scale_rows(&factors);
        assert!(via_matmul.approx_eq(&via_scale, 1e-3));
    }
}

#[test]
fn gather_then_concat_partition_is_identity() {
    for seed in 0..CASES {
        // Splitting rows into two index sets and re-gathering in order
        // reproduces the matrix.
        let mut rng = Rng64::new(seed);
        let t = Tensor::rand_uniform([6, 3], -1.0, 1.0, &mut rng);
        let top = t.gather_rows(&[0, 1, 2]);
        let bottom = t.gather_rows(&[3, 4, 5]);
        assert_eq!(Tensor::concat_rows(&[&top, &bottom]), t);
    }
}

#[test]
fn argsort_produces_descending_keys() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = random_tensor(&mut rng, 8, 3);
        let order = t.argsort_rows_desc_lastcol();
        // The primary key (last column) is non-increasing along the order.
        for w in order.windows(2) {
            assert!(t.get2(w[0], 2) >= t.get2(w[1], 2));
        }
        // And it is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }
}

#[test]
fn log_softmax_exponentiates_to_distribution() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let len = rng.next_range(2, 12);
        let v: Vec<f32> = (0..len).map(|_| rng.next_f32() * 60.0 - 30.0).collect();
        let t = Tensor::from_slice(&v);
        let exp_sum: f32 = t.log_softmax().exp().sum();
        assert!((exp_sum - 1.0).abs() < 1e-4);
    }
}

#[test]
fn pad_or_truncate_is_idempotent_at_target() {
    for seed in 0..CASES {
        let mut rng = Rng64::new(seed);
        let t = random_tensor(&mut rng, 5, 2);
        let k = rng.next_range(1, 10);
        let once = t.pad_or_truncate_rows(k);
        let twice = once.pad_or_truncate_rows(k);
        assert_eq!(once, twice);
    }
}
