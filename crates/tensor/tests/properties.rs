//! Property-based tests of the tensor algebra.

use magic_tensor::{Rng64, Tensor};
use proptest::prelude::*;

fn tensor_strategy(rows: usize, cols: usize) -> impl Strategy<Value = Tensor> {
    prop::collection::vec(-100f32..100.0, rows * cols)
        .prop_map(move |v| Tensor::from_vec(v, [rows, cols]))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn transpose_is_involutive(t in tensor_strategy(3, 5)) {
        prop_assert_eq!(t.transpose().transpose(), t);
    }

    #[test]
    fn matmul_transpose_identity(a in tensor_strategy(3, 4), b in tensor_strategy(4, 2)) {
        // (AB)^T = B^T A^T
        let left = a.matmul(&b).transpose();
        let right = b.transpose().matmul(&a.transpose());
        prop_assert!(left.approx_eq(&right, 1e-3));
    }

    #[test]
    fn add_is_commutative_and_associative(
        a in tensor_strategy(2, 3),
        b in tensor_strategy(2, 3),
        c in tensor_strategy(2, 3),
    ) {
        prop_assert_eq!(a.add(&b), b.add(&a));
        prop_assert!(a.add(&b).add(&c).approx_eq(&a.add(&b.add(&c)), 1e-3));
    }

    #[test]
    fn relu_is_idempotent_and_nonnegative(t in tensor_strategy(4, 4)) {
        let r = t.relu();
        prop_assert_eq!(r.relu(), r.clone());
        prop_assert!(r.as_slice().iter().all(|&x| x >= 0.0));
    }

    #[test]
    fn scale_rows_matches_diagonal_matmul(t in tensor_strategy(3, 4)) {
        // D t == scale_rows(t, diag(D)) for diagonal D.
        let factors = [0.5f32, -2.0, 3.0];
        let mut d = Tensor::zeros([3, 3]);
        for (i, &f) in factors.iter().enumerate() {
            d.set2(i, i, f);
        }
        let via_matmul = d.matmul(&t);
        let via_scale = t.scale_rows(&factors);
        prop_assert!(via_matmul.approx_eq(&via_scale, 1e-3));
    }

    #[test]
    fn gather_then_concat_partition_is_identity(seed in 0u64..1000) {
        // Splitting rows into two index sets and re-gathering in order
        // reproduces the matrix.
        let mut rng = Rng64::new(seed);
        let t = Tensor::rand_uniform([6, 3], -1.0, 1.0, &mut rng);
        let top = t.gather_rows(&[0, 1, 2]);
        let bottom = t.gather_rows(&[3, 4, 5]);
        prop_assert_eq!(Tensor::concat_rows(&[&top, &bottom]), t);
    }

    #[test]
    fn argsort_produces_descending_keys(t in tensor_strategy(8, 3)) {
        let order = t.argsort_rows_desc_lastcol();
        // The primary key (last column) is non-increasing along the order.
        for w in order.windows(2) {
            prop_assert!(t.get2(w[0], 2) >= t.get2(w[1], 2));
        }
        // And it is a permutation.
        let mut sorted = order.clone();
        sorted.sort_unstable();
        prop_assert_eq!(sorted, (0..8).collect::<Vec<_>>());
    }

    #[test]
    fn log_softmax_exponentiates_to_distribution(v in prop::collection::vec(-30f32..30.0, 2..12)) {
        let t = Tensor::from_slice(&v);
        let exp_sum: f32 = t.log_softmax().exp().sum();
        prop_assert!((exp_sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn pad_or_truncate_is_idempotent_at_target(t in tensor_strategy(5, 2), k in 1usize..10) {
        let once = t.pad_or_truncate_rows(k);
        let twice = once.pad_or_truncate_rows(k);
        prop_assert_eq!(once, twice);
    }
}
