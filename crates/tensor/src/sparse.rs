//! Compressed sparse row matrices for the Eq. (1) adjacency product.
//!
//! Control flow graphs are extremely sparse — basic blocks have out-degree
//! ≤ 2 plus call edges — so storing the augmented adjacency `Â = A + I` as
//! a dense `n×n` [`Tensor`] wastes `O(n²)` memory and FLOPs on zeros. A
//! [`CsrMatrix`] keeps only the `n + e` nonzeros in the classic three-array
//! layout (row offsets / column indices / values) and multiplies dense
//! matrices in `O(nnz · c)`.
//!
//! # Layout
//!
//! * `row_offsets` — `rows + 1` entries; row `i`'s nonzeros live at
//!   positions `row_offsets[i] .. row_offsets[i+1]` of the other two
//!   arrays.
//! * `col_indices` — the column of each nonzero (`u32`: graphs are far
//!   below 2³² vertices and the narrower index halves cache traffic).
//! * `values` — the nonzero values, aligned with `col_indices`.
//!
//! Within each row, columns are stored strictly ascending. That canonical
//! ordering is part of the determinism contract: [`CsrMatrix::spmm`]
//! accumulates in storage order with no atomics, so a product is bitwise
//! reproducible run to run and independent of thread count.
//!
//! Buffers are reported to [`crate::mem`] just like dense tensor buffers,
//! so the observability layer's peak-memory counters see the `O(n + e)`
//! footprint directly.

use crate::mem;
use crate::tensor::Tensor;

/// A sparse matrix in compressed sparse row form. See the module docs
/// for the layout and determinism contract.
#[derive(Debug, PartialEq)]
pub struct CsrMatrix {
    rows: usize,
    cols: usize,
    row_offsets: Vec<usize>,
    col_indices: Vec<u32>,
    values: Vec<f32>,
}

impl CsrMatrix {
    /// Internal constructor: takes ownership of pre-validated arrays and
    /// reports their footprint to the memory accountant.
    fn tracked(
        rows: usize,
        cols: usize,
        row_offsets: Vec<usize>,
        col_indices: Vec<u32>,
        values: Vec<f32>,
    ) -> Self {
        debug_assert_eq!(row_offsets.len(), rows + 1);
        debug_assert_eq!(col_indices.len(), values.len());
        debug_assert_eq!(*row_offsets.last().unwrap_or(&0), values.len());
        let m = CsrMatrix { rows, cols, row_offsets, col_indices, values };
        mem::on_alloc_bytes(m.heap_bytes());
        m
    }

    /// Builds the augmented adjacency `Â = A + I` and the inverse
    /// augmented degree diagonal `D̂⁻¹` directly from an edge list, never
    /// materializing the dense `n×n`.
    ///
    /// Each `(u, v)` edge contributes `1.0` at `(u, v)`; every vertex
    /// additionally gets a `1.0` self loop. Duplicate coordinates
    /// (including an explicit `(i, i)` self-loop edge on top of the added
    /// identity) are summed, matching the dense `A + I` semantics. The
    /// degree of vertex `i` is its row sum, as in Section III-A1 of the
    /// paper.
    ///
    /// # Panics
    ///
    /// Panics if an edge endpoint is `>= n`.
    pub fn augmented_from_edges(
        n: usize,
        edges: impl IntoIterator<Item = (usize, usize)>,
    ) -> (CsrMatrix, Vec<f32>) {
        let edges: Vec<(usize, usize)> = edges.into_iter().collect();
        let mut counts = vec![1usize; n]; // one self loop per vertex
        for &(u, v) in &edges {
            assert!(u < n && v < n, "edge ({u},{v}) out of range for {n} vertices");
            counts[u] += 1;
        }
        let mut offsets = Vec::with_capacity(n + 1);
        let mut total = 0usize;
        offsets.push(0);
        for &c in &counts {
            total += c;
            offsets.push(total);
        }
        // Scatter columns, then sort each row and merge duplicates.
        let mut cols_scatter = vec![0u32; total];
        let mut cursor = offsets.clone();
        for (i, c) in cursor.iter_mut().take(n).enumerate() {
            cols_scatter[*c] = i as u32; // the self loop
            *c += 1;
        }
        for &(u, v) in &edges {
            cols_scatter[cursor[u]] = v as u32;
            cursor[u] += 1;
        }

        let mut row_offsets = Vec::with_capacity(n + 1);
        let mut col_indices = Vec::with_capacity(total);
        let mut values = Vec::with_capacity(total);
        let mut inv_degree = Vec::with_capacity(n);
        row_offsets.push(0);
        for i in 0..n {
            let seg = &mut cols_scatter[offsets[i]..offsets[i + 1]];
            seg.sort_unstable();
            let mut degree = 0.0f32;
            for &c in seg.iter() {
                if col_indices.len() > *row_offsets.last().unwrap()
                    && *col_indices.last().unwrap() == c
                {
                    *values.last_mut().unwrap() += 1.0;
                } else {
                    col_indices.push(c);
                    values.push(1.0);
                }
                degree += 1.0;
            }
            row_offsets.push(col_indices.len());
            inv_degree.push(if degree > 0.0 { 1.0 / degree } else { 0.0 });
        }
        (CsrMatrix::tracked(n, n, row_offsets, col_indices, values), inv_degree)
    }

    /// Stacks independent CSR blocks into one block-diagonal matrix:
    /// block `t` occupies rows `Σ_{s<t} rows_s ..` and columns
    /// `Σ_{s<t} cols_s ..`, with zeros everywhere else (represented, of
    /// course, by storing nothing).
    ///
    /// This is the batched-execution "batch graph": stacking a
    /// mini-batch's augmented adjacencies block-diagonally lets one
    /// [`CsrMatrix::spmm_row_scaled`] propagate every sample's
    /// concatenated node features in a single call. Because SpMM
    /// accumulates per output row in storage order and a block-diagonal
    /// row holds exactly the nonzeros of its source block's row (columns
    /// shifted into the block's span), the batched product is bitwise
    /// identical to the per-sample products stacked row-wise.
    ///
    /// Ascending column order within rows is preserved, and
    /// `block_diagonal(&blocks).transpose()` equals the block diagonal of
    /// the transposes.
    ///
    /// # Panics
    ///
    /// Panics if `blocks` is empty or the summed column count overflows
    /// the `u32` column index space.
    pub fn block_diagonal(blocks: &[&CsrMatrix]) -> CsrMatrix {
        assert!(!blocks.is_empty(), "block_diagonal requires at least one block");
        let rows: usize = blocks.iter().map(|b| b.rows).sum();
        let cols: usize = blocks.iter().map(|b| b.cols).sum();
        let nnz: usize = blocks.iter().map(|b| b.nnz()).sum();
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::with_capacity(nnz);
        let mut values = Vec::with_capacity(nnz);
        row_offsets.push(0);
        let mut col_base = 0usize;
        for b in blocks {
            let nnz_base = *row_offsets.last().unwrap();
            row_offsets.extend(b.row_offsets[1..].iter().map(|&o| nnz_base + o));
            let shift =
                u32::try_from(col_base).expect("block_diagonal exceeds u32 column space");
            col_indices.extend(b.col_indices.iter().map(|&c| c + shift));
            values.extend_from_slice(&b.values);
            col_base += b.cols;
        }
        CsrMatrix::tracked(rows, cols, row_offsets, col_indices, values)
    }

    /// Converts a dense matrix, keeping every nonzero entry (row-major,
    /// so columns come out ascending). Mainly for parity tests and
    /// tooling — production paths build from edges instead.
    pub fn from_dense(dense: &Tensor) -> CsrMatrix {
        let (rows, cols) = (dense.rows(), dense.cols());
        let d = dense.as_slice();
        let mut row_offsets = Vec::with_capacity(rows + 1);
        let mut col_indices = Vec::new();
        let mut values = Vec::new();
        row_offsets.push(0);
        for i in 0..rows {
            for (j, &x) in d[i * cols..(i + 1) * cols].iter().enumerate() {
                if x != 0.0 {
                    col_indices.push(j as u32);
                    values.push(x);
                }
            }
            row_offsets.push(col_indices.len());
        }
        CsrMatrix::tracked(rows, cols, row_offsets, col_indices, values)
    }

    /// Materializes the dense equivalent (for tests and the dense
    /// fallback path).
    pub fn to_dense(&self) -> Tensor {
        let mut out = Tensor::zeros([self.rows, self.cols]);
        let o = out.as_mut_slice();
        for i in 0..self.rows {
            for p in self.row_offsets[i]..self.row_offsets[i + 1] {
                o[i * self.cols + self.col_indices[p] as usize] += self.values[p];
            }
        }
        out
    }

    /// The transpose, also in CSR (i.e. the CSC view of `self`). Columns
    /// within each output row come out ascending, preserving the
    /// canonical ordering.
    ///
    /// The DGCNN backward pass is `Âᵀ (D̂⁻¹ g)`; the model precomputes
    /// this transpose once per graph and reuses it every epoch.
    pub fn transpose(&self) -> CsrMatrix {
        let nnz = self.nnz();
        let mut counts = vec![0usize; self.cols];
        for &c in &self.col_indices {
            counts[c as usize] += 1;
        }
        let mut row_offsets = Vec::with_capacity(self.cols + 1);
        let mut total = 0usize;
        row_offsets.push(0);
        for &c in &counts {
            total += c;
            row_offsets.push(total);
        }
        let mut col_indices = vec![0u32; nnz];
        let mut values = vec![0.0f32; nnz];
        let mut cursor = row_offsets.clone();
        for i in 0..self.rows {
            for p in self.row_offsets[i]..self.row_offsets[i + 1] {
                let c = self.col_indices[p] as usize;
                col_indices[cursor[c]] = i as u32;
                values[cursor[c]] = self.values[p];
                cursor[c] += 1;
            }
        }
        CsrMatrix::tracked(self.cols, self.rows, row_offsets, col_indices, values)
    }

    /// Sparse × dense product `self @ dense`, `O(nnz · c)`.
    ///
    /// Accumulation order is fixed (storage order within each row), so
    /// the result is bitwise deterministic.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != dense.rows()`.
    pub fn spmm(&self, dense: &Tensor) -> Tensor {
        self.spmm_impl(None, dense)
    }

    /// Fused `diag(row_scale) · (self @ dense)` — the whole
    /// `D̂⁻¹ (Â F)` of Eq. (1) in one pass over the nonzeros.
    ///
    /// # Panics
    ///
    /// Panics if `self.cols() != dense.rows()` or
    /// `row_scale.len() != self.rows()`.
    pub fn spmm_row_scaled(&self, row_scale: &[f32], dense: &Tensor) -> Tensor {
        assert_eq!(row_scale.len(), self.rows, "one scale factor per row");
        self.spmm_impl(Some(row_scale), dense)
    }

    fn spmm_impl(&self, row_scale: Option<&[f32]>, dense: &Tensor) -> Tensor {
        assert_eq!(
            self.cols,
            dense.rows(),
            "spmm inner dimension mismatch: {} vs {}",
            self.cols,
            dense.rows()
        );
        let c = dense.cols();
        let d = dense.as_slice();
        let mut out = Tensor::zeros([self.rows, c]);
        if self.rows == 0 || c == 0 {
            return out;
        }
        // Each output row is reduced by exactly one thread in storage
        // order (see crate::threading), so the fan-out cannot change bits.
        let work = 2 * self.nnz() as u64 * c as u64;
        crate::threading::partition_rows(self.rows, c, work, out.as_mut_slice(), |first, rows| {
            for (di, orow) in rows.chunks_exact_mut(c).enumerate() {
                let i = first + di;
                for p in self.row_offsets[i]..self.row_offsets[i + 1] {
                    let drow = &d[self.col_indices[p] as usize * c..][..c];
                    crate::simd::axpy_span(orow, self.values[p], drow);
                }
                if let Some(s) = row_scale {
                    let f = s[i];
                    for oj in orow.iter_mut() {
                        *oj *= f;
                    }
                }
            }
        });
        out
    }

    /// Number of rows.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Number of columns.
    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Number of stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.values.len()
    }

    /// The `rows + 1` row offset array.
    pub fn row_offsets(&self) -> &[usize] {
        &self.row_offsets
    }

    /// The column index of each nonzero.
    pub fn col_indices(&self) -> &[u32] {
        &self.col_indices
    }

    /// The value of each nonzero.
    pub fn values(&self) -> &[f32] {
        &self.values
    }

    /// Bytes held by the three backing arrays — what this matrix reports
    /// to [`crate::mem`]. `O(rows + nnz)`, versus `rows · cols · 4` for
    /// the dense equivalent.
    pub fn heap_bytes(&self) -> usize {
        self.row_offsets.len() * std::mem::size_of::<usize>()
            + self.col_indices.len() * std::mem::size_of::<u32>()
            + self.values.len() * std::mem::size_of::<f32>()
    }
}

impl Clone for CsrMatrix {
    fn clone(&self) -> Self {
        CsrMatrix::tracked(
            self.rows,
            self.cols,
            self.row_offsets.clone(),
            self.col_indices.clone(),
            self.values.clone(),
        )
    }
}

impl Drop for CsrMatrix {
    fn drop(&mut self) {
        mem::on_free_bytes(self.heap_bytes());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Rng64;

    /// The Fig. 2 worked-example edge list (0-indexed).
    const PAPER_EDGES: [(usize, usize); 6] =
        [(0, 1), (0, 2), (1, 3), (2, 3), (2, 4), (3, 1)];

    fn dense_augmented(n: usize, edges: &[(usize, usize)]) -> (Tensor, Vec<f32>) {
        let mut a = Tensor::zeros([n, n]);
        for &(u, v) in edges {
            let cur = a.get2(u, v);
            a.set2(u, v, cur + 1.0);
        }
        let a_hat = a.add(&Tensor::eye(n));
        let inv: Vec<f32> = (0..n)
            .map(|i| {
                let d: f32 = a_hat.row(i).iter().sum();
                if d > 0.0 { 1.0 / d } else { 0.0 }
            })
            .collect();
        (a_hat, inv)
    }

    #[test]
    fn augmented_from_edges_matches_dense_construction() {
        let (csr, inv) = CsrMatrix::augmented_from_edges(5, PAPER_EDGES);
        let (dense, inv_dense) = dense_augmented(5, &PAPER_EDGES);
        assert_eq!(csr.to_dense(), dense);
        assert_eq!(inv, inv_dense);
        assert_eq!(csr.nnz(), 5 + 6, "n self loops plus e edges");
    }

    #[test]
    fn explicit_self_loop_merges_with_identity() {
        let (csr, inv) = CsrMatrix::augmented_from_edges(2, [(0, 0), (0, 1)]);
        // Â[0][0] = A's self loop + I = 2.0, degree 3.
        assert_eq!(csr.to_dense().get2(0, 0), 2.0);
        assert_eq!(csr.nnz(), 3);
        assert!((inv[0] - 1.0 / 3.0).abs() < 1e-6);
        assert_eq!(inv[1], 1.0);
    }

    #[test]
    fn columns_are_sorted_within_rows_regardless_of_edge_order() {
        let (a, _) = CsrMatrix::augmented_from_edges(4, [(0, 3), (0, 1), (0, 2)]);
        let (b, _) = CsrMatrix::augmented_from_edges(4, [(0, 1), (0, 2), (0, 3)]);
        assert_eq!(a, b, "layout is canonical");
        for i in 0..a.rows() {
            let seg = &a.col_indices()[a.row_offsets()[i]..a.row_offsets()[i + 1]];
            assert!(seg.windows(2).all(|w| w[0] < w[1]), "row {i} sorted: {seg:?}");
        }
    }

    #[test]
    fn from_dense_roundtrips() {
        let mut rng = Rng64::new(7);
        let mut dense = Tensor::zeros([6, 4]);
        for x in dense.as_mut_slice() {
            if rng.next_bool(0.3) {
                *x = rng.next_f32() - 0.5;
            }
        }
        let csr = CsrMatrix::from_dense(&dense);
        assert_eq!(csr.to_dense(), dense);
    }

    #[test]
    fn transpose_matches_dense_transpose() {
        let (csr, _) = CsrMatrix::augmented_from_edges(5, PAPER_EDGES);
        let t = csr.transpose();
        assert_eq!(t.to_dense(), csr.to_dense().transpose());
        assert_eq!(t.nnz(), csr.nnz());
        // Transposing twice is the identity.
        assert_eq!(t.transpose(), csr);
    }

    #[test]
    fn spmm_matches_dense_matmul() {
        let mut rng = Rng64::new(11);
        let (csr, _) = CsrMatrix::augmented_from_edges(5, PAPER_EDGES);
        let f = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let sparse = csr.spmm(&f);
        let dense = csr.to_dense().matmul(&f);
        for (a, b) in sparse.as_slice().iter().zip(dense.as_slice()) {
            assert!((a - b).abs() < 1e-6, "{a} vs {b}");
        }
    }

    #[test]
    fn spmm_row_scaled_fuses_the_normalization() {
        let mut rng = Rng64::new(12);
        let (csr, inv) = CsrMatrix::augmented_from_edges(5, PAPER_EDGES);
        let f = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let fused = csr.spmm_row_scaled(&inv, &f);
        let two_pass = csr.spmm(&f).scale_rows(&inv);
        assert_eq!(fused, two_pass, "fusion is exact, not approximate");
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn spmm_rejects_bad_dims() {
        let (csr, _) = CsrMatrix::augmented_from_edges(3, [(0, 1)]);
        csr.spmm(&Tensor::zeros([4, 2]));
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn augmented_rejects_out_of_range_edges() {
        CsrMatrix::augmented_from_edges(2, [(0, 2)]);
    }

    #[test]
    fn heap_bytes_scale_with_edges_not_vertices_squared() {
        // A 1024-vertex ring: 2048 nonzeros. The dense Â would be 4 MiB;
        // CSR stays under 33 KiB.
        let n = 1024;
        let edges: Vec<(usize, usize)> = (0..n).map(|u| (u, (u + 1) % n)).collect();
        let (csr, _) = CsrMatrix::augmented_from_edges(n, edges);
        assert_eq!(csr.nnz(), 2 * n);
        assert!(csr.heap_bytes() < 40 * 1024, "{} bytes", csr.heap_bytes());
        assert!(csr.heap_bytes() * 100 < n * n * 4);
    }

    #[test]
    fn memory_accounting_balances_on_clone_and_drop() {
        // mem state is process-global; serialize with the mem.rs tests.
        let _guard = mem::TEST_LOCK.lock().unwrap();
        mem::reset();
        mem::enable();
        let before = mem::stats().current_bytes;
        {
            let (csr, _) = CsrMatrix::augmented_from_edges(16, [(0, 1), (1, 2)]);
            let expected = csr.heap_bytes() as u64;
            assert_eq!(mem::stats().current_bytes, before + expected);
            let copy = csr.clone();
            assert_eq!(mem::stats().current_bytes, before + 2 * expected);
            drop(copy);
            assert_eq!(mem::stats().current_bytes, before + expected);
        }
        assert_eq!(mem::stats().current_bytes, before, "all CSR buffers freed");
        mem::disable();
        mem::reset();
    }

    #[test]
    fn block_diagonal_matches_dense_block_layout() {
        let (a, _) = CsrMatrix::augmented_from_edges(3, [(0, 1), (1, 2)]);
        let (b, _) = CsrMatrix::augmented_from_edges(2, [(1, 0)]);
        let bd = CsrMatrix::block_diagonal(&[&a, &b]);
        assert_eq!(bd.rows(), 5);
        assert_eq!(bd.cols(), 5);
        assert_eq!(bd.nnz(), a.nnz() + b.nnz());
        let dense = bd.to_dense();
        for i in 0..3 {
            for j in 0..3 {
                assert_eq!(dense.get2(i, j), a.to_dense().get2(i, j));
            }
            for j in 3..5 {
                assert_eq!(dense.get2(i, j), 0.0, "off-diagonal block must be zero");
                assert_eq!(dense.get2(j, i), 0.0);
            }
        }
        for i in 0..2 {
            for j in 0..2 {
                assert_eq!(dense.get2(3 + i, 3 + j), b.to_dense().get2(i, j));
            }
        }
    }

    #[test]
    fn block_diagonal_transpose_commutes() {
        let (a, _) = CsrMatrix::augmented_from_edges(4, PAPER_EDGES[..3].to_vec());
        let (b, _) = CsrMatrix::augmented_from_edges(3, [(2, 0)]);
        let t_of_bd = CsrMatrix::block_diagonal(&[&a, &b]).transpose();
        let bd_of_t = CsrMatrix::block_diagonal(&[&a.transpose(), &b.transpose()]);
        assert_eq!(t_of_bd, bd_of_t);
    }

    #[test]
    fn block_diagonal_spmm_is_bitwise_equal_to_stacked_per_block_products() {
        // The batched-execution contract: propagating concatenated node
        // features through the block-diagonal Â must reproduce each
        // sample's rows bit for bit.
        let mut rng = Rng64::new(23);
        let (a, inv_a) = CsrMatrix::augmented_from_edges(5, PAPER_EDGES);
        let (b, inv_b) = CsrMatrix::augmented_from_edges(3, [(0, 2), (2, 1)]);
        let fa = Tensor::rand_uniform([5, 4], -1.0, 1.0, &mut rng);
        let fb = Tensor::rand_uniform([3, 4], -1.0, 1.0, &mut rng);

        let bd = CsrMatrix::block_diagonal(&[&a, &b]);
        let mut inv = inv_a.clone();
        inv.extend_from_slice(&inv_b);
        let stacked_in = Tensor::concat_rows(&[&fa, &fb]);
        let batched = bd.spmm_row_scaled(&inv, &stacked_in);

        let per_sample =
            Tensor::concat_rows(&[&a.spmm_row_scaled(&inv_a, &fa), &b.spmm_row_scaled(&inv_b, &fb)]);
        assert_eq!(batched, per_sample, "block-diagonal SpMM must be bitwise exact");
    }

    #[test]
    #[should_panic(expected = "at least one block")]
    fn block_diagonal_rejects_empty_input() {
        CsrMatrix::block_diagonal(&[]);
    }

    #[test]
    fn empty_graph_yields_identity_free_matrix() {
        let (csr, inv) = CsrMatrix::augmented_from_edges(0, []);
        assert_eq!(csr.rows(), 0);
        assert_eq!(csr.nnz(), 0);
        assert!(inv.is_empty());
    }
}
