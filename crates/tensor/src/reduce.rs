//! Reductions, argmax/argsort and the softmax family.

use crate::tensor::Tensor;

impl Tensor {
    /// Sum of all elements.
    pub fn sum(&self) -> f32 {
        self.as_slice().iter().sum()
    }

    /// Arithmetic mean of all elements (0 for an empty tensor).
    pub fn mean(&self) -> f32 {
        if self.is_empty() {
            0.0
        } else {
            self.sum() / self.len() as f32
        }
    }

    /// Maximum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn max(&self) -> f32 {
        assert!(!self.is_empty(), "max() of empty tensor");
        self.as_slice().iter().copied().fold(f32::NEG_INFINITY, f32::max)
    }

    /// Minimum element.
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn min(&self) -> f32 {
        assert!(!self.is_empty(), "min() of empty tensor");
        self.as_slice().iter().copied().fold(f32::INFINITY, f32::min)
    }

    /// Index of the maximum element (first occurrence).
    ///
    /// # Panics
    ///
    /// Panics on an empty tensor.
    pub fn argmax(&self) -> usize {
        assert!(!self.is_empty(), "argmax() of empty tensor");
        self.as_slice()
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap_or(std::cmp::Ordering::Equal))
            .map(|(i, _)| i)
            .unwrap()
    }

    /// Per-column sums of a matrix, returned as a length-`cols` vector.
    pub fn sum_rows(&self) -> Vec<f32> {
        let (r, c) = (self.rows(), self.cols());
        let mut out = vec![0.0; c];
        for i in 0..r {
            for (o, &x) in out.iter_mut().zip(self.row(i)) {
                *o += x;
            }
        }
        out
    }

    /// Per-row sums of a matrix, returned as a length-`rows` vector.
    pub fn sum_cols(&self) -> Vec<f32> {
        (0..self.rows()).map(|i| self.row(i).iter().sum()).collect()
    }

    /// Numerically stable softmax over a 1-D tensor.
    pub fn softmax(&self) -> Tensor {
        let m = self.max();
        let exps: Vec<f32> = self.as_slice().iter().map(|&x| (x - m).exp()).collect();
        let total: f32 = exps.iter().sum();
        Tensor::from_vec(exps.iter().map(|e| e / total).collect(), self.shape().clone())
    }

    /// Numerically stable log-softmax over a 1-D tensor.
    pub fn log_softmax(&self) -> Tensor {
        let m = self.max();
        let log_sum: f32 = self
            .as_slice()
            .iter()
            .map(|&x| (x - m).exp())
            .sum::<f32>()
            .ln();
        self.map(|x| x - m - log_sum)
    }

    /// Indices that sort the rows of a matrix in *descending*
    /// lexicographic order reading channels from the **last column
    /// backwards** — the exact ordering of the DGCNN SortPooling layer:
    /// "vertices are first sorted by the last channel of the last layer in
    /// a decreasing order; ties are broken using earlier channels".
    pub fn argsort_rows_desc_lastcol(&self) -> Vec<usize> {
        self.argsort_rows_desc_lastcol_range(0, self.rows())
    }

    /// [`Tensor::argsort_rows_desc_lastcol`] restricted to the row range
    /// `start..end`, returning *global* row indices. A block-diagonal
    /// batch sorts each sample's row segment independently with this;
    /// because ties break on the row index and the range shift is
    /// order-preserving, the permutation within the segment is exactly
    /// the one the per-sample sort would produce.
    ///
    /// # Panics
    ///
    /// Panics if the range is inverted or exceeds the row count.
    pub fn argsort_rows_desc_lastcol_range(&self, start: usize, end: usize) -> Vec<usize> {
        assert!(start <= end && end <= self.rows(), "row range {start}..{end} out of bounds");
        let mut idx: Vec<usize> = (start..end).collect();
        idx.sort_by(|&a, &b| {
            let ra = self.row(a);
            let rb = self.row(b);
            for (x, y) in ra.iter().rev().zip(rb.iter().rev()) {
                match y.partial_cmp(x) {
                    Some(std::cmp::Ordering::Equal) | None => continue,
                    Some(ord) => return ord,
                }
            }
            a.cmp(&b)
        });
        idx
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sum_and_mean() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        assert_eq!(t.sum(), 10.0);
        assert_eq!(t.mean(), 2.5);
    }

    #[test]
    fn max_min_argmax() {
        let t = Tensor::from_slice(&[1.0, 5.0, -2.0]);
        assert_eq!(t.max(), 5.0);
        assert_eq!(t.min(), -2.0);
        assert_eq!(t.argmax(), 1);
    }

    #[test]
    fn row_and_col_sums() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.sum_rows(), vec![4.0, 6.0]);
        assert_eq!(t.sum_cols(), vec![3.0, 7.0]);
    }

    #[test]
    fn softmax_sums_to_one_and_is_shift_invariant() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0]);
        let s = t.softmax();
        assert!((s.sum() - 1.0).abs() < 1e-6);
        let shifted = t.add_scalar(100.0).softmax();
        assert!(s.approx_eq(&shifted, 1e-5));
    }

    #[test]
    fn log_softmax_matches_softmax_log() {
        let t = Tensor::from_slice(&[0.5, -1.0, 2.0]);
        let ls = t.log_softmax();
        let s_log = t.softmax().ln();
        assert!(ls.approx_eq(&s_log, 1e-5));
    }

    #[test]
    fn softmax_survives_large_inputs() {
        let t = Tensor::from_slice(&[1000.0, 1000.0]);
        let s = t.softmax();
        assert!(s.all_finite());
        assert!((s.as_slice()[0] - 0.5).abs() < 1e-6);
    }

    #[test]
    fn argsort_orders_by_last_column_descending() {
        // Rows with last-column values 3, 1, 2 -> order 0, 2, 1.
        let t = Tensor::from_rows(&[&[0.0, 3.0], &[9.0, 1.0], &[0.0, 2.0]]);
        assert_eq!(t.argsort_rows_desc_lastcol(), vec![0, 2, 1]);
    }

    #[test]
    fn argsort_breaks_ties_with_earlier_columns() {
        // Last column tied; the second-to-last column decides (descending).
        let t = Tensor::from_rows(&[&[1.0, 5.0], &[2.0, 5.0], &[0.0, 5.0]]);
        assert_eq!(t.argsort_rows_desc_lastcol(), vec![1, 0, 2]);
    }

    #[test]
    fn argsort_is_stable_for_fully_tied_rows() {
        let t = Tensor::from_rows(&[&[1.0, 1.0], &[1.0, 1.0], &[1.0, 1.0]]);
        assert_eq!(t.argsort_rows_desc_lastcol(), vec![0, 1, 2]);
    }

    #[test]
    fn ranged_argsort_matches_offset_sort_of_the_slab() {
        // Two stacked "samples": rows 0..2 and rows 2..5. The ranged sort
        // of each segment must equal the standalone sort of that segment
        // shifted by the segment start.
        let t = Tensor::from_rows(&[
            &[0.0, 1.0],
            &[0.0, 4.0],
            &[1.0, 2.0],
            &[2.0, 2.0],
            &[0.0, 9.0],
        ]);
        let lower = Tensor::from_rows(&[&[0.0, 1.0], &[0.0, 4.0]]);
        let upper = Tensor::from_rows(&[&[1.0, 2.0], &[2.0, 2.0], &[0.0, 9.0]]);
        let shifted: Vec<usize> =
            upper.argsort_rows_desc_lastcol().into_iter().map(|i| i + 2).collect();
        assert_eq!(t.argsort_rows_desc_lastcol_range(0, 2), lower.argsort_rows_desc_lastcol());
        assert_eq!(t.argsort_rows_desc_lastcol_range(2, 5), shifted);
        assert_eq!(t.argsort_rows_desc_lastcol_range(0, 5), t.argsort_rows_desc_lastcol());
        assert!(t.argsort_rows_desc_lastcol_range(3, 3).is_empty());
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn ranged_argsort_rejects_out_of_bounds_end() {
        Tensor::from_rows(&[&[1.0]]).argsort_rows_desc_lastcol_range(0, 2);
    }
}
