//! Elementwise operations, broadcasting against scalars, and structural ops
//! (concatenation, row gathering, transposition).

use crate::tensor::Tensor;

impl Tensor {
    /// Applies `f` to every element, returning a new tensor.
    pub fn map(&self, f: impl Fn(f32) -> f32) -> Tensor {
        Tensor::from_vec(
            self.as_slice().iter().map(|&x| f(x)).collect(),
            self.shape().clone(),
        )
    }

    /// Combines two same-shaped tensors elementwise with `f`.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn zip_map(&self, other: &Tensor, f: impl Fn(f32, f32) -> f32) -> Tensor {
        assert_eq!(
            self.shape(),
            other.shape(),
            "shape mismatch: {} vs {}",
            self.shape(),
            other.shape()
        );
        Tensor::from_vec(
            self.as_slice()
                .iter()
                .zip(other.as_slice())
                .map(|(&a, &b)| f(a, b))
                .collect(),
            self.shape().clone(),
        )
    }

    /// Elementwise sum.
    pub fn add(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a + b)
    }

    /// Elementwise difference.
    pub fn sub(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a - b)
    }

    /// Elementwise (Hadamard) product.
    pub fn mul(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a * b)
    }

    /// Elementwise quotient.
    pub fn div(&self, other: &Tensor) -> Tensor {
        self.zip_map(other, |a, b| a / b)
    }

    /// Adds `value` to every element.
    pub fn add_scalar(&self, value: f32) -> Tensor {
        self.map(|x| x + value)
    }

    /// Multiplies every element by `value`.
    pub fn scale(&self, value: f32) -> Tensor {
        self.map(|x| x * value)
    }

    /// Elementwise rectified linear unit, `max(x, 0)` — the activation used
    /// throughout the paper's graph convolution layers (Fig. 3).
    pub fn relu(&self) -> Tensor {
        self.map(|x| x.max(0.0))
    }

    /// Elementwise sigmoid.
    pub fn sigmoid(&self) -> Tensor {
        self.map(|x| 1.0 / (1.0 + (-x).exp()))
    }

    /// Elementwise hyperbolic tangent.
    pub fn tanh(&self) -> Tensor {
        self.map(f32::tanh)
    }

    /// Elementwise natural exponential.
    pub fn exp(&self) -> Tensor {
        self.map(f32::exp)
    }

    /// Elementwise natural logarithm.
    pub fn ln(&self) -> Tensor {
        self.map(f32::ln)
    }

    /// In-place elementwise add.
    ///
    /// # Panics
    ///
    /// Panics if the shapes differ.
    pub fn add_assign(&mut self, other: &Tensor) {
        assert_eq!(self.shape(), other.shape(), "shape mismatch in add_assign");
        for (a, b) in self.as_mut_slice().iter_mut().zip(other.as_slice()) {
            *a += *b;
        }
    }

    /// In-place scale.
    pub fn scale_assign(&mut self, value: f32) {
        for a in self.as_mut_slice() {
            *a *= value;
        }
    }

    /// Matrix transpose.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn transpose(&self) -> Tensor {
        let (r, c) = (self.rows(), self.cols());
        let mut out = Tensor::zeros([c, r]);
        for i in 0..r {
            for j in 0..c {
                out.set2(j, i, self.get2(i, j));
            }
        }
        out
    }

    /// Concatenates matrices horizontally (along columns).
    ///
    /// Used to form the DGCNN concatenation `Z^{1:h} = [Z_1, ..., Z_h]`.
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or row counts differ.
    pub fn concat_cols(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_cols requires at least one part");
        let rows = parts[0].rows();
        let total_cols: usize = parts.iter().map(|p| p.cols()).sum();
        let mut out = Tensor::zeros([rows, total_cols]);
        for i in 0..rows {
            let mut offset = 0;
            for p in parts {
                assert_eq!(p.rows(), rows, "row count mismatch in concat_cols");
                let c = p.cols();
                out.as_mut_slice()[i * total_cols + offset..i * total_cols + offset + c]
                    .copy_from_slice(p.row(i));
                offset += c;
            }
        }
        out
    }

    /// Concatenates matrices vertically (along rows).
    ///
    /// # Panics
    ///
    /// Panics if `parts` is empty or column counts differ.
    pub fn concat_rows(parts: &[&Tensor]) -> Tensor {
        assert!(!parts.is_empty(), "concat_rows requires at least one part");
        let cols = parts[0].cols();
        let total_rows: usize = parts.iter().map(|p| p.rows()).sum();
        let mut out = Tensor::zeros([total_rows, cols]);
        let mut r = 0;
        for p in parts {
            assert_eq!(p.cols(), cols, "column count mismatch in concat_rows");
            for i in 0..p.rows() {
                out.set_row(r, p.row(i));
                r += 1;
            }
        }
        out
    }

    /// Gathers matrix rows by index, in order. Rows may repeat; indices out
    /// of range panic. This is the primitive behind SortPooling.
    pub fn gather_rows(&self, indices: &[usize]) -> Tensor {
        let cols = self.cols();
        let mut out = Tensor::zeros([indices.len(), cols]);
        for (dst, &src) in indices.iter().enumerate() {
            out.set_row(dst, self.row(src));
        }
        out
    }

    /// Pads a matrix with zero rows at the bottom up to `rows` total rows,
    /// or truncates if it already has more. Used by SortPooling to unify
    /// graph sizes to `k`.
    pub fn pad_or_truncate_rows(&self, rows: usize) -> Tensor {
        let cols = self.cols();
        let mut out = Tensor::zeros([rows, cols]);
        for i in 0..rows.min(self.rows()) {
            out.set_row(i, self.row(i));
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn elementwise_ops_work() {
        let a = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        let b = Tensor::from_slice(&[2.0, 2.0, 2.0]);
        assert_eq!(a.add(&b).as_slice(), &[3.0, 0.0, 5.0]);
        assert_eq!(a.sub(&b).as_slice(), &[-1.0, -4.0, 1.0]);
        assert_eq!(a.mul(&b).as_slice(), &[2.0, -4.0, 6.0]);
        assert_eq!(a.div(&b).as_slice(), &[0.5, -1.0, 1.5]);
    }

    #[test]
    #[should_panic(expected = "shape mismatch")]
    fn add_rejects_mismatched_shapes() {
        Tensor::zeros([2]).add(&Tensor::zeros([3]));
    }

    #[test]
    fn relu_clamps_negatives() {
        let a = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        assert_eq!(a.relu().as_slice(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn sigmoid_is_bounded_and_monotone() {
        let a = Tensor::from_slice(&[-10.0, 0.0, 10.0]);
        let s = a.sigmoid();
        assert!(s.as_slice()[0] < 0.001);
        assert!((s.as_slice()[1] - 0.5).abs() < 1e-6);
        assert!(s.as_slice()[2] > 0.999);
    }

    #[test]
    fn transpose_swaps_dims() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        let t = a.transpose();
        assert_eq!(t.shape().dims(), &[3, 2]);
        assert_eq!(t.get2(2, 1), 6.0);
        assert_eq!(t.transpose(), a);
    }

    #[test]
    fn concat_cols_joins_channels() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Tensor::concat_cols(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[2, 3]);
        assert_eq!(c.row(0), &[1.0, 3.0, 4.0]);
        assert_eq!(c.row(1), &[2.0, 5.0, 6.0]);
    }

    #[test]
    fn concat_rows_stacks() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let b = Tensor::from_rows(&[&[3.0, 4.0], &[5.0, 6.0]]);
        let c = Tensor::concat_rows(&[&a, &b]);
        assert_eq!(c.shape().dims(), &[3, 2]);
        assert_eq!(c.row(2), &[5.0, 6.0]);
    }

    #[test]
    fn gather_rows_selects_and_repeats() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let g = a.gather_rows(&[2, 0, 2]);
        assert_eq!(g.as_slice(), &[3.0, 1.0, 3.0]);
    }

    #[test]
    fn pad_or_truncate_rows_pads_with_zeros() {
        let a = Tensor::from_rows(&[&[1.0, 2.0]]);
        let p = a.pad_or_truncate_rows(3);
        assert_eq!(p.shape().dims(), &[3, 2]);
        assert_eq!(p.row(0), &[1.0, 2.0]);
        assert_eq!(p.row(2), &[0.0, 0.0]);
    }

    #[test]
    fn pad_or_truncate_rows_truncates() {
        let a = Tensor::from_rows(&[&[1.0], &[2.0], &[3.0]]);
        let p = a.pad_or_truncate_rows(2);
        assert_eq!(p.as_slice(), &[1.0, 2.0]);
    }

    #[test]
    fn add_assign_accumulates() {
        let mut a = Tensor::from_slice(&[1.0, 1.0]);
        a.add_assign(&Tensor::from_slice(&[2.0, 3.0]));
        assert_eq!(a.as_slice(), &[3.0, 4.0]);
    }
}
