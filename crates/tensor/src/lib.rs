#![warn(missing_docs)]

//! Dense `f32` tensor library underpinning the MAGIC DGCNN reproduction.
//!
//! This crate provides the numeric substrate for everything above it: the
//! autodiff engine (`magic-autograd`), the neural network layers
//! (`magic-nn`) and the DGCNN model itself. It implements a row-major,
//! contiguous, n-dimensional `f32` array with the operations the paper's
//! Equations (1)-(5) require: matrix multiplication, elementwise arithmetic,
//! reductions, row gathering/sorting (for the SortPooling layer) and 2-D
//! window maxima (for the AdaptiveMaxPooling layer).
//!
//! # Example
//!
//! ```
//! use magic_tensor::Tensor;
//!
//! let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
//! let b = Tensor::eye(2);
//! let c = a.matmul(&b);
//! assert_eq!(c, a);
//! ```

mod linalg;
pub mod mem;
mod ops;
mod reduce;
mod rng;
mod shape;
pub mod simd;
mod sparse;
mod tensor;
mod threading;
mod workspace;

pub use linalg::{gemm_into, gemm_nt_into, gemm_tn_into};
pub use mem::MemStats;
pub use rng::Rng64;
pub use shape::Shape;
pub use sparse::CsrMatrix;
pub use tensor::Tensor;
pub use threading::{intra_op_threads, set_intra_op_threads};
pub use workspace::{Workspace, WorkspaceStats};
