//! Tensor shapes: dimension lists with row-major stride computation.

use std::fmt;

/// The shape of a [`crate::Tensor`]: an ordered list of dimension sizes.
///
/// Shapes are stored row-major: the last dimension varies fastest in the
/// backing buffer. A zero-dimensional shape denotes a scalar with one
/// element.
///
/// # Example
///
/// ```
/// use magic_tensor::Shape;
///
/// let s = Shape::new(vec![3, 4]);
/// assert_eq!(s.len(), 12);
/// assert_eq!(s.strides(), vec![4, 1]);
/// ```
#[derive(Clone, PartialEq, Eq, Hash, Default)]
pub struct Shape(Vec<usize>);

impl Shape {
    /// Creates a shape from dimension sizes.
    pub fn new(dims: Vec<usize>) -> Self {
        Shape(dims)
    }

    /// The scalar shape (zero dimensions, one element).
    pub fn scalar() -> Self {
        Shape(Vec::new())
    }

    /// Dimension sizes as a slice.
    pub fn dims(&self) -> &[usize] {
        &self.0
    }

    /// Number of dimensions (rank).
    pub fn rank(&self) -> usize {
        self.0.len()
    }

    /// Total number of elements (product of dimensions; 1 for a scalar).
    pub fn len(&self) -> usize {
        self.0.iter().product()
    }

    /// Whether the shape contains zero elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Size of dimension `axis`.
    ///
    /// # Panics
    ///
    /// Panics if `axis >= rank`.
    pub fn dim(&self, axis: usize) -> usize {
        self.0[axis]
    }

    /// Row-major strides: element distance between successive indices of
    /// each axis.
    pub fn strides(&self) -> Vec<usize> {
        let mut strides = vec![1; self.0.len()];
        for i in (0..self.0.len().saturating_sub(1)).rev() {
            strides[i] = strides[i + 1] * self.0[i + 1];
        }
        strides
    }

    /// Flattens a multi-index into a linear offset.
    ///
    /// # Panics
    ///
    /// Panics if `index` has the wrong rank or any coordinate is out of
    /// bounds.
    pub fn offset(&self, index: &[usize]) -> usize {
        assert_eq!(
            index.len(),
            self.0.len(),
            "index rank {} does not match shape rank {}",
            index.len(),
            self.0.len()
        );
        let mut off = 0;
        for ((&i, &d), s) in index.iter().zip(&self.0).zip(self.strides()) {
            assert!(i < d, "index {i} out of bounds for dimension of size {d}");
            off += i * s;
        }
        off
    }
}

impl fmt::Debug for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Shape{:?}", self.0)
    }
}

impl fmt::Display for Shape {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[")?;
        for (i, d) in self.0.iter().enumerate() {
            if i > 0 {
                write!(f, "x")?;
            }
            write!(f, "{d}")?;
        }
        write!(f, "]")
    }
}

impl From<Vec<usize>> for Shape {
    fn from(dims: Vec<usize>) -> Self {
        Shape(dims)
    }
}

impl From<&[usize]> for Shape {
    fn from(dims: &[usize]) -> Self {
        Shape(dims.to_vec())
    }
}

impl<const N: usize> From<[usize; N]> for Shape {
    fn from(dims: [usize; N]) -> Self {
        Shape(dims.to_vec())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_shape_has_one_element() {
        let s = Shape::scalar();
        assert_eq!(s.rank(), 0);
        assert_eq!(s.len(), 1);
        assert_eq!(s.offset(&[]), 0);
    }

    #[test]
    fn strides_are_row_major() {
        let s = Shape::new(vec![2, 3, 4]);
        assert_eq!(s.strides(), vec![12, 4, 1]);
        assert_eq!(s.len(), 24);
    }

    #[test]
    fn offset_flattens_row_major() {
        let s = Shape::new(vec![2, 3]);
        assert_eq!(s.offset(&[0, 0]), 0);
        assert_eq!(s.offset(&[0, 2]), 2);
        assert_eq!(s.offset(&[1, 0]), 3);
        assert_eq!(s.offset(&[1, 2]), 5);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn offset_checks_bounds() {
        Shape::new(vec![2, 3]).offset(&[2, 0]);
    }

    #[test]
    #[should_panic(expected = "does not match shape rank")]
    fn offset_checks_rank() {
        Shape::new(vec![2, 3]).offset(&[1]);
    }

    #[test]
    fn display_formats_dims() {
        assert_eq!(Shape::new(vec![5, 7]).to_string(), "[5x7]");
        assert_eq!(Shape::scalar().to_string(), "[]");
    }

    #[test]
    fn zero_sized_dimension_is_empty() {
        let s = Shape::new(vec![3, 0]);
        assert!(s.is_empty());
        assert_eq!(s.len(), 0);
    }
}
