//! The 8-lane microkernel spans behind the GEMM and SpMM kernels.
//!
//! Every hot inner loop of the `linalg` kernels and the CSR propagation
//! in the `sparse` module bottoms out in one of the three span functions:
//! a four-row multiply-add ([`madd4_span`]), a scaled row accumulation
//! ([`axpy_span`]), and an eight-accumulator dot product ([`dot_span`]).
//! Each walks its span in 8-wide tiles through fixed-size `[f32; 8]`
//! array references, which gives the autovectorizer provably independent
//! lanes with no bounds checks inside the tile — the layout LLVM lowers
//! to packed SIMD arithmetic on every tier-1 target (SSE2 `mulps/addps`
//! pairs on baseline x86-64, `vfmadd` on AVX2+FMA, `fmla` on AArch64).
//!
//! This module is deliberately **dependency-free** (it imports nothing,
//! not even from this crate) so `scripts/ci.sh` can compile it standalone
//! with `rustc --emit asm` and grep the assembly for packed instructions:
//! the vectorization claim is inspected, not assumed. Keep it that way.
//!
//! # Determinism
//!
//! The per-element accumulation expressions are exactly those of the
//! scalar kernels they replaced: `madd4_span` computes
//! `(a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])` per element and
//! `axpy_span` computes `a * b[j]`, both functions of the element's
//! position alone. Tiling the `j` loop 8-wide therefore changes *nothing*
//! about the float result — lane `j` never reads a neighbor — so the
//! GEMM/SpMM outputs are bitwise identical whatever the span is batched
//! with, which is what makes per-batch execution bitwise-equal to
//! per-sample execution upstream. `dot_span` reduces through eight
//! independent accumulators combined in a fixed pairwise tree, so it is
//! bitwise reproducible run to run (but is *not* the same grouping as a
//! sequential sum).

/// Vector width the spans are tiled to. Eight `f32` lanes fill one AVX
/// `ymm` register and two SSE/NEON registers.
pub const LANES: usize = 8;

/// `out[j] += (a0*b0[j] + a1*b1[j]) + (a2*b2[j] + a3*b3[j])` over the
/// whole span — the register-blocked GEMM update of four `a` scalars
/// against four `b` rows.
///
/// # Panics
///
/// Panics if any `b` span is shorter than `out`.
// Four explicit scalar/row pairs (not slices-of-slices) are what lets
// the autovectorizer keep all four accumulator streams in registers.
#[allow(clippy::too_many_arguments)]
pub fn madd4_span(
    out: &mut [f32],
    a0: f32,
    a1: f32,
    a2: f32,
    a3: f32,
    b0: &[f32],
    b1: &[f32],
    b2: &[f32],
    b3: &[f32],
) {
    let n = out.len();
    let n8 = n / LANES * LANES;
    let mut j = 0;
    while j < n8 {
        let o: &mut [f32; LANES] = (&mut out[j..j + LANES]).try_into().unwrap();
        let c0: &[f32; LANES] = (&b0[j..j + LANES]).try_into().unwrap();
        let c1: &[f32; LANES] = (&b1[j..j + LANES]).try_into().unwrap();
        let c2: &[f32; LANES] = (&b2[j..j + LANES]).try_into().unwrap();
        let c3: &[f32; LANES] = (&b3[j..j + LANES]).try_into().unwrap();
        for l in 0..LANES {
            o[l] += (a0 * c0[l] + a1 * c1[l]) + (a2 * c2[l] + a3 * c3[l]);
        }
        j += LANES;
    }
    while j < n {
        out[j] += (a0 * b0[j] + a1 * b1[j]) + (a2 * b2[j] + a3 * b3[j]);
        j += 1;
    }
}

/// `out[j] += a * b[j]` over the whole span — the GEMM k-remainder, the
/// transposed-GEMM inner update, and the CSR SpMM row accumulation.
///
/// # Panics
///
/// Panics if `b` is shorter than `out`.
pub fn axpy_span(out: &mut [f32], a: f32, b: &[f32]) {
    let n = out.len();
    let n8 = n / LANES * LANES;
    let mut j = 0;
    while j < n8 {
        let o: &mut [f32; LANES] = (&mut out[j..j + LANES]).try_into().unwrap();
        let c: &[f32; LANES] = (&b[j..j + LANES]).try_into().unwrap();
        for l in 0..LANES {
            o[l] += a * c[l];
        }
        j += LANES;
    }
    while j < n {
        out[j] += a * b[j];
        j += 1;
    }
}

/// Dot product of two equal-length spans through eight independent
/// accumulators, combined pairwise:
/// `((s0+s1)+(s2+s3)) + ((s4+s5)+(s6+s7)) + tail`, with the sub-8
/// remainder summed sequentially. The grouping is a fixed function of
/// the length alone, so the result is bitwise reproducible.
///
/// # Panics
///
/// Panics if the spans differ in length.
pub fn dot_span(a: &[f32], b: &[f32]) -> f32 {
    assert_eq!(a.len(), b.len(), "dot_span length mismatch");
    let mut acc = [0.0f32; LANES];
    let mut j = 0;
    let n8 = a.len() / LANES * LANES;
    while j < n8 {
        let ca: &[f32; LANES] = (&a[j..j + LANES]).try_into().unwrap();
        let cb: &[f32; LANES] = (&b[j..j + LANES]).try_into().unwrap();
        for l in 0..LANES {
            acc[l] += ca[l] * cb[l];
        }
        j += LANES;
    }
    let mut tail = 0.0f32;
    while j < a.len() {
        tail += a[j] * b[j];
        j += 1;
    }
    ((acc[0] + acc[1]) + (acc[2] + acc[3])) + ((acc[4] + acc[5]) + (acc[6] + acc[7])) + tail
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn madd4_matches_scalar_expression_bitwise() {
        let n = 21; // exercises both the 8-wide tiles and the remainder
        let b: Vec<Vec<f32>> = (0..4)
            .map(|r| (0..n).map(|j| ((r * n + j) as f32).sin()).collect())
            .collect();
        let (a0, a1, a2, a3) = (0.7, -1.3, 0.01, 2.5);
        let mut out = vec![0.5f32; n];
        let mut want = vec![0.5f32; n];
        madd4_span(&mut out, a0, a1, a2, a3, &b[0], &b[1], &b[2], &b[3]);
        for j in 0..n {
            want[j] += (a0 * b[0][j] + a1 * b[1][j]) + (a2 * b[2][j] + a3 * b[3][j]);
        }
        assert_eq!(out, want, "tiling must not change the per-element result");
    }

    #[test]
    fn axpy_matches_scalar_expression_bitwise() {
        let n = 13;
        let b: Vec<f32> = (0..n).map(|j| (j as f32).cos()).collect();
        let mut out = vec![1.0f32; n];
        let mut want = vec![1.0f32; n];
        axpy_span(&mut out, -0.37, &b);
        for j in 0..n {
            want[j] += -0.37 * b[j];
        }
        assert_eq!(out, want);
    }

    #[test]
    fn dot_span_exact_on_small_integers() {
        for len in 0..20usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let want: f32 = a.iter().map(|x| x * x).sum();
            assert_eq!(dot_span(&a, &a), want, "len {len}");
        }
    }

    #[test]
    fn dot_span_is_bitwise_deterministic() {
        let a: Vec<f32> = (0..301).map(|i| (i as f32 * 0.11).sin()).collect();
        let b: Vec<f32> = (0..301).map(|i| (i as f32 * 0.07).cos()).collect();
        let first = dot_span(&a, &b);
        for _ in 0..3 {
            assert_eq!(first.to_bits(), dot_span(&a, &b).to_bits());
        }
    }
}
