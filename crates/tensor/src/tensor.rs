//! The dense tensor type: construction, element access, reshaping.

use crate::mem;
use crate::rng::Rng64;
use crate::shape::Shape;
use std::fmt;

/// A dense, row-major, contiguous n-dimensional array of `f32`.
///
/// `Tensor` is the workhorse value type of the reproduction: adjacency
/// matrices, vertex attribute matrices, layer weights and activations are
/// all tensors. It is deliberately simple — owned `Vec<f32>` storage, no
/// views — because the DGCNN workload is dominated by small per-graph
/// matrices where copying is cheap and clarity wins.
///
/// # Example
///
/// ```
/// use magic_tensor::Tensor;
///
/// let t = Tensor::zeros([2, 3]);
/// assert_eq!(t.shape().dims(), &[2, 3]);
/// assert_eq!(t.len(), 6);
/// ```
#[derive(PartialEq)]
pub struct Tensor {
    data: Vec<f32>,
    shape: Shape,
}

impl Tensor {
    /// The one construction choke point: every tensor buffer coming
    /// alive passes through here so [`crate::mem`] accounting sees it.
    #[inline]
    fn tracked(data: Vec<f32>, shape: Shape) -> Self {
        mem::on_alloc(data.len());
        Tensor { data, shape }
    }

    /// Creates a tensor from a flat buffer and a shape.
    ///
    /// # Panics
    ///
    /// Panics if `data.len()` does not equal the number of elements implied
    /// by `shape`.
    pub fn from_vec(data: Vec<f32>, shape: impl Into<Shape>) -> Self {
        let shape = shape.into();
        assert_eq!(
            data.len(),
            shape.len(),
            "buffer of {} elements cannot have shape {shape}",
            data.len()
        );
        Tensor::tracked(data, shape)
    }

    /// Creates a scalar (rank-0) tensor.
    pub fn scalar(value: f32) -> Self {
        Tensor::tracked(vec![value], Shape::scalar())
    }

    /// Creates a tensor filled with `value`.
    pub fn full(shape: impl Into<Shape>, value: f32) -> Self {
        let shape = shape.into();
        let data = vec![value; shape.len()];
        Tensor::tracked(data, shape)
    }

    /// Creates a tensor of zeros.
    pub fn zeros(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 0.0)
    }

    /// Creates a tensor of ones.
    pub fn ones(shape: impl Into<Shape>) -> Self {
        Self::full(shape, 1.0)
    }

    /// Creates the `n`-by-`n` identity matrix.
    pub fn eye(n: usize) -> Self {
        let mut t = Self::zeros([n, n]);
        for i in 0..n {
            t.data[i * n + i] = 1.0;
        }
        t
    }

    /// Creates a 2-D tensor from row slices.
    ///
    /// # Panics
    ///
    /// Panics if the rows have differing lengths or `rows` is empty.
    pub fn from_rows(rows: &[&[f32]]) -> Self {
        assert!(!rows.is_empty(), "from_rows requires at least one row");
        let cols = rows[0].len();
        let mut data = Vec::with_capacity(rows.len() * cols);
        for row in rows {
            assert_eq!(row.len(), cols, "all rows must have the same length");
            data.extend_from_slice(row);
        }
        Tensor::from_vec(data, [rows.len(), cols])
    }

    /// Creates a 1-D tensor from a slice.
    pub fn from_slice(values: &[f32]) -> Self {
        Tensor::from_vec(values.to_vec(), [values.len()])
    }

    /// Samples a tensor with elements drawn uniformly from `[lo, hi)`.
    pub fn rand_uniform(shape: impl Into<Shape>, lo: f32, hi: f32, rng: &mut Rng64) -> Self {
        let shape = shape.into();
        let data = (0..shape.len())
            .map(|_| lo + (hi - lo) * rng.next_f32())
            .collect();
        Tensor::tracked(data, shape)
    }

    /// Samples a tensor with elements drawn from a normal distribution.
    pub fn rand_normal(shape: impl Into<Shape>, mean: f32, std: f32, rng: &mut Rng64) -> Self {
        let shape = shape.into();
        let data = (0..shape.len())
            .map(|_| mean + std * rng.next_normal())
            .collect();
        Tensor::tracked(data, shape)
    }

    /// The shape of this tensor.
    pub fn shape(&self) -> &Shape {
        &self.shape
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the tensor has zero elements.
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Number of rows; valid for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn rows(&self) -> usize {
        assert_eq!(self.shape.rank(), 2, "rows() requires a matrix");
        self.shape.dim(0)
    }

    /// Number of columns; valid for rank-2 tensors.
    ///
    /// # Panics
    ///
    /// Panics if the tensor is not rank 2.
    pub fn cols(&self) -> usize {
        assert_eq!(self.shape.rank(), 2, "cols() requires a matrix");
        self.shape.dim(1)
    }

    /// The backing buffer in row-major order.
    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    /// Mutable access to the backing buffer.
    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    /// Consumes the tensor and returns the backing buffer.
    pub fn into_vec(mut self) -> Vec<f32> {
        // The buffer leaves accounting's sight here; `Drop` then runs on
        // an empty vector and reports a zero-byte free.
        mem::on_free(self.data.len());
        std::mem::take(&mut self.data)
    }

    /// Element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are invalid.
    pub fn at(&self, index: &[usize]) -> f32 {
        self.data[self.shape.offset(index)]
    }

    /// Sets the element at a multi-index.
    ///
    /// # Panics
    ///
    /// Panics if the index rank or coordinates are invalid.
    pub fn set(&mut self, index: &[usize], value: f32) {
        let off = self.shape.offset(index);
        self.data[off] = value;
    }

    /// Matrix element `(i, j)`; shorthand for rank-2 access.
    ///
    /// # Panics
    ///
    /// Panics on non-matrices or out-of-bounds indices.
    pub fn get2(&self, i: usize, j: usize) -> f32 {
        self.at(&[i, j])
    }

    /// Sets matrix element `(i, j)`.
    ///
    /// # Panics
    ///
    /// Panics on non-matrices or out-of-bounds indices.
    pub fn set2(&mut self, i: usize, j: usize, value: f32) {
        self.set(&[i, j], value);
    }

    /// The single value of a scalar or one-element tensor.
    ///
    /// # Panics
    ///
    /// Panics if the tensor has more than one element.
    pub fn item(&self) -> f32 {
        assert_eq!(self.len(), 1, "item() requires exactly one element");
        self.data[0]
    }

    /// Returns a tensor with the same data and a new shape.
    ///
    /// # Panics
    ///
    /// Panics if the new shape has a different element count.
    pub fn reshape(&self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        assert_eq!(
            self.len(),
            shape.len(),
            "cannot reshape {} elements into {shape}",
            self.len()
        );
        Tensor::tracked(self.data.clone(), shape)
    }

    /// Borrows row `i` of a matrix as a slice.
    ///
    /// # Panics
    ///
    /// Panics on non-matrices or if `i` is out of bounds.
    pub fn row(&self, i: usize) -> &[f32] {
        let cols = self.cols();
        assert!(i < self.rows(), "row {i} out of bounds");
        &self.data[i * cols..(i + 1) * cols]
    }

    /// Copies `values` into row `i` of a matrix.
    ///
    /// # Panics
    ///
    /// Panics if dimensions disagree.
    pub fn set_row(&mut self, i: usize, values: &[f32]) {
        let cols = self.cols();
        assert_eq!(values.len(), cols, "row length mismatch");
        assert!(i < self.rows(), "row {i} out of bounds");
        self.data[i * cols..(i + 1) * cols].copy_from_slice(values);
    }

    /// Whether all elements are finite (no NaN or infinity).
    pub fn all_finite(&self) -> bool {
        self.data.iter().all(|x| x.is_finite())
    }

    /// Elementwise approximate equality within `tol`.
    pub fn approx_eq(&self, other: &Tensor, tol: f32) -> bool {
        self.shape == other.shape
            && self
                .data
                .iter()
                .zip(&other.data)
                .all(|(a, b)| (a - b).abs() <= tol)
    }
}

impl fmt::Debug for Tensor {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Tensor{} ", self.shape)?;
        if self.shape.rank() == 2 {
            writeln!(f, "[")?;
            for i in 0..self.rows() {
                writeln!(f, "  {:?},", self.row(i))?;
            }
            write!(f, "]")
        } else {
            write!(f, "{:?}", self.data)
        }
    }
}

impl Default for Tensor {
    fn default() -> Self {
        Tensor::scalar(0.0)
    }
}

impl Clone for Tensor {
    fn clone(&self) -> Self {
        Tensor::tracked(self.data.clone(), self.shape.clone())
    }
}

impl Drop for Tensor {
    fn drop(&mut self) {
        mem::on_free(self.data.len());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_checks_length() {
        let t = Tensor::from_vec(vec![1.0, 2.0, 3.0, 4.0], [2, 2]);
        assert_eq!(t.get2(1, 0), 3.0);
    }

    #[test]
    #[should_panic(expected = "cannot have shape")]
    fn from_vec_rejects_wrong_length() {
        Tensor::from_vec(vec![1.0], [2, 2]);
    }

    #[test]
    fn eye_is_identity() {
        let i = Tensor::eye(3);
        for r in 0..3 {
            for c in 0..3 {
                assert_eq!(i.get2(r, c), if r == c { 1.0 } else { 0.0 });
            }
        }
    }

    #[test]
    fn from_rows_builds_matrix() {
        let t = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        assert_eq!(t.row(1), &[3.0, 4.0]);
    }

    #[test]
    #[should_panic(expected = "same length")]
    fn from_rows_rejects_ragged() {
        Tensor::from_rows(&[&[1.0, 2.0], &[3.0]]);
    }

    #[test]
    fn set_and_get_roundtrip() {
        let mut t = Tensor::zeros([2, 3]);
        t.set2(1, 2, 7.5);
        assert_eq!(t.get2(1, 2), 7.5);
        assert_eq!(t.at(&[1, 2]), 7.5);
    }

    #[test]
    fn reshape_preserves_data() {
        let t = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let m = t.reshape([2, 3]);
        assert_eq!(m.row(1), &[4.0, 5.0, 6.0]);
    }

    #[test]
    fn rand_uniform_respects_range() {
        let mut rng = Rng64::new(42);
        let t = Tensor::rand_uniform([100], -0.5, 0.5, &mut rng);
        assert!(t.as_slice().iter().all(|&x| (-0.5..0.5).contains(&x)));
    }

    #[test]
    fn rand_normal_has_plausible_moments() {
        let mut rng = Rng64::new(7);
        let t = Tensor::rand_normal([10_000], 2.0, 3.0, &mut rng);
        let mean = t.as_slice().iter().sum::<f32>() / 10_000.0;
        let var = t.as_slice().iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!((mean - 2.0).abs() < 0.15, "mean {mean}");
        assert!((var.sqrt() - 3.0).abs() < 0.2, "std {}", var.sqrt());
    }

    #[test]
    fn item_returns_scalar_value() {
        assert_eq!(Tensor::scalar(3.0).item(), 3.0);
    }

    #[test]
    fn approx_eq_tolerates_small_differences() {
        let a = Tensor::from_slice(&[1.0, 2.0]);
        let b = Tensor::from_slice(&[1.0001, 1.9999]);
        assert!(a.approx_eq(&b, 1e-3));
        assert!(!a.approx_eq(&b, 1e-6));
    }

    #[test]
    fn set_row_overwrites() {
        let mut t = Tensor::zeros([2, 2]);
        t.set_row(0, &[9.0, 8.0]);
        assert_eq!(t.row(0), &[9.0, 8.0]);
        assert_eq!(t.row(1), &[0.0, 0.0]);
    }
}
