//! Opt-in intra-op threading for large GEMM/SpMM calls.
//!
//! Per-sample training parallelizes *across* samples (one tape per
//! worker lane), so kernels stay single-threaded. Batched execution
//! inverts that: one tape runs few, large ops, and the parallelism has
//! to come from inside the kernel. This module provides the row
//! partitioner those kernels share, gated by a process-global thread
//! budget ([`set_intra_op_threads`], default 1 = off).
//!
//! # Determinism contract
//!
//! Work is split by *output rows*: each thread owns a contiguous,
//! disjoint range of output rows and runs the identical single-threaded
//! row kernel over it. Every floating-point reduction (the k-loop of a
//! GEMM row, the nonzero walk of an SpMM row) lives entirely inside one
//! row and is therefore computed by exactly one thread, in the exact
//! order the serial kernel uses — the reduction tree is a fixed function
//! of the operand shapes and never of the thread count. Results are
//! bitwise identical for any `set_intra_op_threads` value, which
//! `worker_counts_do_not_change_gemm_bits` below pins.
//!
//! Small ops skip the fan-out entirely: below [`MIN_PARALLEL_WORK`]
//! estimated FLOPs the thread-spawn overhead dwarfs the kernel, so the
//! partitioner runs inline on the caller's thread.

use std::sync::atomic::{AtomicUsize, Ordering};

static INTRA_OP_THREADS: AtomicUsize = AtomicUsize::new(1);

/// Estimated FLOPs below which a kernel always runs inline (2·m·k·n for
/// a GEMM). One MiFLOP ≈ 100–300 µs of single-core kernel time, an
/// order of magnitude above the cost of spawning scoped threads.
pub(crate) const MIN_PARALLEL_WORK: u64 = 1 << 20;

/// Sets the process-global intra-op thread budget (clamped to ≥ 1).
///
/// `1` (the default) disables kernel fan-out. The batched trainer sets
/// this from its worker knob; per-sample training leaves it at 1
/// because its parallelism is across sample tapes.
pub fn set_intra_op_threads(n: usize) {
    INTRA_OP_THREADS.store(n.max(1), Ordering::Relaxed);
}

/// The current intra-op thread budget.
pub fn intra_op_threads() -> usize {
    INTRA_OP_THREADS.load(Ordering::Relaxed)
}

/// Runs `f(first_row, rows)` over `out` split into contiguous chunks of
/// whole rows (`row_len` elements each), fanning out across scoped
/// threads when the budget and the `work` estimate allow it.
///
/// `f` must compute rows `first_row..first_row + rows.len() / row_len`
/// of the output into `rows`, reading only shared inputs — the bitwise
/// contract above relies on rows being computed independently.
pub(crate) fn partition_rows(
    m: usize,
    row_len: usize,
    work: u64,
    out: &mut [f32],
    f: impl Fn(usize, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), m * row_len);
    let threads = intra_op_threads().min(m);
    if threads <= 1 || work < MIN_PARALLEL_WORK {
        f(0, out);
        return;
    }
    let chunk = m.div_ceil(threads);
    std::thread::scope(|scope| {
        let f = &f;
        let mut rest = out;
        let mut row = 0;
        while row < m {
            let take = chunk.min(m - row);
            let (head, tail) = rest.split_at_mut(take * row_len);
            let first = row;
            scope.spawn(move || f(first, head));
            rest = tail;
            row += take;
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gemm_into, Rng64, Tensor};

    #[test]
    fn budget_is_clamped_and_readable() {
        set_intra_op_threads(0);
        assert_eq!(intra_op_threads(), 1);
        set_intra_op_threads(3);
        assert_eq!(intra_op_threads(), 3);
        set_intra_op_threads(1);
    }

    #[test]
    fn partition_covers_every_row_exactly_once() {
        // Work forced above the threshold so the fan-out path runs.
        set_intra_op_threads(4);
        let (m, n) = (37, 5);
        let mut out = vec![0.0f32; m * n];
        partition_rows(m, n, u64::MAX, &mut out, |first, rows| {
            for (di, row) in rows.chunks_exact_mut(n).enumerate() {
                for x in row.iter_mut() {
                    *x += (first + di) as f32;
                }
            }
        });
        set_intra_op_threads(1);
        for i in 0..m {
            assert!(out[i * n..(i + 1) * n].iter().all(|&x| x == i as f32), "row {i}");
        }
    }

    #[test]
    fn worker_counts_do_not_change_gemm_bits() {
        // Large enough that 2·m·k·n clears MIN_PARALLEL_WORK, so threads
        // genuinely fan out; the outputs must still be bitwise equal.
        let mut rng = Rng64::new(21);
        let (m, k, n) = (64, 96, 96);
        let a = Tensor::rand_uniform([m, k], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([k, n], -1.0, 1.0, &mut rng);
        let run = |threads: usize| {
            set_intra_op_threads(threads);
            let mut out = vec![0.0f32; m * n];
            gemm_into(m, k, n, a.as_slice(), b.as_slice(), &mut out);
            set_intra_op_threads(1);
            out
        };
        let serial = run(1);
        for threads in [2, 3, 4, 7] {
            assert_eq!(serial, run(threads), "threads={threads}");
        }
    }
}
