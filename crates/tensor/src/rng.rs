//! A small, seedable PRNG used for deterministic weight initialization.
//!
//! Training runs must be reproducible across the hyperparameter grid of
//! Table II, so every random draw in the stack goes through this
//! SplitMix64-based generator rather than an OS-seeded source.

/// Deterministic 64-bit PRNG (SplitMix64) with float and normal helpers.
///
/// # Example
///
/// ```
/// use magic_tensor::Rng64;
///
/// let mut a = Rng64::new(1);
/// let mut b = Rng64::new(1);
/// assert_eq!(a.next_u64(), b.next_u64());
/// ```
#[derive(Debug, Clone)]
pub struct Rng64 {
    state: u64,
    cached_normal: Option<f32>,
}

impl Rng64 {
    /// Creates a generator from a seed. Equal seeds give equal streams.
    pub fn new(seed: u64) -> Self {
        Rng64 {
            state: seed.wrapping_add(0x9E37_79B9_7F4A_7C15),
            cached_normal: None,
        }
    }

    /// Next raw 64-bit value (SplitMix64 step).
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Uniform `f32` in `[0, 1)`.
    pub fn next_f32(&mut self) -> f32 {
        // Use the top 24 bits for a uniformly spaced mantissa.
        (self.next_u64() >> 40) as f32 / (1u64 << 24) as f32
    }

    /// Uniform `f64` in `[0, 1)`.
    pub fn next_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64
    }

    /// Uniform integer in `[0, n)`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn next_below(&mut self, n: usize) -> usize {
        assert!(n > 0, "next_below requires n > 0");
        (self.next_u64() % n as u64) as usize
    }

    /// Uniform integer in `[lo, hi)`.
    ///
    /// # Panics
    ///
    /// Panics if `lo >= hi`.
    pub fn next_range(&mut self, lo: usize, hi: usize) -> usize {
        assert!(lo < hi, "empty range {lo}..{hi}");
        lo + self.next_below(hi - lo)
    }

    /// Standard normal sample (Box–Muller, with caching of the pair).
    pub fn next_normal(&mut self) -> f32 {
        if let Some(v) = self.cached_normal.take() {
            return v;
        }
        let u1 = self.next_f32().max(f32::MIN_POSITIVE);
        let u2 = self.next_f32();
        let r = (-2.0 * u1.ln()).sqrt();
        let theta = 2.0 * std::f32::consts::PI * u2;
        self.cached_normal = Some(r * theta.sin());
        r * theta.cos()
    }

    /// Bernoulli trial with success probability `p`.
    pub fn next_bool(&mut self, p: f64) -> bool {
        self.next_f64() < p
    }

    /// Fisher–Yates shuffle of a slice.
    pub fn shuffle<T>(&mut self, values: &mut [T]) {
        for i in (1..values.len()).rev() {
            let j = self.next_below(i + 1);
            values.swap(i, j);
        }
    }

    /// Samples an index according to unnormalized non-negative weights.
    ///
    /// # Panics
    ///
    /// Panics if `weights` is empty or sums to zero.
    pub fn next_weighted(&mut self, weights: &[f64]) -> usize {
        let total: f64 = weights.iter().sum();
        assert!(
            !weights.is_empty() && total > 0.0,
            "next_weighted requires positive total weight"
        );
        let mut target = self.next_f64() * total;
        for (i, &w) in weights.iter().enumerate() {
            if target < w {
                return i;
            }
            target -= w;
        }
        weights.len() - 1
    }

    /// Derives an independent generator, advancing this one once.
    pub fn fork(&mut self) -> Rng64 {
        Rng64::new(self.next_u64())
    }

    /// Derives the deterministic stream for one training sample.
    ///
    /// Dropout noise must not depend on batch composition, worker count,
    /// or scheduling order, or data-parallel training could never match
    /// serial training bitwise. Keying the stream on the
    /// `(seed, epoch, sample)` triple makes each sample's draws a pure
    /// function of *which* sample is processed in *which* epoch. The
    /// components are spread with the SplitMix64 finalizer so
    /// neighbouring epochs and samples land in uncorrelated regions of
    /// the state space.
    pub fn for_sample(seed: u64, epoch: u64, sample: u64) -> Rng64 {
        let mut z = seed
            ^ epoch.wrapping_mul(0x9E37_79B9_7F4A_7C15)
            ^ sample.wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        Rng64::new(z ^ (z >> 31))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_seed_same_stream() {
        let mut a = Rng64::new(99);
        let mut b = Rng64::new(99);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seed_different_stream() {
        let mut a = Rng64::new(1);
        let mut b = Rng64::new(2);
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn f32_in_unit_interval() {
        let mut rng = Rng64::new(5);
        for _ in 0..1000 {
            let x = rng.next_f32();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn next_below_is_in_range() {
        let mut rng = Rng64::new(5);
        for _ in 0..1000 {
            assert!(rng.next_below(7) < 7);
        }
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = Rng64::new(5);
        let mut v: Vec<usize> = (0..50).collect();
        rng.shuffle(&mut v);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn weighted_respects_zero_weight() {
        let mut rng = Rng64::new(5);
        for _ in 0..200 {
            let i = rng.next_weighted(&[0.0, 1.0, 0.0]);
            assert_eq!(i, 1);
        }
    }

    #[test]
    fn normal_mean_is_near_zero() {
        let mut rng = Rng64::new(11);
        let mean: f32 = (0..20_000).map(|_| rng.next_normal()).sum::<f32>() / 20_000.0;
        assert!(mean.abs() < 0.05, "mean {mean}");
    }

    #[test]
    fn fork_produces_uncorrelated_stream() {
        let mut a = Rng64::new(3);
        let mut b = a.fork();
        assert_ne!(a.next_u64(), b.next_u64());
    }

    #[test]
    fn for_sample_is_a_pure_function_of_the_triple() {
        let mut a = Rng64::for_sample(7, 3, 11);
        let mut b = Rng64::for_sample(7, 3, 11);
        for _ in 0..50 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn for_sample_streams_differ_in_every_component() {
        let base = Rng64::for_sample(7, 3, 11).next_u64();
        assert_ne!(Rng64::for_sample(8, 3, 11).next_u64(), base);
        assert_ne!(Rng64::for_sample(7, 4, 11).next_u64(), base);
        assert_ne!(Rng64::for_sample(7, 3, 12).next_u64(), base);
        // Swapping epoch and sample must not collide (the triple is not
        // mixed symmetrically).
        assert_ne!(
            Rng64::for_sample(7, 11, 3).next_u64(),
            Rng64::for_sample(7, 3, 11).next_u64()
        );
    }
}
