//! Matrix products and the graph-specific matrix helpers used by Eq. (1).
//!
//! Besides the [`Tensor`] methods, this module exposes the blocked kernel
//! as slice-level GEMM entry points ([`gemm_into`], [`gemm_nt_into`],
//! [`gemm_tn_into`]) so callers that manage their own buffers — the
//! im2col convolution lowering with its pooled workspace — can run the
//! same deterministic kernel without materializing `Tensor` temporaries
//! or explicit transposes.

use crate::simd;
use crate::tensor::Tensor;
use crate::threading;

/// FLOP estimate shared by the three GEMM entry points, used to decide
/// whether intra-op threading is worth its fan-out cost.
fn gemm_work(m: usize, k: usize, n: usize) -> u64 {
    2 * (m as u64) * (k as u64) * (n as u64)
}

/// `out += a @ b` on raw row-major slices: `a` is `(m, k)`, `b` is
/// `(k, n)`, `out` is `(m, n)`.
///
/// This is the register-blocked ikj kernel behind [`Tensor::matmul`]: the
/// k loop is unrolled by 4 (four `a` scalars held in registers against
/// four consecutive `b` rows) and the j loop runs through the 8-lane
/// [`crate::simd`] spans, whose per-element expression is a function of
/// the element's `(i, p)` position alone — no data-dependent branches,
/// in particular no zero skipping — so results are bitwise reproducible
/// run to run. Because each output element's accumulation chain depends
/// only on its own row of `a` and column of `b`, row-stacking or
/// column-concatenating independent operands (batched execution) leaves
/// every element bitwise unchanged.
///
/// Large calls fan out across [`crate::threading::intra_op_threads`]
/// scoped threads by disjoint output-row ranges; each row is still
/// reduced by one thread in serial order, so the result is bitwise
/// independent of the thread count.
///
/// Note this *accumulates* into `out`, which lets callers pre-initialize
/// it with a bias term for free.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` dimensions.
pub fn gemm_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_into: a length mismatch");
    assert_eq!(b.len(), k * n, "gemm_into: b length mismatch");
    assert_eq!(out.len(), m * n, "gemm_into: out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    let k4 = k / 4 * 4;
    threading::partition_rows(m, n, gemm_work(m, k, n), out, |first, rows| {
        for (di, orow) in rows.chunks_exact_mut(n).enumerate() {
            let i = first + di;
            let arow = &a[i * k..(i + 1) * k];
            let mut p = 0;
            while p < k4 {
                let (a0, a1, a2, a3) = (arow[p], arow[p + 1], arow[p + 2], arow[p + 3]);
                let b0 = &b[p * n..(p + 1) * n];
                let b1 = &b[(p + 1) * n..(p + 2) * n];
                let b2 = &b[(p + 2) * n..(p + 3) * n];
                let b3 = &b[(p + 3) * n..(p + 4) * n];
                simd::madd4_span(orow, a0, a1, a2, a3, b0, b1, b2, b3);
                p += 4;
            }
            while p < k {
                simd::axpy_span(orow, arow[p], &b[p * n..(p + 1) * n]);
                p += 1;
            }
        }
    });
}

/// `out += a @ bᵀ` on raw row-major slices: `a` is `(m, k)`, `b` is
/// `(n, k)`, `out` is `(m, n)` — the second operand is consumed
/// *transposed* without materializing the transpose.
///
/// Each output element is one [`Tensor::dot`] of an `a` row against a `b`
/// row, inheriting its eight-accumulator chunking and fixed summation
/// order, so results are bitwise reproducible. This is the weight-gradient
/// product of the im2col lowering (`gW = gOut · colsᵀ`). Large calls
/// fan out by output rows like [`gemm_into`], bitwise independent of the
/// thread count.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` dimensions.
pub fn gemm_nt_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), m * k, "gemm_nt_into: a length mismatch");
    assert_eq!(b.len(), n * k, "gemm_nt_into: b length mismatch");
    assert_eq!(out.len(), m * n, "gemm_nt_into: out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    threading::partition_rows(m, n, gemm_work(m, k, n), out, |first, rows| {
        for (di, orow) in rows.chunks_exact_mut(n).enumerate() {
            let i = first + di;
            let arow = &a[i * k..(i + 1) * k];
            for (oj, brow) in orow.iter_mut().zip(b.chunks_exact(k)) {
                *oj += Tensor::dot(arow, brow);
            }
        }
    });
}

/// `out += aᵀ @ b` on raw row-major slices: `a` is `(k, m)`, `b` is
/// `(k, n)`, `out` is `(m, n)` — the first operand is consumed
/// *transposed* without materializing the transpose.
///
/// The loop order is i, then p, then an 8-lane [`crate::simd::axpy_span`]
/// over j (`b` row `p` scaled by `a[p, i]` into `out` row `i`), a fixed
/// function of the shapes, so results are bitwise reproducible. This is
/// the input-gradient product of the im2col lowering (`gCols = Wᵀ·gOut`).
/// Large calls fan out by output rows like [`gemm_into`], bitwise
/// independent of the thread count.
///
/// # Panics
///
/// Panics if any slice length disagrees with its `(m, k, n)` dimensions.
pub fn gemm_tn_into(m: usize, k: usize, n: usize, a: &[f32], b: &[f32], out: &mut [f32]) {
    assert_eq!(a.len(), k * m, "gemm_tn_into: a length mismatch");
    assert_eq!(b.len(), k * n, "gemm_tn_into: b length mismatch");
    assert_eq!(out.len(), m * n, "gemm_tn_into: out length mismatch");
    if m == 0 || n == 0 {
        return;
    }
    threading::partition_rows(m, n, gemm_work(m, k, n), out, |first, rows| {
        for (di, orow) in rows.chunks_exact_mut(n).enumerate() {
            let i = first + di;
            for p in 0..k {
                simd::axpy_span(orow, a[p * m + i], &b[p * n..(p + 1) * n]);
            }
        }
    });
}

impl Tensor {
    /// Matrix product `self @ other`.
    ///
    /// This is the hot dense operation of the reproduction: every graph
    /// convolution layer computes `Z W` through it, and the MLP head is
    /// built on it. It delegates to the register-blocked [`gemm_into`]
    /// kernel, so it inherits its vectorization and its determinism
    /// contract (fixed accumulation order, no data-dependent branches —
    /// in particular no zero skipping — so results are bitwise
    /// reproducible run to run).
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros([m, n]);
        gemm_into(m, k, n, self.as_slice(), other.as_slice(), out.as_mut_slice());
        out
    }

    /// Matrix–vector product, treating `v` as a column vector.
    ///
    /// Each row reduction goes through the chunked [`Tensor::dot`], so it
    /// inherits its four-accumulator vectorization and fixed summation
    /// order.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or dimensions disagree.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let a = self.as_slice();
        (0..m)
            .map(|i| Tensor::dot(&a[i * k..(i + 1) * k], v))
            .collect()
    }

    /// Scales each row `i` by `factors[i]`. This implements the
    /// row-normalization `D̂⁻¹ (·)` of Eq. (1) without materializing the
    /// diagonal matrix.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the row count.
    pub fn scale_rows(&self, factors: &[f32]) -> Tensor {
        assert_eq!(factors.len(), self.rows(), "row factor count mismatch");
        let cols = self.cols();
        let mut out = self.clone();
        for (i, &f) in factors.iter().enumerate() {
            for x in &mut out.as_mut_slice()[i * cols..(i + 1) * cols] {
                *x *= f;
            }
        }
        out
    }

    /// Outer product of two vectors: `a (m) ⊗ b (n) -> (m, n)`.
    ///
    /// Each output row is written through a slice in one pass rather than
    /// with per-element bounds-checked stores.
    pub fn outer(a: &[f32], b: &[f32]) -> Tensor {
        let n = b.len();
        let mut out = Tensor::zeros([a.len(), n]);
        if n == 0 {
            return out;
        }
        for (row, &ai) in out.as_mut_slice().chunks_exact_mut(n).zip(a) {
            for (oj, &bj) in row.iter_mut().zip(b) {
                *oj = ai * bj;
            }
        }
        out
    }

    /// Frobenius (elementwise L2) norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two equal-length slices.
    ///
    /// Delegates to the 8-lane [`crate::simd::dot_span`]: eight
    /// independent partial sums (breaking the serial dependence so the
    /// loop autovectorizes) combined in a fixed pairwise tree with a
    /// sequential scalar tail. The order is fixed, so the result is
    /// bitwise reproducible.
    ///
    /// # Panics
    ///
    /// Panics if the slices differ in length.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        simd::dot_span(a, b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([2, 3]));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Tensor::ones([1, 4]);
        let b = Tensor::ones([4, 5]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[1, 5]);
        assert!(c.as_slice().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = a.matvec(&[1.0, -1.0]);
        assert_eq!(v, vec![-1.0, -1.0]);
    }

    #[test]
    fn scale_rows_normalizes() {
        let a = Tensor::from_rows(&[&[2.0, 4.0], &[3.0, 9.0]]);
        let s = a.scale_rows(&[0.5, 1.0 / 3.0]);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[1.0, 3.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let o = Tensor::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape().dims(), &[2, 3]);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn frobenius_norm_is_l2() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Tensor::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    /// Textbook ijk triple loop, kept as an independent oracle for the
    /// blocked kernel.
    fn matmul_reference(a: &Tensor, b: &Tensor) -> Tensor {
        let (m, k, n) = (a.rows(), a.cols(), b.cols());
        let mut out = Tensor::zeros([m, n]);
        for i in 0..m {
            for j in 0..n {
                let mut s = 0.0f64;
                for p in 0..k {
                    s += f64::from(a.get2(i, p)) * f64::from(b.get2(p, j));
                }
                out.set2(i, j, s as f32);
            }
        }
        out
    }

    #[test]
    fn blocked_kernel_matches_reference_on_remainder_shapes() {
        // Shapes chosen so both the k-unroll (k % 4 != 0) and the j-tile
        // (n % 4 != 0) remainder paths run.
        let mut rng = crate::Rng64::new(99);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 4, 4), (6, 9, 2), (2, 16, 13), (5, 3, 4)] {
            let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
            let got = a.matmul(&b);
            let want = matmul_reference(&a, &b);
            for (g, w) in got.as_slice().iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-4, "({m},{k},{n}): {g} vs {w}");
            }
        }
    }

    #[test]
    fn matmul_is_bitwise_deterministic() {
        let mut rng = crate::Rng64::new(7);
        let a = Tensor::rand_uniform([9, 17], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([17, 11], -1.0, 1.0, &mut rng);
        let first = a.matmul(&b);
        for _ in 0..3 {
            assert_eq!(first, a.matmul(&b), "accumulation order must be fixed");
        }
    }

    #[test]
    fn matmul_does_not_skip_zero_rows() {
        // Zeros in A must flow through the same accumulation path as any
        // other value (the old kernel branched on them).
        let a = Tensor::from_rows(&[&[0.0, 0.0, 2.0, 0.0, 1.0]]);
        let b = Tensor::from_rows(&[&[1.0], &[10.0], &[100.0], &[1000.0], &[10000.0]]);
        assert_eq!(a.matmul(&b).as_slice(), &[10200.0]);
    }

    #[test]
    fn dot_remainder_lengths() {
        for len in 0..9usize {
            let a: Vec<f32> = (0..len).map(|i| i as f32 + 1.0).collect();
            let want: f32 = a.iter().map(|x| x * x).sum();
            assert_eq!(Tensor::dot(&a, &a), want, "len {len}");
        }
    }

    #[test]
    fn outer_with_empty_operands() {
        assert_eq!(Tensor::outer(&[1.0, 2.0], &[]).shape().dims(), &[2, 0]);
        assert_eq!(Tensor::outer(&[], &[1.0]).shape().dims(), &[0, 1]);
    }

    #[test]
    fn gemm_into_accumulates_on_top_of_existing_values() {
        // out pre-seeded with a "bias": gemm must add, not overwrite.
        let a = [1.0, 2.0, 3.0, 4.0]; // (2, 2)
        let b = [1.0, 0.0, 0.0, 1.0]; // identity
        let mut out = [10.0, 20.0, 30.0, 40.0];
        gemm_into(2, 2, 2, &a, &b, &mut out);
        assert_eq!(out, [11.0, 22.0, 33.0, 44.0]);
    }

    #[test]
    fn gemm_nt_matches_matmul_with_explicit_transpose() {
        let mut rng = crate::Rng64::new(3);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 4, 4), (2, 13, 6), (5, 3, 4)] {
            let a = Tensor::rand_uniform([m, k], -2.0, 2.0, &mut rng);
            let bt = Tensor::rand_uniform([n, k], -2.0, 2.0, &mut rng);
            let mut out = vec![0.0; m * n];
            gemm_nt_into(m, k, n, a.as_slice(), bt.as_slice(), &mut out);
            let want = a.matmul(&bt.transpose());
            for (g, w) in out.iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-4, "nt ({m},{k},{n}): {g} vs {w}");
            }
        }
    }

    #[test]
    fn gemm_tn_matches_matmul_with_explicit_transpose() {
        let mut rng = crate::Rng64::new(5);
        for (m, k, n) in [(1, 1, 1), (3, 5, 7), (4, 4, 4), (2, 13, 6), (5, 3, 4)] {
            let at = Tensor::rand_uniform([k, m], -2.0, 2.0, &mut rng);
            let b = Tensor::rand_uniform([k, n], -2.0, 2.0, &mut rng);
            let mut out = vec![0.0; m * n];
            gemm_tn_into(m, k, n, at.as_slice(), b.as_slice(), &mut out);
            let want = at.transpose().matmul(&b);
            for (g, w) in out.iter().zip(want.as_slice()) {
                assert!((g - w).abs() < 1e-4, "tn ({m},{k},{n}): {g} vs {w}");
            }
        }
    }

    #[test]
    fn transpose_gemms_are_bitwise_deterministic() {
        let mut rng = crate::Rng64::new(11);
        let a = Tensor::rand_uniform([9, 17], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([9, 13], -1.0, 1.0, &mut rng);
        let run_nt = || {
            let mut out = vec![0.0; 17 * 13];
            // aᵀ (17,9) @ b (9,13) via tn; a (9,17) rows dotted via nt below.
            gemm_tn_into(17, 9, 13, a.as_slice(), b.as_slice(), &mut out);
            out
        };
        let first = run_nt();
        for _ in 0..3 {
            assert_eq!(first, run_nt(), "accumulation order must be fixed");
        }
        let run_tn = || {
            let mut out = vec![0.0; 9 * 9];
            gemm_nt_into(9, 17, 9, a.as_slice(), a.as_slice(), &mut out);
            out
        };
        let first = run_tn();
        for _ in 0..3 {
            assert_eq!(first, run_tn(), "accumulation order must be fixed");
        }
    }

    #[test]
    fn matmul_associativity_on_random_matrices() {
        let mut rng = crate::Rng64::new(17);
        let a = Tensor::rand_uniform([4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([3, 2], -1.0, 1.0, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-4));
    }
}
