//! Matrix products and the graph-specific matrix helpers used by Eq. (1).

use crate::tensor::Tensor;

impl Tensor {
    /// Matrix product `self @ other`.
    ///
    /// This is the hot operation of the reproduction: every graph
    /// convolution layer computes `D̂⁻¹ Â Z W` via two of these products.
    /// An ikj loop order keeps the inner accesses sequential.
    ///
    /// # Panics
    ///
    /// Panics unless both tensors are rank 2 with compatible inner
    /// dimensions.
    pub fn matmul(&self, other: &Tensor) -> Tensor {
        let (m, k) = (self.rows(), self.cols());
        let (k2, n) = (other.rows(), other.cols());
        assert_eq!(k, k2, "matmul inner dimension mismatch: {k} vs {k2}");
        let mut out = Tensor::zeros([m, n]);
        let a = self.as_slice();
        let b = other.as_slice();
        let o = out.as_mut_slice();
        for i in 0..m {
            for p in 0..k {
                let aip = a[i * k + p];
                if aip == 0.0 {
                    continue;
                }
                let brow = &b[p * n..(p + 1) * n];
                let orow = &mut o[i * n..(i + 1) * n];
                for j in 0..n {
                    orow[j] += aip * brow[j];
                }
            }
        }
        out
    }

    /// Matrix–vector product, treating `v` as a column vector.
    ///
    /// # Panics
    ///
    /// Panics if `self` is not rank 2 or dimensions disagree.
    pub fn matvec(&self, v: &[f32]) -> Vec<f32> {
        let (m, k) = (self.rows(), self.cols());
        assert_eq!(k, v.len(), "matvec dimension mismatch");
        let a = self.as_slice();
        (0..m)
            .map(|i| {
                a[i * k..(i + 1) * k]
                    .iter()
                    .zip(v)
                    .map(|(x, y)| x * y)
                    .sum()
            })
            .collect()
    }

    /// Scales each row `i` by `factors[i]`. This implements the
    /// row-normalization `D̂⁻¹ (·)` of Eq. (1) without materializing the
    /// diagonal matrix.
    ///
    /// # Panics
    ///
    /// Panics if `factors.len()` differs from the row count.
    pub fn scale_rows(&self, factors: &[f32]) -> Tensor {
        assert_eq!(factors.len(), self.rows(), "row factor count mismatch");
        let cols = self.cols();
        let mut out = self.clone();
        for (i, &f) in factors.iter().enumerate() {
            for x in &mut out.as_mut_slice()[i * cols..(i + 1) * cols] {
                *x *= f;
            }
        }
        out
    }

    /// Outer product of two vectors: `a (m) ⊗ b (n) -> (m, n)`.
    pub fn outer(a: &[f32], b: &[f32]) -> Tensor {
        let mut out = Tensor::zeros([a.len(), b.len()]);
        for (i, &ai) in a.iter().enumerate() {
            for (j, &bj) in b.iter().enumerate() {
                out.set2(i, j, ai * bj);
            }
        }
        out
    }

    /// Frobenius (elementwise L2) norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.as_slice().iter().map(|x| x * x).sum::<f32>().sqrt()
    }

    /// Dot product of two equal-length slices.
    pub fn dot(a: &[f32], b: &[f32]) -> f32 {
        assert_eq!(a.len(), b.len(), "dot length mismatch");
        a.iter().zip(b).map(|(x, y)| x * y).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let b = Tensor::from_rows(&[&[5.0, 6.0], &[7.0, 8.0]]);
        let c = a.matmul(&b);
        assert_eq!(c.row(0), &[19.0, 22.0]);
        assert_eq!(c.row(1), &[43.0, 50.0]);
    }

    #[test]
    fn matmul_identity_is_noop() {
        let a = Tensor::from_rows(&[&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]]);
        assert_eq!(a.matmul(&Tensor::eye(3)), a);
        assert_eq!(Tensor::eye(2).matmul(&a), a);
    }

    #[test]
    #[should_panic(expected = "inner dimension mismatch")]
    fn matmul_rejects_bad_dims() {
        Tensor::zeros([2, 3]).matmul(&Tensor::zeros([2, 3]));
    }

    #[test]
    fn matmul_rectangular_shapes() {
        let a = Tensor::ones([1, 4]);
        let b = Tensor::ones([4, 5]);
        let c = a.matmul(&b);
        assert_eq!(c.shape().dims(), &[1, 5]);
        assert!(c.as_slice().iter().all(|&x| x == 4.0));
    }

    #[test]
    fn matvec_matches_matmul() {
        let a = Tensor::from_rows(&[&[1.0, 2.0], &[3.0, 4.0]]);
        let v = a.matvec(&[1.0, -1.0]);
        assert_eq!(v, vec![-1.0, -1.0]);
    }

    #[test]
    fn scale_rows_normalizes() {
        let a = Tensor::from_rows(&[&[2.0, 4.0], &[3.0, 9.0]]);
        let s = a.scale_rows(&[0.5, 1.0 / 3.0]);
        assert_eq!(s.row(0), &[1.0, 2.0]);
        assert_eq!(s.row(1), &[1.0, 3.0]);
    }

    #[test]
    fn outer_product_shape_and_values() {
        let o = Tensor::outer(&[1.0, 2.0], &[3.0, 4.0, 5.0]);
        assert_eq!(o.shape().dims(), &[2, 3]);
        assert_eq!(o.row(1), &[6.0, 8.0, 10.0]);
    }

    #[test]
    fn frobenius_norm_is_l2() {
        let a = Tensor::from_slice(&[3.0, 4.0]);
        assert!((a.frobenius_norm() - 5.0).abs() < 1e-6);
    }

    #[test]
    fn dot_product() {
        assert_eq!(Tensor::dot(&[1.0, 2.0, 3.0], &[4.0, 5.0, 6.0]), 32.0);
    }

    #[test]
    fn matmul_associativity_on_random_matrices() {
        let mut rng = crate::Rng64::new(17);
        let a = Tensor::rand_uniform([4, 5], -1.0, 1.0, &mut rng);
        let b = Tensor::rand_uniform([5, 3], -1.0, 1.0, &mut rng);
        let c = Tensor::rand_uniform([3, 2], -1.0, 1.0, &mut rng);
        let left = a.matmul(&b).matmul(&c);
        let right = a.matmul(&b.matmul(&c));
        assert!(left.approx_eq(&right, 1e-4));
    }
}
