//! Process-wide tensor memory accounting.
//!
//! Every [`crate::Tensor`] construction and drop reports its element
//! buffer size here, giving the observability layer allocation totals and
//! a high-water mark ("peak bytes") without a custom global allocator.
//!
//! # Cost model
//!
//! Accounting is off by default. Disabled, each construction/drop site
//! costs one relaxed atomic load — the same zero-overhead invariant as
//! `magic-obs` instrumentation. Enabled, a site adds a handful of relaxed
//! atomic read-modify-writes; accounting never feeds back into numeric
//! code, so an accounted run is bitwise identical to an unaccounted one.
//!
//! # Accuracy
//!
//! Counters track *element bytes* (`len * 4`), not allocator capacity or
//! malloc overhead, and tensors allocated while accounting was disabled
//! are invisible to the live/current counter. Enable accounting before
//! the workload of interest (the CLI does this when a trace recorder is
//! installed) and treat `current_bytes`/`peak_bytes` as tight lower
//! bounds on real usage.

use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};

static ENABLED: AtomicBool = AtomicBool::new(false);
/// Live element bytes. Signed: frees of tensors allocated before
/// `enable()` can transiently drive it below zero; readers clamp at 0.
static CURRENT: AtomicI64 = AtomicI64::new(0);
/// High-water mark of `CURRENT` since the last [`reset_peak`].
static PEAK: AtomicI64 = AtomicI64::new(0);
/// Cumulative allocation count since the last [`reset`].
static ALLOCS: AtomicU64 = AtomicU64::new(0);
/// Cumulative allocated element bytes since the last [`reset`].
static ALLOC_BYTES: AtomicU64 = AtomicU64::new(0);
/// Cumulative [`crate::Workspace`] checkouts served from a recycled
/// buffer since the last [`reset`].
static POOL_HITS: AtomicU64 = AtomicU64::new(0);
/// Cumulative [`crate::Workspace`] checkouts that had to fall back to a
/// fresh heap allocation since the last [`reset`].
static POOL_MISSES: AtomicU64 = AtomicU64::new(0);

/// A snapshot of the accounting counters, all in bytes of `f32` elements.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct MemStats {
    /// Element bytes currently live (allocated minus freed, clamped ≥ 0).
    pub current_bytes: u64,
    /// High-water mark of `current_bytes` since the last peak reset.
    pub peak_bytes: u64,
    /// Tensor buffers allocated since accounting was reset.
    pub allocations: u64,
    /// Cumulative element bytes allocated since accounting was reset.
    pub allocated_bytes: u64,
    /// Workspace checkouts served from the pool since the last reset.
    pub pool_hits: u64,
    /// Workspace checkouts that heap-allocated since the last reset.
    pub pool_misses: u64,
}

/// Turns accounting on. Counters start from their current values; call
/// [`reset`] first for a clean slate.
pub fn enable() {
    ENABLED.store(true, Ordering::SeqCst);
}

/// Turns accounting off. Counters keep their values for inspection.
pub fn disable() {
    ENABLED.store(false, Ordering::SeqCst);
}

/// Whether accounting is currently on.
#[inline]
pub fn is_enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

/// Reads the counters.
pub fn stats() -> MemStats {
    MemStats {
        current_bytes: CURRENT.load(Ordering::Relaxed).max(0) as u64,
        peak_bytes: PEAK.load(Ordering::Relaxed).max(0) as u64,
        allocations: ALLOCS.load(Ordering::Relaxed),
        allocated_bytes: ALLOC_BYTES.load(Ordering::Relaxed),
        pool_hits: POOL_HITS.load(Ordering::Relaxed),
        pool_misses: POOL_MISSES.load(Ordering::Relaxed),
    }
}

/// Restarts the high-water mark from the current live total — call at an
/// epoch boundary to measure per-epoch peaks.
pub fn reset_peak() {
    PEAK.store(CURRENT.load(Ordering::Relaxed).max(0), Ordering::Relaxed);
}

/// Zeroes every counter (live total included — only meaningful before
/// the tensors of interest are allocated).
pub fn reset() {
    CURRENT.store(0, Ordering::Relaxed);
    PEAK.store(0, Ordering::Relaxed);
    ALLOCS.store(0, Ordering::Relaxed);
    ALLOC_BYTES.store(0, Ordering::Relaxed);
    POOL_HITS.store(0, Ordering::Relaxed);
    POOL_MISSES.store(0, Ordering::Relaxed);
}

/// Reports a tensor buffer of `elems` elements coming alive.
#[inline]
pub(crate) fn on_alloc(elems: usize) {
    on_alloc_bytes(elems * std::mem::size_of::<f32>());
}

/// Reports a tensor buffer of `elems` elements going away.
#[inline]
pub(crate) fn on_free(elems: usize) {
    on_free_bytes(elems * std::mem::size_of::<f32>());
}

/// Reports a raw buffer of `bytes` bytes coming alive. Sparse matrices
/// ([`crate::CsrMatrix`]) use this directly: their index arrays are not
/// 4-byte elements.
#[inline]
pub(crate) fn on_alloc_bytes(bytes: usize) {
    if !is_enabled() {
        return;
    }
    ALLOCS.fetch_add(1, Ordering::Relaxed);
    ALLOC_BYTES.fetch_add(bytes as u64, Ordering::Relaxed);
    let now = CURRENT.fetch_add(bytes as i64, Ordering::Relaxed) + bytes as i64;
    PEAK.fetch_max(now, Ordering::Relaxed);
}

/// Reports a raw buffer of `bytes` bytes going away.
#[inline]
pub(crate) fn on_free_bytes(bytes: usize) {
    if !is_enabled() {
        return;
    }
    CURRENT.fetch_sub(bytes as i64, Ordering::Relaxed);
}

/// Reports a [`crate::Workspace`] checkout served from the pool.
#[inline]
pub(crate) fn on_pool_hit() {
    if !is_enabled() {
        return;
    }
    POOL_HITS.fetch_add(1, Ordering::Relaxed);
}

/// Reports a [`crate::Workspace`] checkout that heap-allocated.
#[inline]
pub(crate) fn on_pool_miss() {
    if !is_enabled() {
        return;
    }
    POOL_MISSES.fetch_add(1, Ordering::Relaxed);
}

/// Serializes tests (across this crate) that toggle the process-global
/// accounting state.
#[cfg(test)]
pub(crate) static TEST_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Tensor;

    /// Accounting state is process-global; tests must not interleave.
    use super::TEST_LOCK as GLOBAL;

    #[test]
    fn disabled_accounting_stays_at_zero() {
        let _guard = GLOBAL.lock().unwrap();
        disable();
        reset();
        let t = Tensor::zeros([16, 16]);
        drop(t);
        assert_eq!(stats(), MemStats::default());
    }

    #[test]
    fn alloc_and_drop_balance_and_peak_sticks() {
        let _guard = GLOBAL.lock().unwrap();
        reset();
        enable();
        {
            let a = Tensor::zeros([10, 10]); // 400 bytes
            let b = a.clone(); // +400
            assert_eq!(stats().current_bytes, 800);
            drop(b);
        }
        let s = stats();
        assert_eq!(s.current_bytes, 0, "all buffers freed");
        assert_eq!(s.peak_bytes, 800, "peak captured the clone");
        assert_eq!(s.allocations, 2);
        assert_eq!(s.allocated_bytes, 800);
        disable();
        reset();
    }

    #[test]
    fn into_vec_counts_as_a_free() {
        let _guard = GLOBAL.lock().unwrap();
        reset();
        enable();
        let t = Tensor::ones([8]);
        let v = t.into_vec();
        assert_eq!(stats().current_bytes, 0, "buffer handed off, no longer tracked");
        assert_eq!(v.len(), 8);
        disable();
        reset();
    }

    #[test]
    fn reset_peak_rebases_on_live_bytes() {
        let _guard = GLOBAL.lock().unwrap();
        reset();
        enable();
        let keep = Tensor::zeros([100]); // 400 live
        {
            let _spike = Tensor::zeros([1000]); // peak 4400
        }
        assert_eq!(stats().peak_bytes, 4400);
        reset_peak();
        assert_eq!(stats().peak_bytes, 400, "peak restarts from live bytes");
        drop(keep);
        disable();
        reset();
    }
}
