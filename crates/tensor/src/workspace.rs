//! Size-class buffer pool for steady-state allocation-free training.
//!
//! A [`Workspace`] is an arena of recycled `Vec<f32>` (and `Vec<usize>`)
//! buffers bucketed by power-of-two capacity class. The autograd tape owns
//! one workspace per instance: hot kernels (im2col column buffers, conv
//! outputs, gradient buffers, dropout masks, pooling index vectors) check
//! buffers out with [`Workspace::take`], and `Tape::reset` recycles every
//! per-sample buffer back in — so after a warm-up pass, steady-state
//! training serves those checkouts entirely from the pool.
//!
//! # Determinism
//!
//! Checked-out `f32` buffers are always zero-filled (and index buffers are
//! returned empty), so pooled reuse can never leak stale values into
//! numeric code: a pooled run is bitwise identical to an unpooled one.
//!
//! # Capacity classes
//!
//! `take(len)` draws from class `ceil(log2(len))`; every buffer stored in
//! class `c` has capacity ≥ `2^c ≥ len`, so a pooled buffer never
//! reallocates on `resize`. Pool misses allocate with capacity exactly
//! `2^c` so the buffer re-enters the same class on recycle (a capacity of
//! `len` would classify one class lower and keep missing forever).
//! Recycled buffers of foreign provenance (e.g. tensors built elsewhere
//! whose capacity is not a power of two) are filed by `floor(log2(cap))`,
//! which is conservative: anything served from a class has enough room.
//!
//! # Bounds
//!
//! Each class keeps at most a fixed number of buffers (more for small
//! classes, fewer for large ones); surplus recycles simply drop. This
//! caps retained memory at ~16 MiB for the small classes plus a handful
//! of workload-sized large buffers.
//!
//! # Accounting
//!
//! Per-instance [`WorkspaceStats`] counts hits and misses unconditionally
//! (used by tests asserting zero-miss steady state). When
//! [`crate::mem`] accounting is enabled, hits/misses are additionally
//! mirrored into the process-wide [`crate::MemStats`] `pool_hits` /
//! `pool_misses` counters so `magic profile` can report them.

use crate::{mem, Shape, Tensor};

/// Most buffers kept per size class for classes of ≤ 2^16 elements.
const SMALL_CLASS_CAP: usize = 32;
/// Most buffers kept per size class for larger classes.
const LARGE_CLASS_CAP: usize = 8;
/// Largest class index considered "small" for the retention cap.
const SMALL_CLASS_MAX: usize = 16;

fn class_cap(class: usize) -> usize {
    if class <= SMALL_CLASS_MAX {
        SMALL_CLASS_CAP
    } else {
        LARGE_CLASS_CAP
    }
}

/// Size class a request of `len` elements draws from: smallest `c` with
/// `2^c >= len`.
fn take_class(len: usize) -> usize {
    len.next_power_of_two().trailing_zeros() as usize
}

/// Size class a buffer of capacity `cap > 0` files under: largest `c`
/// with `2^c <= cap`.
fn file_class(cap: usize) -> usize {
    (usize::BITS - 1 - cap.leading_zeros()) as usize
}

/// Hit/miss counters for one [`Workspace`] instance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct WorkspaceStats {
    /// Checkouts served from a recycled buffer.
    pub hits: u64,
    /// Checkouts that fell back to a fresh heap allocation.
    pub misses: u64,
}

/// A size-class free-list arena of reusable buffers. See the module docs.
#[derive(Debug, Default)]
pub struct Workspace {
    float_classes: Vec<Vec<Vec<f32>>>,
    index_classes: Vec<Vec<Vec<usize>>>,
    hits: u64,
    misses: u64,
}

impl Workspace {
    /// Creates an empty workspace.
    pub fn new() -> Self {
        Workspace::default()
    }

    /// Hit/miss counters since construction.
    pub fn stats(&self) -> WorkspaceStats {
        WorkspaceStats { hits: self.hits, misses: self.misses }
    }

    /// Checks out a zero-filled `f32` buffer of exactly `len` elements.
    pub fn take(&mut self, len: usize) -> Vec<f32> {
        let class = take_class(len);
        match self.float_classes.get_mut(class).and_then(Vec::pop) {
            Some(mut buf) => {
                self.on_hit();
                buf.clear();
                buf.resize(len, 0.0);
                buf
            }
            None => {
                self.on_miss();
                let mut buf = Vec::with_capacity(1usize << class);
                buf.resize(len, 0.0);
                buf
            }
        }
    }

    /// Returns an `f32` buffer to the pool. Buffers over the class cap
    /// (or with zero capacity) are dropped.
    pub fn recycle(&mut self, buf: Vec<f32>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = file_class(buf.capacity());
        if self.float_classes.len() <= class {
            self.float_classes.resize_with(class + 1, Vec::new);
        }
        let slot = &mut self.float_classes[class];
        if slot.len() < class_cap(class) {
            slot.push(buf);
        }
    }

    /// Checks out an *empty* `usize` buffer with capacity for at least
    /// `len` elements (callers push winners in order, so no zero-fill).
    pub fn take_indices(&mut self, len: usize) -> Vec<usize> {
        let class = take_class(len);
        match self.index_classes.get_mut(class).and_then(Vec::pop) {
            Some(mut buf) => {
                self.on_hit();
                buf.clear();
                buf
            }
            None => {
                self.on_miss();
                Vec::with_capacity(1usize << class)
            }
        }
    }

    /// Returns a `usize` buffer to the pool.
    pub fn recycle_indices(&mut self, buf: Vec<usize>) {
        if buf.capacity() == 0 {
            return;
        }
        let class = file_class(buf.capacity());
        if self.index_classes.len() <= class {
            self.index_classes.resize_with(class + 1, Vec::new);
        }
        let slot = &mut self.index_classes[class];
        if slot.len() < class_cap(class) {
            slot.push(buf);
        }
    }

    /// Checks out a zero tensor of `shape` backed by a pooled buffer.
    ///
    /// The tensor is constructed through the normal accounting choke
    /// point, so [`crate::mem`] sees it like any other tensor; the pool
    /// counters record whether its buffer was recycled or fresh.
    pub fn take_tensor(&mut self, shape: impl Into<Shape>) -> Tensor {
        let shape = shape.into();
        Tensor::from_vec(self.take(shape.len()), shape)
    }

    /// Recycles a tensor's backing buffer into the pool.
    pub fn recycle_tensor(&mut self, tensor: Tensor) {
        self.recycle(tensor.into_vec());
    }

    fn on_hit(&mut self) {
        self.hits += 1;
        mem::on_pool_hit();
    }

    fn on_miss(&mut self) {
        self.misses += 1;
        mem::on_pool_miss();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn miss_then_hit_on_same_class() {
        let mut ws = Workspace::new();
        let a = ws.take(100);
        assert_eq!(a.len(), 100);
        assert_eq!(ws.stats(), WorkspaceStats { hits: 0, misses: 1 });
        ws.recycle(a);
        let b = ws.take(100);
        assert_eq!(b.len(), 100);
        assert_eq!(ws.stats(), WorkspaceStats { hits: 1, misses: 1 });
    }

    #[test]
    fn pooled_buffers_come_back_zeroed() {
        let mut ws = Workspace::new();
        let mut a = ws.take(8);
        a.iter_mut().for_each(|v| *v = 7.0);
        ws.recycle(a);
        let b = ws.take(8);
        assert!(b.iter().all(|&v| v == 0.0), "recycled buffer must be zeroed");
    }

    #[test]
    fn smaller_request_reuses_larger_class_rounding_up() {
        let mut ws = Workspace::new();
        // 100 and 65 both round up to class 7 (128).
        let a = ws.take(100);
        ws.recycle(a);
        let b = ws.take(65);
        assert_eq!(b.len(), 65);
        assert_eq!(ws.stats().hits, 1);
    }

    #[test]
    fn miss_allocates_full_class_capacity_so_recycle_round_trips() {
        let mut ws = Workspace::new();
        let a = ws.take(5); // class 3, capacity 8
        assert!(a.capacity() >= 8);
        ws.recycle(a);
        let b = ws.take(5);
        assert_eq!(ws.stats(), WorkspaceStats { hits: 1, misses: 1 });
        assert_eq!(b.len(), 5);
    }

    #[test]
    fn class_retention_is_capped() {
        let mut ws = Workspace::new();
        let class = take_class(16);
        for _ in 0..class_cap(class) + 5 {
            ws.recycle(vec![0.0; 16]);
        }
        assert_eq!(ws.float_classes[class].len(), class_cap(class));
    }

    #[test]
    fn index_buffers_recycle_and_come_back_empty() {
        let mut ws = Workspace::new();
        let mut a = ws.take_indices(10);
        a.extend([1, 2, 3]);
        ws.recycle_indices(a);
        let b = ws.take_indices(10);
        assert!(b.is_empty());
        assert!(b.capacity() >= 10);
        assert_eq!(ws.stats(), WorkspaceStats { hits: 1, misses: 1 });
    }

    #[test]
    fn tensor_round_trip_reuses_the_buffer() {
        let mut ws = Workspace::new();
        let t = ws.take_tensor([4, 8]);
        assert_eq!(t.shape().dims(), &[4, 8]);
        ws.recycle_tensor(t);
        let u = ws.take_tensor([4, 8]);
        assert!(u.as_slice().iter().all(|&v| v == 0.0));
        assert_eq!(ws.stats(), WorkspaceStats { hits: 1, misses: 1 });
    }

    #[test]
    fn zero_len_take_works() {
        let mut ws = Workspace::new();
        let a = ws.take(0);
        assert!(a.is_empty());
        ws.recycle(a); // capacity may be 1 (class 0) — fine either way
    }

    #[test]
    fn pool_counters_mirror_into_mem_when_enabled() {
        let _guard = mem::TEST_LOCK.lock().unwrap();
        mem::disable();
        mem::reset();
        let mut ws = Workspace::new();
        let warm = ws.take(8); // disabled: invisible to global counters
        ws.recycle(warm);
        assert_eq!(mem::stats().pool_misses, 0);
        mem::enable();
        let a = ws.take(8); // hit
        let b = ws.take(8); // miss
        let s = mem::stats();
        assert_eq!((s.pool_hits, s.pool_misses), (1, 1));
        ws.recycle(a);
        ws.recycle(b);
        mem::disable();
        mem::reset();
    }
}
